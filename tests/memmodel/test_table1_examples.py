"""Table 1: the paper's four DRAMmalloc parameter examples.

Each row of Table 1 is instantiated as a real descriptor (scaled where the
paper's sizes exceed what a test should allocate) and its layout checked
against the row's English description.
"""

from repro.memmodel import SwizzleDescriptor

MACHINE_NODES = 16384  # the full UpDown machine


class TestTable1Row1:
    """(., 0, 16384, 4096): cyclic over the entire machine, 4 KB blocks."""

    def test_blocks_cycle_over_whole_machine(self):
        d = SwizzleDescriptor(
            0, 16384 * 4096, 0, 16384, 4096, MACHINE_NODES
        )
        assert d.node_of(0) == 0
        assert d.node_of(4096) == 1
        assert d.node_of(16383 * 4096) == 16383
        # and the cycle restarts
        d2 = SwizzleDescriptor(
            0, 2 * 16384 * 4096, 0, 16384, 4096, MACHINE_NODES
        )
        assert d2.node_of(16384 * 4096) == 0


class TestTable1Row2:
    """(., 0, 1024, 4096): cyclic over the first 1K nodes."""

    def test_only_first_1k_nodes_used(self):
        d = SwizzleDescriptor(0, 4096 * 4096, 0, 1024, 4096, MACHINE_NODES)
        nodes = {d.node_of(i * 4096) for i in range(4096)}
        assert nodes == set(range(1024))


class TestTable1Row3:
    """(4TB, 0, 1024, 4GB): contiguous 4GB per node on the first 1K nodes.

    Scaled 2^20x (4MB total, 4KB blocks) to keep the test light; the
    block-size-equals-share structure is what the row demonstrates.
    """

    def test_each_node_gets_one_contiguous_block(self):
        size, bs, nr = 1024 * 4096, 4096, 1024
        d = SwizzleDescriptor(0, size, 0, nr, bs, MACHINE_NODES)
        for node in (0, 1, 511, 1023):
            lo = node * bs
            n, local = d.translate(lo)
            assert n == node
            assert local == 0
            n2, local2 = d.translate(lo + bs - 1)
            assert n2 == node and local2 == bs - 1


class TestTable1Row4:
    """(4TB, 4K, 8K, 1MB): cyclic across the middle 8K nodes; each node
    gets 512 blocks.  Scaled: 8K blocks of 4KB over nodes [4096, 12288)."""

    def test_middle_nodes_each_get_equal_share(self):
        nr, bs = 8192, 4096
        nblocks_per_node = 4
        d = SwizzleDescriptor(
            0, nr * nblocks_per_node * bs, 4096, nr, bs, MACHINE_NODES
        )
        assert d.node_of(0) == 4096
        assert d.node_of((nr - 1) * bs) == 4096 + nr - 1
        assert d.node_of(nr * bs) == 4096  # wraps to the region start
        assert d.bytes_on_node(4096) == nblocks_per_node * bs
        assert d.bytes_on_node(0) == 0  # outside the middle range
