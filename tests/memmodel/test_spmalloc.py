"""spMalloc: per-lane scratchpad arenas."""

import pytest
from hypothesis import given, strategies as st

from repro.memmodel import DEFAULT_CAPACITY_WORDS, ScratchpadError, SpAllocator


class TestSpMalloc:
    def test_offsets_are_disjoint(self):
        sp = SpAllocator(100)
        a = sp.sp_malloc(0, 10)
        b = sp.sp_malloc(0, 20)
        assert a == 0 and b == 10

    def test_lanes_are_independent(self):
        sp = SpAllocator(100)
        sp.sp_malloc(0, 50)
        assert sp.sp_malloc(1, 50) == 0
        assert sp.used(0) == 50 and sp.used(1) == 50

    def test_exhaustion_raises(self):
        sp = SpAllocator(16)
        sp.sp_malloc(0, 16)
        with pytest.raises(ScratchpadError, match="exhausted"):
            sp.sp_malloc(0, 1)

    def test_reset_frees_arena(self):
        sp = SpAllocator(16)
        sp.sp_malloc(0, 16)
        sp.reset(0)
        assert sp.sp_malloc(0, 16) == 0

    def test_reset_unknown_lane_is_noop(self):
        SpAllocator(16).reset(99)

    def test_invalid_sizes_rejected(self):
        sp = SpAllocator(16)
        with pytest.raises(ScratchpadError):
            sp.sp_malloc(0, 0)
        with pytest.raises(ScratchpadError):
            sp.sp_malloc(0, -4)
        with pytest.raises(ScratchpadError):
            SpAllocator(0)

    def test_default_capacity_is_64kb(self):
        assert DEFAULT_CAPACITY_WORDS * 8 == 64 * 1024

    def test_high_watermark(self):
        sp = SpAllocator(100)
        assert sp.high_watermark() == 0
        sp.sp_malloc(0, 10)
        sp.sp_malloc(1, 30)
        assert sp.high_watermark() == 30


@given(st.lists(st.integers(1, 20), max_size=30))
def test_bump_allocation_never_overlaps(sizes):
    sp = SpAllocator(10_000)
    spans = []
    for s in sizes:
        off = sp.sp_malloc(0, s)
        spans.append((off, off + s))
    spans.sort()
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0
