"""GlobalMemory: allocation, lookup, word access, free semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import bench_machine
from repro.memmodel import GlobalMemory, MemoryError_


@pytest.fixture
def gm():
    return GlobalMemory(bench_machine(nodes=4))


class TestAllocation:
    def test_regions_never_overlap(self, gm):
        regions = [gm.dram_malloc(1000 * 8) for _ in range(10)]
        spans = sorted((r.base, r.base + r.size) for r in regions)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_zero_va_is_never_mapped(self, gm):
        gm.dram_malloc(4096)
        with pytest.raises(MemoryError_):
            gm.region_of(0)

    def test_size_rounds_up_to_words(self, gm):
        r = gm.dram_malloc(9)  # 9 bytes -> 2 words
        assert r.size == 16
        assert r.nwords == 2

    def test_default_nr_nodes_is_machine_pow2(self, gm):
        r = gm.dram_malloc(4096)
        assert r.descriptor.nr_nodes == 4

    def test_name_collision_rejected(self, gm):
        gm.dram_malloc(64, name="x")
        with pytest.raises(MemoryError_):
            gm.dram_malloc(64, name="x")

    def test_nonpositive_size_rejected(self, gm):
        with pytest.raises(MemoryError_):
            gm.dram_malloc(0)

    def test_descriptor_count_matches_paper_scale(self, gm):
        """Paper §2.4: typical programs need 2-4 descriptors."""
        gm.dram_malloc(4096, name="gv")
        gm.dram_malloc(4096, name="nl")
        gm.dram_malloc(4096, name="pr")
        assert gm.num_descriptors == 3


class TestAccess:
    def test_read_write_words(self, gm):
        r = gm.dram_malloc(8 * 16, name="a")
        gm.write_words(r.addr(4), [10, 20, 30])
        assert gm.read_words(r.addr(4), 3) == (10, 20, 30)

    def test_read_cannot_straddle_regions(self, gm):
        r = gm.dram_malloc(8 * 4, name="a", block_size=4096)
        with pytest.raises(MemoryError_):
            gm.read_words(r.addr(2), 4)

    def test_misaligned_va_rejected(self, gm):
        r = gm.dram_malloc(8 * 4, name="a")
        with pytest.raises(MemoryError_):
            gm.read_words(r.base + 3, 1)

    def test_unmapped_va_rejected(self, gm):
        with pytest.raises(MemoryError_, match="unmapped"):
            gm.read_words(1 << 50, 1)

    def test_float_region_preserves_dtype(self, gm):
        r = gm.dram_malloc(8 * 4, dtype=np.float64, name="f")
        gm.write_words(r.addr(0), [0.25, 0.5])
        assert gm.read_words(r.addr(0), 2) == (0.25, 0.5)

    def test_region_named_lookup(self, gm):
        r = gm.dram_malloc(64, name="findme")
        assert gm.region_named("findme") is r
        with pytest.raises(MemoryError_):
            gm.region_named("nope")


class TestFree:
    def test_use_after_free_faults(self, gm):
        r = gm.dram_malloc(8 * 8, name="a")
        gm.free(r)
        with pytest.raises(MemoryError_):
            gm.read_words(r.addr(0) if False else r.base, 1)
        with pytest.raises(MemoryError_):
            r[0]

    def test_free_reduces_descriptor_count(self, gm):
        r = gm.dram_malloc(64)
        assert gm.num_descriptors == 1
        gm.free(r)
        assert gm.num_descriptors == 0


class TestRegionHelpers:
    def test_addr_index_roundtrip(self, gm):
        r = gm.dram_malloc(8 * 100, name="a")
        for i in (0, 1, 50, 99):
            assert r.index_of(r.addr(i)) == i

    def test_addr_out_of_range(self, gm):
        r = gm.dram_malloc(8 * 4, name="a")
        with pytest.raises(MemoryError_):
            r.addr(4)
        with pytest.raises(MemoryError_):
            r.addr(-1)

    def test_host_indexing(self, gm):
        r = gm.dram_malloc(8 * 4, name="a")
        r[:] = [1, 2, 3, 4]
        assert list(r[1:3]) == [2, 3]


@settings(max_examples=50)
@given(
    sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=20),
    block_pow=st.integers(12, 15),
)
def test_allocation_properties(sizes, block_pow):
    """Every allocation is disjoint, block-aligned, and fully translatable."""
    gm = GlobalMemory(bench_machine(nodes=4))
    bs = 1 << block_pow
    regions = [gm.dram_malloc(s, block_size=bs) for s in sizes]
    prev_end = 0
    for r in regions:
        assert r.base % bs == 0
        assert r.base >= prev_end
        prev_end = r.base + r.size
        # spot-translate the first and last word
        gm.translate(r.addr(0))
        gm.translate(r.addr(r.nwords - 1))


class TestScaledBlockFloor:
    def test_paper_machine_enforces_4kb(self):
        from repro.machine import MachineConfig

        gm = GlobalMemory(MachineConfig(nodes=4))
        with pytest.raises(Exception, match="block size"):
            gm.dram_malloc(4096, block_size=512)

    def test_bench_machine_allows_scaled_blocks(self):
        gm = GlobalMemory(bench_machine(nodes=4))
        r = gm.dram_malloc(4096, 0, 4, 512, name="scaled")
        # 512B blocks now stripe a 4KB region over 4 nodes
        nodes = {r.descriptor.node_of(r.base + i * 512) for i in range(8)}
        assert nodes == {0, 1, 2, 3}

    def test_bench_machine_still_rejects_tiny_blocks(self):
        gm = GlobalMemory(bench_machine(nodes=1))
        with pytest.raises(Exception, match="block size"):
            gm.dram_malloc(4096, block_size=256)
