"""Swizzle descriptors: block-cyclic translation correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memmodel import MIN_BLOCK_SIZE, SwizzleDescriptor, TranslationError


def desc(size=1 << 20, first=0, nr=4, bs=4096, machine=16, base=0):
    return SwizzleDescriptor(
        base_va=base,
        size=size,
        first_node=first,
        nr_nodes=nr,
        block_size=bs,
        machine_nodes=machine,
    )


class TestValidation:
    def test_non_power_of_two_nodes_rejected(self):
        with pytest.raises(TranslationError, match="power of 2"):
            desc(nr=3)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(TranslationError, match="power of 2"):
            desc(bs=5000)

    def test_block_below_4kb_rejected(self):
        """Paper §2.4: BS is a power of 2 and >= 4KB."""
        with pytest.raises(TranslationError, match="4096"):
            desc(bs=2048)
        assert MIN_BLOCK_SIZE == 4096

    def test_more_nodes_than_machine_rejected(self):
        with pytest.raises(TranslationError):
            desc(nr=32, machine=16)

    def test_first_node_out_of_range_rejected(self):
        with pytest.raises(TranslationError):
            desc(first=16, machine=16)

    def test_empty_region_rejected(self):
        with pytest.raises(TranslationError):
            desc(size=0)


class TestTranslation:
    def test_block_cyclic_node_pattern(self):
        d = desc(size=8 * 4096, nr=4, bs=4096)
        nodes = [d.node_of(i * 4096) for i in range(8)]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_first_node_offsets_pattern(self):
        d = desc(size=4 * 4096, first=2, nr=4, bs=4096)
        assert [d.node_of(i * 4096) for i in range(4)] == [2, 3, 4, 5]

    def test_wraparound_modulo_machine(self):
        """Table 1's "middle nodes" style: first_node + k wraps."""
        d = desc(size=4 * 4096, first=14, nr=4, bs=4096, machine=16)
        assert [d.node_of(i * 4096) for i in range(4)] == [14, 15, 0, 1]

    def test_offsets_within_node_are_contiguous_per_block(self):
        d = desc(size=8 * 4096, nr=4, bs=4096)
        # second block on node 0 (VA block 4) starts at local offset 4096
        node, local = d.translate(4 * 4096)
        assert (node, local) == (0, 4096)
        node, local = d.translate(4 * 4096 + 123)
        assert (node, local) == (0, 4096 + 123)

    def test_out_of_region_rejected(self):
        d = desc(size=4096)
        with pytest.raises(TranslationError):
            d.translate(4096)
        with pytest.raises(TranslationError):
            d.translate(-1)

    def test_bytes_on_node_balanced(self):
        d = desc(size=16 * 4096, nr=4, bs=4096)
        assert [d.bytes_on_node(n) for n in range(4)] == [4 * 4096] * 4
        assert d.bytes_on_node(5) == 0

    def test_nodes_used_capped_by_blocks(self):
        d = desc(size=2 * 4096, nr=8, bs=4096, machine=16)
        assert d.nodes_used() == 2


@settings(max_examples=200)
@given(
    nr_pow=st.integers(0, 4),
    bs_pow=st.integers(12, 16),
    nblocks=st.integers(1, 32),
    first=st.integers(0, 15),
    offset_frac=st.floats(0, 1, exclude_max=True),
)
def test_translation_properties(nr_pow, bs_pow, nblocks, first, offset_frac):
    """For any valid descriptor: (1) every VA maps into [first, first+nr)
    mod machine; (2) local offsets are within the node's share; (3) two
    VAs in the same block map to the same node with offsets differing by
    the VA delta."""
    nr, bs = 1 << nr_pow, 1 << bs_pow
    machine = 16
    d = SwizzleDescriptor(0, nblocks * bs, first, nr, bs, machine)
    va = int(offset_frac * d.size)
    node, local = d.translate(va)
    allowed = {(first + k) % machine for k in range(nr)}
    assert node in allowed
    assert 0 <= local < d.bytes_on_node(node) or d.bytes_on_node(node) == 0
    # same-block coherence
    block_start = (va // bs) * bs
    n2, l2 = d.translate(block_start)
    assert n2 == node
    assert local - l2 == va - block_start


@settings(max_examples=100)
@given(
    nr_pow=st.integers(0, 3),
    nblocks=st.integers(1, 16),
)
def test_translation_is_injective(nr_pow, nblocks):
    """Distinct VAs never collide in (node, offset) space."""
    nr, bs = 1 << nr_pow, 4096
    d = SwizzleDescriptor(0, nblocks * bs, 0, nr, bs, 8)
    seen = {}
    for va in range(0, d.size, 512):
        key = d.translate(va)
        assert key not in seen, f"collision between {va} and {seen[key]}"
        seen[key] = va
