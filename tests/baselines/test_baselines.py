"""The CPU oracles themselves: cross-checks and known values."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines import (
    bfs,
    pagerank,
    pagerank_converged,
    traversed_edges,
    triangle_count,
    triangle_count_intersect,
    validate_parents,
)
from repro.graph import CSRGraph, complete_graph, path_graph, rmat


def to_networkx(g: CSRGraph) -> nx.DiGraph:
    G = nx.DiGraph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(g.edges())
    return G


class TestPageRankOracle:
    def test_converged_matches_networkx(self):
        # networkx redistributes dangling mass, we drop it (documented in
        # baselines.pagerank) — compare on a graph with no isolated
        # vertices, where the two rules coincide
        from repro.graph import forest_fire

        g = forest_fire(64, seed=2)
        assert (g.degrees > 0).all()
        ours = pagerank_converged(g, damping=0.85, tol=1e-12)
        theirs = nx.pagerank(to_networkx(g), alpha=0.85, tol=1e-12)
        arr = np.array([theirs[i] for i in range(g.n)])
        assert np.abs(ours - arr).max() < 1e-8

    def test_uniform_on_regular_graph(self):
        g = complete_graph(5)
        pr = pagerank(g, iterations=10)
        assert np.allclose(pr, 0.2)

    def test_mass_conserved_without_dangling(self):
        from repro.graph import forest_fire

        g = forest_fire(64, seed=2)
        pr = pagerank(g, iterations=3)
        assert pr.sum() == pytest.approx(1.0)

    def test_dangling_mass_dropped_not_redistributed(self, rmat_s6):
        """rmat graphs have isolated vertex IDs; our rule loses their
        mass each iteration (both sides of the validation use it)."""
        assert (rmat_s6.degrees == 0).any()
        pr = pagerank(rmat_s6, iterations=1)
        assert pr.sum() < 1.0

    def test_empty_graph(self):
        assert len(pagerank(CSRGraph.from_edges([], n=0))) == 0

    def test_initial_vector_respected(self, rmat_s6):
        init = np.zeros(rmat_s6.n)
        init[0] = 1.0
        pr = pagerank(rmat_s6, 1, initial=init)
        assert pr.sum() == pytest.approx(1.0)


class TestBFSOracle:
    def test_matches_networkx(self, rmat_s6):
        dist, parent = bfs(rmat_s6, 0)
        lengths = nx.single_source_shortest_path_length(
            to_networkx(rmat_s6), 0
        )
        for v in range(rmat_s6.n):
            assert dist[v] == lengths.get(v, -1)
        assert validate_parents(rmat_s6, 0, dist, parent)

    def test_traversed_edges(self, path10):
        dist, _ = bfs(path10, 0)
        assert traversed_edges(path10, dist) == path10.m

    def test_bad_root(self, path10):
        with pytest.raises(ValueError):
            bfs(path10, 99)

    def test_validate_parents_catches_bad_tree(self, path10):
        dist, parent = bfs(path10, 0)
        bad = parent.copy()
        bad[5] = 9  # not a distance-4 vertex
        assert not validate_parents(path10, 0, dist, bad)


class TestTriangleOracle:
    def test_matches_networkx(self, rmat_s6):
        ours = triangle_count(rmat_s6)
        G = to_networkx(rmat_s6).to_undirected()
        theirs = sum(nx.triangles(G).values()) // 3
        assert ours == theirs

    def test_intersect_equals_matrix(self, rmat_s6):
        assert triangle_count(rmat_s6) == triangle_count_intersect(rmat_s6)

    def test_known_counts(self):
        assert triangle_count(complete_graph(4)) == 4
        assert triangle_count(complete_graph(6)) == 20
        assert triangle_count(path_graph(10)) == 0
