"""Shared fixtures: small machines and graphs sized for fast simulation."""

from __future__ import annotations

import pytest

from repro.graph import erdos_renyi, path_graph, rmat, star_graph
from repro.machine import MachineConfig, bench_machine
from repro.udweave import UpDownRuntime


@pytest.fixture
def tiny_config() -> MachineConfig:
    """One node, 2 accels x 4 lanes."""
    return bench_machine(nodes=1, accels_per_node=2, lanes_per_accel=4)


@pytest.fixture
def small_config() -> MachineConfig:
    """Four nodes, 4 accels x 8 lanes (the benchmark shape)."""
    return bench_machine(nodes=4)


@pytest.fixture
def tiny_runtime(tiny_config) -> UpDownRuntime:
    return UpDownRuntime(tiny_config)


@pytest.fixture
def small_runtime(small_config) -> UpDownRuntime:
    return UpDownRuntime(small_config)


@pytest.fixture(scope="session")
def rmat_s6():
    return rmat(6, seed=48)


@pytest.fixture(scope="session")
def rmat_s7():
    return rmat(7, seed=48)


@pytest.fixture(scope="session")
def er_small():
    return erdos_renyi(128, avg_degree=8.0, seed=3)


@pytest.fixture(scope="session")
def path10():
    return path_graph(10)


@pytest.fixture(scope="session")
def star32():
    return star_graph(32)
