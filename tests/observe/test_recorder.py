"""Flight recorder unit behavior: tiers, hooks, caps, phase spans."""

import pytest

from repro.observe import (
    FlightRecorder,
    LogHistogram,
    RecorderError,
    TIERS,
    make_recorder,
)


class TestLogHistogram:
    def test_exact_moments(self):
        h = LogHistogram()
        for v in (1.0, 3.0, 100.0):
            h.add(v)
        assert h.count == 3
        assert h.total == pytest.approx(104.0)
        assert h.mean == pytest.approx(104.0 / 3)
        assert h.max == 100.0
        assert len(h) == 3

    def test_power_of_two_buckets(self):
        h = LogHistogram()
        h.add(0.5)   # bucket 0 (< 1)
        h.add(1.0)   # bucket 1: [1, 2)
        h.add(3.0)   # bucket 2: [2, 4)
        h.add(3.5)
        bounds = dict(h.rows())
        assert bounds[1.0] == 1
        assert bounds[2.0] == 1
        assert bounds[4.0] == 2

    def test_rows_ascending(self):
        h = LogHistogram()
        for v in (1000, 1, 30, 7, 250000):
            h.add(v)
        bounds = [b for b, _c in h.rows()]
        assert bounds == sorted(bounds)

    def test_negative_clamped(self):
        h = LogHistogram()
        h.add(-5.0)
        assert h.total == 0.0
        assert h.count == 1

    def test_quantile_bound_monotone(self):
        h = LogHistogram()
        for v in range(1, 100):
            h.add(float(v))
        assert h.quantile_bound(0.1) <= h.quantile_bound(0.9)
        assert h.quantile_bound(1.0) >= 64.0
        with pytest.raises(ValueError):
            h.quantile_bound(1.5)

    def test_empty(self):
        h = LogHistogram()
        assert h.mean == 0.0
        assert h.quantile_bound(0.5) == 0.0
        assert h.rows() == []


class TestMakeRecorder:
    def test_off_specs(self):
        assert make_recorder(None) is None
        assert make_recorder(False) is None

    def test_true_is_full(self):
        rec = make_recorder(True)
        assert rec.tier == "full"

    def test_tier_names(self):
        for tier in TIERS:
            assert make_recorder(tier).tier == tier

    def test_passthrough(self):
        rec = FlightRecorder("phases")
        assert make_recorder(rec) is rec

    def test_bad_specs_rejected(self):
        with pytest.raises(RecorderError):
            make_recorder("verbose")
        with pytest.raises(RecorderError):
            make_recorder(3)


class TestTierGates:
    def test_phases_tier_gates(self):
        rec = FlightRecorder("phases")
        assert rec.record_phases
        assert not rec.record_channels
        assert not rec.record_messages
        assert not rec.record_lane_spans

    def test_histograms_tier_gates(self):
        rec = FlightRecorder("histograms")
        assert rec.record_channels and rec.record_messages
        assert not rec.record_lane_spans
        assert not rec.record_channel_events

    def test_full_tier_gates(self):
        rec = FlightRecorder("full")
        assert rec.record_lane_spans and rec.record_channel_events


class TestHooks:
    def test_lane_span_cap_counts_drops(self):
        rec = FlightRecorder("full", max_lane_spans=2)
        for i in range(5):
            rec.lane_span(0, float(i), float(i + 1), "x")
        assert len(rec.lane_spans) == 2
        assert rec.lane_spans_dropped == 3

    def test_channel_sample_accumulates(self):
        rec = FlightRecorder("histograms")
        rec.inj_sample(1, start=10.0, wait=4.0, occupancy=2.0, nbytes=64)
        rec.inj_sample(1, start=12.0, wait=0.0, occupancy=2.0, nbytes=64)
        ch = rec.inj_by_node[1]
        assert ch.admits == 2
        assert ch.bytes == 128
        assert ch.mean_wait == pytest.approx(2.0)
        assert ch.wait_max == 4.0
        assert rec.inj_wait.count == 2
        # histograms tier keeps no per-admission event list
        assert rec.inj_events == []

    def test_full_tier_keeps_channel_events(self):
        rec = FlightRecorder("full", max_channel_events=1)
        rec.dram_sample(0, 0.0, 1.0, 2.0, 64)
        rec.dram_sample(0, 5.0, 0.0, 2.0, 64)
        assert rec.dram_events == [(0, 0.0, 1.0, 2.0, 64)]
        assert rec.channel_events_dropped == 1
        assert rec.dram_by_node[0].admits == 2  # accumulators never drop

    def test_message_taxonomy(self):
        rec = FlightRecorder("histograms")
        rec.message("local", 100.0)
        rec.message("remote", 1000.0)
        rec.message("remote", 1200.0)
        assert rec.msg_latency["local"].count == 1
        assert rec.msg_latency["remote"].count == 2
        assert rec.msg_latency["host_injected"].count == 0


class TestPhaseSpans:
    def test_begin_end(self):
        rec = FlightRecorder("phases")
        rec.phase_begin("job", "map", 10.0)
        rec.phase_end("job", "map", 50.0)
        assert rec.phase_spans == [("job", "map", 10.0, 50.0)]

    def test_end_without_begin_is_noop(self):
        rec = FlightRecorder("phases")
        rec.phase_end("job", "flush", 5.0)
        assert rec.phase_spans == []

    def test_reopen_closes_previous(self):
        """Relaunched jobs (one per PageRank iteration) yield one span
        per epoch, not a dangling open span."""
        rec = FlightRecorder("phases")
        rec.phase_begin("job", "map", 0.0)
        rec.phase_begin("job", "map", 100.0)
        rec.phase_end("job", "map", 150.0)
        assert rec.phase_spans == [
            ("job", "map", 0.0, 100.0),
            ("job", "map", 100.0, 150.0),
        ]

    def test_phases_of_and_names(self):
        rec = FlightRecorder("phases")
        rec.phase_begin("a", "map", 0.0)
        rec.phase_end("a", "map", 10.0)
        rec.phase_begin("b", "flush", 20.0)
        rec.phase_end("b", "flush", 30.0)
        assert rec.phases_of("a") == [("map", 0.0, 10.0)]
        assert rec.phase_names() == ["flush", "map"]

    def test_marks(self):
        rec = FlightRecorder("phases")
        rec.mark("quiescence_poll", 42.0, "job")
        rec.mark("anon", 50.0)
        assert rec.marks == [
            ("quiescence_poll", "job", 42.0),
            ("anon", None, 50.0),
        ]
