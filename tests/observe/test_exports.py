"""Recorded runs and their exporters: parity, Chrome trace, perflog."""

import json

import pytest

from repro.apps import PageRankApp
from repro.harness import (
    occupancy_report,
    run_pagerank,
    write_chrome_trace,
    write_perflog_tsv,
)
from repro.machine import bench_machine
from repro.observe import chrome_trace, format_perflog, make_recorder
from repro.observe.trace import PID_DRAM, PID_KVMSR, PID_LANES, PID_NET
from repro.udweave import UpDownRuntime


@pytest.fixture(scope="module")
def recorded_run(rmat_s6):
    """One seeded PageRank with the full recorder tier."""
    rt = UpDownRuntime(bench_machine(nodes=4), recorder=make_recorder("full"))
    PageRankApp(rt, rmat_s6, max_degree=16, block_size=4096).run(
        max_events=10_000_000
    )
    return rt


class TestRecordedRun:
    def test_lane_spans_cover_all_events(self, recorded_run):
        rec = recorded_run.recorder
        stats = recorded_run.sim.stats
        assert len(rec.lane_spans) + rec.lane_spans_dropped == (
            stats.events_executed
        )
        for _nwid, start, end, _label in rec.lane_spans[:100]:
            assert end >= start >= 0.0

    def test_kvmsr_phases_present(self, recorded_run):
        rec = recorded_run.recorder
        assert {"map", "flush", "job"} <= set(rec.phase_names())
        # spans are closed and well-ordered
        for _job, _phase, start, end in rec.phase_spans:
            assert end >= start

    def test_channel_telemetry_present(self, recorded_run):
        rec = recorded_run.recorder
        assert rec.inj_by_node and rec.dram_by_node
        assert rec.inj_wait.count > 0
        assert rec.dram_wait.count > 0

    def test_message_histograms_match_stats(self, recorded_run):
        """The latency histograms and the scalar taxonomy count the same
        messages — the recorder observes, it does not re-classify."""
        rec = recorded_run.recorder
        stats = recorded_run.sim.stats
        assert rec.msg_latency["local"].count == stats.messages_local
        assert rec.msg_latency["remote"].count == stats.messages_remote
        assert (
            rec.msg_latency["host_injected"].count
            == stats.messages_host_injected
        )
        assert (
            rec.msg_latency["host_bound"].count == stats.messages_host_bound
        )

    def test_recording_is_observation_only(self, rmat_s6):
        """A recorded run is bit-identical to an unrecorded one."""
        results = {}
        for record in (None, "full"):
            rt = UpDownRuntime(
                bench_machine(nodes=4), recorder=make_recorder(record)
            )
            res = PageRankApp(
                rt, rmat_s6, max_degree=16, block_size=4096
            ).run(max_events=10_000_000)
            results[record] = (
                rt.sim.stats.scalar_snapshot(),
                list(res.ranks),
            )
        assert results[None] == results["full"]

    def test_runner_attaches_recorder(self, rmat_s6):
        rec = run_pagerank(rmat_s6, nodes=2, max_degree=16, record="phases")
        assert rec.extra["recorder"].phase_spans
        plain = run_pagerank(rmat_s6, nodes=2, max_degree=16)
        assert "recorder" not in plain.extra


class TestChromeTrace:
    def test_roundtrip_has_all_tracks(self, recorded_run, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", recorded_run.sim)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        pids = {e["pid"] for e in events}
        assert {PID_LANES, PID_NET, PID_DRAM, PID_KVMSR} <= pids
        cats = {e.get("cat") for e in events}
        assert {"lane", "inj", "dram", "kvmsr"} <= cats
        assert data["otherData"]["scalars"]["events_executed"] > 0

    def test_timestamps_are_simulated_microseconds(self, recorded_run):
        sim = recorded_run.sim
        trace = chrome_trace(recorded_run.recorder, sim.config.clock_hz)
        spans = [e for e in trace["traceEvents"] if e.get("cat") == "lane"]
        last_end = max(e["ts"] + e["dur"] for e in spans)
        assert last_end <= sim.stats.final_tick * 1e6 / sim.config.clock_hz

    def test_phase_track_names_jobs(self, recorded_run):
        trace = chrome_trace(recorded_run.recorder, 2e9)
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        jobs = {j for j, _p, _s, _e in recorded_run.recorder.phase_spans}
        assert jobs <= thread_names

    def test_quiescence_polls_are_instants(self, recorded_run):
        trace = chrome_trace(recorded_run.recorder, 2e9)
        instants = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "quiescence_poll"
        ]
        assert instants


class TestPerflog:
    def test_tsv_shape_and_kinds(self, recorded_run, tmp_path):
        path = write_perflog_tsv(tmp_path / "p.tsv", recorded_run.sim)
        lines = path.read_text().splitlines()
        assert lines[0] == "kind\tname\tfield\tvalue"
        rows = [ln.split("\t") for ln in lines[1:]]
        assert all(len(r) == 4 for r in rows)
        kinds = {r[0] for r in rows}
        assert {"scalar", "lane", "channel", "msg", "phase", "hist"} <= kinds

    def test_scalars_survive_without_recorder(self):
        text = format_perflog(None, scalars={"events_executed": 7})
        assert "scalar\tevents_executed\tvalue\t7" in text


class TestOccupancyReport:
    def test_report_from_recorder(self, recorded_run):
        text = occupancy_report(recorded_run.sim)
        assert "injection channel" in text
        assert "dram channel" in text
        assert "%" in text

    def test_per_node_queue_wait_percentiles(self, recorded_run):
        text = occupancy_report(recorded_run.sim)
        # per-node columns plus the aggregate summary line
        assert "wait_p50" in text and "wait_p99" in text
        assert "p50=" in text and "p99=" in text
        # the p99 bound is a power-of-two bucket edge at least the p50's
        rec = recorded_run.sim.recorder
        for ch in rec.inj_by_node.values():
            if ch.admits == 0:
                continue
            p50 = ch.wait_hist.quantile_bound(0.5)
            p99 = ch.wait_hist.quantile_bound(0.99)
            assert p99 >= p50
            assert ch.wait_hist.count == ch.admits

    def test_unavailable_without_channel_tier(self, rmat_s6):
        rt = UpDownRuntime(
            bench_machine(nodes=2), recorder=make_recorder("phases")
        )
        assert "record='histograms'" in occupancy_report(rt.sim)
        rt_off = UpDownRuntime(bench_machine(nodes=2))
        assert "unavailable" in occupancy_report(rt_off.sim)
