"""Combining cache: the software fetch&add."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.kvmsr import CombiningCache, KVMSRJob, MapTask, RangeInput, ReduceTask, job_of
from repro.machine import bench_machine
from repro.udweave import UDThread, UpDownRuntime, event


def run_driver(rt, body):
    """Run a single device event executing ``body(ctx)``."""

    @rt.register
    class _Driver(UDThread):
        @event
        def go(self, ctx):
            body(ctx)
            ctx.yield_terminate()

    rt.start(0, "_Driver::go")
    rt.run(max_events=100_000)


class TestCacheOps:
    def test_add_and_get(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        cache = CombiningCache("t")

        def body(ctx):
            cache.add(ctx, "k", 2)
            cache.add(ctx, "k", 3)
            assert cache.get(ctx, "k") == 5
            assert cache.get(ctx, "missing", -1) == -1
            assert cache.resident_keys(ctx) == ("k",)

        run_driver(rt, body)

    def test_flush_drains_and_clears(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        cache = CombiningCache("t")
        drained = {}

        def body(ctx):
            cache.add(ctx, "a", 1)
            cache.add(ctx, "b", 10)
            n = cache.flush(ctx, lambda c, k, v: drained.__setitem__(k, v))
            assert n == 2
            assert cache.resident_keys(ctx) == ()
            assert cache.get(ctx, "a") is None

        run_driver(rt, body)
        assert drained == {"a": 1, "b": 10}

    def test_flush_empty_cache(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        cache = CombiningCache("t")

        def body(ctx):
            assert cache.flush(ctx, lambda c, k, v: None) == 0

        run_driver(rt, body)

    def test_flush_to_region_store_and_accumulate(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        reg = rt.dram_malloc(8 * 8, dtype=np.float64, name="out")
        reg[:] = 1.0
        cache = CombiningCache("t")

        def body(ctx):
            cache.add(ctx, 2, 5.0)
            cache.flush_to_region(ctx, reg)  # store semantics
            cache.add(ctx, 3, 5.0)
            cache.flush_to_region(ctx, reg, accumulate=True)

        run_driver(rt, body)
        assert reg[2] == 5.0  # overwrote the 1.0
        assert reg[3] == 6.0  # added to the 1.0

    def test_flush_leaves_no_tombstones(self):
        """Drained slots must be freed, not overwritten with ``None`` —
        a tombstone keeps occupying scratchpad across epochs."""
        rt = UpDownRuntime(bench_machine(nodes=1))
        cache = CombiningCache("t")
        leftovers = []

        def body(ctx):
            cache.add(ctx, "a", 1)
            cache.add(ctx, "b", 2)
            cache.flush(ctx, lambda c, k, v: None)
            leftovers.extend(
                k for k in ctx.lane.scratchpad
                if isinstance(k, tuple) and k[:2] == ("cc", "t")
            )

        run_driver(rt, body)
        assert leftovers == []

    def test_accumulate_flush_charges_dram_read(self):
        """``accumulate=True`` fetches the stored value from DRAM; that
        read must hit the modeled memory system, not a free host peek."""
        rt = UpDownRuntime(bench_machine(nodes=1))
        reg = rt.dram_malloc(8 * 4, dtype=np.float64, name="out")
        cache = CombiningCache("t")

        def body(ctx):
            cache.add(ctx, 0, 1.0)
            cache.add(ctx, 1, 2.0)
            before = ctx.runtime.sim.stats.dram_reads
            cache.flush_to_region(ctx, reg, accumulate=True)
            body.reads = ctx.runtime.sim.stats.dram_reads - before

        run_driver(rt, body)
        assert body.reads == 2

    def test_store_flush_reads_nothing(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        reg = rt.dram_malloc(8 * 4, dtype=np.float64, name="out")
        cache = CombiningCache("t")

        def body(ctx):
            cache.add(ctx, 0, 1.0)
            cache.flush_to_region(ctx, reg)  # store semantics
            body.reads = ctx.runtime.sim.stats.dram_reads

        run_driver(rt, body)
        assert body.reads == 0

    def test_hit_cheaper_than_miss(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        cache = CombiningCache("t")
        costs = []

        def body(ctx):
            before = ctx.cycles
            cache.add(ctx, "k", 1)
            miss = ctx.cycles - before
            before = ctx.cycles
            cache.add(ctx, "k", 1)
            hit = ctx.cycles - before
            costs.append((miss, hit))

        run_driver(rt, body)
        miss, hit = costs[0]
        assert hit < miss


class TestSumPreservation:
    @given(
        updates=st.lists(
            st.tuples(st.integers(0, 7), st.integers(-100, 100)),
            max_size=60,
        )
    )
    def test_cache_preserves_sums(self, updates):
        """Σ flushed values per key == Σ updates per key, always."""
        rt = UpDownRuntime(bench_machine(nodes=1))
        cache = CombiningCache("sum")
        drained = {}

        def body(ctx):
            for k, d in updates:
                cache.add(ctx, k, d)
            cache.flush(ctx, lambda c, k, v: drained.__setitem__(k, v))

        run_driver(rt, body)
        expected = {}
        for k, d in updates:
            expected[k] = expected.get(k, 0) + d
        assert drained == expected


class TestEndToEndFetchAdd:
    def test_concurrent_reduces_accumulate_exactly(self):
        """The PR pattern: skewed emits, one cache per owner lane, exact
        totals after flush (the atomicity claim of footnote 1)."""
        rt = UpDownRuntime(bench_machine(nodes=2))
        reg = rt.dram_malloc(8 * 4, name="totals")
        cache = CombiningCache("fa")

        class FanMap(MapTask):
            def kv_map(self, ctx, key):
                self.kv_emit(ctx, key % 4, 1)
                self.kv_map_return(ctx)

        class AddReduce(ReduceTask):
            def kv_reduce(self, ctx, key, delta):
                cache.add(ctx, key, delta)
                self.kv_reduce_return(ctx)

            def kv_flush(self, ctx):
                n = cache.flush_to_region(ctx, reg, accumulate=True)
                self.kv_flush_return(ctx, n)

        KVMSRJob(rt, FanMap, RangeInput(100), reduce_cls=AddReduce).launch()
        rt.run(max_events=1_000_000)
        assert list(reg.data) == [25, 25, 25, 25]
