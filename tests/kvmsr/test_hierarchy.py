"""KVMSR's hierarchical control: coordinator aggregation and polling."""

import pytest

from repro.kvmsr import KVMSRJob, MapTask, RangeInput, ReduceTask
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime, event


class QuickMap(MapTask):
    def kv_map(self, ctx, key):
        self.kv_emit(ctx, key, 1)
        self.kv_map_return(ctx)


class SlowReduce(ReduceTask):
    """Holds each reduce open across a long self-delay, stretching the
    reduce tail so the master must poll repeatedly."""

    def kv_reduce(self, ctx, key, one):
        ctx.send_event(ctx.self_evw("later"), delay=30_000)
        ctx.yield_()

    @event
    def later(self, ctx):
        self.kv_reduce_return(ctx)


class FastReduce(ReduceTask):
    def kv_reduce(self, ctx, key, one):
        self.kv_reduce_return(ctx)


class TestHierarchy:
    def test_master_talks_to_nodes_not_lanes(self):
        """The start fan-out is two-level: the master's lane sends O(nodes)
        messages, not O(lanes) (the paper's multi-level control)."""
        nodes = 8
        # detailed_stats: the assertions below read events_by_label
        rt = UpDownRuntime(bench_machine(nodes=nodes), detailed_stats=True)
        job = KVMSRJob(rt, QuickMap, RangeInput(64), reduce_cls=FastReduce)
        job.launch()
        stats = rt.run(max_events=2_000_000)
        coord_starts = stats.events_by_label["NodeCoordinator::coord_start"]
        node_dones = stats.events_by_label["KVMSRMaster::node_done"]
        assert coord_starts == nodes
        assert node_dones == nodes
        # each coordinator started its node's lane dispatchers
        assert stats.events_by_label["MapperLane::start"] == rt.config.total_lanes

    def test_slow_reduce_forces_repolling(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        job = KVMSRJob(
            rt,
            QuickMap,
            RangeInput(16),
            reduce_cls=SlowReduce,
            poll_interval_cycles=5_000,
        )
        job.launch()
        rt.run(max_events=2_000_000)
        (_t, _e, polls, _f) = rt.host_messages("kvmsr_done")[0].operands
        assert polls >= 2  # first poll saw incomplete counts

    def test_fast_reduce_single_poll(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        job = KVMSRJob(rt, QuickMap, RangeInput(16), reduce_cls=FastReduce)
        job.launch()
        rt.run(max_events=2_000_000)
        (_t, _e, polls, _f) = rt.host_messages("kvmsr_done")[0].operands
        assert polls <= 2

    def test_completion_waits_for_every_reduce(self):
        """With a long reduce tail, the completion message must still not
        fire until all reduces finished: total counted == emitted."""
        rt = UpDownRuntime(bench_machine(nodes=2), detailed_stats=True)
        job = KVMSRJob(
            rt,
            QuickMap,
            RangeInput(24),
            reduce_cls=SlowReduce,
            poll_interval_cycles=5_000,
        )
        job.launch()
        stats = rt.run(max_events=2_000_000)
        done_t = rt.sim.host_inbox[0][0]
        # the delayed 'later' events all executed before completion
        assert stats.events_by_label["SlowReduce::later"] == 24
        assert done_t >= 30_000
