"""KVMSR engine: full map-shuffle-reduce protocol."""

import pytest

from repro.kvmsr import (
    BlockBinding,
    KVMSRError,
    KVMSRJob,
    ListInput,
    MapTask,
    PBMWBinding,
    RangeInput,
    ReduceTask,
    job_of,
)
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


class EmitPerKeyMap(MapTask):
    """Emits <key % 3, key> once per key."""

    def kv_map(self, ctx, key):
        self.kv_emit(ctx, key % 3, key)
        self.kv_map_return(ctx)


class CollectReduce(ReduceTask):
    def kv_reduce(self, ctx, key, value):
        job_of(ctx, self._job_id).payload.setdefault(key, []).append(value)
        self.kv_reduce_return(ctx)


def run_job(nodes=2, n_keys=30, **job_kw):
    rt = UpDownRuntime(bench_machine(nodes=nodes))
    sink = {}
    job = KVMSRJob(
        rt,
        EmitPerKeyMap,
        RangeInput(n_keys),
        reduce_cls=CollectReduce,
        payload=sink,
        **job_kw,
    )
    job.launch()
    stats = rt.run(max_events=2_000_000)
    done = rt.host_messages("kvmsr_done")
    assert len(done) == 1
    return rt, sink, done[0].operands, stats


class TestProtocol:
    def test_all_keys_mapped_and_reduced(self):
        _rt, sink, (tasks, emitted, _polls, _fv), _ = run_job(n_keys=30)
        assert tasks == 30
        assert emitted == 30
        got = sorted(v for vs in sink.values() for v in vs)
        assert got == list(range(30))

    def test_reduce_keys_grouped_correctly(self):
        _rt, sink, _ops, _ = run_job(n_keys=30)
        for k, values in sink.items():
            assert all(v % 3 == k for v in values)

    def test_zero_keys_completes_immediately(self):
        _rt, sink, (tasks, emitted, _p, _f), _ = run_job(n_keys=0)
        assert tasks == 0 and emitted == 0 and sink == {}

    def test_single_key(self):
        _rt, sink, (tasks, emitted, _p, _f), _ = run_job(n_keys=1)
        assert tasks == 1 and emitted == 1
        assert sink == {0: [0]}

    def test_more_lanes_than_keys(self):
        _rt, sink, (tasks, _e, _p, _f), _ = run_job(nodes=4, n_keys=5)
        assert tasks == 5

    def test_map_only_job(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        seen = []

        class MapOnly(MapTask):
            def kv_map(self, ctx, key):
                seen.append(key)
                self.kv_map_return(ctx)

        KVMSRJob(rt, MapOnly, RangeInput(10)).launch()
        rt.run(max_events=200_000)
        assert sorted(seen) == list(range(10))

    def test_emit_without_reduce_raises(self):
        rt = UpDownRuntime(bench_machine(nodes=1))

        class BadMap(MapTask):
            def kv_map(self, ctx, key):
                self.kv_emit(ctx, 0, 1)
                self.kv_map_return(ctx)

        KVMSRJob(rt, BadMap, RangeInput(1)).launch()
        with pytest.raises(KVMSRError, match="no reduce phase"):
            rt.run(max_events=100_000)

    def test_job_relaunch_reuses_state(self):
        """PR iterations / BFS rounds relaunch the same job object."""
        rt = UpDownRuntime(bench_machine(nodes=2))
        sink = {}
        job = KVMSRJob(
            rt,
            EmitPerKeyMap,
            RangeInput(12),
            reduce_cls=CollectReduce,
            payload=sink,
        )
        job.launch()
        rt.run(max_events=500_000)
        job.launch()
        rt.run(max_events=500_000)
        assert len(rt.host_messages("kvmsr_done")) == 2
        got = sorted(v for vs in sink.values() for v in vs)
        assert got == sorted(list(range(12)) * 2)

    def test_list_input_passes_values(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        seen = []

        class LMap(MapTask):
            def kv_map(self, ctx, key, a, b):
                seen.append((key, a, b))
                self.kv_map_return(ctx)

        KVMSRJob(
            rt, LMap, ListInput([("x", (1, 2)), ("y", (3, 4))])
        ).launch()
        rt.run(max_events=100_000)
        assert sorted(seen) == [("x", 1, 2), ("y", 3, 4)]

    def test_completion_reports_poll_rounds(self):
        _rt, _sink, (_t, _e, polls, _f), _ = run_job(n_keys=30)
        assert polls >= 1  # at least one quiescence round ran


class TestValidation:
    def test_map_cls_must_subclass(self):
        rt = UpDownRuntime(bench_machine(nodes=1))

        class NotATask:
            pass

        with pytest.raises(KVMSRError):
            KVMSRJob(rt, NotATask, RangeInput(1))

    def test_reduce_cls_must_subclass(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(KVMSRError):
            KVMSRJob(
                rt, EmitPerKeyMap, RangeInput(1), reduce_cls=EmitPerKeyMap
            )

    def test_max_inflight_positive(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(KVMSRError):
            KVMSRJob(rt, EmitPerKeyMap, RangeInput(1), max_inflight=0)

    def test_unknown_job_id(self):
        rt = UpDownRuntime(bench_machine(nodes=1))

        class Bad(MapTask):
            def kv_map(self, ctx, key):
                job_of(ctx, 999)

        KVMSRJob(rt, Bad, RangeInput(1)).launch()
        with pytest.raises(KVMSRError, match="unknown"):
            rt.run(max_events=100_000)


class TestThrottling:
    def test_inflight_bounded(self):
        """At most max_inflight map tasks live per lane at any instant."""
        rt = UpDownRuntime(
            bench_machine(nodes=1, accels_per_node=1, lanes_per_accel=1)
        )
        live = {"now": 0, "peak": 0}

        from repro.udweave import event

        class Tracker(MapTask):
            def kv_map(self, ctx, key):
                live["now"] += 1
                live["peak"] = max(live["peak"], live["now"])
                # hold the task open across a self-send so tasks coexist
                ctx.send_event(ctx.self_evw("finish"))
                ctx.yield_()

            @event
            def finish(self, ctx):
                live["now"] -= 1
                self.kv_map_return(ctx)

        KVMSRJob(rt, Tracker, RangeInput(40), max_inflight=4).launch()
        rt.run(max_events=500_000)
        assert live["peak"] <= 4


class TestPBMW:
    def test_pbmw_completes_all_keys(self):
        _rt, sink, (tasks, emitted, _p, _f), _ = run_job(
            n_keys=50,
            map_binding=PBMWBinding(initial_fraction=0.4, chunk_size=4),
        )
        assert tasks == 50 and emitted == 50
        got = sorted(v for vs in sink.values() for v in vs)
        assert got == list(range(50))

    def test_pbmw_grants_spread_work(self):
        """Dynamic grants reach multiple lanes, not just one hungry lane."""
        rt = UpDownRuntime(bench_machine(nodes=4))
        lanes_used = set()

        class WhereMap(MapTask):
            def kv_map(self, ctx, key):
                lanes_used.add(ctx.network_id)
                self.kv_map_return(ctx)

        KVMSRJob(
            rt,
            WhereMap,
            RangeInput(128),
            map_binding=PBMWBinding(initial_fraction=0.25, chunk_size=2),
        ).launch()
        rt.run(max_events=2_000_000)
        assert len(lanes_used) > 4


class TestGroupingProperty:
    def test_random_emit_patterns_group_exactly(self):
        """Property: for any random multiset of emits, every tuple reaches
        exactly one reducer, grouped by key."""
        import random

        from repro.machine import bench_machine
        from repro.udweave import UpDownRuntime

        rng = random.Random(7)
        for trial in range(5):
            n_keys = rng.randint(1, 40)
            fanout = [rng.randint(0, 6) for _ in range(n_keys)]

            rt = UpDownRuntime(bench_machine(nodes=2))
            sink = {}

            class FanMap(MapTask):
                def kv_map(self, ctx, key):
                    for j in range(fanout[key]):
                        self.kv_emit(ctx, (key, j), key * 1000 + j)
                    self.kv_map_return(ctx)

            FanMap.__name__ = f"FanMap{trial}"

            class Collect(CollectReduce):
                pass

            Collect.__name__ = f"Collect{trial}"

            job = KVMSRJob(
                rt, FanMap, RangeInput(n_keys), reduce_cls=Collect,
                payload=sink,
            )
            job.launch()
            rt.run(max_events=3_000_000)
            expected = {
                (k, j): [k * 1000 + j]
                for k in range(n_keys)
                for j in range(fanout[k])
            }
            assert sink == expected, trial


class TestLaneSetRestriction:
    def test_disjoint_map_and_reduce_lane_sets(self):
        """§2.3: each KVMSR invocation targets a set of lanes — map and
        reduce sets may differ (e.g. BFS maps on accel masters, reduces
        everywhere)."""
        from repro.kvmsr import LaneSet

        rt = UpDownRuntime(bench_machine(nodes=4))
        cfg = rt.config
        map_lanes = LaneSet.nodes(cfg, 0, 2)     # nodes 0-1
        reduce_lanes = LaneSet.nodes(cfg, 2, 2)  # nodes 2-3
        map_seen, reduce_seen = set(), set()

        class WhereMap(MapTask):
            def kv_map(self, ctx, key):
                map_seen.add(ctx.node)
                self.kv_emit(ctx, key, key)
                self.kv_map_return(ctx)

        class WhereReduce(ReduceTask):
            def kv_reduce(self, ctx, key, value):
                reduce_seen.add(ctx.node)
                self.kv_reduce_return(ctx)

        job = KVMSRJob(
            rt,
            WhereMap,
            RangeInput(40),
            reduce_cls=WhereReduce,
            lanes=map_lanes,
            reduce_lanes=reduce_lanes,
        )
        job.launch()
        rt.run(max_events=2_000_000)
        assert rt.host_messages("kvmsr_done")
        assert map_seen <= {0, 1} and map_seen
        assert reduce_seen <= {2, 3} and reduce_seen

    def test_single_lane_job(self):
        from repro.kvmsr import LaneSet

        rt = UpDownRuntime(bench_machine(nodes=2))
        sink = {}
        job = KVMSRJob(
            rt,
            EmitPerKeyMap,
            RangeInput(9),
            reduce_cls=CollectReduce,
            lanes=LaneSet([3]),
            payload=sink,
        )
        job.launch()
        rt.run(max_events=500_000)
        got = sorted(v for vs in sink.values() for v in vs)
        assert got == list(range(9))
