"""Input specs: RangeInput, ArrayInput, ListInput."""

import pytest

from repro.kvmsr import ArrayInput, KVMSRJob, ListInput, MapTask, RangeInput
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


class TestRangeInput:
    def test_n_keys(self):
        assert RangeInput(7).n_keys == 7
        assert RangeInput(0).n_keys == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RangeInput(-1)


class TestListInput:
    def test_pairs(self):
        li = ListInput([("a", (1,)), ("b", (2,))])
        assert li.n_keys == 2
        assert li.pair(1) == ("b", (2,))


class TestArrayInput:
    def test_record_addressing(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        reg = rt.dram_malloc(8 * 20, name="arr")
        ai = ArrayInput(reg, stride_words=4, n=5)
        assert ai.n_keys == 5
        assert ai.record_addr(0) == reg.addr(0)
        assert ai.record_addr(3) == reg.addr(12)

    def test_overrun_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        reg = rt.dram_malloc(8 * 20, name="arr")
        with pytest.raises(ValueError):
            ArrayInput(reg, stride_words=4, n=6)

    def test_bad_stride_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        reg = rt.dram_malloc(8 * 20, name="arr")
        with pytest.raises(ValueError):
            ArrayInput(reg, stride_words=0, n=1)

    def test_wide_records_read_in_chunks(self):
        """Strides > 8 words require multiple split-phase reads; the
        framework reassembles them in order."""
        rt = UpDownRuntime(bench_machine(nodes=2))
        stride, n = 20, 6
        reg = rt.dram_malloc(8 * stride * n, name="arr")
        reg[:] = range(stride * n)
        seen = {}

        class Wide(MapTask):
            def kv_map(self, ctx, key, *values):
                seen[key] = values
                self.kv_map_return(ctx)

        KVMSRJob(rt, Wide, ArrayInput(reg, stride, n)).launch()
        rt.run(max_events=500_000)
        assert len(seen) == n
        for k, vals in seen.items():
            assert vals == tuple(range(k * stride, (k + 1) * stride))

    def test_values_delivered_to_kv_map(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        reg = rt.dram_malloc(8 * 6, name="arr")
        reg[:] = [10, 11, 20, 21, 30, 31]
        seen = {}

        class Narrow(MapTask):
            def kv_map(self, ctx, key, a, b):
                seen[key] = (a, b)
                self.kv_map_return(ctx)

        KVMSRJob(rt, Narrow, ArrayInput(reg, 2, 3)).launch()
        rt.run(max_events=200_000)
        assert seen == {0: (10, 11), 1: (20, 21), 2: (30, 31)}
