"""do_all: flat parallelism over KVMSR."""

import pytest

from repro.kvmsr import BlockBinding, LaneSet, make_do_all
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


class TestDoAll:
    def test_body_runs_once_per_key(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        hits = []
        make_do_all(rt, 53, lambda ctx, k: hits.append(k)).launch()
        rt.run(max_events=500_000)
        assert sorted(hits) == list(range(53))

    def test_completion_reports_task_count(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        make_do_all(rt, 20, lambda ctx, k: None).launch()
        rt.run(max_events=200_000)
        tasks, emitted, _polls, _fv = rt.host_messages("kvmsr_done")[0].operands
        assert tasks == 20 and emitted == 0

    def test_lane_restriction_respected(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        cfg = rt.config
        lanes_used = set()
        node1 = LaneSet.nodes(cfg, 1, 1)
        make_do_all(
            rt,
            40,
            lambda ctx, k: lanes_used.add(ctx.network_id),
            lanes=node1,
        ).launch()
        rt.run(max_events=500_000)
        assert lanes_used <= set(node1)
        assert lanes_used  # something actually ran

    def test_bodies_can_charge_work(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        make_do_all(rt, 8, lambda ctx, k: ctx.work(1000)).launch()
        stats = rt.run(max_events=200_000)
        assert stats.total_busy_cycles >= 8000

    def test_unique_class_names(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        j1 = make_do_all(rt, 1, lambda ctx, k: None)
        j2 = make_do_all(rt, 1, lambda ctx, k: None)
        assert j1.map_cls.__name__ != j2.map_cls.__name__

    def test_zero_keys(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        make_do_all(rt, 0, lambda ctx, k: None).launch()
        rt.run(max_events=50_000)
        assert rt.host_messages("kvmsr_done")
