"""Computation binding schemes: Block, Hash, PBMW, KeyToLane."""

import pytest
from hypothesis import given, strategies as st

from repro.kvmsr import (
    BlockBinding,
    CustomReduceBinding,
    HashBinding,
    KeyToLaneBinding,
    LaneSet,
    PBMWBinding,
    splitmix64,
    stable_hash,
)
from repro.machine import bench_machine


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash((1, "a")) == stable_hash((1, "a"))

    def test_distinguishes_values(self):
        assert stable_hash(1) != stable_hash(2)
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])

    def test_splitmix_is_bijective_sample(self):
        outs = {splitmix64(i) for i in range(10_000)}
        assert len(outs) == 10_000


class TestLaneSet:
    def test_whole_machine(self):
        cfg = bench_machine(nodes=2)
        ls = LaneSet.whole_machine(cfg)
        assert len(ls) == cfg.total_lanes
        assert ls[0] == 0

    def test_nodes_subset(self):
        cfg = bench_machine(nodes=4)
        ls = LaneSet.nodes(cfg, 1, 2)
        assert ls[0] == cfg.first_lane_of_node(1)
        assert len(ls) == 2 * cfg.lanes_per_node

    def test_one_per_accel(self):
        cfg = bench_machine(nodes=2)
        ls = LaneSet.one_per_accel(cfg)
        assert len(ls) == cfg.total_accels
        assert all(l % cfg.lanes_per_accel == 0 for l in ls)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LaneSet([])

    def test_by_node_groups(self):
        cfg = bench_machine(nodes=2)
        groups = LaneSet.whole_machine(cfg).by_node(cfg)
        assert [n for n, _ in groups] == [0, 1]
        assert all(len(lanes) == cfg.lanes_per_node for _, lanes in groups)


class TestBlockBinding:
    def test_covers_keyspace_exactly(self):
        ls = LaneSet(range(7))
        asgs = BlockBinding().partition(100, ls)
        covered = sorted(
            (k for _, lo, hi in asgs for k in range(lo, hi))
        )
        assert covered == list(range(100))

    def test_blocks_are_contiguous_and_balanced(self):
        ls = LaneSet(range(4))
        asgs = BlockBinding().partition(100, ls)
        sizes = [hi - lo for _, lo, hi in asgs]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_keys_than_lanes(self):
        ls = LaneSet(range(10))
        asgs = BlockBinding().partition(3, ls)
        assert len(asgs) == 3  # empty assignments dropped

    def test_zero_keys(self):
        assert BlockBinding().partition(0, LaneSet(range(4))) == []

    def test_no_master_pool(self):
        assert BlockBinding().master_pool(100, LaneSet(range(4))) == (100, 100)


class TestHashBinding:
    def test_stable_per_key(self):
        ls = LaneSet(range(16))
        hb = HashBinding()
        assert hb.lane_for("k", ls) == hb.lane_for("k", ls)

    def test_lanes_within_set(self):
        ls = LaneSet(range(5, 21))
        hb = HashBinding()
        for k in range(200):
            assert hb.lane_for(k, ls) in set(range(5, 21))

    def test_roughly_balanced(self):
        """Hash "ensures good load balance" (§4.1.2)."""
        ls = LaneSet(range(8))
        hb = HashBinding()
        counts = [0] * 8
        for k in range(8000):
            counts[hb.lane_for(k, ls)] += 1
        assert max(counts) < 2 * min(counts)

    def test_seed_changes_mapping(self):
        ls = LaneSet(range(64))
        a = HashBinding(seed=0)
        b = HashBinding(seed=1)
        diffs = sum(a.lane_for(k, ls) != b.lane_for(k, ls) for k in range(100))
        assert diffs > 50


class TestPBMW:
    def test_initial_fraction_static(self):
        ls = LaneSet(range(4))
        b = PBMWBinding(initial_fraction=0.5, chunk_size=8)
        asgs = b.partition(100, ls)
        static_keys = sum(hi - lo for _, lo, hi in asgs)
        assert static_keys == 50
        assert b.master_pool(100, ls) == (50, 100)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PBMWBinding(initial_fraction=0.0)
        with pytest.raises(ValueError):
            PBMWBinding(initial_fraction=1.5)
        with pytest.raises(ValueError):
            PBMWBinding(chunk_size=0)

    def test_full_fraction_degenerates_to_block(self):
        ls = LaneSet(range(4))
        b = PBMWBinding(initial_fraction=1.0)
        assert b.master_pool(100, ls) == (100, 100)


class TestKeyToLane:
    def test_paper_hash_idiom(self):
        """LaneID = (hash(key) % NRLanes) + 1stLane (§2.3)."""
        nr_lanes, first = 16, 32
        binding = KeyToLaneBinding(
            lambda k: (stable_hash(k) % nr_lanes) + first
        )
        asgs = binding.partition(10, LaneSet(range(first, first + nr_lanes)))
        assert len(asgs) == 10
        for lane, lo, hi in asgs:
            assert hi == lo + 1
            assert first <= lane < first + nr_lanes

    def test_custom_reduce_binding(self):
        b = CustomReduceBinding(lambda k: 7)
        assert b.lane_for("anything", LaneSet(range(16))) == 7


@given(
    n_keys=st.integers(0, 5000),
    n_lanes=st.integers(1, 300),
)
def test_block_partition_property(n_keys, n_lanes):
    """Partition is a true partition: disjoint, complete, ordered."""
    asgs = BlockBinding().partition(n_keys, LaneSet(range(n_lanes)))
    total = 0
    prev_hi = 0
    for _, lo, hi in asgs:
        assert lo == prev_hi or prev_hi == 0 and lo == 0
        assert lo < hi
        total += hi - lo
        prev_hi = hi
    assert total == n_keys
