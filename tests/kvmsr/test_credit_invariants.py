"""Property-style credit accounting invariants for KVMSR.

Two ledgers keep KVMSR honest, and both must balance at *every* drain
point, not just at completion:

* the machine's message partition — every send is exactly one of local /
  remote / host-injected / host-bound (``sent == local + remote +
  host_injected + host_bound``), which holds even when the fault layer
  discards deliveries (a dropped message was still sent);
* the reduce-credit ledger — reducers bank one scratchpad credit per
  tuple processed (``("kvr", job_id)``), the master's poll loop sums
  them against ``total_emitted``, and the flush resets them to zero so
  the job object is relaunchable.
"""

import random

import pytest

from repro.faults import FaultPlan
from repro.kvmsr import KVMSRJob, MapTask, RangeInput, ReduceTask, job_of
from repro.kvmsr.engine import _credit_diagnostics
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def message_partition_holds(stats) -> bool:
    return stats.messages_sent == (
        stats.messages_local
        + stats.messages_remote
        + stats.messages_host_injected
        + stats.messages_host_bound
    )


def banked_credits(sim, job_id) -> int:
    return _credit_diagnostics(sim)["reduce_credits_by_job"].get(job_id, 0)


class TestCreditLedger:
    def test_invariants_hold_at_every_drain_point(self):
        """Step randomized jobs through bounded windows; the partition
        and credit ledgers must balance at each pause."""
        rng = random.Random(2024)
        for trial in range(4):
            n_keys = rng.randint(5, 40)
            fanout = [rng.randint(0, 4) for _ in range(n_keys)]
            rt = UpDownRuntime(bench_machine(nodes=2))
            sink = {}

            class FanMap(MapTask):
                def kv_map(self, ctx, key):
                    for j in range(fanout[key]):
                        self.kv_emit(ctx, (key, j), key * 100 + j)
                    self.kv_map_return(ctx)

            FanMap.__name__ = f"FanMap{trial}"

            class Collect(ReduceTask):
                def kv_reduce(self, ctx, key, value):
                    job_of(ctx, self._job_id).payload.setdefault(
                        key, []
                    ).append(value)
                    self.kv_reduce_return(ctx)

            Collect.__name__ = f"Collect{trial}"

            job = KVMSRJob(
                rt, FanMap, RangeInput(n_keys), reduce_cls=Collect,
                payload=sink,
            )
            job.launch()
            total_emitted = sum(fanout)
            window = 0.0
            windows = 0
            while rt.sim._heap:
                window += rng.choice([2_000.0, 5_000.0, 13_000.0])
                rt.sim.run(until=window, max_events=2_000_000)
                windows += 1
                stats = rt.sim.stats
                assert message_partition_holds(stats), (trial, windows)
                # credits are monotone in [0, emitted] mid-run; they can
                # transiently exceed the *master's view* (task_done may
                # lag the reduce), but never the true emit count
                assert 0 <= banked_credits(rt.sim, job.job_id) <= total_emitted
                assert windows < 10_000, "job made no progress"
            # completion: every tuple reduced exactly once, ledger reset
            assert rt.host_messages("kvmsr_done")
            expected = {
                (k, j): [k * 100 + j]
                for k in range(n_keys)
                for j in range(fanout[k])
            }
            assert sink == expected, trial
            assert banked_credits(rt.sim, job.job_id) == 0  # flush reset
            assert rt.sim.stats.quiesced

    @pytest.mark.parametrize("coalescing", [False, True])
    def test_partition_holds_under_message_faults(self, coalescing):
        """Drops/duplicates must not unbalance the partition: a dropped
        send still counts as sent+remote, a duplicate counts once.  With
        ``coalescing=True`` the partition is over *records* exactly as
        before — packets are bookkeeping, not messages — and the packet
        counters themselves conserve records at every drain pause."""
        rt = UpDownRuntime(
            bench_machine(nodes=2, coalescing=coalescing),
            faults=FaultPlan(seed=6, drop_rate=0.02, duplicate_rate=0.02),
            reliable=True,
        )
        sink = {}

        class Emit(MapTask):
            def kv_map(self, ctx, key):
                self.kv_emit(ctx, key % 7, key)
                self.kv_map_return(ctx)

        class Collect(ReduceTask):
            def kv_reduce(self, ctx, key, value):
                job_of(ctx, self._job_id).payload.setdefault(
                    key, []
                ).append(value)
                self.kv_reduce_return(ctx)

        job = KVMSRJob(
            rt, Emit, RangeInput(80), reduce_cls=Collect, payload=sink
        )
        job.launch()
        window = 0.0
        while rt.sim._heap:
            window += 7_000.0
            rt.sim.run(until=window, max_events=3_000_000)
            s = rt.sim.stats
            assert message_partition_holds(s)
            # record-level packet conservation: every healthy remote
            # delivery opened or joined a packet; faulted deliveries
            # (drop/dup/delay) are per-record and occupy no packet
            assert s.packets_sent + s.records_coalesced == (
                (
                    s.messages_remote
                    - s.faults_messages_dropped
                    - s.faults_messages_duplicated
                    - s.faults_messages_delayed
                )
                if coalescing
                else 0
            )
        stats = rt.sim.stats
        assert stats.faults_messages_dropped > 0
        assert sorted(v for vs in sink.values() for v in vs) == list(range(80))
        assert banked_credits(rt.sim, job.job_id) == 0
        assert stats.quiesced

    def test_lost_credit_without_retry_is_visible_in_the_ledger(self):
        """The same ledger the watchdog dumps: a dropped tuple leaves
        ``banked < emitted`` permanently (see tests/faults/test_watchdog
        for the stall this causes when the run is left to poll)."""
        rt = UpDownRuntime(
            bench_machine(nodes=2), faults=FaultPlan(seed=1, drop_rate=0.02)
        )
        sink = {}

        class Emit(MapTask):
            def kv_map(self, ctx, key):
                self.kv_emit(ctx, key % 5, key)
                self.kv_map_return(ctx)

        class Collect(ReduceTask):
            def kv_reduce(self, ctx, key, value):
                job_of(ctx, self._job_id).payload.setdefault(
                    key, []
                ).append(value)
                self.kv_reduce_return(ctx)

        job = KVMSRJob(
            rt, Emit, RangeInput(60), reduce_cls=Collect, payload=sink
        )
        job.launch()
        # bounded stepping (not run-to-quiescence): the master never
        # finishes, so cap the walk at a fixed horizon
        for _ in range(60):
            rt.sim.run(
                until=rt.sim.now + 10_000.0, max_events=3_000_000
            )
            assert message_partition_holds(rt.sim.stats)
            if not rt.sim._heap:
                break
        assert rt.sim.stats.faults_messages_dropped > 0
        diag = _credit_diagnostics(rt.sim)
        (master,) = diag["live_masters"]
        assert master["outstanding"] > 0
        assert master["reduce_credits_banked"] < master["total_emitted"]
        assert not rt.host_messages("kvmsr_done")
