"""Data-driven binding (§2.3's "future" scheme, implemented)."""

import numpy as np
import pytest

from repro.apps.pagerank import PageRankApp
from repro.baselines import pagerank as ref_pagerank
from repro.kvmsr import DataDrivenBinding, LaneSet
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


class TestBinding:
    def test_places_task_on_owning_node(self):
        rt = UpDownRuntime(bench_machine(nodes=4))
        cfg = rt.config
        region = rt.gmem.dram_malloc(
            4 * 4096, 0, 4, 4096, name="data"
        )  # one 4KB block per node, cyclic
        binding = DataDrivenBinding(
            rt.gmem, lambda k: region.addr(k * 512), cfg
        )
        lanes = LaneSet.whole_machine(cfg)
        for key in range(4):
            lane = binding.lane_for(key, lanes)
            va = region.addr(key * 512)
            assert cfg.node_of(lane) == rt.gmem.node_of(va)

    def test_falls_back_when_node_has_no_lanes(self):
        rt = UpDownRuntime(bench_machine(nodes=4))
        cfg = rt.config
        region = rt.gmem.dram_malloc(4 * 4096, 0, 4, 4096, name="data")
        binding = DataDrivenBinding(
            rt.gmem, lambda k: region.addr(k * 512), cfg
        )
        node0_only = LaneSet.nodes(cfg, 0, 1)
        # keys on nodes 1-3 must still resolve to a lane in the set
        for key in range(4):
            assert binding.lane_for(key, node0_only) in set(node0_only)

    def test_balanced_within_node(self):
        rt = UpDownRuntime(bench_machine(nodes=2, lanes_per_accel=8))
        cfg = rt.config
        region = rt.gmem.dram_malloc(2 * 4096, 0, 2, 4096, name="data")
        binding = DataDrivenBinding(
            rt.gmem, lambda k: region.addr(k % 512), cfg
        )
        lanes = LaneSet.whole_machine(cfg)
        used = {binding.lane_for(k, lanes) for k in range(200)}
        # all of node 0's lanes receive work (keys all map to block 0)
        assert len(used) == cfg.lanes_per_node


class TestPageRankDataPlacement:
    def test_same_answer_as_hash(self, rmat_s6):
        results = {}
        for placement in ("hash", "data"):
            rt = UpDownRuntime(bench_machine(nodes=4))
            app = PageRankApp(
                rt, rmat_s6, max_degree=16, block_size=4096,
                reduce_placement=placement,
            )
            results[placement] = app.run(max_events=10_000_000)
        expected = ref_pagerank(rmat_s6, 1)
        for placement, res in results.items():
            assert np.abs(res.ranks - expected).max() < 1e-9, placement

    def test_data_placement_localizes_flush_writes(self, rmat_s7):
        """The point of the scheme: accumulator flushes hit local DRAM."""
        remote = {}
        for placement in ("hash", "data"):
            rt = UpDownRuntime(bench_machine(nodes=4))
            app = PageRankApp(
                rt, rmat_s7, max_degree=16, block_size=4096,
                reduce_placement=placement,
            )
            app.run(max_events=10_000_000)
            remote[placement] = rt.sim.stats.dram_remote_accesses
        assert remote["data"] < remote["hash"]

    def test_invalid_placement_rejected(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            PageRankApp(rt, rmat_s6, reduce_placement="nope")
