"""Partial match: alerts vs the sequential oracle, latency accounting."""

import pytest

from repro.apps import PartialMatchApp, Pattern, make_workload, reference_matches
from repro.apps.tform import Record
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime

#: a gap long enough that records process one at a time (oracle territory)
SEQUENTIAL_GAP = 100_000.0


def run_pm(records, patterns, nodes=2, gap=SEQUENTIAL_GAP):
    rt = UpDownRuntime(bench_machine(nodes=nodes))
    app = PartialMatchApp(rt, patterns)
    return app.run_stream(records, gap_cycles=gap, max_events=10_000_000)


class TestAlerts:
    def test_matches_sequential_oracle(self):
        recs = make_workload(80, n_edge_types=3, seed=7)
        patterns = [Pattern(0, (0, 1)), Pattern(1, (2, 0, 1))]
        res = run_pm(recs, patterns)
        got = sorted((a[0], a[1]) for a in res.alerts)
        exp = sorted((a[0], a[1]) for a in reference_matches(recs, patterns))
        assert got == exp

    def test_single_stage_pattern_fires_per_edge_of_type(self):
        recs = [Record.edge(i, i + 1, i % 2, i) for i in range(10)]
        res = run_pm(recs, [Pattern(0, (1,))])
        # stage 0 of a 1-stage pattern: every type-1 edge probes stage -1?
        # no: single-stage patterns alert when a type-0 prefix exists.
        exp = reference_matches(recs, [Pattern(0, (1,))])
        assert sorted(a[0] for a in res.alerts) == sorted(a[0] for a in exp)

    def test_two_hop_path(self):
        recs = [
            Record.edge(1, 2, 0, 0),  # opens (p,0) at 2
            Record.edge(2, 3, 1, 1),  # completes at 3 -> alert
            Record.edge(5, 6, 1, 2),  # no prefix at 5 -> nothing
        ]
        res = run_pm(recs, [Pattern(0, (0, 1))])
        assert len(res.alerts) == 1
        rec_id, pattern_id, vertex = res.alerts[0]
        assert (rec_id, pattern_id, vertex) == (1, 0, 3)

    def test_arrival_order_matters(self):
        """The extension edge arriving *before* the prefix must not match
        (incremental semantics)."""
        recs = [
            Record.edge(2, 3, 1, 0),  # extension first
            Record.edge(1, 2, 0, 1),  # prefix second
        ]
        res = run_pm(recs, [Pattern(0, (0, 1))])
        assert res.alerts == []

    def test_three_stage_pattern(self):
        recs = [
            Record.edge(1, 2, 0, 0),
            Record.edge(2, 3, 1, 1),
            Record.edge(3, 4, 2, 2),
        ]
        res = run_pm(recs, [Pattern(0, (0, 1, 2))])
        assert len(res.alerts) == 1
        assert res.alerts[0][2] == 4

    def test_multiple_patterns_independent(self):
        recs = [Record.edge(1, 2, 0, 0), Record.edge(2, 3, 1, 1)]
        patterns = [Pattern(0, (0, 1)), Pattern(1, (1, 0))]
        res = run_pm(recs, patterns)
        assert [a[1] for a in res.alerts] == [0]

    def test_duplicate_pattern_ids_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            PartialMatchApp(rt, [Pattern(0, (0,)), Pattern(0, (1,))])

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            Pattern(0, ())


class TestLatency:
    def test_every_record_gets_latency(self):
        recs = make_workload(30, n_edge_types=2, seed=0)
        edges = [r for r in recs if r.kind == 2]
        res = run_pm(recs, [Pattern(0, (0, 1))])
        assert len(res.latencies_seconds) == len(edges)
        assert (res.latencies_seconds > 0).all()

    def test_mean_latency_reasonable(self):
        recs = make_workload(20, n_edge_types=2, seed=1)
        res = run_pm(recs, [Pattern(0, (0, 1))])
        # sub-squared-microsecond per record on an unloaded machine
        assert res.mean_latency_seconds < 1e-4

    def test_graph_also_ingested(self):
        recs = [Record.edge(1, 2, 0, 0), Record.edge(3, 4, 1, 1)]
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = PartialMatchApp(rt, [Pattern(0, (0, 1))])
        app.run_stream(recs, gap_cycles=SEQUENTIAL_GAP)
        _v, e = app.pga.snapshot()
        assert set(e) == {(1, 2), (3, 4)}
