"""Weighted SSSP vs the Dijkstra oracle."""

import numpy as np
import pytest

from repro.apps import SSSPApp, default_weights, reference_sssp
from repro.graph import CSRGraph, path_graph, rmat
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def run_sssp(graph, weights=None, source=0, nodes=2):
    rt = UpDownRuntime(bench_machine(nodes=nodes))
    app = SSSPApp(rt, graph, weights=weights)
    return app.run(source=source, max_events=60_000_000)


class TestSSSP:
    def test_matches_dijkstra(self, rmat_s6):
        w = default_weights(rmat_s6)
        res = run_sssp(rmat_s6, w)
        assert np.array_equal(res.distances, reference_sssp(rmat_s6, w, 0))

    def test_uniform_weights_reduce_to_scaled_bfs(self, rmat_s6):
        from repro.baselines import bfs as ref_bfs

        w = np.full(rmat_s6.m, 5, dtype=np.int64)
        res = run_sssp(rmat_s6, w)
        dist, _ = ref_bfs(rmat_s6, 0)
        expected = np.where(dist >= 0, dist * 5, -1)
        assert np.array_equal(res.distances, expected)

    def test_path_accumulates_weights(self, path10):
        w = np.arange(1, path10.m + 1, dtype=np.int64)
        res = run_sssp(path10, w, nodes=1)
        exp = reference_sssp(path10, w, 0)
        assert np.array_equal(res.distances, exp)

    def test_unreachable_marked(self):
        g = CSRGraph.from_edges([(0, 1)], n=3)
        res = run_sssp(g, np.array([2]), nodes=1)
        assert list(res.distances) == [0, 2, -1]

    def test_shorter_path_through_more_hops_wins(self):
        # 0->2 direct costs 10; 0->1->2 costs 2+2=4
        g = CSRGraph.from_edges(
            [(0, 1), (0, 2), (1, 2)], n=3, dedup=False
        )
        # edges sorted by (src, dst): (0,1) (0,2) (1,2)
        w = np.array([2, 10, 2], dtype=np.int64)
        res = run_sssp(g, w, nodes=1)
        assert list(res.distances) == [0, 2, 4]
        assert res.rounds >= 3  # the improvement needs a second round

    def test_nonzero_source(self, rmat_s6):
        w = default_weights(rmat_s6)
        res = run_sssp(rmat_s6, w, source=17)
        assert np.array_equal(res.distances, reference_sssp(rmat_s6, w, 17))

    def test_weight_validation(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError, match="one weight"):
            SSSPApp(rt, rmat_s6, weights=np.array([1, 2]))
        with pytest.raises(ValueError, match="positive"):
            SSSPApp(rt, rmat_s6, weights=np.zeros(rmat_s6.m, dtype=np.int64))

    def test_default_weights_deterministic(self, rmat_s6):
        assert np.array_equal(
            default_weights(rmat_s6), default_weights(rmat_s6)
        )
        assert default_weights(rmat_s6).min() >= 1

    def test_size_invariance(self, rmat_s6):
        w = default_weights(rmat_s6)
        a = run_sssp(rmat_s6, w, nodes=1)
        b = run_sssp(rmat_s6, w, nodes=4)
        assert np.array_equal(a.distances, b.distances)
