"""PageRank on the simulated machine vs the NumPy oracle."""

import numpy as np
import pytest

from repro.apps import PageRankApp
from repro.baselines import pagerank as ref_pagerank
from repro.graph import CSRGraph, path_graph, rmat, star_graph
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def run_pr(graph, nodes=2, iterations=1, **kw):
    # detailed_stats: structure tests below read events_by_label
    rt = UpDownRuntime(bench_machine(nodes=nodes), detailed_stats=True)
    app = PageRankApp(rt, graph, max_degree=kw.pop("max_degree", 16), **kw)
    return app.run(iterations=iterations, max_events=5_000_000), rt


class TestCorrectness:
    def test_one_iteration_matches_oracle(self, rmat_s6):
        res, _ = run_pr(rmat_s6)
        expected = ref_pagerank(rmat_s6, 1)
        assert np.abs(res.ranks - expected).max() < 1e-9

    def test_three_iterations_match(self, rmat_s6):
        res, _ = run_pr(rmat_s6, iterations=3)
        expected = ref_pagerank(rmat_s6, 3)
        assert np.abs(res.ranks - expected).max() < 1e-9

    def test_path_graph_exact(self, path10):
        res, _ = run_pr(path10, nodes=1)
        assert np.abs(res.ranks - ref_pagerank(path10, 1)).max() < 1e-12

    def test_star_graph_with_splitting(self, star32):
        """The hub (degree 31) splits under max_degree=8; the result must
        equal the unsplit oracle (the §5.2.1 correctness claim)."""
        res, _ = run_pr(star32, max_degree=8)
        assert np.abs(res.ranks - ref_pagerank(star32, 1)).max() < 1e-12

    def test_graph_with_dangling_vertex(self):
        g = CSRGraph.from_edges([(0, 1), (1, 0), (2, 0)], n=3)
        res, _ = run_pr(g, nodes=1)
        assert np.abs(res.ranks - ref_pagerank(g, 1)).max() < 1e-12

    def test_ranks_conserve_mass_on_regular_graph(self):
        from repro.graph import complete_graph

        g = complete_graph(6)
        res, _ = run_pr(g, nodes=1)
        assert res.ranks.sum() == pytest.approx(1.0)

    def test_custom_damping(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=2))
        app = PageRankApp(rt, rmat_s6, max_degree=16, damping=0.5)
        res = app.run(max_events=5_000_000)
        assert np.abs(res.ranks - ref_pagerank(rmat_s6, 1, 0.5)).max() < 1e-9

    def test_results_deterministic_across_runs(self, rmat_s6):
        r1, _ = run_pr(rmat_s6)
        r2, _ = run_pr(rmat_s6)
        assert np.array_equal(r1.ranks, r2.ranks)
        assert r1.elapsed_seconds == r2.elapsed_seconds


class TestMachineInteraction:
    def test_uses_all_nodes_memory(self, rmat_s7):
        # 4KB blocks so the (small) test arrays span several nodes
        _res, rt = run_pr(rmat_s7, nodes=4, block_size=4096)
        served = [rt.sim.memory.bytes_served(n) for n in range(4)]
        assert all(b > 0 for b in served)

    def test_mem_nodes_restricts_placement(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=4))
        app = PageRankApp(rt, rmat_s6, max_degree=16, mem_nodes=1)
        app.run(max_events=5_000_000)
        assert rt.sim.memory.bytes_served(0) > 0
        assert rt.sim.memory.bytes_served(2) == 0

    def test_emits_proportional_to_edges(self, rmat_s6):
        res, rt = run_pr(rmat_s6)
        # one emit per edge per iteration -> one reduce entry per edge
        entries = rt.sim.stats.events_by_label.get(
            "PRReduceTask::__reduce_entry__", 0
        )
        assert entries == rmat_s6.m

    def test_gups_metric(self, rmat_s6):
        res, _ = run_pr(rmat_s6)
        assert res.giga_updates_per_second > 0
        assert res.edges_per_iteration == rmat_s6.m

    def test_invalid_iterations_rejected(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = PageRankApp(rt, rmat_s6, max_degree=16)
        with pytest.raises(ValueError):
            app.run(iterations=0)
