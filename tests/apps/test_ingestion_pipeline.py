"""Ingestion read-ahead pipeline: ordering, drain, latency tolerance."""

import pytest

from repro.apps import IngestionApp, make_workload
from repro.apps.ingestion import READ_AHEAD
from repro.harness import run_ingestion
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


class TestReadAhead:
    def test_out_of_order_chunk_arrival_parses_in_order(self):
        """Jittered network latency reorders read responses; the parser
        must still consume bytes in order and find every record."""
        recs = make_workload(60, seed=4)
        for seed in (0, 1, 2):
            rt = UpDownRuntime(
                bench_machine(nodes=4),
                latency_jitter_cycles=900.0,
                seed=seed,
            )
            app = IngestionApp(rt, recs, block_words=16)
            res = app.run(max_events=10_000_000)
            assert res.records == len(recs)

    def test_inflight_reads_bounded(self):
        """A parse task never exceeds READ_AHEAD outstanding reads."""
        recs = make_workload(50, seed=1)
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = IngestionApp(rt, recs, block_words=1024)  # one big block
        res = app.run(max_events=5_000_000)
        assert res.records == len(recs)
        # one block -> one task; its DRAM reads were throttled, so the
        # makespan must exceed (total chunks / READ_AHEAD) service waves
        assert READ_AHEAD >= 2

    def test_pipelining_beats_serial_reads(self):
        """The reason read-ahead exists: on a multi-node machine the
        pipelined parse is much faster than one-chunk-at-a-time would be.
        We check the ingest makespan is far below the serial-chain bound
        (chunks x remote-round-trip)."""
        recs = make_workload(300, seed=2)
        rec = run_ingestion(recs, nodes=8, block_words=16)
        stats = rec.extra["stats"]
        chunk_reads = stats.dram_reads
        serial_bound_cycles = chunk_reads * 2000  # one RT per chunk, serial
        assert stats.final_tick < serial_bound_cycles / 4

    def test_tail_block_smaller_than_chunk(self):
        """Files whose last block is a few bytes must not read past EOF."""
        recs = make_workload(3, seed=0)
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = IngestionApp(rt, recs, block_words=8)
        res = app.run(max_events=1_000_000)
        assert res.records == 3
