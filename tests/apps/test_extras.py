"""Table 3 extras: GNN, exact match, compaction, sequences, bucket sort."""

import numpy as np
import pytest

from repro.apps import (
    BucketSortApp,
    CompactionApp,
    ConstructSequencesApp,
    ExactMatchApp,
    GNNApp,
    reference_features,
    reference_integrate,
    reference_sequences,
)
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


class TestGNN:
    def test_gen_features_matches(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=2))
        res = GNNApp(rt, rmat_s6).run(max_events=10_000_000)
        assert np.allclose(res.features, reference_features(rmat_s6))

    def test_integrate_matches(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=2))
        res = GNNApp(rt, rmat_s6).run(max_events=10_000_000)
        expected = reference_integrate(rmat_s6, reference_features(rmat_s6))
        assert np.allclose(res.aggregated, expected)

    def test_isolated_vertices_aggregate_zero(self):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges([(0, 1), (1, 0)], n=3)
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = GNNApp(rt, g).run(max_events=1_000_000)
        assert np.all(res.aggregated[2] == 0)


class TestExactMatch:
    def test_hit_count(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        data = [(k, k) for k in range(0, 60, 3)]  # keys 0,3,...,57
        probes = list(range(20))  # hits: 0,3,6,9,12,15,18 -> 7
        res = ExactMatchApp(rt, data, probes).run(max_events=3_000_000)
        assert res.hits == 7

    def test_no_hits(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = ExactMatchApp(rt, [(1, 1)], [2, 3]).run(max_events=500_000)
        assert res.hits == 0

    def test_all_hits(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = ExactMatchApp(
            rt, [(k, k) for k in range(10)], list(range(10))
        ).run(max_events=1_000_000)
        assert res.hits == 10

    def test_empty_inputs_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            ExactMatchApp(rt, [], [1])


class TestCompaction:
    def test_matches_numpy_nonzero(self):
        rng = np.random.default_rng(5)
        alive = rng.integers(0, 2, 300)
        rt = UpDownRuntime(bench_machine(nodes=2))
        res = CompactionApp(rt, alive).run(max_events=3_000_000)
        expected = np.nonzero(alive)[0]
        assert np.array_equal(res.compacted, expected)
        assert res.live == len(expected)

    def test_mapping_is_inverse(self):
        alive = np.array([1, 0, 1, 1, 0, 1])
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = CompactionApp(rt, alive, block_vertices=2).run(
            max_events=1_000_000
        )
        for new, old in enumerate(res.compacted):
            assert res.mapping[old] == new
        assert res.mapping[1] == -1 and res.mapping[4] == -1

    def test_all_dead(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = CompactionApp(rt, np.zeros(10)).run(max_events=1_000_000)
        assert res.live == 0
        assert len(res.compacted) == 0

    def test_all_alive_is_identity(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = CompactionApp(rt, np.ones(10)).run(max_events=1_000_000)
        assert np.array_equal(res.compacted, np.arange(10))


class TestSequences:
    def test_matches_reference(self):
        rng = np.random.default_rng(2)
        events = np.column_stack(
            [
                rng.integers(0, 8, 100),
                rng.permutation(100),
                np.arange(100),
            ]
        )
        rt = UpDownRuntime(bench_machine(nodes=2))
        res = ConstructSequencesApp(rt, events, 8).run(max_events=5_000_000)
        assert res.sequences == reference_sequences(events)

    def test_time_ordering_within_entity(self):
        events = np.array(
            [[0, 30, 103], [0, 10, 101], [0, 20, 102]]
        )
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = ConstructSequencesApp(rt, events, 1).run(max_events=500_000)
        assert res.sequences == {0: [101, 102, 103]}

    def test_bad_shape_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            ConstructSequencesApp(rt, np.zeros((3, 2)), 1)


class TestBucketSort:
    def test_sorts(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(-500, 500, 200)
        rt = UpDownRuntime(bench_machine(nodes=2))
        res = BucketSortApp(rt, vals).run(max_events=5_000_000)
        assert np.array_equal(res.output, np.sort(vals))

    def test_buckets_per_lane_validated(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            BucketSortApp(rt, np.array([1]), buckets_per_lane=0)
