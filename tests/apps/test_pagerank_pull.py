"""Pull-based PageRank: correctness and its push-vs-pull signature."""

import numpy as np
import pytest

from repro.apps import PageRankApp
from repro.apps.pagerank_pull import PullPageRankApp
from repro.baselines import pagerank as ref_pagerank
from repro.graph import CSRGraph, rmat, star_graph
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def run_pull(graph, nodes=2, iterations=1):
    rt = UpDownRuntime(bench_machine(nodes=nodes))
    app = PullPageRankApp(rt, graph)
    return app.run(iterations=iterations, max_events=60_000_000), rt


class TestCorrectness:
    def test_matches_oracle(self, rmat_s6):
        res, _ = run_pull(rmat_s6)
        assert np.abs(res.ranks - ref_pagerank(rmat_s6, 1)).max() < 1e-9

    def test_multiple_iterations(self, rmat_s6):
        res, _ = run_pull(rmat_s6, iterations=3)
        assert np.abs(res.ranks - ref_pagerank(rmat_s6, 3)).max() < 1e-9

    def test_matches_push_formulation(self, rmat_s6):
        pull, _ = run_pull(rmat_s6, iterations=2)
        rt = UpDownRuntime(bench_machine(nodes=2))
        push = PageRankApp(rt, rmat_s6, max_degree=16, block_size=4096).run(
            iterations=2, max_events=30_000_000
        )
        assert np.allclose(pull.ranks, push.ranks, atol=1e-12)

    def test_dangling_vertices(self):
        g = CSRGraph.from_edges([(0, 1), (1, 0), (2, 0)], n=3)
        res, _ = run_pull(g, nodes=1)
        assert np.abs(res.ranks - ref_pagerank(g, 1)).max() < 1e-12

    def test_star_graph(self, star32):
        res, _ = run_pull(star32, nodes=1)
        assert np.abs(res.ranks - ref_pagerank(star32, 1)).max() < 1e-12

    def test_size_invariance(self, rmat_s6):
        a, _ = run_pull(rmat_s6, nodes=1)
        b, _ = run_pull(rmat_s6, nodes=4)
        assert np.allclose(a.ranks, b.ranks, atol=1e-12)


class TestPushPullSignature:
    def test_pull_trades_messages_for_reads(self, rmat_s7):
        """The structural difference: push moves ~1 message per edge
        through the shuffle; pull moves ~1 extra DRAM read per edge and
        almost no messages."""
        _pull, rt_pull = run_pull(rmat_s7, nodes=4)
        rt_push = UpDownRuntime(bench_machine(nodes=4))
        PageRankApp(rt_push, rmat_s7, max_degree=16, block_size=4096).run(
            max_events=30_000_000
        )
        m = rmat_s7.m
        push_msgs = rt_push.sim.stats.messages_sent
        pull_msgs = rt_pull.sim.stats.messages_sent
        pull_reads = rt_pull.sim.stats.dram_reads
        assert push_msgs > m  # the emit per edge
        assert pull_msgs < push_msgs / 2
        assert pull_reads > m  # the contribution read per edge

    def test_invalid_iterations(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = PullPageRankApp(rt, rmat_s6)
        with pytest.raises(ValueError):
            app.run(iterations=0)
