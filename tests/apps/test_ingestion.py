"""Ingestion: parse + insert correctness, block-boundary handling."""

import pytest

from repro.apps import IngestionApp, make_workload
from repro.apps.tform import Record
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def run_ingest(records, nodes=2, block_words=32):
    rt = UpDownRuntime(bench_machine(nodes=nodes))
    app = IngestionApp(rt, records, block_words=block_words)
    res = app.run(max_events=10_000_000)
    return app, res


class TestCorrectness:
    def test_every_record_parsed_once(self):
        recs = make_workload(80, seed=1)
        _app, res = run_ingest(recs)
        assert res.records == len(recs)

    def test_pga_contents_match(self):
        recs = make_workload(80, seed=2)
        app, _res = run_ingest(recs)
        v, e = app.pga.snapshot()
        ev, ee = app.expected_tables()
        assert set(v) == set(ev)
        assert set(e) == set(ee)
        # singleton keys must carry the exact payload
        for k, vals in ee.items():
            if len(vals) == 1:
                etype, ts = next(iter(vals))
                assert e[k][0] == etype and e[k][1] == ts

    @pytest.mark.parametrize("block_words", [8, 16, 64, 1024])
    def test_block_size_never_changes_record_count(self, block_words):
        """Records spanning boundaries are parsed exactly once at any
        block granularity (§5.2.4's boundary-crossing claim)."""
        recs = make_workload(60, seed=3)
        _app, res = run_ingest(recs, block_words=block_words)
        assert res.records == len(recs)

    def test_single_record_file(self):
        _app, res = run_ingest([Record.edge(1, 2, 3, 4)])
        assert res.records == 1

    def test_vertex_only_file(self):
        recs = [Record.vertex(i, i * 10) for i in range(20)]
        app, res = run_ingest(recs)
        assert res.records == 20
        v, e = app.pga.snapshot()
        assert len(v) == 20 and len(e) == 0

    def test_long_records_spanning_blocks(self):
        """Records wider than a block still parse (block smaller than a
        record forces multi-block spans)."""
        recs = [
            Record.edge(10**14 + i, 10**14 + i + 1, 5, 10**12)
            for i in range(10)
        ]
        _app, res = run_ingest(recs, block_words=8)  # 64-byte blocks
        assert res.records == 10

    def test_deterministic(self):
        recs = make_workload(40, seed=7)
        _a1, r1 = run_ingest(recs)
        _a2, r2 = run_ingest(recs)
        assert r1.elapsed_seconds == r2.elapsed_seconds


class TestMetrics:
    def test_throughput_metrics(self):
        recs = make_workload(50, seed=0)
        _app, res = run_ingest(recs)
        assert res.records_per_second > 0
        assert res.bytes_per_second == res.records_per_second * 64

    def test_block_words_validated(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            IngestionApp(rt, make_workload(5), block_words=4)
