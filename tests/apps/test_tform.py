"""TFORM transducer vs Python's csv module; packing; workload generator."""

import csv as csv_mod
import io

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps.tform import (
    REC_EDGE,
    REC_VERTEX,
    RECORD_WORDS,
    Record,
    Transducer,
    make_workload,
    pack_text,
    parse_all,
    unpack_word,
    unpack_words,
    workload_csv,
)


class TestRecords:
    def test_to_words_is_64_bytes(self):
        r = Record.edge(1, 2, 3, 4)
        words = r.to_words()
        assert len(words) == RECORD_WORDS
        assert words[:5] == (REC_EDGE, 1, 2, 3, 4)

    def test_csv_roundtrip(self):
        r = Record.vertex(17, 4)
        assert parse_all(r.to_csv() + "\n") == [r]

    def test_kinds(self):
        assert Record.vertex(1).kind == REC_VERTEX
        assert Record.edge(1, 2, 3).kind == REC_EDGE


class TestTransducer:
    def test_parses_mixed_records(self):
        text = "V,1,10\nE,1,2,3,4\nV,2,20\n"
        recs = parse_all(text)
        assert [r.kind for r in recs] == [REC_VERTEX, REC_EDGE, REC_VERTEX]
        assert recs[1].fields == (1, 2, 3, 4)

    def test_incremental_chunks_equal_whole(self):
        text = workload_csv(make_workload(40, seed=1))
        whole = parse_all(text)
        t = Transducer()
        chunked = []
        data = text.encode()
        for i in range(0, len(data), 7):  # deliberately odd chunk size
            chunked.extend(t.feed(data[i : i + 7]))
        assert chunked == whole

    def test_blank_lines_skipped(self):
        assert parse_all("\n\nV,1,2\n\n") == [Record.vertex(1, 2)]

    def test_nul_padding_ignored(self):
        assert parse_all("V,1,2\n\x00\x00\x00") == [Record.vertex(1, 2)]

    def test_garbage_lines_skipped(self):
        recs = parse_all("XYZ,what\nV,1,2\nQ#$%\nE,1,2,3,4\n")
        assert len(recs) == 2

    def test_mid_record_flag(self):
        t = Transducer()
        t.feed(b"E,1,2")
        assert t.mid_record
        t.feed(b",3,4\n")
        assert not t.mid_record

    def test_truncated_final_record_not_emitted(self):
        assert parse_all("V,1,2\nE,3,4") == [Record.vertex(1, 2)]

    def test_matches_csv_module(self):
        recs = make_workload(60, seed=9)
        text = workload_csv(recs)
        ours = parse_all(text)
        theirs = []
        for row in csv_mod.reader(io.StringIO(text)):
            if not row:
                continue
            kind = REC_VERTEX if row[0] == "V" else REC_EDGE
            theirs.append(Record(kind, tuple(int(x) for x in row[1:])))
        assert ours == theirs


class TestPacking:
    def test_pack_pads_to_words(self):
        w = pack_text("abc")
        assert len(w) == 1
        assert unpack_word(int(w[0])) == b"abc\x00\x00\x00\x00\x00"

    def test_pack_unpack_roundtrip(self):
        text = "E,12,34,5,678\nV,9,0\n"
        words = pack_text(text)
        raw = unpack_words(words)
        assert raw[: len(text)] == text.encode()

    @given(st.text(alphabet="VE,0123456789\n", max_size=200))
    def test_pack_roundtrip_property(self, text):
        words = pack_text(text)
        assert unpack_words(words)[: len(text.encode())] == text.encode()


class TestWorkload:
    def test_record_mix(self):
        recs = make_workload(100, vertex_fraction=0.25, seed=0)
        edges = [r for r in recs if r.kind == REC_EDGE]
        vertices = [r for r in recs if r.kind == REC_VERTEX]
        assert len(edges) == 100
        assert len(vertices) == 25

    def test_deterministic(self):
        assert make_workload(20, seed=4) == make_workload(20, seed=4)
        assert make_workload(20, seed=4) != make_workload(20, seed=5)

    def test_edge_types_bounded(self):
        recs = make_workload(50, n_edge_types=3, seed=0)
        for r in recs:
            if r.kind == REC_EDGE:
                assert 0 <= r.fields[2] < 3

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make_workload(0)
