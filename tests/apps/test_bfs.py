"""BFS on the simulated machine vs the reference BFS."""

import numpy as np
import pytest

from repro.apps import BFSApp
from repro.baselines import bfs as ref_bfs, traversed_edges, validate_parents
from repro.graph import CSRGraph, path_graph, rmat, star_graph
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def run_bfs(graph, root=0, nodes=2, max_degree=16, **kw):
    rt = UpDownRuntime(bench_machine(nodes=nodes))
    app = BFSApp(rt, graph, max_degree=max_degree, **kw)
    return app.run(root=root, max_events=10_000_000), rt


class TestCorrectness:
    def test_distances_match_oracle(self, rmat_s6):
        res, _ = run_bfs(rmat_s6)
        dist, _ = ref_bfs(rmat_s6, 0)
        assert np.array_equal(res.distances, dist)

    def test_parents_form_valid_tree(self, rmat_s6):
        res, _ = run_bfs(rmat_s6)
        assert validate_parents(rmat_s6, 0, res.distances, res.parents)

    def test_path_graph_linear_distances(self, path10):
        res, _ = run_bfs(path10, nodes=1)
        assert list(res.distances) == list(range(10))
        assert res.rounds == 10  # 9 expanding rounds + 1 empty round

    def test_star_graph_one_round(self, star32):
        res, _ = run_bfs(star32, max_degree=8, nodes=1)
        assert res.distances[0] == 0
        assert all(res.distances[1:] == 1)

    def test_nonzero_root(self, rmat_s6):
        res, _ = run_bfs(rmat_s6, root=17)
        dist, _ = ref_bfs(rmat_s6, 17)
        assert np.array_equal(res.distances, dist)

    def test_disconnected_component_unreachable(self):
        g = CSRGraph.from_edges(
            [(0, 1), (1, 0), (2, 3), (3, 2)], n=4
        )
        res, _ = run_bfs(g, nodes=1)
        assert list(res.distances) == [0, 1, -1, -1]
        assert list(res.parents[2:]) == [-1, -1]

    def test_single_vertex_frontier_terminates(self):
        g = CSRGraph.from_edges([], n=3)
        res, _ = run_bfs(g, nodes=1)
        assert list(res.distances) == [0, -1, -1]
        assert res.rounds == 1

    def test_traversed_edges_counted(self, rmat_s6):
        res, _ = run_bfs(rmat_s6)
        dist, _ = ref_bfs(rmat_s6, 0)
        assert res.traversed_edges == traversed_edges(rmat_s6, dist)

    def test_deterministic(self, rmat_s6):
        a, _ = run_bfs(rmat_s6)
        b, _ = run_bfs(rmat_s6)
        assert np.array_equal(a.distances, b.distances)
        assert a.elapsed_seconds == b.elapsed_seconds

    def test_split_graph_same_distances(self, star32):
        """Splitting the hub must not change reachability or distance."""
        res_split, _ = run_bfs(star32, max_degree=4)
        res_whole, _ = run_bfs(star32, max_degree=1024)
        assert np.array_equal(res_split.distances, res_whole.distances)


class TestValidation:
    def test_bad_root_rejected(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = BFSApp(rt, rmat_s6, max_degree=16)
        with pytest.raises(ValueError):
            app.run(root=rmat_s6.n + 5)

    def test_gteps_metric(self, rmat_s6):
        res, _ = run_bfs(rmat_s6)
        assert res.giga_teps > 0

    def test_rounds_match_eccentricity(self, rmat_s6):
        res, _ = run_bfs(rmat_s6)
        dist, _ = ref_bfs(rmat_s6, 0)
        # rounds = max distance + 1 (the final, empty-frontier round)
        assert res.rounds == dist.max() + 1
