"""Connected components by label propagation."""

import numpy as np
import pytest

from repro.apps import ConnectedComponentsApp, reference_components
from repro.graph import CSRGraph, complete_graph, path_graph, rmat
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def run_cc(graph, nodes=2):
    rt = UpDownRuntime(bench_machine(nodes=nodes))
    return ConnectedComponentsApp(rt, graph).run(max_events=30_000_000)


class TestConnectedComponents:
    def test_matches_union_find_oracle(self, rmat_s6):
        res = run_cc(rmat_s6)
        assert np.array_equal(res.labels, reference_components(rmat_s6))

    def test_single_component_path(self, path10):
        res = run_cc(path10, nodes=1)
        assert res.n_components == 1
        assert (res.labels == 0).all()

    def test_isolated_vertices_are_own_components(self):
        g = CSRGraph.from_edges([(0, 1)], n=4, symmetrize=True)
        res = run_cc(g, nodes=1)
        assert res.n_components == 3
        assert list(res.labels) == [0, 0, 2, 3]

    def test_labels_are_component_minima(self, rmat_s6):
        res = run_cc(rmat_s6)
        for label in np.unique(res.labels):
            members = np.nonzero(res.labels == label)[0]
            assert members.min() == label

    def test_rounds_bounded_by_diameter(self, path10):
        # a path of n vertices needs ~n rounds (labels travel one hop/round)
        res = run_cc(path10, nodes=1)
        assert res.rounds <= 11

    def test_complete_graph_two_rounds(self):
        res = run_cc(complete_graph(6), nodes=1)
        assert res.rounds <= 2
        assert res.n_components == 1

    def test_asymmetric_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], n=2)
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            ConnectedComponentsApp(rt, g)

    def test_deterministic(self, rmat_s6):
        a = run_cc(rmat_s6)
        b = run_cc(rmat_s6)
        assert np.array_equal(a.labels, b.labels)
        assert a.elapsed_seconds == b.elapsed_seconds
