"""Triangle counting vs both oracles, Block and PBMW bindings."""

import pytest

from repro.apps import TriangleCountApp
from repro.baselines import triangle_count, triangle_count_intersect
from repro.graph import CSRGraph, complete_graph, path_graph, rmat
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def run_tc(graph, nodes=2, **kw):
    # detailed_stats: structure tests below read events_by_label
    rt = UpDownRuntime(bench_machine(nodes=nodes), detailed_stats=True)
    app = TriangleCountApp(rt, graph, **kw)
    return app.run(max_events=10_000_000), rt


class TestCorrectness:
    def test_rmat_matches_oracles(self, rmat_s6):
        res, _ = run_tc(rmat_s6)
        assert res.triangles == triangle_count(rmat_s6)
        assert res.triangles == triangle_count_intersect(rmat_s6)

    def test_complete_graph_k6(self):
        res, _ = run_tc(complete_graph(6), nodes=1)
        assert res.triangles == 20  # C(6,3)

    def test_triangle_free_graph(self, path10):
        res, _ = run_tc(path10, nodes=1)
        assert res.triangles == 0

    def test_single_triangle(self):
        g = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 2)], n=3, symmetrize=True
        )
        res, _ = run_tc(g, nodes=1)
        assert res.triangles == 1

    def test_two_sharing_an_edge(self):
        g = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)], n=4, symmetrize=True
        )
        res, _ = run_tc(g, nodes=1)
        assert res.triangles == 2

    def test_pbmw_binding_same_answer(self, rmat_s6):
        res, _ = run_tc(rmat_s6, pbmw=True)
        assert res.triangles == triangle_count(rmat_s6)

    def test_deterministic(self, rmat_s6):
        a, _ = run_tc(rmat_s6)
        b, _ = run_tc(rmat_s6)
        assert a.triangles == b.triangles
        assert a.elapsed_seconds == b.elapsed_seconds


class TestStructure:
    def test_one_reduce_per_ordered_edge(self, rmat_s6):
        _res, rt = run_tc(rmat_s6)
        entries = rt.sim.stats.events_by_label.get(
            "TCReduceTask::__reduce_entry__", 0
        )
        assert entries == rmat_s6.m // 2  # pairs with x > y

    def test_streams_both_lists(self, rmat_s6):
        """The second TC version reads both endpoint lists from DRAM."""
        _res, rt = run_tc(rmat_s6)
        words_read = rt.sim.stats.dram_bytes_read // 8
        m = rmat_s6.m
        # at least: map reads all lists once (m words) + reduce streams
        assert words_read > 1.5 * m
