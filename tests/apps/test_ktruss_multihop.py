"""K-Truss and multihop reasoning (the §6 / Table 3 extensions)."""

import pytest

from repro.apps import (
    KTrussApp,
    MultihopApp,
    make_workload,
    reference_ktruss,
    reference_multihop,
)
from repro.graph import CSRGraph, complete_graph, path_graph, rmat
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def run_ktruss(graph, k, nodes=2):
    rt = UpDownRuntime(bench_machine(nodes=nodes))
    return KTrussApp(rt, graph, k).run(max_events=30_000_000)


class TestKTruss:
    def test_matches_networkx_k3(self, rmat_s6):
        res = run_ktruss(rmat_s6, 3)
        assert set(res.truss.edges()) == reference_ktruss(rmat_s6, 3)

    def test_matches_networkx_k4(self, rmat_s6):
        res = run_ktruss(rmat_s6, 4)
        assert set(res.truss.edges()) == reference_ktruss(rmat_s6, 4)

    def test_complete_graph_survives_its_own_truss(self):
        k5 = complete_graph(5)
        res = run_ktruss(k5, 5)
        assert res.edges_remaining == 20

    def test_triangle_free_graph_empties(self, path10):
        res = run_ktruss(path10, 3)
        assert res.edges_remaining == 0

    def test_peeling_cascades(self):
        """A triangle glued to a K4 by one edge: k=4 must peel the
        triangle (cascade) but keep the K4."""
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),  # K4
                 (3, 4), (4, 5), (5, 3)]                          # triangle
        g = CSRGraph.from_edges(edges, n=6, symmetrize=True)
        res = run_ktruss(g, 4)
        assert set(res.truss.edges()) == reference_ktruss(g, 4)
        assert res.edges_remaining == 12  # the K4's 6 undirected edges
        assert res.rounds >= 2

    def test_k_below_3_rejected(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            KTrussApp(rt, rmat_s6, 2)

    def test_asymmetric_graph_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], n=2)
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            KTrussApp(rt, g, 3)


class TestMultihop:
    @pytest.fixture(scope="class")
    def records(self):
        return make_workload(120, n_vertices=30, seed=9)

    def _query(self, records, seeds, hops, nodes=4):
        rt = UpDownRuntime(bench_machine(nodes=nodes))
        app = MultihopApp(rt, records)
        app.run_ingest(max_events=10_000_000)
        return app.query(seeds, hops, max_events=10_000_000)

    def test_matches_oracle(self, records):
        res = self._query(records, [1, 5], 2)
        assert res.reached == reference_multihop(records, [1, 5], 2)

    def test_zero_hops_is_just_seeds(self, records):
        res = self._query(records, [3], 0)
        assert res.reached == {3: 0}

    def test_hops_monotone(self, records):
        r1 = self._query(records, [1], 1)
        r2 = self._query(records, [1], 2)
        assert set(r1.reached) <= set(r2.reached)

    def test_distances_are_hops(self, records):
        res = self._query(records, [1], 3)
        want = reference_multihop(records, [1], 3)
        assert res.reached == want
        assert all(
            d <= 3 for d in res.reached.values()
        )

    def test_query_before_ingest_rejected(self, records):
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = MultihopApp(rt, records)
        with pytest.raises(RuntimeError):
            app.query([1], 1)

    def test_adjacency_index_matches_records(self, records):
        rt = UpDownRuntime(bench_machine(nodes=2))
        app = MultihopApp(rt, records)
        app.run_ingest(max_events=10_000_000)
        adj = app.pga.snapshot_adjacency()
        from repro.apps.tform import REC_EDGE

        expected = {}
        for r in records:
            if r.kind == REC_EDGE:
                expected.setdefault(r.fields[0], []).append(r.fields[1])
        assert {k: sorted(v) for k, v in adj.items()} == {
            k: sorted(v) for k, v in expected.items()
        }
