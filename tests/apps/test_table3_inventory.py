"""Table 3: every application/abstraction row has a working analog here.

The paper's programmability claim (§5.4.1) is that KVMSR+UDWeave sufficed
for every AGILE kernel.  This test pins the inventory: each Table 3 row
maps to an importable implementation in this repo, with the right
KVMSR/UDWeave usage.
"""

import importlib

import pytest

#: Table 3 row -> (module, attribute, uses_kvmsr, uses_custom_udweave)
TABLE3 = {
    "BFS": ("repro.apps.bfs", "BFSApp", True, True),
    "PageRank": ("repro.apps.pagerank", "PageRankApp", True, True),
    "TriangleCount": ("repro.apps.triangle", "TriangleCountApp", True, True),
    "Bucket Sort": ("repro.apps.bucket_sort", "BucketSortApp", True, False),
    "GNN (genFeatures)": ("repro.apps.gnn", "GenFeaturesTask", True, True),
    "GNN (integrate)": ("repro.apps.gnn", "IntegrateTask", True, True),
    "Exact Match": ("repro.apps.exact_match", "ExactMatchApp", True, True),
    "Partial Match": ("repro.apps.partial_match", "PartialMatchApp", False, True),
    "Graph Compaction": ("repro.apps.compaction", "CompactionApp", True, True),
    "Construct Sequences": ("repro.apps.sequences", "ConstructSequencesApp", True, True),
    "Multihop Ingestion": ("repro.apps.ingestion", "IngestionApp", True, True),
    "Multihop Reasoning": ("repro.apps.multihop", "MultihopApp", True, True),
    "K-Truss (§6)": ("repro.apps.ktruss", "KTrussApp", True, True),
    # Abstractions
    "Scalable Hash Table": ("repro.datastruct.sht", "ScalableHashTable", False, True),
    "Parallel Graph": ("repro.datastruct.pgraph", "ParallelGraph", False, True),
    "SHMEM Library": ("repro.datastruct.shmem", "SymmetricRegion", False, True),
    "TFORM Tool": ("repro.apps.tform", "Transducer", False, False),
}


@pytest.mark.parametrize("row", sorted(TABLE3))
def test_row_exists(row):
    module, attr, _kvmsr, _udweave = TABLE3[row]
    mod = importlib.import_module(module)
    assert hasattr(mod, attr), f"Table 3 row {row!r} missing {attr}"


def test_kvmsr_rows_reference_the_engine():
    from repro.kvmsr import KVMSRJob  # noqa: F401

    for row, (module, _attr, uses_kvmsr, _) in TABLE3.items():
        src = importlib.import_module(module).__file__
        text = open(src).read()
        if uses_kvmsr:
            assert (
                "KVMSRJob" in text or "GlobalSortApp" in text
            ), f"{row} should build on KVMSR"


def test_pagerank_uses_combining_cache():
    """Table 3's PR note: "also kvcombine cache"."""
    import repro.apps.pagerank as pr

    assert "CombiningCache" in open(pr.__file__).read()


def test_parallel_graph_uses_two_shts():
    """Table 3: Parallel Graph "Uses two SHT's"."""
    from repro.datastruct import ParallelGraph
    from repro.machine import bench_machine
    from repro.udweave import UpDownRuntime

    pg = ParallelGraph(UpDownRuntime(bench_machine(nodes=1)))
    assert pg.vertices is not pg.edges
    assert type(pg.vertices).__name__ == "ScalableHashTable"
