"""FaultPlan: validation, content-keyed determinism, empirical rates."""

import math

import pytest

from repro.faults import FaultPlan, FaultPlanError
from repro.machine.network import (
    FAULT_DELAY,
    FAULT_DROP,
    FAULT_DUPLICATE,
    FAULT_NONE,
)


class TestValidation:
    @pytest.mark.parametrize("knob", ["drop_rate", "duplicate_rate",
                                      "delay_rate", "lane_stall_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, knob, bad):
        with pytest.raises(FaultPlanError, match=knob):
            FaultPlan(**{knob: bad})

    def test_message_rates_must_sum_to_at_most_one(self):
        with pytest.raises(FaultPlanError, match="exceed"):
            FaultPlan(drop_rate=0.5, duplicate_rate=0.4, delay_rate=0.2)

    def test_negative_cycles_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(delay_cycles=-1.0)
        with pytest.raises(FaultPlanError):
            FaultPlan(lane_stall_cycles=-1.0)

    def test_dram_factor_range(self):
        with pytest.raises(FaultPlanError, match="bandwidth factor"):
            FaultPlan(dram_bandwidth_factors={0: 0.0})
        with pytest.raises(FaultPlanError, match="bandwidth factor"):
            FaultPlan(dram_bandwidth_factors={0: 1.5})
        FaultPlan(dram_bandwidth_factors={0: 0.25})  # ok

    def test_fail_stop_tick_non_negative(self):
        with pytest.raises(FaultPlanError, match="fail-stop"):
            FaultPlan(fail_stop={0: -5.0})

    def test_out_of_range_nodes_caught_at_table_build(self):
        with pytest.raises(FaultPlanError, match="out of range"):
            FaultPlan(fail_stop={7: 100.0}).dead_ticks(4)
        with pytest.raises(FaultPlanError, match="out of range"):
            FaultPlan(dram_bandwidth_factors={7: 0.5}).dram_factors(4)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = FaultPlan(seed=42, drop_rate=0.3, duplicate_rate=0.1,
                      delay_rate=0.1, lane_stall_rate=0.2)
        b = FaultPlan(seed=42, drop_rate=0.3, duplicate_rate=0.1,
                      delay_rate=0.1, lane_stall_rate=0.2)
        draws_a = [a.message_fault(actor, n)
                   for actor in range(8) for n in range(200)]
        draws_b = [b.message_fault(actor, n)
                   for actor in range(8) for n in range(200)]
        assert draws_a == draws_b
        stalls_a = [a.lane_stall(w, i) for w in range(4) for i in range(200)]
        stalls_b = [b.lane_stall(w, i) for w in range(4) for i in range(200)]
        assert stalls_a == stalls_b

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        draws_a = [a.message_fault(0, n) for n in range(200)]
        draws_b = [b.message_fault(0, n) for n in range(200)]
        assert draws_a != draws_b

    def test_draws_are_pure_functions_of_content(self):
        """Re-asking about the same (actor, count) never changes the
        answer — there is no hidden consumption order to perturb."""
        plan = FaultPlan(seed=9, drop_rate=0.2, duplicate_rate=0.2)
        first = plan.message_fault(3, 17)
        for _ in range(5):
            plan.message_fault(4, 99)  # interleaved unrelated draws
            assert plan.message_fault(3, 17) == first


class TestRates:
    def test_empirical_rates_match_configuration(self):
        plan = FaultPlan(seed=7, drop_rate=0.05, duplicate_rate=0.03,
                         delay_rate=0.02)
        n = 200_000
        counts = {FAULT_NONE: 0, FAULT_DROP: 0, FAULT_DUPLICATE: 0,
                  FAULT_DELAY: 0}
        for i in range(n):
            counts[plan.message_fault(i % 64, i)] += 1
        assert counts[FAULT_DROP] / n == pytest.approx(0.05, rel=0.1)
        assert counts[FAULT_DUPLICATE] / n == pytest.approx(0.03, rel=0.1)
        assert counts[FAULT_DELAY] / n == pytest.approx(0.02, rel=0.1)

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=3)
        assert not plan.has_message_faults
        assert not plan.has_lane_stalls
        assert all(plan.message_fault(0, i) == FAULT_NONE for i in range(500))
        assert all(plan.lane_stall(0, i) == 0.0 for i in range(500))

    def test_lane_stall_returns_configured_cycles(self):
        plan = FaultPlan(seed=5, lane_stall_rate=1.0, lane_stall_cycles=250.0)
        assert plan.lane_stall(2, 10) == 250.0


class TestTables:
    def test_dead_ticks_defaults_to_immortal(self):
        plan = FaultPlan(fail_stop={1: 5_000.0})
        ticks = plan.dead_ticks(4)
        assert ticks == [math.inf, 5_000.0, math.inf, math.inf]

    def test_dram_factors_default_healthy(self):
        plan = FaultPlan(dram_bandwidth_factors={2: 0.5})
        assert plan.dram_factors(4) == [1.0, 1.0, 0.5, 1.0]

    def test_describe_round_trips_knobs(self):
        plan = FaultPlan(seed=11, drop_rate=0.01, fail_stop={0: 9.0})
        desc = plan.describe()
        assert desc["seed"] == 11
        assert desc["drop_rate"] == 0.01
        assert desc["fail_stop"] == {0: 9.0}
