"""Reliable delivery: ack/retry recovery, dedup, give-up, determinism.

The workload is a cross-node relay: each hop spawns a fresh thread on the
other node, so every hop is one remote lane-to-lane message — exactly the
traffic class the fault plan perturbs and the transport tracks.
"""

import pytest

from repro.faults import FaultPlan, ReliabilityConfig
from repro.machine import bench_machine
from repro.udweave import UDThread, UpDownRuntime, event


class Relay(UDThread):
    """Forwards a countdown across nodes; reports completion to the host."""

    @event
    def hop(self, ctx, remaining):
        if remaining == 0:
            ctx.send_event(ctx.runtime.host_evw("relay_done"), remaining)
        else:
            # bounce between the first lanes of nodes 0 and 1
            here = ctx.network_id
            dst = 0 if here >= ctx.runtime.config.lanes_per_node else \
                ctx.runtime.config.lanes_per_node
            ctx.send_event(
                ctx.runtime.evw(dst, "Relay::hop"), remaining - 1
            )
        ctx.yield_terminate()


HOPS = 120


def relay_run(faults=None, reliable=False, hops=HOPS):
    rt = UpDownRuntime(
        bench_machine(nodes=2), faults=faults, reliable=reliable
    )
    rt.register(Relay)
    rt.start(0, "Relay::hop", hops)
    stats = rt.run(max_events=500_000)
    return rt, stats


class TestRecovery:
    def test_drops_break_the_chain_without_transport(self):
        rt, stats = relay_run(faults=FaultPlan(seed=13, drop_rate=0.05))
        assert stats.faults_messages_dropped > 0
        # the chain dies at the first drop: no completion ever arrives
        assert rt.host_messages("relay_done") == []
        # ... silently: nothing is queued and nothing is waiting, which
        # is exactly why the harness checks quiescence via live threads
        assert stats.quiesced

    def test_transport_recovers_every_drop(self):
        rt, stats = relay_run(
            faults=FaultPlan(seed=13, drop_rate=0.05), reliable=True
        )
        assert stats.faults_messages_dropped > 0
        assert stats.transport_retransmits > 0
        assert len(rt.host_messages("relay_done")) == 1
        assert stats.quiesced
        # every data message was tracked and eventually acknowledged
        assert stats.transport_give_ups == 0

    def test_fault_free_transport_is_pure_overhead(self):
        rt, stats = relay_run(reliable=True)
        assert len(rt.host_messages("relay_done")) == 1
        assert stats.transport_tracked == HOPS
        assert stats.transport_acks == HOPS
        assert stats.transport_retransmits == 0
        assert stats.transport_dup_suppressed == 0


class TestDeduplication:
    def test_duplicates_suppressed_at_receiver(self):
        rt, stats = relay_run(
            faults=FaultPlan(seed=21, duplicate_rate=0.15), reliable=True
        )
        assert stats.faults_messages_duplicated > 0
        assert stats.transport_dup_suppressed > 0
        # dedup keeps exactly-once handler execution: one completion
        assert len(rt.host_messages("relay_done")) == 1

    def test_duplicates_fork_the_chain_without_transport(self):
        # short chain: every duplicated hop spawns a full extra tail, so
        # the fork count grows geometrically with hop count
        rt, stats = relay_run(
            faults=FaultPlan(seed=21, duplicate_rate=0.1), hops=40
        )
        assert stats.faults_messages_duplicated > 0
        # at-least-once delivery without dedup executes handlers more
        # than once: several chain tails reach the end
        assert len(rt.host_messages("relay_done")) > 1


class TestGiveUp:
    def test_total_blackout_gives_up_instead_of_hanging(self):
        rt, stats = relay_run(
            faults=FaultPlan(seed=3, drop_rate=1.0),
            reliable=ReliabilityConfig(max_retries=2),
        )
        assert rt.host_messages("relay_done") == []
        assert stats.transport_give_ups > 0
        # bounded: 1 original + max_retries retransmits for the one
        # tracked message the chain got to issue
        assert stats.transport_retransmits == 2
        assert stats.quiesced  # the run ends; it does not wedge

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ReliabilityConfig(ack_timeout_cycles=0.0)


class TestDeterminism:
    def test_faulty_reliable_run_is_bit_reproducible(self):
        fps = []
        for _ in range(2):
            _rt, stats = relay_run(
                faults=FaultPlan(seed=13, drop_rate=0.05, duplicate_rate=0.05),
                reliable=True,
            )
            fps.append(stats.scalar_snapshot())
        assert fps[0] == fps[1]

    def test_different_seed_perturbs_different_messages(self):
        _rt, a = relay_run(faults=FaultPlan(seed=1, drop_rate=0.05),
                           reliable=True)
        _rt, b = relay_run(faults=FaultPlan(seed=2, drop_rate=0.05),
                           reliable=True)
        assert a.scalar_snapshot() != b.scalar_snapshot()
