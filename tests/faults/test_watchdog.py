"""Liveness watchdogs: lost credits raise QuiescenceStall, not a hang.

The scenario is the one the fault subsystem exists to expose: a dropped
map->reduce tuple without retry leaves the KVMSR master polling its
quiescence counters forever (only idle-labeled poll events execute).
``FaultPlan(seed=1, drop_rate=0.02)`` over this fixed job is known to
drop a reduce tuple — the draws are content-keyed, so this is stable,
not flaky.
"""

import pytest

from repro.faults import FaultPlan, QuiescenceStall
from repro.kvmsr import KVMSRJob, MapTask, RangeInput, ReduceTask, job_of
from repro.machine import MessageRecord, Simulator, bench_machine
from repro.machine.events import NEW_THREAD
from repro.udweave import UpDownRuntime


class EmitMap(MapTask):
    def kv_map(self, ctx, key):
        self.kv_emit(ctx, key % 5, key)
        self.kv_map_return(ctx)


class Collect(ReduceTask):
    def kv_reduce(self, ctx, key, value):
        job_of(ctx, self._job_id).payload.setdefault(key, []).append(value)
        self.kv_reduce_return(ctx)


def run_job(faults=None, reliable=False, watchdog=None, shards=1,
            parallel=False):
    rt = UpDownRuntime(
        bench_machine(nodes=2), faults=faults, reliable=reliable,
        watchdog_cycles=watchdog, shards=shards, parallel=parallel,
    )
    sink = {}
    job = KVMSRJob(
        rt, EmitMap, RangeInput(60), reduce_cls=Collect, payload=sink
    )
    job.launch()
    try:
        stats = rt.run(max_events=2_000_000)
    finally:
        rt.shutdown()
    return rt, sink, stats


LOSSY = dict(faults=FaultPlan(seed=1, drop_rate=0.02), watchdog=30_000.0)


class TestLostCredit:
    def test_clean_run_quiesces_under_watchdog(self):
        _rt, sink, stats = run_job(watchdog=30_000.0)
        assert stats.quiesced and stats.pending_threads == 0
        assert sum(len(v) for v in sink.values()) == 60

    def test_lost_reduce_credit_raises_instead_of_spinning(self):
        with pytest.raises(QuiescenceStall, match="idle/control"):
            run_job(**LOSSY)

    def test_stall_dump_names_the_missing_credits(self):
        try:
            run_job(**LOSSY)
        except QuiescenceStall as exc:
            dump = exc.diagnostic
        else:
            pytest.fail("expected QuiescenceStall")
        assert dump["pending_threads"] > 0
        masters = dump["kvmsr_credits"]["live_masters"]
        assert len(masters) == 1
        (master,) = masters
        assert master["phase"] == "reduce"
        assert master["outstanding"] > 0
        assert master["reduce_credits_banked"] < master["total_emitted"]
        # triage context: what is still waiting (the poll event that
        # tripped the watchdog was already popped, so the heap itself
        # may be momentarily empty)
        assert dump["blocked_threads"]
        assert dump["watchdog_cycles"] == 30_000.0

    def test_reliable_delivery_cures_the_same_plan(self):
        _rt, golden, _ = run_job()
        _rt, sink, stats = run_job(reliable=True, **LOSSY)
        assert stats.faults_messages_dropped > 0
        assert stats.transport_retransmits > 0
        assert stats.quiesced
        assert {k: sorted(v) for k, v in sink.items()} == {
            k: sorted(v) for k, v in golden.items()
        }

    def test_parent_side_watchdog_catches_stalled_shard_workers(self):
        """Forked workers run report-only; the parent aggregates their
        progress marks, raises, and attaches per-shard dumps."""
        with pytest.raises(QuiescenceStall, match="shard workers") as info:
            run_job(parallel=True, shards=2, **LOSSY)
        dump = info.value.diagnostic
        assert set(dump) == {"shard_0", "shard_1"}
        credits = [
            m
            for shard_dump in dump.values()
            if isinstance(shard_dump, dict)
            for m in shard_dump["kvmsr_credits"]["live_masters"]
        ]
        assert any(m["outstanding"] > 0 for m in credits)


class TestRearmOnInjection:
    """Host injections count as progress: intentional idle gaps (open-loop
    traffic between bursts) must not trip the watchdog, while a genuine
    stall — idle events advancing time with nothing admitted — still does."""

    def _sim(self, watchdog=1_000.0):
        # dispatcher models a poll loop: executing "work" schedules
        # *device-side* idle polls (like KVMSR's quiescence poll or an
        # rdt retry timer) spanning a gap far beyond the watchdog
        def dispatch(sim, lane, record, start):
            if record.label == "work" and not dispatch.armed:
                dispatch.armed = True
                for t in (2_000.0, 4_000.0, 6_000.0):
                    sim._push(t, MessageRecord(0, NEW_THREAD, "idle_poll"), 1)
            return 1.0

        dispatch.armed = False
        sim = Simulator(
            bench_machine(nodes=1),
            dispatcher=dispatch,
            watchdog_cycles=watchdog,
        )
        sim.mark_idle_labels({"idle_poll"})
        return sim

    def test_future_injection_covers_the_idle_gap(self):
        sim = self._sim()
        sim.inject(MessageRecord(0, NEW_THREAD, "work"), t=0.0)
        # the next burst is already injected at t=7k, which rearms the
        # progress mark past every mid-gap idle event
        sim.inject(MessageRecord(0, NEW_THREAD, "work"), t=7_000.0)
        stats = sim.run()
        assert stats.quiesced and stats.events_executed == 5

    def test_genuine_stall_still_trips(self):
        sim = self._sim()
        sim.inject(MessageRecord(0, NEW_THREAD, "work"), t=0.0)
        with pytest.raises(QuiescenceStall, match="idle/control"):
            sim.run()

    def test_rearm_never_moves_the_mark_backwards(self):
        sim = self._sim()
        sim.inject(MessageRecord(0, NEW_THREAD, "work"), t=5_000.0)
        sim.inject(MessageRecord(0, NEW_THREAD, "work"), t=0.0)  # stale t
        assert sim._wd_last_progress == 5_000.0


class TestQuiescedVersusStalled:
    def test_bounded_run_is_not_quiesced(self):
        """An ``until=`` window leaves the heap populated: not quiesced."""
        sim = Simulator(
            bench_machine(nodes=1),
            dispatcher=lambda sim, lane, record, start: 1.0,
        )
        for t in (10.0, 20.0, 30.0):
            sim.inject(MessageRecord(0, NEW_THREAD, "e"), t=t)
        sim.run(until=15.0)
        assert not sim.stats.quiesced
        sim.run()
        assert sim.stats.quiesced

    def test_harness_runners_assert_quiescence_by_default(self):
        from repro.harness.runner import _check_quiescence

        rt, _sink, stats = run_job()
        assert stats.quiesced
        _check_quiescence(rt, require=True)  # clean run: no raise
        # forge the silent-hang shape and check both policies
        stats.quiesced = False
        stats.pending_threads = 3
        _check_quiescence(rt, require=False)  # opted out: accepted
        with pytest.raises(QuiescenceStall, match="3 thread"):
            _check_quiescence(rt, require=True)
