"""The open-loop harness end to end: latency, verdicts, chaos soaks."""

import pytest

from repro.faults import FaultPlan
from repro.faults.transport import ReliabilityConfig
from repro.harness import run_service
from repro.machine.simulator import SimulationError
from repro.service import (
    BurstyArrivals,
    SLOSpec,
    ServiceWorkload,
    SteadyArrivals,
)


def _steady(seed=7, n=40, gap=3000.0, **wl_kw):
    wl = ServiceWorkload(seed=seed, n_vertices=32, **wl_kw)
    return wl.requests(SteadyArrivals(gap_cycles=gap).times(n))


class TestHealthyRun:
    def test_all_requests_complete_and_pass_slo(self):
        rec = run_service(_steady(), nodes=4, slo=SLOSpec())
        svc = rec.extra["service"]
        assert svc.status_counts == {
            "ok": 40, "deadline_miss": 0, "shed": 0, "lost": 0
        }
        assert svc.verdict.passed and svc.verdict.violations == []
        assert rec.metric > 0  # completed requests per second

    def test_every_class_gets_latency_samples(self):
        rec = run_service(_steady(n=80), nodes=4)
        hists = rec.extra["service"].latency_hist
        assert all(hists[cls].count > 0 for cls in hists)
        assert all(hists[cls].quantile_bound(0.99) > 0 for cls in hists)

    def test_parallel_workers_rejected_up_front(self):
        with pytest.raises(SimulationError, match="parallel"):
            run_service(_steady(n=4), nodes=4, parallel=True, shards=2)


class TestReproducibility:
    def test_same_seed_same_fingerprint(self):
        reqs = _steady()
        a = run_service(reqs, nodes=4, slo=SLOSpec()).extra["service"]
        b = run_service(reqs, nodes=4, slo=SLOSpec()).extra["service"]
        assert a.fingerprint() == b.fingerprint()
        assert a.verdict.to_dict() == b.verdict.to_dict()

    def test_shard_invariant(self):
        reqs = _steady()
        a = run_service(reqs, nodes=4, slo=SLOSpec()).extra["service"]
        b = run_service(reqs, nodes=4, slo=SLOSpec(), shards=2).extra["service"]
        assert a.fingerprint() == b.fingerprint()
        assert a.verdict.to_dict() == b.verdict.to_dict()


class TestDeadlines:
    def test_impossible_deadline_is_a_miss_not_a_loss(self):
        # 1-cycle deadlines: every request completes but far too late
        wl = ServiceWorkload(seed=7, n_vertices=32)
        reqs = [
            r.__class__(r.req_id, r.cls, r.t_arrival, 1.0, r.payload)
            for r in wl.requests(SteadyArrivals(gap_cycles=3000.0).times(20))
        ]
        svc = run_service(reqs, nodes=4, slo=SLOSpec()).extra["service"]
        assert svc.status_counts["deadline_miss"] == 20
        assert svc.status_counts["lost"] == 0
        assert not svc.verdict.passed
        assert any("deadline" in v for v in svc.verdict.violations)


class TestChaosSoak:
    PLAN = dict(faults=FaultPlan(seed=3, drop_rate=0.02), reliable=True)

    def test_drops_recovered_by_transport_still_pass(self):
        reqs = _steady()
        svc = run_service(reqs, nodes=4, slo=SLOSpec(), **self.PLAN).extra[
            "service"
        ]
        assert svc.fault_counts.get("msg_drop", 0) > 0
        assert svc.status_counts["lost"] == 0
        assert svc.verdict.passed

    def test_chaos_run_is_shard_invariant(self):
        reqs = _steady()
        a = run_service(reqs, nodes=4, slo=SLOSpec(), **self.PLAN)
        b = run_service(reqs, nodes=4, slo=SLOSpec(), shards=2, **self.PLAN)
        assert (
            a.extra["service"].fingerprint() == b.extra["service"].fingerprint()
        )

    def test_bursty_idle_gaps_survive_a_tight_watchdog(self):
        # idle gaps (120k cycles) dwarf the watchdog (30k): the rearm-on-
        # injection semantics plus the harness's one-arrival look-ahead
        # keep intentional idleness from tripping QuiescenceStall
        wl = ServiceWorkload(seed=7, n_vertices=32)
        reqs = wl.requests(
            BurstyArrivals(
                burst_size=8, gap_cycles=500.0, idle_gap_cycles=120_000.0
            ).times(32)
        )
        svc = run_service(
            reqs, nodes=4, slo=SLOSpec(), watchdog_cycles=30_000.0, **self.PLAN
        ).extra["service"]
        assert svc.status_counts["ok"] == 32
        assert svc.verdict.passed


class TestGiveUpSoak:
    """Retransmit-budget exhaustion mid-soak: accounted, not hung."""

    KW = dict(
        faults=FaultPlan(seed=9, drop_rate=0.25),
        reliable=ReliabilityConfig(max_retries=1, ack_timeout_cycles=3000.0),
    )

    def _run(self, **kw):
        reqs = ServiceWorkload(seed=11, n_vertices=32).requests(
            SteadyArrivals(gap_cycles=2500.0).times(50)
        )
        merged = dict(self.KW)
        merged.update(kw)
        return run_service(reqs, nodes=4, slo=SLOSpec(), **merged).extra[
            "service"
        ]

    def test_give_ups_are_recorded_and_fail_the_slo(self):
        svc = self._run()
        # the transport abandoned deliveries...
        assert svc.transport_give_ups > 0
        assert len(svc.give_up_log) == svc.transport_give_ups
        # ...each one recorded as a fault event (rdt_give_up), tier-free
        assert svc.fault_counts.get("rdt_give_up", 0) == svc.transport_give_ups
        # ...and the damage shows up as lost requests + a failing verdict
        # (not a hang: run_service returned)
        assert svc.status_counts["lost"] > 0
        assert not svc.verdict.passed
        assert any("lost" in v for v in svc.verdict.violations)
        # lost requests have no latency sample
        completed = sum(h.count for h in svc.latency_hist.values())
        assert completed == svc.status_counts["ok"] + svc.status_counts[
            "deadline_miss"
        ]

    def test_give_up_soak_is_deterministic_and_shard_invariant(self):
        a = self._run()
        b = self._run()
        c = self._run(shards=2)
        assert a.fingerprint() == b.fingerprint() == c.fingerprint()
        assert a.give_up_log == c.give_up_log  # sorted: order-free equality


class TestVerdictFormat:
    def test_to_dict_round_trips_through_json(self):
        import json

        svc = run_service(_steady(n=20), nodes=4, slo=SLOSpec()).extra[
            "service"
        ]
        blob = json.dumps(svc.verdict.to_dict())
        assert json.loads(blob)["passed"] is True

    def test_transport_give_up_bound_checked_when_set(self):
        slo = SLOSpec(max_transport_give_ups=0, max_lost=10**6)
        reqs = ServiceWorkload(seed=11, n_vertices=32).requests(
            SteadyArrivals(gap_cycles=2500.0).times(50)
        )
        svc = run_service(
            reqs,
            nodes=4,
            slo=slo,
            faults=FaultPlan(seed=9, drop_rate=0.25),
            reliable=ReliabilityConfig(max_retries=1, ack_timeout_cycles=3000.0),
        ).extra["service"]
        assert any("gave up" in v for v in svc.verdict.violations)
