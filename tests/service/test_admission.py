"""Admission control: the bounded queue-wait gate at the injection port."""

import pytest

from repro.harness import run_service
from repro.service import (
    AdmissionControl,
    Request,
    SLOSpec,
    ServiceWorkload,
    SteadyArrivals,
)


class _FakeNetwork:
    def __init__(self, backlog):
        self._backlog = backlog

    def injection_backlog(self, node, t):
        return self._backlog


class _FakeSim:
    def __init__(self, backlog):
        self.network = _FakeNetwork(backlog)


class TestDecide:
    def test_under_threshold_admits_at_arrival(self):
        adm = AdmissionControl(max_queue_wait_cycles=100.0)
        verdict, t = adm.decide(_FakeSim(backlog=50.0), 0, 10.0)
        assert (verdict, t) == ("admit", 10.0)
        assert adm.requests_admitted == 1

    def test_over_threshold_sheds_by_default(self):
        adm = AdmissionControl(max_queue_wait_cycles=100.0)
        verdict, _ = adm.decide(_FakeSim(backlog=250.0), 0, 10.0)
        assert verdict == "shed"
        assert adm.requests_shed == 1

    def test_defer_delays_until_backlog_drains(self):
        adm = AdmissionControl(max_queue_wait_cycles=100.0, policy="defer")
        verdict, t = adm.decide(_FakeSim(backlog=250.0), 0, 10.0)
        assert verdict == "defer"
        assert t == 10.0 + (250.0 - 100.0)
        assert adm.requests_deferred == 1
        assert adm.defer_cycles_total == 150.0

    def test_defer_bound_sheds_past_it(self):
        adm = AdmissionControl(
            max_queue_wait_cycles=100.0, policy="defer", max_defer_cycles=50.0
        )
        verdict, _ = adm.decide(_FakeSim(backlog=250.0), 0, 10.0)
        assert verdict == "shed"

    def test_default_admits_everything(self):
        adm = AdmissionControl()
        verdict, _ = adm.decide(_FakeSim(backlog=1e12), 0, 0.0)
        assert verdict == "admit"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionControl(policy="drop")
        with pytest.raises(ValueError):
            AdmissionControl(max_queue_wait_cycles=-1.0)


def _hot_node_flood():
    """Every request enters lane 0 — one node takes the whole stream."""
    wl = ServiceWorkload(seed=5, n_vertices=16)
    base = wl.requests(SteadyArrivals(gap_cycles=120.0).times(60))
    return [
        Request(r.req_id * 4, r.cls, r.t_arrival, r.deadline_cycles, r.payload)
        for r in base
    ]


class TestUnderLoad:
    # shrink injection bandwidth so the hot node's channel really queues
    BW = dict(node_injection_bytes_per_cycle=0.1)

    def test_shed_counts_and_statuses(self):
        adm = AdmissionControl(max_queue_wait_cycles=64.0, policy="shed")
        rec = run_service(
            _hot_node_flood(), nodes=2, admission=adm, slo=SLOSpec(), **self.BW
        )
        svc = rec.extra["service"]
        assert svc.admission.requests_shed > 0
        assert svc.status_counts["shed"] == svc.admission.requests_shed
        # everything admitted still completed — shedding protected the node
        assert svc.status_counts["lost"] == 0
        # and the shed fraction is big enough to fail the default SLO
        assert not svc.verdict.passed
        assert any("shed" in v for v in svc.verdict.violations)

    def test_defer_admits_more_than_shed(self):
        shed = AdmissionControl(max_queue_wait_cycles=64.0, policy="shed")
        defer = AdmissionControl(max_queue_wait_cycles=64.0, policy="defer")
        reqs = _hot_node_flood()
        a = run_service(reqs, nodes=2, admission=shed, **self.BW)
        b = run_service(reqs, nodes=2, admission=defer, **self.BW)
        sa, sb = a.extra["service"], b.extra["service"]
        assert sb.admission.requests_deferred > 0
        assert sb.admission.requests_shed < sa.admission.requests_shed
        assert sb.status_counts["lost"] == 0

    def test_shed_decisions_are_shard_invariant(self):
        adm1 = AdmissionControl(max_queue_wait_cycles=64.0, policy="shed")
        adm2 = AdmissionControl(max_queue_wait_cycles=64.0, policy="shed")
        reqs = _hot_node_flood()
        a = run_service(reqs, nodes=2, admission=adm1, **self.BW)
        b = run_service(reqs, nodes=2, admission=adm2, shards=2, **self.BW)
        assert (
            a.extra["service"].fingerprint() == b.extra["service"].fingerprint()
        )
