"""Workload generation: pure function of (seed, arrivals), sane payloads."""

import pytest

from repro.service import (
    DEFAULT_DEADLINES,
    REQUEST_CLASSES,
    ServiceMix,
    ServiceWorkload,
    SteadyArrivals,
)


def _requests(seed=0, n=100, **kw):
    wl = ServiceWorkload(seed=seed, **kw)
    return wl, wl.requests(SteadyArrivals(gap_cycles=100.0).times(n))


class TestDeterminism:
    def test_same_seed_same_stream(self):
        _, a = _requests(seed=5)
        _, b = _requests(seed=5)
        assert a == b

    def test_seeds_differ(self):
        _, a = _requests(seed=5)
        _, b = _requests(seed=6)
        assert a != b


class TestShape:
    def test_ids_sequential_and_arrivals_taken(self):
        _, reqs = _requests(n=10)
        assert [r.req_id for r in reqs] == list(range(10))
        assert [r.t_arrival for r in reqs] == [100.0 * k for k in range(10)]

    def test_all_classes_appear_and_respect_weights(self):
        wl, reqs = _requests(n=400)
        counts = wl.class_counts(reqs)
        assert set(counts) == set(REQUEST_CLASSES)
        assert all(c > 0 for c in counts.values())
        # update has weight 4 of 8 — roughly half the stream
        assert 0.35 < counts["update"] / len(reqs) < 0.65

    def test_deadlines_from_mix(self):
        _, reqs = _requests(n=50)
        for r in reqs:
            assert r.deadline_cycles == DEFAULT_DEADLINES[r.cls]

    def test_payload_shapes(self):
        wl, reqs = _requests(n=200, n_vertices=16, n_etypes=3)
        for r in reqs:
            if r.cls == "update":
                src, dst, etype, ts = r.payload
                assert 0 <= src < 16 and 0 <= dst < 16 and 0 <= etype < 3
            elif r.cls == "exact":
                src, dst = r.payload
                assert 0 <= src < 16 and 0 <= dst < 16
            elif r.cls == "multihop":
                vid, hops = r.payload
                assert 0 <= vid < 16 and hops == wl.mix.multihop_hops
            else:
                pattern_id, stage, vid = r.payload
                p = {p.pattern_id: p for p in wl.patterns}[pattern_id]
                assert 0 <= stage < max(1, len(p.types) - 1)
                assert 0 <= vid < 16

    def test_queries_bias_to_touched_vertices(self):
        wl, reqs = _requests(n=300, n_vertices=1024)
        touched = {r.payload[1] for r in reqs if r.cls == "update"}

        def target(r):
            return r.payload[0] if r.cls == "multihop" else r.payload[2]

        biased = [r for r in reqs if r.cls in ("multihop", "partial")]
        hits = [r for r in biased if target(r) in touched]
        # with 1024 vertices, random targets would almost never land on
        # touched ones; the bias makes nearly all of them land there
        assert len(hits) >= len(biased) - 1  # first query may precede updates


class TestMix:
    def test_zero_hops_drops_multihop(self):
        mix = ServiceMix(multihop_hops=0)
        assert "multihop" not in dict(mix.weights())

    def test_all_zero_weights_rejected(self):
        mix = ServiceMix(
            update_weight=0, exact_weight=0, multihop_weight=0, partial_weight=0
        )
        with pytest.raises(ValueError):
            mix.weights()

    def test_workload_validates_sizes(self):
        with pytest.raises(ValueError):
            ServiceWorkload(n_vertices=0)
