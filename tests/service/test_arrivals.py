"""Arrival processes: deterministic, monotone, and shaped as labeled."""

import math

import pytest

from repro.service import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    SteadyArrivals,
)


class TestSteady:
    def test_constant_gap(self):
        times = SteadyArrivals(gap_cycles=100.0).times(5)
        assert times == [0.0, 100.0, 200.0, 300.0, 400.0]

    def test_start_offset(self):
        assert SteadyArrivals(50.0, start_cycles=7.0).times(2) == [7.0, 57.0]

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError):
            SteadyArrivals(0.0)


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = PoissonArrivals(1000.0, seed=3).times(50)
        b = PoissonArrivals(1000.0, seed=3).times(50)
        assert a == b

    def test_seeds_differ(self):
        assert PoissonArrivals(1000.0, seed=3).times(20) != PoissonArrivals(
            1000.0, seed=4
        ).times(20)

    def test_prefix_stable(self):
        # counter-keyed draws: asking for more arrivals never changes
        # the ones already generated
        assert (
            PoissonArrivals(1000.0, seed=3).times(100)[:20]
            == PoissonArrivals(1000.0, seed=3).times(20)
        )

    def test_mean_gap_roughly_matches(self):
        times = PoissonArrivals(1000.0, seed=1).times(4000)
        mean = times[-1] / (len(times) - 1)
        assert 900.0 < mean < 1100.0

    def test_strictly_increasing(self):
        times = PoissonArrivals(500.0, seed=2).times(200)
        assert all(b > a for a, b in zip(times, times[1:]))


class TestBursty:
    def test_burst_then_idle_structure(self):
        times = BurstyArrivals(
            burst_size=3, gap_cycles=10.0, idle_gap_cycles=1000.0
        ).times(7)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == [10.0, 10.0, 1000.0, 10.0, 10.0, 1000.0]

    def test_rejects_zero_burst(self):
        with pytest.raises(ValueError):
            BurstyArrivals(0, 10.0, 100.0)


class TestDiurnal:
    def test_rate_modulates_around_base(self):
        times = DiurnalArrivals(
            base_gap_cycles=100.0, amplitude=0.5, day_cycles=40_000.0
        ).times(400)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # peak-rate gaps shrink toward 1/(1.5 rate), troughs stretch
        assert min(gaps) < 80.0
        assert max(gaps) > 120.0

    def test_zero_amplitude_is_steady(self):
        times = DiurnalArrivals(100.0, 0.0, 1_000.0).times(10)
        assert times == SteadyArrivals(100.0).times(10)

    def test_amplitude_bounded(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(100.0, 0.99, 1_000.0)

    def test_nondecreasing(self):
        times = DiurnalArrivals(100.0, 0.9, 5_000.0).times(500)
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert all(math.isfinite(t) for t in times)
