"""Harness: runners, sweeps, reports, LoC metrics."""

import pytest

from repro.apps import Pattern, make_workload
from repro.graph import rmat
from repro.harness import (
    RunRecord,
    TABLE5_MAP,
    TABLE5_PAPER_LOC,
    bench_config,
    count_loc,
    is_monotone_nondecreasing,
    repo_loc,
    run_bfs,
    run_ingestion,
    run_pagerank,
    run_partial_match,
    run_triangle_count,
    scaling_efficiency,
    series_table,
    shape_agreement,
    speedup_table,
    speedups,
    sweep,
    table5_loc,
)


class TestRunners:
    def test_pagerank_runner(self, rmat_s6):
        rec = run_pagerank(rmat_s6, nodes=2, max_degree=16)
        assert rec.nodes == 2
        assert rec.seconds > 0
        assert rec.extra["edges"] == rmat_s6.m

    def test_bfs_runner(self, rmat_s6):
        rec = run_bfs(rmat_s6, nodes=2, max_degree=16)
        assert rec.extra["rounds"] >= 1
        assert rec.metric > 0

    def test_tc_runner(self, rmat_s6):
        from repro.baselines import triangle_count

        rec = run_triangle_count(rmat_s6, nodes=2)
        assert rec.extra["triangles"] == triangle_count(rmat_s6)

    def test_ingestion_runner(self):
        recs = make_workload(40, seed=0)
        rec = run_ingestion(recs, nodes=2)
        assert rec.extra["records"] == len(recs)

    def test_partial_match_runner(self):
        recs = make_workload(20, n_edge_types=2, seed=0)
        rec = run_partial_match(
            recs, [Pattern(0, (0, 1))], nodes=1, gap_cycles=50_000
        )
        assert rec.seconds > 0

    def test_bench_config_shape(self):
        cfg = bench_config(8)
        assert cfg.nodes == 8
        assert cfg.lanes_per_node == 2


class TestSweepAnalysis:
    def _records(self, times):
        return [
            RunRecord(nodes=n, seconds=t, metric=0.0)
            for n, t in times
        ]

    def test_speedups_normalize_to_first(self):
        rs = self._records([(1, 10.0), (2, 5.0), (4, 2.5)])
        assert speedups(rs) == {1: 1.0, 2: 2.0, 4: 4.0}

    def test_scaling_efficiency(self):
        rs = self._records([(1, 10.0), (4, 5.0)])
        eff = scaling_efficiency(rs)
        assert eff[4] == pytest.approx(0.5)

    def test_monotone_check(self):
        assert is_monotone_nondecreasing([1, 2, 3, 3.1])
        assert is_monotone_nondecreasing([1, 2, 1.99])  # within slack
        assert not is_monotone_nondecreasing([1, 2, 1.0])

    def test_shape_agreement_perfect(self):
        m = {1: 1.0, 2: 2.0, 4: 3.9, 8: 7.0}
        assert shape_agreement(m, m) == pytest.approx(1.0)

    def test_shape_agreement_reversed(self):
        m = {1: 1.0, 2: 2.0, 4: 3.0}
        r = {1: 3.0, 2: 2.0, 4: 1.0}
        assert shape_agreement(m, r) == pytest.approx(-1.0)

    def test_shape_agreement_needs_points(self):
        with pytest.raises(ValueError):
            shape_agreement({1: 1.0}, {1: 1.0})

    def test_ranks_average_ties(self):
        from repro.harness.sweep import _ranks

        # the two 5.0s span rank positions 1 and 2 -> both get 1.5
        assert _ranks([5.0, 1.0, 5.0]) == [1.5, 0.0, 1.5]
        assert _ranks([2.0, 2.0, 2.0]) == [1.0, 1.0, 1.0]

    def test_shape_agreement_with_ties(self):
        """Tied speedups (a saturated plateau) must not be ranked as if
        one of them were faster than the other."""
        measured = {1: 1.0, 2: 2.0, 4: 2.0, 8: 3.0}
        reported = {1: 1.0, 2: 2.0, 4: 2.1, 8: 3.0}
        # average ranks put both tied points at 1.5 vs 1 and 2:
        # d^2 = 2 * 0.25, rho = 1 - 6*0.5/(4*15)
        assert shape_agreement(measured, reported) == pytest.approx(0.95)
        # a tie against the same tie is perfect agreement
        assert shape_agreement(measured, measured) == pytest.approx(1.0)

    def test_sweep_runs_each_config(self, rmat_s6):
        rs = sweep(run_pagerank, (1, 2), graph=rmat_s6, max_degree=16)
        assert [r.nodes for r in rs] == [1, 2]

    def test_empty_speedups(self):
        assert speedups([]) == {}

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedups(self._records([(1, 0.0), (2, 1.0)]))


class TestReports:
    def test_speedup_table_renders(self):
        txt = speedup_table(
            "PR strong scaling",
            (1, 2, 4),
            {"rmat": {1: 1.0, 2: 2.0, 4: 3.5}},
            reported={"rmat": {1: 1.0, 2: 2.21, 4: 3.39}},
        )
        assert "PR strong scaling" in txt
        assert "paper" in txt
        assert "3.50" in txt

    def test_speedup_table_handles_missing_points(self):
        txt = speedup_table("t", (1, 8), {"g": {1: 1.0}})
        assert "-" in txt

    def test_series_table(self):
        txt = series_table("x", [(1, 2.5), (2, 5.0)], ["nodes", "val"])
        assert "nodes" in txt and "2.5" in txt


class TestLoc:
    def test_table5_rows_all_measured(self):
        measured = table5_loc()
        assert set(measured) == set(TABLE5_PAPER_LOC)
        assert all(v > 0 for v in measured.values())

    def test_count_loc_excludes_comments_and_docstrings(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text(
            '"""module docstring\nspanning lines"""\n'
            "# comment\n"
            "x = 1\n"
            "\n"
            "def f():\n"
            '    """doc"""\n'
            "    return x  # trailing comment still code\n"
        )
        assert count_loc(f) == 3  # x = 1, def f, return

    def test_repo_loc_is_substantial(self):
        assert repo_loc() > 4000

    def test_mapped_files_exist(self):
        from pathlib import Path

        import repro

        root = Path(repro.__file__).parent
        for files in TABLE5_MAP.values():
            for f in files:
                assert (root / f).exists(), f


class TestExport:
    def test_speedup_csv_roundtrip(self, tmp_path):
        from repro.harness import read_csv, write_speedup_csv

        path = write_speedup_csv(
            tmp_path / "s.csv",
            (1, 2, 4),
            {"g": {1: 1.0, 2: 2.0, 4: 3.5}},
            reported={"g": {1: 1.0, 2: 2.2}},
        )
        rows = read_csv(path)
        assert rows[0] == ["nodes", "g_measured", "g_paper"]
        assert rows[1] == ["1", "1.0", "1.0"]
        assert rows[3] == ["4", "3.5", ""]  # missing paper point

    def test_series_csv(self, tmp_path):
        from repro.harness import read_csv, write_series_csv

        path = write_series_csv(
            tmp_path / "t.csv", [(1, 0.5), (2, 0.25)], ["nodes", "sec"]
        )
        rows = read_csv(path)
        assert rows == [["nodes", "sec"], ["1", "0.5"], ["2", "0.25"]]


class TestInspect:
    def _run(self):
        from repro.graph import rmat
        from repro.apps import PageRankApp
        from repro.machine import bench_machine
        from repro.udweave import UpDownRuntime

        # detailed_stats: event_report needs the per-label histogram
        rt = UpDownRuntime(bench_machine(nodes=4), detailed_stats=True)
        PageRankApp(rt, rmat(7, seed=48), max_degree=16,
                    block_size=4096).run(max_events=10_000_000)
        return rt.sim

    def test_memory_report_shows_shares(self):
        from repro.harness import memory_report

        sim = self._run()
        text = memory_report(sim)
        assert "bytes_served" in text
        assert "hot/mean ratio" in text

    def test_lane_report_shows_balance(self):
        from repro.harness import lane_report

        sim = self._run()
        text = lane_report(sim)
        assert "imbalance" in text and "utilization" in text

    def test_event_report_ranks_labels(self):
        from repro.harness import event_report

        sim = self._run()
        text = event_report(sim, top=3)
        assert "PRReduceTask::__reduce_entry__" in text

    def test_full_report_concatenates(self):
        from repro.harness import full_report

        sim = self._run()
        text = full_report(sim)
        assert "ticks=" in text and "bytes_served" in text
