"""The example scripts run and self-validate (they assert internally)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

#: the fast examples run in the suite; the slower sweeps are exercised by
#: the benchmarks that subsume them
FAST_EXAMPLES = [
    "quickstart.py",
    "custom_binding.py",
    "streaming_partial_match.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-800:]
    assert result.stdout.strip(), "examples should narrate their output"


def test_all_examples_exist_and_are_listed():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    readme = (EXAMPLES / "README.md").read_text()
    for script in scripts:
        assert script in readme, f"{script} missing from examples/README.md"
