"""The artifact-style CLI pipeline, end to end.

Mirrors the artifact appendix's T1 (data preparation) -> T2 (simulation)
flow: generate an RMAT edge list, preprocess it with split_and_shuffle /
tsv, and run each application binary against the binaries.
"""

import numpy as np
import pytest

from repro.tools import bfs as bfs_cli
from repro.tools import pagerank as pr_cli
from repro.tools import rmat as rmat_cli
from repro.tools import split_and_shuffle as sas_cli
from repro.tools import tc as tc_cli
from repro.tools import tsv as tsv_cli
from repro.tools.common import load_prefix_as_graph, read_edge_list


@pytest.fixture(scope="module")
def edge_list(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli")
    out = d / "rmat-s7.txt"
    rmat_cli.main(["-s", "7", "--seed", "48", "-o", str(out)])
    return out


class TestGenerators:
    def test_rmat_writes_edge_factor_times_n(self, edge_list):
        edges = read_edge_list(edge_list)
        assert len(edges) == 16 * 128

    def test_read_edge_list_skips_comments(self, tmp_path):
        f = tmp_path / "g.txt"
        f.write_text("# header\n% other\n0 1\n1\t2\n")
        edges = read_edge_list(f)
        assert edges.tolist() == [[0, 1], [1, 2]]

    def test_skip_lines_option(self, tmp_path):
        f = tmp_path / "g.txt"
        f.write_text("garbage that is not an edge\n0 1\n")
        edges = read_edge_list(f, skip_lines=1)
        assert edges.tolist() == [[0, 1]]

    def test_empty_file_rejected(self, tmp_path):
        f = tmp_path / "g.txt"
        f.write_text("# nothing\n")
        with pytest.raises(ValueError):
            read_edge_list(f)


class TestPreprocessing:
    def test_split_and_shuffle_outputs(self, edge_list):
        prefix = sas_cli.main(
            ["-f", str(edge_list), "-m", "16", "-s", "--seed", "1"]
        )
        assert prefix.with_name(prefix.name + "_gv.bin").exists()
        assert prefix.with_name(prefix.name + "_nl.bin").exists()
        stats = edge_list.with_name(f"{edge_list.stem}_m16_stats.txt")
        assert stats.exists()
        assert "max_degree" in stats.read_text()

    def test_roundtrip_reconstructs_graph(self, edge_list):
        from repro.graph.csr import CSRGraph

        prefix = sas_cli.main(
            ["-f", str(edge_list), "-m", "16", "--seed", "1"]
        )
        rebuilt, meta = load_prefix_as_graph(prefix)
        direct = CSRGraph.from_edges(
            read_edge_list(edge_list), symmetrize=True
        )
        assert rebuilt.n == direct.n
        assert rebuilt.m == direct.m
        assert sorted(rebuilt.edges()) == sorted(direct.edges())

    def test_tsv_outputs(self, edge_list, tmp_path):
        prefix = tsv_cli.main(
            [str(edge_list), str(tmp_path / "tc-graph")]
        )
        graph, meta = load_prefix_as_graph(prefix)
        assert meta["max_degree"] is None  # unsplit
        assert graph.is_symmetric()


class TestRunners:
    def test_pagerank_cli_runs_and_verifies(self, edge_list):
        prefix = sas_cli.main(
            ["-f", str(edge_list), "-m", "32", "--seed", "1"]
        )
        seconds = pr_cli.main([str(prefix), "2", "--verify"])
        assert seconds > 0

    def test_bfs_cli_runs_and_verifies(self, edge_list):
        prefix = sas_cli.main(
            ["-f", str(edge_list), "-m", "64", "--seed", "1"]
        )
        seconds = bfs_cli.main([str(prefix), "2", "--verify"])
        assert seconds > 0

    def test_tc_cli_runs_and_verifies(self, edge_list, tmp_path):
        prefix = tsv_cli.main([str(edge_list), str(tmp_path / "tc")])
        count = tc_cli.main([str(prefix), "2", "--verify"])
        assert count > 0

    def test_tc_pbmw_same_count(self, edge_list, tmp_path):
        prefix = tsv_cli.main([str(edge_list), str(tmp_path / "tc2")])
        a = tc_cli.main([str(prefix), "2"])
        b = tc_cli.main([str(prefix), "2", "--pbmw"])
        assert a == b


class TestRunnerOptions:
    def test_pagerank_mem_nodes_flag(self, edge_list):
        prefix = sas_cli.main(
            ["-f", str(edge_list), "-m", "32", "--seed", "2"]
        )
        narrow = pr_cli.main([str(prefix), "4", "--mem-nodes", "1"])
        wide = pr_cli.main([str(prefix), "4", "--mem-nodes", "4"])
        assert wide < narrow  # the Figure 12 effect through the CLI

    def test_bfs_nonzero_root(self, edge_list):
        prefix = sas_cli.main(
            ["-f", str(edge_list), "-m", "64", "--seed", "2"]
        )
        seconds = bfs_cli.main([str(prefix), "2", "--root", "5", "--verify"])
        assert seconds > 0

    def test_pagerank_multiple_iterations(self, edge_list):
        prefix = sas_cli.main(
            ["-f", str(edge_list), "-m", "32", "--seed", "3"]
        )
        one = pr_cli.main([str(prefix), "2", "--iterations", "1"])
        two = pr_cli.main([str(prefix), "2", "--iterations", "2"])
        assert two > one
