"""Public API surface: every exported name is importable and documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.machine",
    "repro.udweave",
    "repro.memmodel",
    "repro.kvmsr",
    "repro.datastruct",
    "repro.graph",
    "repro.apps",
    "repro.baselines",
    "repro.harness",
    "repro.observe",
    "repro.service",
    "repro.workflows",
    "repro.tools",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports_and_documents(package):
    mod = importlib.import_module(package)
    assert mod.__doc__, f"{package} needs a module docstring"


@pytest.mark.parametrize(
    "package", [p for p in PACKAGES if p not in ("repro", "repro.tools")]
)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    exported = getattr(mod, "__all__", None)
    assert exported, f"{package} should declare __all__"
    for name in exported:
        assert hasattr(mod, name), f"{package}.{name} missing"


@pytest.mark.parametrize(
    "package", [p for p in PACKAGES if p not in ("repro", "repro.tools")]
)
def test_public_classes_have_docstrings(package):
    mod = importlib.import_module(package)
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{package}.{name} needs a docstring"


def test_version_is_set():
    import repro

    assert repro.__version__


def test_quickstart_snippet_from_package_docstring():
    """The package docstring's quick start must actually run."""
    from repro.apps import PageRankApp
    from repro.graph import rmat
    from repro.machine import bench_machine
    from repro.udweave import UpDownRuntime

    rt = UpDownRuntime(bench_machine(nodes=4))
    result = PageRankApp(rt, rmat(8, seed=48), max_degree=64).run()
    assert len(result.ranks) == 256
    assert result.giga_updates_per_second > 0
