"""Packet-coalescing fabric (DESIGN.md "Packet coalescing & fused dispatch").

Coalescing is a *host-side* optimization: remote records whose deliveries
fall in one window share a single heap entry (a ``PacketRecord``), but
each record still pays its own injection occupancy and remote latency at
issue time.  The contract under test:

* the window rule — join only while delivery < ``window_end``, same
  (src, dst) node pair, strictly increasing member keys;
* every delivery time, counter, and dispatch order is bit-identical to a
  coalescing-off run (only ``packets_sent`` / ``records_coalesced``
  differ, and those two must sum to the coalesced remote deliveries);
* packets survive ``until=`` parking, ``max_events`` aborts, and pickling
  (the parallel boundary relay ships them as single blobs);
* invalid combinations (jitter, bad windows) are rejected loudly.
"""

import pickle

import pytest

from repro.machine import (
    HOST_NWID,
    MessageRecord,
    SimulationError,
    Simulator,
    bench_machine,
)
from repro.machine.events import NEW_THREAD, PACKET_NWID, PacketRecord


def _sim(**overrides):
    executed = []

    def dispatcher(sim, lane, rec, start):
        executed.append((rec.label, lane.network_id, start))
        return 1.0

    sim = Simulator(
        bench_machine(nodes=2, **overrides), dispatcher=dispatcher
    )
    sim.executed = executed
    return sim


def _remote_lane(sim, node=1, lane=0):
    return sim.config.first_lane_of_node(node) + lane


class TestConfigValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="coalescing_window_cycles"):
            bench_machine(nodes=2, coalescing_window_cycles=0.0)

    def test_window_must_not_exceed_remote_base(self):
        cfg = bench_machine(nodes=2)
        with pytest.raises(ValueError, match="coalescing_window_cycles"):
            bench_machine(
                nodes=2,
                coalescing_window_cycles=cfg.remote_msg_latency_cycles + 1,
            )

    def test_window_defaults_to_remote_base(self):
        cfg = bench_machine(nodes=2, coalescing=True)
        assert cfg.coalescing_window == float(cfg.remote_msg_latency_cycles)
        cfg2 = bench_machine(nodes=2, coalescing_window_cycles=250.0)
        assert cfg2.coalescing_window == 250.0

    def test_jitter_rejected(self):
        """Jittered remote latency breaks the delivery >= issue + base
        bound the join-before-pop argument rests on."""
        with pytest.raises(SimulationError, match="jitter"):
            Simulator(
                bench_machine(nodes=2, coalescing=True),
                latency_jitter_cycles=5.0,
            )


class TestWindowRule:
    def test_back_to_back_sends_share_one_packet(self):
        sim = _sim(coalescing=True)
        dst = _remote_lane(sim)
        for i in range(4):
            sim.send(
                MessageRecord(dst, NEW_THREAD, f"m{i}"), float(i), src_node=0
            )
        assert sim.stats.packets_sent == 1
        assert sim.stats.records_coalesced == 3
        assert len(sim._heap) == 1
        assert sim._heap[0][3].network_id == PACKET_NWID
        sim.run()
        assert [e[0] for e in sim.executed] == ["m0", "m1", "m2", "m3"]
        assert sim.stats.events_executed == 4
        assert sim.stats.messages_remote == 4

    def test_delivery_at_window_end_starts_new_packet(self):
        """Membership is strict: delivery == window_end opens a fresh
        packet (windows are half-open, [t0, t0 + W))."""
        sim = _sim(coalescing=True)
        dst = _remote_lane(sim)
        base = float(sim.config.remote_msg_latency_cycles)
        sim.send(MessageRecord(dst, NEW_THREAD, "a"), 0.0, src_node=0)
        # issued exactly one base later: delivery lands on window_end
        sim.send(MessageRecord(dst, NEW_THREAD, "b"), base, src_node=0)
        assert sim.stats.packets_sent == 2
        assert sim.stats.records_coalesced == 0

    def test_delivery_inside_window_joins(self):
        sim = _sim(coalescing=True)
        dst = _remote_lane(sim)
        base = float(sim.config.remote_msg_latency_cycles)
        sim.send(MessageRecord(dst, NEW_THREAD, "a"), 0.0, src_node=0)
        sim.send(MessageRecord(dst, NEW_THREAD, "b"), base - 1.0, src_node=0)
        assert sim.stats.packets_sent == 1
        assert sim.stats.records_coalesced == 1

    def test_distinct_node_pairs_never_share(self):
        sim = _sim(coalescing=True)
        dst = _remote_lane(sim)
        sim.send(MessageRecord(dst, NEW_THREAD, "fwd"), 0.0, src_node=0)
        sim.send(MessageRecord(0, NEW_THREAD, "rev"), 0.0, src_node=1)
        assert sim.stats.packets_sent == 2
        assert sim.stats.records_coalesced == 0

    def test_local_and_host_traffic_never_coalesces(self):
        sim = _sim(coalescing=True)
        sim.send(MessageRecord(0, NEW_THREAD, "local"), 0.0, src_node=0)
        sim.send(
            MessageRecord(0, NEW_THREAD, "inject", src_network_id=None),
            0.0,
            src_node=None,
        )
        sim.send(MessageRecord(HOST_NWID, 0, "done"), 0.0, src_node=0)
        assert sim.stats.packets_sent == 0
        assert sim.stats.records_coalesced == 0

    def test_delivery_times_match_uncoalesced(self):
        """send() returns the same delivery times with coalescing on —
        the cost model is charged per record, at issue, either way."""

        def deliveries(coalescing):
            sim = _sim(coalescing=coalescing)
            dst = _remote_lane(sim)
            return [
                sim.send(
                    MessageRecord(dst, NEW_THREAD, f"m{i}"),
                    float(i) * 0.25,
                    src_node=0,
                )
                for i in range(16)
            ]

        assert deliveries(True) == deliveries(False)


class TestDispatchParity:
    def _fanout(self, coalescing, *, step=None):
        """Seeds on both nodes spray remote messages both directions."""
        fanned = []

        def dispatcher(sim, lane, rec, start):
            if rec.label == "seed":
                node = sim.config.node_of(lane.network_id)
                other = sim.config.first_lane_of_node(1 - node)
                for i in range(6):
                    sim.send(
                        MessageRecord(other + (i % 2), NEW_THREAD, "w"),
                        start + 2.0 + i,
                        src_node=node,
                    )
            fanned.append((rec.label, lane.network_id, start))
            return 2.0

        sim = Simulator(
            bench_machine(nodes=2, coalescing=coalescing),
            dispatcher=dispatcher,
        )
        dst1 = sim.config.first_lane_of_node(1)
        for t in (0.0, 1.0, 700.0, 2500.0):
            sim.inject(MessageRecord(0, NEW_THREAD, "seed"), t=t)
            sim.inject(MessageRecord(dst1, NEW_THREAD, "seed"), t=t + 0.5)
        if step is None:
            sim.run()
        else:
            t = 0.0
            while sim._heap:
                t += step
                sim.run(until=t)
            sim.run()
        return fanned, sim.stats.scalar_snapshot()

    @staticmethod
    def _strip(snapshot):
        out = dict(snapshot)
        out.pop("packets_sent")
        out.pop("records_coalesced")
        return out

    def test_execution_order_bit_identical(self):
        off_order, off_fp = self._fanout(False)
        on_order, on_fp = self._fanout(True)
        assert on_order == off_order
        assert self._strip(on_fp) == self._strip(off_fp)
        assert on_fp["packets_sent"] > 0
        assert on_fp["records_coalesced"] > 0
        # record conservation: every remote record either opened a
        # packet or joined one
        assert (
            on_fp["packets_sent"] + on_fp["records_coalesced"]
            == on_fp["messages_remote"]
        )

    def test_until_stepping_parks_and_resumes_packets(self):
        """Bounded stepping (the shard drivers' idiom) must cut through
        packet interiors without losing or reordering members."""
        whole_order, whole_fp = self._fanout(True)
        for step in (100.0, 333.0, 1001.0):
            stepped_order, stepped_fp = self._fanout(True, step=step)
            assert stepped_order == whole_order, step
            assert stepped_fp == whole_fp, step

    def test_max_events_abort_leaves_heap_coherent(self):
        """A mid-packet max_events abort parks the unexecuted remainder;
        resuming completes the run with the full-run totals."""

        def run(limit):
            executed = []

            def dispatcher(sim, lane, rec, start):
                executed.append((rec.label, lane.network_id, start))
                return 1.0

            sim = Simulator(
                bench_machine(nodes=2, coalescing=True),
                dispatcher=dispatcher,
            )
            dst = sim.config.first_lane_of_node(1)
            for i in range(8):
                sim.send(
                    MessageRecord(dst + (i % 2), NEW_THREAD, f"m{i}"),
                    float(i),
                    src_node=0,
                )
            assert sim.stats.packets_sent == 1
            if limit is not None:
                with pytest.raises(SimulationError):
                    sim.run(max_events=limit)
            sim.run()
            return executed, sim.stats.scalar_snapshot()

        golden = run(None)
        for limit in (1, 3, 5, 7):
            assert run(limit) == golden, limit


class TestPacketPickling:
    def test_reduce_round_trips_members(self):
        """The parallel boundary relay pickles one blob per packet; the
        reconstructed packet must carry identical member keys/payloads."""
        pkt = PacketRecord(1234.5)
        for i in range(3):
            rec = MessageRecord(
                7 + i,
                NEW_THREAD,
                f"m{i}",
                (i, "payload"),
                None,
                3,
                "msg",
                i,
            )
            pkt.members.append((1000.0 + i, 7 + i, (4 << 44) | i, rec))
        pkt.cursor = 1
        clone = pickle.loads(pickle.dumps(pkt))
        assert clone.network_id == PACKET_NWID
        assert clone.window_end == pkt.window_end
        assert clone.cursor == 1
        assert clone.open  # dst shard records the histogram at unwrap
        assert len(clone.members) == 3
        for (t, d, s, rec), (ct, cd, cs, crec) in zip(
            pkt.members, clone.members
        ):
            assert (ct, cd, cs) == (t, d, s)
            assert crec.network_id == rec.network_id
            assert crec.label == rec.label
            assert crec.operands == rec.operands
            assert crec.src_network_id == rec.src_network_id
            assert crec.label_id == rec.label_id


class TestRecorderTaxonomy:
    def test_packet_sizes_histogram_populated(self):
        from repro.observe import make_recorder

        rec = make_recorder("histograms")
        sim = Simulator(
            bench_machine(nodes=2, coalescing=True),
            dispatcher=lambda s, lane, r, start: 1.0,
            recorder=rec,
        )
        dst = sim.config.first_lane_of_node(1)
        for i in range(5):
            sim.send(
                MessageRecord(dst, NEW_THREAD, f"m{i}"), float(i), src_node=0
            )
        sim.run()
        assert rec.packets_recorded == sim.stats.packets_sent == 1
        assert rec.packet_records == 5
        assert rec.packet_sizes.count == 1
