"""DRAM channel model: latency, bandwidth occupancy, remote penalties."""

import pytest

from repro.machine import bench_machine
from repro.machine.memory import MemoryChannel, MemorySystem


@pytest.fixture
def cfg():
    return bench_machine(
        nodes=2,
        dram_latency_cycles=200,
        node_dram_bytes_per_cycle=64.0,
        remote_dram_bandwidth_ratio=1 / 3,
    )


class TestChannel:
    def test_latency_plus_occupancy(self):
        ch = MemoryChannel()
        r = ch.service(0.0, 64, bytes_per_cycle=64.0, latency_cycles=200.0)
        assert r.service_start == 0.0
        assert r.occupancy == 1.0
        assert r.response_ready == 201.0

    def test_requests_serialize_on_bandwidth(self):
        ch = MemoryChannel()
        ch.service(0.0, 640, 64.0, 200.0)  # occupies 10 cycles
        r2 = ch.service(0.0, 64, 64.0, 200.0)
        assert r2.service_start == 10.0

    def test_idle_channel_starts_immediately(self):
        ch = MemoryChannel()
        ch.service(0.0, 64, 64.0, 200.0)
        r = ch.service(100.0, 64, 64.0, 200.0)
        assert r.service_start == 100.0

    def test_counters(self):
        ch = MemoryChannel()
        ch.service(0.0, 64, 64.0, 200.0)
        ch.service(0.0, 128, 64.0, 200.0)
        assert ch.bytes_served == 192
        assert ch.requests == 2


class TestMemorySystem:
    def test_local_vs_remote_bandwidth(self, cfg):
        mem = MemorySystem(cfg)
        local = mem.access(0.0, requester_node=0, memory_node=0, nbytes=192)
        remote = MemorySystem(cfg).access(
            0.0, requester_node=1, memory_node=0, nbytes=192
        )
        # remote requesters get 1/3 of the bandwidth (paper §3.2's 3:1)
        assert remote.occupancy == pytest.approx(local.occupancy * 3)

    def test_channels_are_per_node(self, cfg):
        mem = MemorySystem(cfg)
        mem.access(0.0, 0, 0, 640)
        r = mem.access(0.0, 1, 1, 64)  # node 1's channel is idle
        assert r.service_start == 0.0

    def test_bytes_served_accounting(self, cfg):
        mem = MemorySystem(cfg)
        mem.access(0.0, 0, 0, 64)
        mem.access(0.0, 0, 0, 64)
        assert mem.bytes_served(0) == 128
        assert mem.bytes_served(1) == 0

    def test_aggregate_bandwidth_scales_with_striping(self, cfg):
        """The Figure 12 mechanism: spreading requests over more nodes
        raises aggregate service rate."""
        mem = MemorySystem(cfg)
        # 10 requests to one node: serialize
        last_single = max(
            mem.access(0.0, 0, 0, 64).response_ready for _ in range(10)
        )
        mem2 = MemorySystem(cfg)
        # 10 requests striped over two nodes: halve the queueing
        last_striped = max(
            mem2.access(0.0, n % 2, n % 2, 64).response_ready
            for n in range(10)
        )
        assert last_striped < last_single
