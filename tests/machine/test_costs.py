"""Table 2 lane-operation costs."""

import pytest

from repro.machine import CLOCK_HZ, DEFAULT_COSTS, CostTable
from repro.machine.costs import (
    SEND_DRAM,
    SEND_MESSAGE,
    THREAD_CREATE,
    THREAD_DEALLOCATE,
    THREAD_YIELD,
)


class TestTable2Values:
    """The exact costs the paper's Table 2 specifies."""

    def test_thread_create_is_free(self):
        assert THREAD_CREATE == 0

    def test_thread_yield_one_cycle(self):
        assert THREAD_YIELD == 1

    def test_thread_deallocate_one_cycle(self):
        assert THREAD_DEALLOCATE == 1

    def test_scratchpad_access_one_cycle(self):
        assert DEFAULT_COSTS.scratchpad_access == 1

    def test_send_message_one_to_two_cycles(self):
        assert SEND_MESSAGE == 1
        assert DEFAULT_COSTS.send_message_with_cont == 2

    def test_send_dram_one_to_two_cycles(self):
        assert SEND_DRAM == 1
        assert DEFAULT_COSTS.send_dram_with_cont == 2

    def test_clock_is_2ghz(self):
        assert CLOCK_HZ == 2_000_000_000


class TestCostTable:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostTable(send_message=-1).validate()

    def test_custom_table_is_frozen(self):
        table = CostTable(instruction=2)
        with pytest.raises(AttributeError):
            table.instruction = 3

    def test_default_validates(self):
        DEFAULT_COSTS.validate()
