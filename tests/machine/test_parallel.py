"""Conservative sharded execution: lookahead, partitioning, windowed runs.

The parity of full application runs (sequential vs in-process shards vs
forked workers) lives in ``tests/integration/test_parallel_parity.py``;
this module covers the machine-layer mechanics — the lookahead knob,
shard validation, bounded stepping, and the in-process shard scheduler.
"""

import pytest

from repro.machine import (
    MessageRecord,
    SimulationError,
    Simulator,
    bench_machine,
)
from repro.machine.events import NEW_THREAD


def null_dispatcher(cycles=5.0):
    executed = []

    def dispatch(sim, lane, record, start):
        executed.append((lane.network_id, record.label, start))
        return cycles

    dispatch.executed = executed
    return dispatch


class TestLookahead:
    def test_default_lookahead_is_dram_transit(self):
        cfg = bench_machine(nodes=2)
        # min(cross-node message latency, remote DRAM transit): with the
        # paper defaults the DRAM transit (600) undercuts the 1000-cycle
        # message latency
        assert cfg.conservative_lookahead_cycles == min(
            float(cfg.remote_msg_latency_cycles),
            cfg.remote_dram_transit_cycles,
        )
        assert cfg.conservative_lookahead_cycles == 600.0

    def test_message_latency_can_be_the_binding_term(self):
        cfg = bench_machine(nodes=2, remote_msg_latency_cycles=100)
        assert cfg.conservative_lookahead_cycles == 100.0

    def test_ratio_one_means_zero_lookahead(self):
        cfg = bench_machine(nodes=2, remote_dram_latency_ratio=1)
        assert cfg.conservative_lookahead_cycles == 0.0


class TestShardValidation:
    def test_shard_partition_is_contiguous_and_balanced(self):
        sim = Simulator(
            bench_machine(nodes=10),
            dispatcher=null_dispatcher(),
            shards=3,
        )
        part = sim._shard_of_node
        assert part == sorted(part)  # contiguous blocks
        assert set(part) == {0, 1, 2}  # every shard owns nodes
        sizes = [part.count(s) for s in range(3)]
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_sequential_has_no_partition(self):
        sim = Simulator(bench_machine(nodes=4), dispatcher=null_dispatcher())
        assert sim._shard_of_node is None

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(SimulationError, match="exceed"):
            Simulator(
                bench_machine(nodes=2),
                dispatcher=null_dispatcher(),
                shards=4,
            )

    def test_zero_shards_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(
                bench_machine(nodes=2),
                dispatcher=null_dispatcher(),
                shards=0,
            )

    def test_jitter_incompatible_with_shards(self):
        with pytest.raises(SimulationError, match="jitter"):
            Simulator(
                bench_machine(nodes=2),
                dispatcher=null_dispatcher(),
                shards=2,
                latency_jitter_cycles=10.0,
            )

    def test_zero_lookahead_rejected(self):
        with pytest.raises(SimulationError, match="lookahead"):
            Simulator(
                bench_machine(nodes=2, remote_dram_latency_ratio=1),
                dispatcher=null_dispatcher(),
                shards=2,
            )

    def test_until_rejected_for_forked_workers(self):
        # in-process shards clamp their epoch windows to the bound; forked
        # workers keep simulation state in the children between drains, so
        # bounded stepping is rejected there (before any fork happens)
        sim = Simulator(
            bench_machine(nodes=2),
            dispatcher=null_dispatcher(),
            shards=2,
            parallel=True,
        )
        with pytest.raises(SimulationError, match="until"):
            sim.run(until=100.0)

    def test_in_process_shards_honor_until(self):
        disp = null_dispatcher(cycles=1.0)
        cfg = bench_machine(nodes=2)
        sim = Simulator(cfg, dispatcher=disp, shards=2)
        # one event per shard per tick, so both shard heaps stay populated
        other = cfg.lanes_per_node  # first lane of node 1 (shard 1)
        for i, t in enumerate((10.0, 20.0, 30.0)):
            sim.inject(MessageRecord(0, NEW_THREAD, f"a{i}"), t=t)
            sim.inject(MessageRecord(other, NEW_THREAD, f"b{i}"), t=t)
        sim.run(until=15.0)
        assert sorted(label for _, label, _ in disp.executed) == ["a0", "b0"]
        assert not sim.stats.quiesced  # later events still queued
        sim.run(until=25.0)
        assert sorted(label for _, label, _ in disp.executed) == [
            "a0", "a1", "b0", "b1"
        ]
        sim.run()  # unbounded finishes the rest
        assert len(disp.executed) == 6
        assert sim.stats.quiesced

    def test_cross_shard_blocking_read_rejected(self):
        sim = Simulator(
            bench_machine(nodes=2),
            dispatcher=null_dispatcher(),
            shards=2,
        )
        with pytest.raises(SimulationError, match="blocking"):
            sim.dram_transaction(
                MessageRecord(0, NEW_THREAD, "r", src_network_id=0),
                0.0, 0, 1, 64, is_read=True, blocking=True,
            )

    def test_same_shard_blocking_read_allowed(self):
        sim = Simulator(
            bench_machine(nodes=4),
            dispatcher=null_dispatcher(),
            shards=2,
        )
        t_back = sim.dram_transaction(
            MessageRecord(0, NEW_THREAD, "r", src_network_id=0),
            0.0, 0, 1, 64, is_read=True, blocking=True,
        )
        assert t_back > 0.0


class TestBoundedStepping:
    """``run(until=...)`` — the windowed stepper the shard drivers use."""

    def _sim(self):
        disp = null_dispatcher(cycles=1.0)
        sim = Simulator(bench_machine(nodes=1), dispatcher=disp)
        for i, t in enumerate((10.0, 20.0, 30.0)):
            sim.inject(MessageRecord(0, NEW_THREAD, f"e{i}"), t=t)
        return sim, disp

    def test_until_is_exclusive_and_heap_survives(self):
        sim, disp = self._sim()
        sim.run(until=20.0)
        assert [label for _, label, _ in disp.executed] == ["e0"]
        assert len(sim._heap) == 2  # later events still queued
        assert sim.stats.events_executed == 1

    def test_reentry_continues_where_it_stopped(self):
        sim, disp = self._sim()
        sim.run(until=15.0)
        sim.run(until=25.0)
        assert [label for _, label, _ in disp.executed] == ["e0", "e1"]
        sim.run()  # unbounded finishes the rest
        assert [label for _, label, _ in disp.executed] == ["e0", "e1", "e2"]
        assert sim._heap == []

    def test_until_before_first_event_is_a_no_op(self):
        sim, disp = self._sim()
        sim.run(until=5.0)
        assert disp.executed == []
        assert len(sim._heap) == 3

    def test_max_events_is_per_call(self):
        # each bounded run() gets its own budget (the guard trips when
        # the budget-th event executes), so 2-per-call passes across two
        # windows where a single 2-total run over 3 events raises
        sim, disp = self._sim()
        sim.run(until=15.0, max_events=2)
        sim.run(until=25.0, max_events=2)
        assert len(disp.executed) == 2

    def test_max_events_still_guards_within_window(self):
        sim, _ = self._sim()
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(until=40.0, max_events=2)

    def test_busy_lane_crossing_the_window_finishes_its_event(self):
        # an event started before `until` runs to completion (events are
        # atomic); only *deliveries* at t >= until are deferred
        disp = null_dispatcher(cycles=100.0)
        sim = Simulator(bench_machine(nodes=1), dispatcher=disp)
        sim.inject(MessageRecord(0, NEW_THREAD, "long"), t=10.0)
        sim.run(until=20.0)
        assert sim.stats.final_tick == 110.0


class TestShardScheduler:
    """In-process sharded runs against the sequential reference."""

    def _chain_dispatcher(self, hops):
        """Each delivery forwards to the next lane round-robin until the
        hop budget is spent — a workload that crosses nodes constantly."""
        executed = []

        def dispatch(sim, lane, record, start):
            executed.append((lane.network_id, record.label, start))
            remaining = record.operands[0]
            if remaining > 0:
                dst = (lane.network_id + 1) % sim.config.total_lanes
                sim.send(
                    MessageRecord(
                        dst,
                        NEW_THREAD,
                        record.label,
                        (remaining - 1,),
                        src_network_id=lane.network_id,
                    ),
                    start + 2.0,
                    src_node=sim.config.node_of(lane.network_id),
                )
            return 2.0

        dispatch.executed = executed
        return dispatch

    def _run(self, shards):
        disp = self._chain_dispatcher(hops=40)
        sim = Simulator(
            bench_machine(nodes=4), dispatcher=disp, shards=shards
        )
        for i in range(sim.config.total_lanes):
            sim.inject(MessageRecord(i, NEW_THREAD, f"chain{i}", (40,)), t=0.0)
        stats = sim.run()
        sim.shutdown()
        return stats.scalar_snapshot(), disp.executed

    def test_sharded_run_is_bit_identical(self):
        fp1, exec1 = self._run(shards=1)
        for shards in (2, 4):
            fp, ex = self._run(shards=shards)
            assert fp == fp1
            # per-lane execution traces match exactly (order within a
            # lane is the sequential order restricted to that lane)
            for lane in {e[0] for e in exec1}:
                assert [e for e in ex if e[0] == lane] == [
                    e for e in exec1 if e[0] == lane
                ]

    def test_multiple_drains_reuse_the_scheduler(self):
        disp = self._chain_dispatcher(hops=10)
        sim = Simulator(bench_machine(nodes=2), dispatcher=disp, shards=2)
        sim.inject(MessageRecord(0, NEW_THREAD, "a", (10,)), t=0.0)
        sim.run()
        first = sim.stats.events_executed
        assert first == 11
        sched = sim._scheduler
        sim.inject(MessageRecord(1, NEW_THREAD, "b", (10,)), t=0.0)
        sim.run()
        assert sim._scheduler is sched
        assert sim.stats.events_executed == 2 * first

    def test_host_mailbox_matches_sequential(self):
        from repro.machine import HOST_NWID

        def both(shards):
            disp = null_dispatcher()
            sim = Simulator(
                bench_machine(nodes=2), dispatcher=disp, shards=shards
            )
            for i in range(4):
                sim.send(
                    MessageRecord(
                        HOST_NWID, 0, f"done{i}", (i,), src_network_id=i
                    ),
                    float(10 * i),
                    src_node=sim.config.node_of(i),
                )
            sim.run()
            return [(t, r.label) for t, r in sim.host_inbox]

        assert both(shards=2) == both(shards=1)

    def test_forked_multi_drain_parity(self):
        """Workers persist across drains: injections between run() calls
        are forwarded and the cumulative fingerprint stays sequential."""

        def run(parallel):
            disp = self._chain_dispatcher(hops=10)
            sim = Simulator(
                bench_machine(nodes=2),
                dispatcher=disp,
                shards=2 if parallel else 1,
                parallel=parallel,
            )
            sim.inject(MessageRecord(0, NEW_THREAD, "a", (10,)), t=0.0)
            sim.run()
            sim.inject(MessageRecord(1, NEW_THREAD, "b", (10,)), t=0.0)
            sim.run()
            fp = sim.stats.scalar_snapshot()
            sim.shutdown()
            return fp

        assert run(parallel=True) == run(parallel=False)

    def test_shutdown_is_idempotent(self):
        sim = Simulator(
            bench_machine(nodes=2), dispatcher=null_dispatcher(), shards=2
        )
        sim.run()
        sim.shutdown()
        sim.shutdown()


class TestWorkerFailure:
    """A dead shard worker becomes a clear ShardWorkerFailed, never a
    hung pipe read, and never an orphaned daemon process."""

    def _suicidal_dispatcher(self):
        """Executes normally except for the label ``die``, which kills
        the worker process hosting it (simulating an OOM kill / crash in
        an extension) — the parent only ever sees the closed pipe."""
        import os

        def dispatch(sim, lane, record, start):
            if record.label == "die":
                os._exit(13)
            return 2.0

        return dispatch

    def test_worker_death_mid_drain_raises_shard_worker_failed(self):
        from repro.machine.parallel import ShardWorkerFailed

        sim = Simulator(
            bench_machine(nodes=2),
            dispatcher=self._suicidal_dispatcher(),
            shards=2,
            parallel=True,
        )
        lanes_per_node = sim.config.lanes_per_node
        sim.inject(MessageRecord(0, NEW_THREAD, "ok"), t=0.0)
        # the fatal event lands on shard 1 (node 1's first lane)
        sim.inject(MessageRecord(lanes_per_node, NEW_THREAD, "die"), t=10.0)
        with pytest.raises(ShardWorkerFailed, match="worker died") as info:
            sim.run()
        assert info.value.shard == 1
        assert info.value.exitcode == 13
        sim.shutdown()

    def test_worker_killed_between_drains_detected_proactively(self):
        import os
        import signal

        from repro.machine.parallel import ShardWorkerFailed

        disp = null_dispatcher()
        sim = Simulator(
            bench_machine(nodes=2), dispatcher=disp, shards=2, parallel=True
        )
        sim.inject(MessageRecord(0, NEW_THREAD, "a"), t=0.0)
        sim.run()
        sched = sim._scheduler
        procs = list(sched._procs)
        os.kill(procs[0].pid, signal.SIGKILL)
        procs[0].join(timeout=5)
        sim.inject(MessageRecord(0, NEW_THREAD, "b"), t=0.0)
        # detected before any pipe traffic, naming shard and last window
        with pytest.raises(ShardWorkerFailed, match="shard 0") as info:
            sim.run()
        assert info.value.shard == 0
        assert info.value.window is not None  # a window did complete
        # the whole pool was torn down: no orphaned daemons
        for proc in procs:
            assert not proc.is_alive()
        sim.shutdown()

    def test_failed_pool_refuses_reuse(self):
        from repro.machine.parallel import ShardWorkerFailed

        sim = Simulator(
            bench_machine(nodes=2),
            dispatcher=self._suicidal_dispatcher(),
            shards=2,
            parallel=True,
        )
        sim.inject(
            MessageRecord(sim.config.lanes_per_node, NEW_THREAD, "die"), t=0.0
        )
        with pytest.raises(ShardWorkerFailed):
            sim.run()
        # lane/thread state died with the workers; a retry would silently
        # diverge, so the executor bricks itself instead
        sim.inject(MessageRecord(0, NEW_THREAD, "c"), t=0.0)
        with pytest.raises(SimulationError, match="no longer usable"):
            sim.run()
        sim.shutdown()

    def test_shard_worker_failed_is_exported(self):
        from repro.machine import ShardWorkerFailed as exported
        from repro.machine.parallel import ShardWorkerFailed

        assert exported is ShardWorkerFailed

    def test_dead_worker_stderr_tail_reaches_the_exception(self):
        from repro.machine.parallel import ShardWorkerFailed

        def dispatch(sim, lane, record, start):
            if record.label == "die":
                import os
                import sys

                sys.stderr.write("scratchpad checksum mismatch @ lane 2\n")
                sys.stderr.flush()
                os._exit(13)
            return 2.0

        sim = Simulator(
            bench_machine(nodes=2),
            dispatcher=dispatch,
            shards=2,
            parallel=True,
        )
        sim.inject(
            MessageRecord(sim.config.lanes_per_node, NEW_THREAD, "die"), t=0.0
        )
        with pytest.raises(ShardWorkerFailed) as info:
            sim.run()
        # the worker's dying words (captured stderr tail) are in both the
        # structured attribute and the rendered message
        assert "scratchpad checksum mismatch" in info.value.stderr_tail
        assert "scratchpad checksum mismatch" in str(info.value)
        sim.shutdown()


class TestShutdownIdempotence:
    """Teardown must be safe to repeat — ``shutdown()`` after a worker
    failure, a second ``shutdown()``, and the GC ``__del__`` path all hit
    the same executor, and none may raise on already-closed pipes."""

    def test_double_shutdown_is_a_noop(self):
        sim = Simulator(
            bench_machine(nodes=2),
            dispatcher=null_dispatcher(),
            shards=2,
            parallel=True,
        )
        sim.inject(MessageRecord(0, NEW_THREAD, "a"), t=0.0)
        sim.run()
        sim.shutdown()
        sim.shutdown()  # second call finds nothing left to do

    def test_shutdown_after_worker_failure_does_not_raise(self):
        import os

        from repro.machine.parallel import ShardWorkerFailed

        def dispatch(sim, lane, record, start):
            if record.label == "die":
                os._exit(13)
            return 2.0

        sim = Simulator(
            bench_machine(nodes=2),
            dispatcher=dispatch,
            shards=2,
            parallel=True,
        )
        sim.inject(MessageRecord(0, NEW_THREAD, "die"), t=0.0)
        with pytest.raises(ShardWorkerFailed):
            sim.run()
        # the failure path already aborted the pool; both explicit
        # shutdown and the destructor must cope with the dead state
        sim.shutdown()
        sim.shutdown()
        sim._scheduler.__del__()

    def test_close_before_any_drain_keeps_executor_usable(self):
        # close() on a never-forked pool must not brick it: nothing has
        # run in a worker yet, so no state is lost
        sim = Simulator(
            bench_machine(nodes=2),
            dispatcher=null_dispatcher(),
            shards=2,
            parallel=True,
        )
        sim._scheduler = __import__(
            "repro.machine.parallel", fromlist=["make_scheduler"]
        ).make_scheduler(sim)
        sim._scheduler.close()
        sim.inject(MessageRecord(0, NEW_THREAD, "a"), t=0.0)
        assert sim.run().events_executed >= 1
        sim.shutdown()
