"""Statistics aggregation."""

import pytest

from repro.machine.stats import SimStats


class TestSimStats:
    def test_utilization(self):
        s = SimStats()
        s.final_tick = 100.0
        s.busy_cycles_by_lane[0] = 50.0
        s.busy_cycles_by_lane[1] = 100.0
        assert s.utilization(total_lanes=2) == pytest.approx(0.75)

    def test_utilization_degenerate_cases(self):
        s = SimStats()
        assert s.utilization(4) == 0.0
        s.final_tick = 10.0
        assert s.utilization(0) == 0.0

    def test_active_lanes(self):
        s = SimStats()
        s.busy_cycles_by_lane[0] = 1.0
        s.busy_cycles_by_lane[1] = 0.0
        s.busy_cycles_by_lane[2] = 2.0
        assert s.active_lanes() == 2

    def test_load_imbalance(self):
        s = SimStats()
        s.busy_cycles_by_lane.update({0: 10.0, 1: 10.0, 2: 40.0})
        assert s.load_imbalance() == pytest.approx(2.0)

    def test_load_imbalance_perfect(self):
        s = SimStats()
        s.busy_cycles_by_lane.update({0: 5.0, 1: 5.0})
        assert s.load_imbalance() == pytest.approx(1.0)

    def test_load_imbalance_empty(self):
        assert SimStats().load_imbalance() == 1.0

    def test_summary_mentions_counts(self):
        s = SimStats()
        s.events_executed = 7
        s.messages_sent = 3
        text = s.summary()
        assert "events=7" in text and "msgs=3" in text

    def test_scalar_snapshot_covers_counters_not_histograms(self):
        s = SimStats()
        s.events_executed = 7
        s.messages_host_injected = 2
        s.final_tick = 12.5
        s.events_by_label["X::y"] = 7
        snap = s.scalar_snapshot()
        assert snap["events_executed"] == 7
        assert snap["messages_host_injected"] == 2
        assert snap["final_tick"] == 12.5
        # histograms are a separate tier, not part of the scalar snapshot
        assert "events_by_label" not in snap
        assert "busy_cycles_by_lane" not in snap
