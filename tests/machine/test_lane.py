"""Lane model: thread tables, busy-clock accounting, TID recycling."""

from repro.machine.lane import Lane


class TestThreadTable:
    def test_allocate_and_get(self):
        lane = Lane(0, node=0, accel=0)
        obj = object()
        tid = lane.allocate_thread(obj)
        assert lane.get_thread(tid) is obj
        assert lane.live_threads == 1

    def test_deallocate_frees_and_recycles(self):
        lane = Lane(0, 0, 0)
        t0 = lane.allocate_thread("a")
        t1 = lane.allocate_thread("b")
        lane.deallocate_thread(t0)
        assert lane.get_thread(t0) is None
        t2 = lane.allocate_thread("c")
        assert t2 == t0  # recycled
        assert lane.get_thread(t1) == "b"

    def test_tids_unique_among_live(self):
        lane = Lane(0, 0, 0)
        tids = [lane.allocate_thread(i) for i in range(100)]
        assert len(set(tids)) == 100

    def test_double_deallocate_is_noop(self):
        lane = Lane(0, 0, 0)
        tid = lane.allocate_thread("x")
        lane.deallocate_thread(tid)
        lane.deallocate_thread(tid)
        # the free list must not contain the tid twice
        a = lane.allocate_thread("y")
        b = lane.allocate_thread("z")
        assert a != b

    def test_bounded_tids_under_churn(self):
        """Create/destroy cycles keep the TID space compact (the event
        word's thread field is only 16 bits)."""
        lane = Lane(0, 0, 0)
        for _ in range(10_000):
            tid = lane.allocate_thread("t")
            lane.deallocate_thread(tid)
        assert lane._next_tid <= 1


class TestBusyClock:
    def test_account_execution_advances_clock(self):
        lane = Lane(0, 0, 0)
        end = lane.account_execution(start=10.0, cycles=5.0)
        assert end == 15.0
        assert lane.busy_until == 15.0
        assert lane.busy_cycles == 5.0
        assert lane.events_executed == 1

    def test_busy_cycles_accumulate(self):
        lane = Lane(0, 0, 0)
        lane.account_execution(0.0, 3.0)
        lane.account_execution(3.0, 4.0)
        assert lane.busy_cycles == 7.0
        assert lane.events_executed == 2
