"""Shared-memory boundary transport: wire codec, rings, spill, adaptivity.

Covers the machine-layer mechanics of the parallel boundary fabric —
the struct-packed wire codec (every boundary record type, every value
shape, label interning), the fixed-capacity shared-memory rings
(wraparound, overflow spill), and the adaptive-lookahead window
widening — plus end-to-end parity of the paths only real runs exercise
(spill relay, coalesced packets, fault-delayed records across forked
workers).  Full application parity lives in
``tests/integration/test_parallel_parity.py``.
"""

import multiprocessing

import pytest

from repro.machine import (
    MessageRecord,
    SimulationError,
    Simulator,
    bench_machine,
)
from repro.machine.events import (
    NEW_THREAD,
    BoundaryDecoder,
    BoundaryEncoder,
    DramArrival,
    PacketRecord,
)


def roundtrip(entry, enc=None, dec=None):
    buf = bytearray()
    (enc or BoundaryEncoder()).encode_entry(buf, entry)
    kind, decoded = (dec or BoundaryDecoder()).decode_frame(bytes(buf))
    assert kind == "entry"
    return decoded


class TestCodecRoundTrip:
    """Every boundary record type and operand value shape survives the
    struct-packed wire format bit-for-bit."""

    def test_message_record_all_value_shapes(self):
        rec = MessageRecord(
            7,
            NEW_THREAD,
            "update",
            operands=(
                None,
                True,
                False,
                0,
                -1,
                2**40,
                -(2**70),  # beyond i64: big-int fallback
                3.25,
                float("inf"),
                "text",
                b"\x00raw\xff",
                (1, ("nested", 2.5), ()),
            ),
            continuation=123456,
            src_network_id=3,
            kind="msg",
            label_id=5,
        )
        t, dest, seq, out = roundtrip((100.5, 7, 42, rec))
        assert (t, dest, seq) == (100.5, 7, 42)
        for slot in MessageRecord.__slots__:
            assert getattr(out, slot) == getattr(rec, slot), slot
        # value round-trip is type-exact, not merely equal (True != 1)
        for a, b in zip(out.operands, rec.operands):
            assert type(a) is type(b)

    def test_huge_sequence_numbers(self):
        rec = MessageRecord(0, NEW_THREAD, "x")
        _t, _d, seq, _rec = roundtrip((1.0, 0, (1 << 44) * 12345 + 9, rec))
        assert seq == (1 << 44) * 12345 + 9

    def test_numpy_scalars_take_the_pickle_fallback(self):
        np = pytest.importorskip("numpy")
        rec = MessageRecord(
            1, NEW_THREAD, "np", operands=(np.int64(5), np.float64(0.5))
        )
        out = roundtrip((1.0, 1, 2, rec))[3]
        assert type(out.operands[0]) is np.int64
        assert type(out.operands[1]) is np.float64
        assert out.operands == rec.operands

    def test_fault_delayed_records_keep_their_rdt_tags(self):
        # reliable-transport tags: data / ack / retransmit-timer
        for rdt in (("d", 3, 7), ("a", 2, 9), ("t", 5, 1, 2)):
            rec = MessageRecord(2, NEW_THREAD, "h", rdt=rdt)
            out = roundtrip((5.0, 2, 1, rec))[3]
            assert out.rdt == rdt

    def test_unresolved_label_ships_the_string(self):
        rec = MessageRecord(0, NEW_THREAD, "not-yet-interned")
        out = roundtrip((1.0, 0, 1, rec))[3]
        assert out.label == "not-yet-interned"
        assert out.label_id == rec.label_id < 0

    def test_label_interning_announce_then_cached(self):
        enc, dec = BoundaryEncoder(), BoundaryDecoder()
        rec = MessageRecord(0, NEW_THREAD, "hot_label", label_id=9)
        first = bytearray()
        enc.encode_entry(first, (1.0, 0, 1, rec))
        second = bytearray()
        enc.encode_entry(second, (2.0, 0, 2, rec))
        # the cached form no longer carries the string
        assert len(second) < len(first)
        for buf, seq in ((first, 1), (second, 2)):
            _t, _d, s, out = dec.decode_frame(bytes(buf))[1]
            assert s == seq
            assert out.label == "hot_label" and out.label_id == 9

    def test_cached_label_on_fresh_decoder_is_rejected(self):
        enc = BoundaryEncoder()
        rec = MessageRecord(0, NEW_THREAD, "lbl", label_id=4)
        warmup = bytearray()
        enc.encode_entry(warmup, (1.0, 0, 1, rec))
        cached = bytearray()
        enc.encode_entry(cached, (2.0, 0, 2, rec))
        with pytest.raises(ValueError, match="before announcement"):
            BoundaryDecoder().decode_frame(bytes(cached))

    def test_dram_arrival_with_and_without_response(self):
        # the response's network_id (requester lane) differs from the
        # entry dest (virtual memory-node id) — both must survive
        resp = MessageRecord(
            3, NEW_THREAD, "dram_done", operands=(8,), kind="dram"
        )
        rec = DramArrival(260, resp, 0, 2, 64, 128, 72)
        t, dest, seq, out = roundtrip((900.0, 260, 5, rec))
        assert (t, dest, seq) == (900.0, 260, 5)
        assert out.network_id == 260
        assert out.response.network_id == 3
        assert out.response.label == "dram_done"
        assert (out.src_node, out.memory_node) == (0, 2)
        assert (out.nbytes, out.local_offset, out.back_bytes) == (64, 128, 72)
        bare = DramArrival(261, None, 1, 3, 32, 0, 40)
        assert roundtrip((901.0, 261, 6, bare))[3].response is None

    def test_packet_record_members_and_cursor(self):
        pkt = PacketRecord(window_end=1500.0)
        for i in range(3):
            pkt.members.append((
                1000.0 + i,
                4,
                10 + i,
                MessageRecord(
                    4, NEW_THREAD, "edge", operands=(i,),
                    src_network_id=1, label_id=2,
                ),
            ))
        pkt.cursor = 1
        out = roundtrip((1000.0, 4, 10, pkt))[3]
        assert out.window_end == 1500.0
        assert out.cursor == 1
        assert out.open is True  # rebuilt packets re-arm the unwrap
        assert len(out.members) == 3
        for (mt, md, ms, mr), (ot, od, os_, orc) in zip(
            pkt.members, out.members
        ):
            assert (mt, md, ms) == (ot, od, os_)
            assert orc.label == mr.label and orc.operands == mr.operands

    def test_wlog_frame_carries_step_tag(self):
        enc, dec = BoundaryEncoder(), BoundaryDecoder()
        buf = bytearray()
        enc.encode_wlog(buf, 0x4000, [1.0, -7, 2**66], step=3)
        kind, va, values, step = dec.decode_frame(bytes(buf))
        assert kind == "wlog"
        assert va == 0x4000 and step == 3
        assert values == [1.0, -7, 2**66]


def make_ports(capacity, shards=2):
    from repro.machine.parallel import _RingHub, _WorkerPort

    hub = _RingHub(shards, capacity, multiprocessing.get_context("fork"))
    return hub, [_WorkerPort(hub, s) for s in range(shards)]


class TestRingTransport:
    """Single-process exercise of the shared-memory rings: both ports
    live in this test process, so wraparound and cursor arithmetic are
    checked without scheduling noise."""

    def entry(self, i):
        return (
            float(i),
            0,
            i,
            MessageRecord(0, NEW_THREAD, "m", operands=(i,), label_id=1),
        )

    def test_wraparound_at_tiny_capacity(self):
        # capacity far below the total traffic: cursors lap the ring
        # dozens of times and frames split across the wrap point
        hub, (p0, p1) = make_ports(capacity=128)
        try:
            got = []
            for i in range(100):
                buf = bytearray()
                p0.enc[1].encode_entry(buf, self.entry(i))
                assert p0.try_write(1, bytes(buf), lambda: None, False)
                p1.drain(got.append)
            assert p0.wr[1] > 128 * 10  # really wrapped, repeatedly
            assert [e[2] for e in got] == list(range(100))
            assert [e[3].operands for e in got] == [(i,) for i in range(100)]
        finally:
            hub.release()

    def test_full_ring_spills_only_when_allowed(self):
        hub, (p0, p1) = make_ports(capacity=128)
        try:
            buf = bytearray()
            p0.enc[1].encode_entry(buf, self.entry(0))
            frame = bytes(buf)
            while p0.try_write(1, frame, lambda: None, True):
                pass  # fill the ring to capacity
            # may_spill=True reports the overflow instead of blocking
            assert p0.try_write(1, frame, lambda: None, True) is False
            # after the consumer drains, the same frame fits again
            got = []
            p1.drain(got.append)
            assert got
            assert p0.try_write(1, frame, lambda: None, True) is True
        finally:
            hub.release()

    def test_oversized_frame_without_spill_is_a_hard_error(self):
        hub, (p0, _p1) = make_ports(capacity=64)
        try:
            huge = bytes(200)
            assert p0.try_write(1, huge, lambda: None, True) is False
            with pytest.raises(SimulationError, match="parallel_ring_kib"):
                p0.try_write(1, huge, lambda: None, False)
        finally:
            hub.release()

    def test_wlog_frames_queue_instead_of_delivering(self):
        hub, (p0, p1) = make_ports(capacity=256)
        try:
            buf = bytearray()
            p0.enc[1].encode_wlog(buf, 0x100, [1, 2], step=4)
            assert p0.try_write(1, bytes(buf), lambda: None, False)
            entries = []
            p1.drain(entries.append)
            assert entries == []  # wlogs defer to the step-gated queue
            assert p1.pending_wlogs == [(0, 4, 0x100, [1, 2])]
        finally:
            hub.release()

    def test_spilled_frames_continue_the_ring_stream(self):
        # label announced on a ring frame, then used cached on a frame
        # that spills: the consumer decodes the spill with the *same*
        # per-producer decoder, so the cache carries across — and a
        # fresh decoder (the broken alternative) provably cannot
        hub, (p0, p1) = make_ports(capacity=4096)
        try:
            ring = bytearray()
            p0.enc[1].encode_entry(ring, self.entry(0))
            assert p0.try_write(1, bytes(ring), lambda: None, False)
            spilled = bytearray()
            p0.enc[1].encode_entry(spilled, self.entry(1))
            got = []
            p1.drain(got.append)
            assert len(got) == 1
            out = p1.dec[0].decode_frame(bytes(spilled))[1]
            assert out[3].label == "m"
            with pytest.raises(ValueError, match="before announcement"):
                BoundaryDecoder().decode_frame(bytes(spilled))
        finally:
            hub.release()


def null_dispatcher(cycles=5.0):
    def dispatch(sim, lane, record, start):
        return cycles

    return dispatch


def cross_dispatcher():
    """Quiet except for the label ``cross``, which sends one message to
    the first lane of the other node (a guaranteed boundary record)."""

    def dispatch(sim, lane, record, start):
        if record.label == "cross":
            dst = (lane.network_id + sim.config.lanes_per_node) % (
                sim.config.total_lanes
            )
            sim.send(
                MessageRecord(
                    dst, NEW_THREAD, "landed",
                    src_network_id=lane.network_id,
                ),
                start + 2.0,
                src_node=sim.config.node_of(lane.network_id),
            )
        return 2.0

    return dispatch


def chain_dispatcher(hops):
    """Every delivery forwards to the next lane round-robin: constant
    cross-shard traffic, the worst case for the boundary fabric."""
    executed = []

    def dispatch(sim, lane, record, start):
        executed.append((lane.network_id, record.label, start))
        remaining = record.operands[0]
        if remaining > 0:
            dst = (lane.network_id + 1) % sim.config.total_lanes
            sim.send(
                MessageRecord(
                    dst, NEW_THREAD, record.label, (remaining - 1,),
                    src_network_id=lane.network_id,
                ),
                start + 2.0,
                src_node=sim.config.node_of(lane.network_id),
            )
        return 2.0

    dispatch.executed = executed
    return dispatch


class TestAdaptiveLookahead:
    """Quiet windows widen multiplicatively; any boundary record
    collapses the width back to base; a cap and the coalescing pin are
    honored — and none of it moves the fingerprint."""

    def _run(self, dispatcher, injections, parallel=True, **overrides):
        sim = Simulator(
            bench_machine(nodes=2, **overrides),
            dispatcher=dispatcher,
            shards=2,
            parallel=parallel,
        )
        for lane, label, t in injections:
            sim.inject(MessageRecord(lane, NEW_THREAD, label), t=t)
        sim.run()
        fp = sim.stats.scalar_snapshot()
        metrics = sim.parallel_metrics()
        sim.shutdown()
        return fp, metrics

    #: idle gaps are several lookaheads (600 cycles) wide, so every
    #: window between them completes without boundary records
    QUIET = [(0, "a", 0.0), (0, "b", 5000.0), (0, "c", 10000.0),
             (0, "d", 20000.0), (0, "e", 25000.0), (0, "f", 30000.0)]

    def test_quiet_windows_widen_up_to_the_cap(self):
        fp, metrics = self._run(null_dispatcher(), self.QUIET)
        hist = metrics["window_hist"]
        assert max(hist) > 1  # widening actually happened
        assert max(hist) <= metrics["adaptive_max"] == 8
        assert sum(hist.values()) == metrics["windows"]
        assert metrics["boundary_records"] == 0
        seq_fp, _ = self._run(null_dispatcher(), self.QUIET, parallel=False)
        assert fp == seq_fp

    def test_boundary_record_collapses_the_window(self):
        inj = list(self.QUIET)
        inj[3] = (0, "cross", 20000.0)  # emits one boundary record
        fp, metrics = self._run(cross_dispatcher(), inj)
        hist = metrics["window_hist"]
        assert metrics["boundary_records"] >= 1
        assert max(hist) > 1
        # exactly one window runs at base width per quiet ramp-up; a
        # second base-width window proves the cross record collapsed it
        assert hist[1] >= 2
        seq_fp, _ = self._run(cross_dispatcher(), inj, parallel=False)
        assert fp == seq_fp

    def test_adaptive_max_caps_the_widening(self):
        _fp, metrics = self._run(
            null_dispatcher(), self.QUIET, parallel_adaptive_max=2
        )
        assert max(metrics["window_hist"]) <= 2

    def test_coalescing_pins_windows_to_base_width(self):
        _fp, metrics = self._run(
            null_dispatcher(), self.QUIET, coalescing=True
        )
        assert metrics["adaptive_max"] == 1
        assert set(metrics["window_hist"]) == {1}


def spray_dispatcher():
    """Every delivery fans out to *every other lane*: the densest
    boundary traffic the fabric can see, sized to overflow tiny rings."""

    def dispatch(sim, lane, record, start):
        remaining = record.operands[0]
        if remaining > 0:
            me = lane.network_id
            for dst in range(sim.config.total_lanes):
                if dst == me:
                    continue
                sim.send(
                    MessageRecord(
                        dst, NEW_THREAD, record.label, (remaining - 1,),
                        src_network_id=me,
                    ),
                    start + 2.0,
                    src_node=sim.config.node_of(me),
                )
        return 2.0

    return dispatch


class TestSpillParity:
    """Ring capacity is a perf knob, never a correctness one: with the
    rings shrunk to a couple of frames, the bulk of the boundary traffic
    takes the pickled-Pipe spill path — and the fingerprint must not
    move."""

    @pytest.fixture()
    def tiny_rings(self, monkeypatch):
        from repro.machine import parallel as par

        orig = par._RingHub.__init__

        def tiny(self, shards, capacity, ctx):
            orig(self, shards, min(capacity, 128), ctx)

        monkeypatch.setattr(par._RingHub, "__init__", tiny)

    def _spray_run(self, parallel, hops=3):
        sim = Simulator(
            bench_machine(nodes=4),
            dispatcher=spray_dispatcher(),
            shards=4 if parallel else 1,
            parallel=parallel,
        )
        for i in range(sim.config.total_lanes):
            sim.inject(
                MessageRecord(i, NEW_THREAD, f"spray{i}", (hops,)), t=0.0
            )
        sim.run()
        fp = sim.stats.scalar_snapshot()
        metrics = sim.parallel_metrics()
        sim.shutdown()
        return fp, metrics

    def test_overflow_spill_path_is_bit_exact(self, tiny_rings):
        par_fp, metrics = self._spray_run(parallel=True)
        assert metrics["ring_overflows"] > 0  # the spill path really ran
        assert metrics["spill_phases"] > 0
        seq_fp, _ = self._spray_run(parallel=False)
        assert par_fp == seq_fp

    def test_roomy_rings_never_overflow(self):
        par_fp, metrics = self._spray_run(parallel=True)
        assert metrics["ring_overflows"] == 0
        assert metrics["boundary_bytes"] > 0
        assert metrics["boundary_records"] > 0
        seq_fp, _ = self._spray_run(parallel=False)
        assert par_fp == seq_fp
