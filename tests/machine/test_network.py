"""Network model: latency constants, injection bandwidth, jitter."""

import pytest

from repro.machine import bench_machine
from repro.machine.network import InjectionChannel, Network


@pytest.fixture
def net():
    return Network(bench_machine(nodes=4))


class TestLatency:
    def test_remote_latency_is_half_microsecond(self, net):
        # 0.5 us at 2 GHz = 1000 cycles (paper §3)
        assert net.latency(0, 1) == 1000.0

    def test_local_latency_much_smaller(self, net):
        assert net.latency(2, 2) < net.latency(2, 3)

    def test_diameter3_distance_independence(self, net):
        # PolarStar is diameter-3: remote latency is pair-independent
        assert net.latency(0, 1) == net.latency(0, 3) == net.latency(2, 0)


class TestInjection:
    def test_intranode_bypasses_injection_port(self, net):
        t = net.deliver_time(0.0, 0, 0, 64)
        assert t == net.latency(0, 0)
        assert net.injected_bytes(0) == 0

    def test_back_to_back_sends_queue(self):
        cfg = bench_machine(nodes=2, node_injection_bytes_per_cycle=32.0)
        net = Network(cfg)
        t1 = net.deliver_time(0.0, 0, 1, 64)
        t2 = net.deliver_time(0.0, 0, 1, 64)
        # second message waits for the first's 2-cycle occupancy
        assert t2 == pytest.approx(t1 + 64 / 32.0)

    def test_injection_tracks_bytes(self):
        net = Network(bench_machine(nodes=2))
        net.deliver_time(0.0, 0, 1, 64)
        net.deliver_time(0.0, 0, 1, 64)
        assert net.injected_bytes(0) == 128

    def test_host_injection_is_free(self, net):
        assert net.deliver_time(5.0, None, 3, 64) == 5.0

    def test_channel_admit_is_monotone(self):
        ch = InjectionChannel()
        d1 = ch.admit(0.0, 2.0, 64)
        d2 = ch.admit(1.0, 2.0, 64)
        assert d2 == d1 + 2.0
        assert ch.bytes_injected == 128

    def test_byte_accounting_is_overflow_safe(self):
        """Long chaos soaks push channel totals past 2**53; the counter
        must stay an exact Python int even when a caller hands a float
        ``nbytes`` (easy to produce from derived byte arithmetic) —
        float accumulation would silently lose whole bytes up there."""
        ch = InjectionChannel()
        ch.bytes_injected = 2**53  # beyond exact float integer range
        ch.admit(0.0, 1.0, 64.0)
        assert isinstance(ch.bytes_injected, int)
        assert ch.bytes_injected == 2**53 + 64
        ch.admit(1.0, 1.0, 1.0)
        assert ch.bytes_injected == 2**53 + 65  # float math would drop it

        class _Rec:
            def inj_sample(self, *a):
                pass

        ch2 = InjectionChannel()
        ch2.bytes_injected = 2**53
        ch2.admit_recorded(0.0, 1.0, 1.0, _Rec(), 0)
        assert isinstance(ch2.bytes_injected, int)
        assert ch2.bytes_injected == 2**53 + 1

    def test_occupancy_memo_matches_direct_division(self):
        """deliver_time's per-size occupancy memo must reproduce the
        exact division — same floats, just computed once per size."""
        cfg = bench_machine(nodes=2)
        net = Network(cfg)
        t1 = net.deliver_time(0.0, 0, 1, 64)
        expected = 64 / cfg.node_injection_bytes_per_cycle + 1000.0
        assert t1 == expected
        # memoized second call: queues exactly one occupancy behind
        t2 = net.deliver_time(0.0, 0, 1, 64)
        assert t2 == t1 + 64 / cfg.node_injection_bytes_per_cycle


class TestJitter:
    def test_jitter_is_seeded_and_bounded(self):
        cfg = bench_machine(nodes=2)
        a = Network(cfg, jitter_cycles=50.0, seed=7)
        b = Network(cfg, jitter_cycles=50.0, seed=7)
        seq_a = [a.latency(0, 1) for _ in range(20)]
        seq_b = [b.latency(0, 1) for _ in range(20)]
        assert seq_a == seq_b  # reproducible
        assert all(1000.0 <= v <= 1050.0 for v in seq_a)
        assert len(set(seq_a)) > 1  # actually jittering

    def test_zero_jitter_is_deterministic_constant(self):
        net = Network(bench_machine(nodes=2))
        assert len({net.latency(0, 1) for _ in range(10)}) == 1
