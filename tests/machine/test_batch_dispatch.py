"""Batched label-homogeneous dispatch: bit-exact parity + conservation.

The contract (DESIGN.md "Event IR & batched dispatch"): flipping
``MachineConfig(batch_dispatch=True)`` may never change the simulation —
only how fast the host reaches it.  These tests pin that across every
drain the simulator offers (sequential, in-process shards, forked
workers, coalescing fabric, faulted transport) and assert the record-
conservation invariant ``records_batched + events_interpreted ==
events_executed`` the same way the coalescing tests pin packet
conservation.
"""

import pytest

from repro.graph import rmat
from repro.harness import bench_config
from repro.udweave import UpDownRuntime

GRAPH = rmat(8, seed=7)
BLOCK = 4096
NODES = 4

#: counters that legitimately partition differently when batching is on
BATCH_KEYS = ("batches_executed", "records_batched", "events_interpreted")
#: counters that only exist on the coalescing fabric; parked records
#: bypass the coalescer (they never ride the heap), so packet counts
#: differ batch-on vs batch-off even though every delivery time matches
PACKET_KEYS = ("packets_sent", "records_coalesced")


def _run_pr(batch, shards=1, parallel=False, coalesce=False, faults=False):
    fault_kw = {}
    if faults:
        from repro.faults import FaultPlan

        fault_kw = dict(
            faults=FaultPlan(seed=5, drop_rate=0.02), reliable=True
        )
    rt = UpDownRuntime(
        bench_config(NODES, batch_dispatch=batch, coalescing=coalesce),
        shards=shards,
        parallel=parallel,
        **fault_kw,
    )
    from repro.apps import PageRankApp

    res = PageRankApp(rt, GRAPH, block_size=BLOCK).run(iterations=2)
    out = {
        "snapshot": rt.sim.stats.scalar_snapshot(),
        "mailbox": [
            (t, rec.label, rec.operands) for t, rec in rt.sim.host_inbox
        ],
        "ranks": list(res.ranks),
        "stats": rt.sim.stats,
    }
    rt.shutdown()
    return out


def _strip(snapshot, keys):
    return {k: v for k, v in snapshot.items() if k not in keys}


def _assert_conserved(stats):
    assert (
        stats.records_batched + stats.events_interpreted
        == stats.events_executed
    )


class TestSequentialParity:
    def test_batch_on_matches_off_bit_for_bit(self):
        off = _run_pr(batch=False)
        on = _run_pr(batch=True)
        assert _strip(on["snapshot"], BATCH_KEYS) == _strip(
            off["snapshot"], BATCH_KEYS
        )
        assert on["mailbox"] == off["mailbox"]
        assert on["ranks"] == off["ranks"]
        # the batch path actually fired, and every record is accounted
        # for exactly once — batched or interpreted, never both/neither
        assert on["stats"].records_batched > 0
        assert on["stats"].batches_executed > 0
        _assert_conserved(on["stats"])
        _assert_conserved(off["stats"])

    def test_batch_off_fully_disables_the_path(self):
        off = _run_pr(batch=False)
        assert off["stats"].records_batched == 0
        assert off["stats"].batches_executed == 0
        assert off["stats"].events_interpreted == (
            off["stats"].events_executed
        )

    def test_events_executed_counts_each_batched_record(self):
        """A batch of N records is N events, never 1 (the bench's
        events/sec would otherwise inflate itself)."""
        off = _run_pr(batch=False)
        on = _run_pr(batch=True)
        assert on["stats"].events_executed == off["stats"].events_executed
        mean = (
            on["stats"].records_batched / on["stats"].batches_executed
        )
        assert mean > 1.0  # batching amortized something


class TestShardedParity:
    """Sharded drains disarm parking; batch_dispatch=True must be inert."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_in_process_shards(self, shards):
        off = _run_pr(batch=False, shards=shards)
        on = _run_pr(batch=True, shards=shards)
        assert on["snapshot"] == off["snapshot"]
        assert on["mailbox"] == off["mailbox"]
        assert on["ranks"] == off["ranks"]
        assert on["stats"].records_batched == 0
        _assert_conserved(on["stats"])

    def test_sharded_matches_sequential_batched(self):
        seq_on = _run_pr(batch=True)
        shd_on = _run_pr(batch=True, shards=2)
        assert _strip(shd_on["snapshot"], BATCH_KEYS) == _strip(
            seq_on["snapshot"], BATCH_KEYS
        )
        assert shd_on["mailbox"] == seq_on["mailbox"]
        assert shd_on["ranks"] == seq_on["ranks"]

    def test_forked_workers(self):
        off = _run_pr(batch=False, shards=2, parallel=True)
        on = _run_pr(batch=True, shards=2, parallel=True)
        assert on["snapshot"] == off["snapshot"]
        assert on["mailbox"] == off["mailbox"]
        assert on["ranks"] == off["ranks"]
        assert on["stats"].records_batched == 0


class TestCoalescingParity:
    def test_batch_on_under_coalescing(self):
        """Parking stays armed on the coalescing fabric; only the two
        packet counters may move (parked records skip the coalescer),
        every simulated observable must not."""
        off = _run_pr(batch=False, coalesce=True)
        on = _run_pr(batch=True, coalesce=True)
        excluded = BATCH_KEYS + PACKET_KEYS
        assert _strip(on["snapshot"], excluded) == _strip(
            off["snapshot"], excluded
        )
        assert on["mailbox"] == off["mailbox"]
        assert on["ranks"] == off["ranks"]
        assert on["stats"].records_batched > 0
        _assert_conserved(on["stats"])

    def test_coalesced_batched_matches_plain_batched(self):
        plain = _run_pr(batch=True)
        coal = _run_pr(batch=True, coalesce=True)
        excluded = BATCH_KEYS + PACKET_KEYS
        assert _strip(coal["snapshot"], excluded) == _strip(
            plain["snapshot"], excluded
        )
        assert coal["ranks"] == plain["ranks"]


class TestFaultedParity:
    def test_faulted_drain_disarms_parking(self):
        off = _run_pr(batch=False, faults=True)
        on = _run_pr(batch=True, faults=True)
        assert on["snapshot"] == off["snapshot"]
        assert on["mailbox"] == off["mailbox"]
        assert on["ranks"] == off["ranks"]
        assert on["stats"].records_batched == 0
        _assert_conserved(on["stats"])


class TestQuiescence:
    def test_parked_records_block_quiescence_until_flushed(self):
        """After a completed run nothing may still be parked."""
        on = _run_pr(batch=True)
        assert on["stats"].quiesced
        assert on["snapshot"]["events_executed"] > 0
