"""Remote DRAM cost model: the 7:1 latency knob and injection routing."""

import pytest

from repro.machine import MessageRecord, Simulator, bench_machine
from repro.machine.events import NEW_THREAD


def _sim(**overrides):
    return Simulator(
        bench_machine(nodes=2, **overrides),
        dispatcher=lambda sim, lane, rec, start: 1.0,
    )


def _round_trip(sim, src, mem, nbytes=64):
    return sim.dram_transaction(
        MessageRecord(0, 0, "r"), 0.0, src, mem, nbytes, is_read=True
    )


class TestLatencyRatioKnob:
    """``remote_dram_latency_ratio`` (paper §3.2's 7:1) must be what
    actually sets remote cost — it was previously an unread field."""

    # make byte-transfer occupancies negligible so the measured ratio is
    # the pure latency ratio
    FAST = dict(
        node_dram_bytes_per_cycle=1e9,
        node_injection_bytes_per_cycle=1e9,
    )

    def test_default_ratio_is_seven(self):
        local = _round_trip(_sim(**self.FAST), 0, 0)
        remote = _round_trip(_sim(**self.FAST), 0, 1)
        assert remote / local == pytest.approx(7.0, rel=1e-3)

    @pytest.mark.parametrize("ratio", [1, 3, 7, 11])
    def test_knob_sets_measured_ratio(self, ratio):
        local = _round_trip(
            _sim(remote_dram_latency_ratio=ratio, **self.FAST), 0, 0
        )
        remote = _round_trip(
            _sim(remote_dram_latency_ratio=ratio, **self.FAST), 0, 1
        )
        assert remote / local == pytest.approx(float(ratio), rel=1e-3)

    def test_transit_derivation(self):
        cfg = bench_machine(nodes=2)
        # one transit each way on top of the device latency lands the
        # unloaded total at ratio * dram_latency_cycles
        assert (
            cfg.dram_latency_cycles + 2 * cfg.remote_dram_transit_cycles
            == cfg.remote_dram_latency_ratio * cfg.dram_latency_cycles
        )

    def test_dram_path_is_jitter_free(self):
        """The memory system stays deterministic even when message jitter
        is enabled (failure-injection runs must not perturb DRAM)."""
        times = {
            seed: Simulator(
                bench_machine(nodes=2),
                dispatcher=lambda s, l, r, t: 1.0,
                latency_jitter_cycles=50.0,
                seed=seed,
            ).dram_transaction(
                MessageRecord(0, 0, "r"), 0.0, 0, 1, 64, is_read=True
            )
            for seed in (1, 2)
        }
        assert times[1] == times[2]


class TestInjectionRouting:
    """Remote split-phase traffic rides the injection-bandwidth model in
    both directions — DRAM-heavy apps can saturate injection."""

    def test_remote_read_injects_both_directions(self):
        sim = _sim()
        _round_trip(sim, src=0, mem=1, nbytes=512)
        cfg = sim.config
        # request: command message out of the source node
        assert sim.network.injected_bytes(0) == cfg.message_bytes
        # response: the data back out of the memory node
        assert sim.network.injected_bytes(1) == 512

    def test_remote_write_injects_data_then_completion(self):
        sim = _sim()
        sim.dram_transaction(None, 0.0, 0, 1, 512, is_read=False)
        cfg = sim.config
        assert sim.network.injected_bytes(0) == cfg.message_bytes + 512
        assert sim.network.injected_bytes(1) == cfg.message_bytes

    def test_local_access_stays_off_the_fabric(self):
        sim = _sim()
        _round_trip(sim, src=0, mem=0, nbytes=512)
        assert sim.network.injected_bytes(0) == 0

    def test_back_to_back_requests_queue_on_injection(self):
        """With a tiny injection pipe, concurrent remote reads serialize
        at the source port and the later ones finish later."""
        sim = _sim(node_injection_bytes_per_cycle=1.0)
        t1 = _round_trip(sim, 0, 1)
        t2 = _round_trip(sim, 0, 1)
        assert t2 > t1

    def test_injection_queueing_delays_completion(self):
        """The same access costs more when the injection port is slow —
        the channel is on the critical path, not just a counter."""
        fast = _round_trip(
            _sim(node_injection_bytes_per_cycle=1e9), 0, 1, nbytes=512
        )
        slow = _round_trip(
            _sim(node_injection_bytes_per_cycle=1.0), 0, 1, nbytes=512
        )
        assert slow > fast


class TestHostBoundTaxonomy:
    def test_message_counters_partition_sent(self):
        """Every send lands in exactly one taxonomy bucket; host-bound
        result messages were previously dropped from the partition."""
        sim = _sim()
        from repro.machine import HOST_NWID

        dst_remote = sim.config.first_lane_of_node(1)
        sim.send(MessageRecord(0, NEW_THREAD, "l"), 0.0, src_node=0)
        sim.send(MessageRecord(dst_remote, NEW_THREAD, "r"), 0.0, src_node=0)
        sim.send(
            MessageRecord(0, NEW_THREAD, "h", src_network_id=None),
            0.0,
            src_node=None,
        )
        sim.send(MessageRecord(HOST_NWID, 0, "done"), 0.0, src_node=0)
        s = sim.stats
        assert s.messages_host_bound == 1
        assert s.messages_sent == (
            s.messages_local
            + s.messages_remote
            + s.messages_host_injected
            + s.messages_host_bound
        )
        assert "messages_host_bound" in s.scalar_snapshot()

    def test_host_bound_send_traced(self):
        from repro.machine import HOST_NWID

        sim = Simulator(
            bench_machine(nodes=1),
            dispatcher=lambda s, l, r, t: 1.0,
            trace=True,
        )
        sim.send(
            MessageRecord(HOST_NWID, 0, "done", src_network_id=0),
            7.0,
            src_node=0,
        )
        assert sim.trace == [(7.0, 7.0, 0, HOST_NWID, "done")]
