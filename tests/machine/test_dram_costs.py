"""Remote DRAM cost model: the 7:1 latency knob and injection routing.

Remote accesses are split-phase *events*: the request rides the fabric,
is serviced when it arrives at the memory node, and the response comes
back as a scheduled delivery.  Costs are therefore measured by draining
the simulator and reading the time the response handler starts — the
same way a program observes DRAM latency.
"""

import pytest

from repro.machine import MessageRecord, Simulator, bench_machine
from repro.machine.events import NEW_THREAD


def _sim(**overrides):
    executed = []

    def dispatcher(sim, lane, rec, start):
        executed.append((rec.label, start))
        return 1.0

    sim = Simulator(bench_machine(nodes=2, **overrides), dispatcher=dispatcher)
    sim.executed = executed
    return sim


def _round_trip(sim, src, mem, nbytes=64):
    """Issue one read from a lane on ``src`` and return the time its
    response handler starts executing (the observed round-trip)."""
    requester = sim.config.first_lane_of_node(src)
    sim.dram_transaction(
        MessageRecord(requester, NEW_THREAD, "resp", src_network_id=requester),
        0.0,
        src,
        mem,
        nbytes,
        is_read=True,
    )
    sim.run()
    return sim.executed[-1][1]


class TestLatencyRatioKnob:
    """``remote_dram_latency_ratio`` (paper §3.2's 7:1) must be what
    actually sets remote cost — it was previously an unread field."""

    # make byte-transfer occupancies negligible so the measured ratio is
    # the pure latency ratio
    FAST = dict(
        node_dram_bytes_per_cycle=1e9,
        node_injection_bytes_per_cycle=1e9,
    )

    def test_default_ratio_is_seven(self):
        local = _round_trip(_sim(**self.FAST), 0, 0)
        remote = _round_trip(_sim(**self.FAST), 0, 1)
        assert remote / local == pytest.approx(7.0, rel=1e-3)

    @pytest.mark.parametrize("ratio", [1, 3, 7, 11])
    def test_knob_sets_measured_ratio(self, ratio):
        local = _round_trip(
            _sim(remote_dram_latency_ratio=ratio, **self.FAST), 0, 0
        )
        remote = _round_trip(
            _sim(remote_dram_latency_ratio=ratio, **self.FAST), 0, 1
        )
        assert remote / local == pytest.approx(float(ratio), rel=1e-3)

    def test_transit_derivation(self):
        cfg = bench_machine(nodes=2)
        # one transit each way on top of the device latency lands the
        # unloaded total at ratio * dram_latency_cycles
        assert (
            cfg.dram_latency_cycles + 2 * cfg.remote_dram_transit_cycles
            == cfg.remote_dram_latency_ratio * cfg.dram_latency_cycles
        )

    def test_dram_path_is_jitter_free(self):
        """The memory system stays deterministic even when message jitter
        is enabled (failure-injection runs must not perturb DRAM)."""
        times = {}
        for seed in (1, 2):
            executed = []

            def dispatcher(sim, lane, rec, start, executed=executed):
                executed.append(start)
                return 1.0

            sim = Simulator(
                bench_machine(nodes=2),
                dispatcher=dispatcher,
                latency_jitter_cycles=50.0,
                seed=seed,
            )
            sim.dram_transaction(
                MessageRecord(0, NEW_THREAD, "r", src_network_id=0),
                0.0,
                0,
                1,
                64,
                is_read=True,
            )
            sim.run()
            times[seed] = executed[-1]
        assert times[1] == times[2]


class TestInjectionRouting:
    """Remote split-phase traffic rides the injection-bandwidth model in
    both directions — DRAM-heavy apps can saturate injection."""

    def test_remote_read_injects_both_directions(self):
        sim = _sim()
        _round_trip(sim, src=0, mem=1, nbytes=512)
        cfg = sim.config
        # request: command message out of the source node
        assert sim.network.injected_bytes(0) == cfg.message_bytes
        # response: the data back out of the memory node
        assert sim.network.injected_bytes(1) == 512

    def test_remote_write_injects_data_then_completion(self):
        sim = _sim()
        sim.dram_transaction(None, 0.0, 0, 1, 512, is_read=False)
        sim.run()
        cfg = sim.config
        assert sim.network.injected_bytes(0) == cfg.message_bytes + 512
        assert sim.network.injected_bytes(1) == cfg.message_bytes

    def test_local_access_stays_off_the_fabric(self):
        sim = _sim()
        _round_trip(sim, src=0, mem=0, nbytes=512)
        assert sim.network.injected_bytes(0) == 0

    def test_back_to_back_requests_queue_on_injection(self):
        """With a tiny injection pipe, concurrent remote reads serialize
        at the source port and the later ones finish later."""
        sim = _sim(node_injection_bytes_per_cycle=1.0)
        t1 = _round_trip(sim, 0, 1)
        t2 = _round_trip(sim, 0, 1)
        assert t2 > t1

    def test_injection_queueing_delays_completion(self):
        """The same access costs more when the injection port is slow —
        the channel is on the critical path, not just a counter."""
        fast = _round_trip(
            _sim(node_injection_bytes_per_cycle=1e9), 0, 1, nbytes=512
        )
        slow = _round_trip(
            _sim(node_injection_bytes_per_cycle=1.0), 0, 1, nbytes=512
        )
        assert slow > fast

    def test_requests_serviced_in_arrival_order(self):
        """Two requests racing to one memory node are serviced in fabric
        arrival order, not issue-call order — the far requester issued
        first but arrives second behind a near one that issued later."""
        executed = []

        def dispatcher(sim, lane, rec, start):
            executed.append((rec.label, start))
            return 1.0

        sim = Simulator(
            bench_machine(nodes=3, node_injection_bytes_per_cycle=1.0),
            dispatcher=dispatcher,
        )
        lane_far = sim.config.first_lane_of_node(2)
        lane_near = sim.config.first_lane_of_node(1)
        # far issues first but behind a saturated injection port
        sim.network._channel(2).free_at = 5000.0
        sim.dram_transaction(
            MessageRecord(lane_far, NEW_THREAD, "far", src_network_id=lane_far),
            0.0, 2, 0, 64, is_read=True,
        )
        sim.dram_transaction(
            MessageRecord(
                lane_near, NEW_THREAD, "near", src_network_id=lane_near
            ),
            1.0, 1, 0, 64, is_read=True,
        )
        sim.run()
        assert [label for label, _ in executed] == ["near", "far"]
        # the near response was serviced first, so it also returns first
        assert executed[0][1] < executed[1][1]


class TestHostBoundTaxonomy:
    def test_message_counters_partition_sent(self):
        """Every send lands in exactly one taxonomy bucket; host-bound
        result messages were previously dropped from the partition."""
        sim = _sim()
        from repro.machine import HOST_NWID

        dst_remote = sim.config.first_lane_of_node(1)
        sim.send(MessageRecord(0, NEW_THREAD, "l"), 0.0, src_node=0)
        sim.send(MessageRecord(dst_remote, NEW_THREAD, "r"), 0.0, src_node=0)
        sim.send(
            MessageRecord(0, NEW_THREAD, "h", src_network_id=None),
            0.0,
            src_node=None,
        )
        sim.send(MessageRecord(HOST_NWID, 0, "done"), 0.0, src_node=0)
        s = sim.stats
        assert s.messages_host_bound == 1
        assert s.messages_sent == (
            s.messages_local
            + s.messages_remote
            + s.messages_host_injected
            + s.messages_host_bound
        )
        assert "messages_host_bound" in s.scalar_snapshot()

    def test_partition_is_record_level_under_coalescing(self):
        """Packets are host bookkeeping, not messages: with coalescing on
        the same four-way partition holds over *records*, and the packet
        counters conserve the coalesced remote deliveries exactly."""
        sim = _sim(coalescing=True)
        from repro.machine import HOST_NWID

        dst_remote = sim.config.first_lane_of_node(1)
        sim.send(MessageRecord(0, NEW_THREAD, "l"), 0.0, src_node=0)
        # two remote records in one window -> one packet, one coalesced
        sim.send(MessageRecord(dst_remote, NEW_THREAD, "r1"), 0.0, src_node=0)
        sim.send(MessageRecord(dst_remote, NEW_THREAD, "r2"), 1.0, src_node=0)
        sim.send(
            MessageRecord(0, NEW_THREAD, "h", src_network_id=None),
            0.0,
            src_node=None,
        )
        sim.send(MessageRecord(HOST_NWID, 0, "done"), 0.0, src_node=0)
        s = sim.stats
        assert s.messages_remote == 2
        assert (s.packets_sent, s.records_coalesced) == (1, 1)
        assert s.messages_sent == (
            s.messages_local
            + s.messages_remote
            + s.messages_host_injected
            + s.messages_host_bound
        )

    def test_host_bound_send_traced(self):
        from repro.machine import HOST_NWID

        sim = Simulator(
            bench_machine(nodes=1),
            dispatcher=lambda s, l, r, t: 1.0,
            trace=True,
        )
        sim.send(
            MessageRecord(HOST_NWID, 0, "done", src_network_id=0),
            7.0,
            src_node=0,
        )
        assert sim.trace == [(7.0, 7.0, 0, HOST_NWID, "done")]
