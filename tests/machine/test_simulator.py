"""DES core: ordering, lane serialization, DRAM transactions, host mailbox."""

import pytest

from repro.machine import (
    HOST_NWID,
    MessageRecord,
    SimulationError,
    Simulator,
    bench_machine,
)
from repro.machine.events import NEW_THREAD


def null_dispatcher(cycles=5.0):
    executed = []

    def dispatch(sim, lane, record, start):
        executed.append((lane.network_id, record.label, start))
        return cycles

    dispatch.executed = executed
    return dispatch


@pytest.fixture
def sim():
    s = Simulator(bench_machine(nodes=2), dispatcher=null_dispatcher())
    return s


class TestExecution:
    def test_requires_dispatcher(self):
        s = Simulator(bench_machine(nodes=1))
        s.inject(MessageRecord(0, NEW_THREAD, "x"))
        with pytest.raises(SimulationError):
            s.run()

    def test_lane_serializes_events(self):
        disp = null_dispatcher(cycles=10.0)
        s = Simulator(bench_machine(nodes=1), dispatcher=disp)
        s.inject(MessageRecord(0, NEW_THREAD, "a"), t=0.0)
        s.inject(MessageRecord(0, NEW_THREAD, "b"), t=1.0)
        s.run()
        starts = [e[2] for e in disp.executed]
        assert starts == [0.0, 10.0]  # b waits for a

    def test_different_lanes_run_concurrently(self):
        disp = null_dispatcher(cycles=10.0)
        s = Simulator(bench_machine(nodes=1), dispatcher=disp)
        s.inject(MessageRecord(0, NEW_THREAD, "a"), t=0.0)
        s.inject(MessageRecord(1, NEW_THREAD, "b"), t=1.0)
        s.run()
        starts = sorted(e[2] for e in disp.executed)
        assert starts == [0.0, 1.0]

    def test_deterministic_tie_break(self):
        disp = null_dispatcher()
        s = Simulator(bench_machine(nodes=1), dispatcher=disp)
        s.inject(MessageRecord(0, NEW_THREAD, "first"), t=5.0)
        s.inject(MessageRecord(0, NEW_THREAD, "second"), t=5.0)
        s.run()
        assert [e[1] for e in disp.executed] == ["first", "second"]

    def test_max_events_guard(self):
        def renew(sim, lane, record, start):
            sim.send(record, start + 1.0, src_node=0)
            return 1.0

        s = Simulator(bench_machine(nodes=1), dispatcher=renew)
        s.inject(MessageRecord(0, NEW_THREAD, "loop"))
        with pytest.raises(SimulationError):
            s.run(max_events=100)

    def test_final_tick_covers_execution(self, sim):
        sim.inject(MessageRecord(0, NEW_THREAD, "x"))
        stats = sim.run()
        assert stats.final_tick == 5.0
        assert sim.elapsed_seconds == pytest.approx(5.0 / 2e9)


class TestTransport:
    def test_send_returns_delivery_time(self, sim):
        rec = MessageRecord(0, NEW_THREAD, "x", src_network_id=None)
        t = sim.send(rec, 0.0, src_node=None)
        assert t == 0.0  # host injection

    def test_remote_send_adds_latency(self, sim):
        cfg = sim.config
        dst = cfg.first_lane_of_node(1)
        t = sim.send(MessageRecord(dst, NEW_THREAD, "x"), 0.0, src_node=0)
        assert t >= cfg.remote_msg_latency_cycles
        assert sim.stats.messages_remote == 1

    def test_local_send_counted(self, sim):
        sim.send(MessageRecord(0, NEW_THREAD, "x"), 0.0, src_node=0)
        assert sim.stats.messages_local == 1

    def test_host_injection_counted_separately(self, sim):
        """A host-injected send (src_node=None) never rides the fabric, so
        it must not be misclassified as local node traffic."""
        sim.send(MessageRecord(0, NEW_THREAD, "x", src_network_id=None),
                 0.0, src_node=None)
        assert sim.stats.messages_host_injected == 1
        assert sim.stats.messages_local == 0
        assert sim.stats.messages_remote == 0
        assert sim.stats.messages_sent == 1

    def test_host_messages_collected(self, sim):
        sim.inject(MessageRecord(HOST_NWID, 0, "done", operands=(42,)))
        sim.run()
        msgs = sim.host_messages("done")
        assert len(msgs) == 1 and msgs[0].operands == (42,)
        assert sim.host_messages("other") == []


class TestDram:
    def test_read_requires_response(self, sim):
        with pytest.raises(SimulationError):
            sim.dram_transaction(
                None, 0.0, src_node=0, memory_node=0, nbytes=64, is_read=True
            )

    def test_remote_access_slower_than_local(self, sim):
        def response_start(s, mem_node):
            resp = MessageRecord(0, NEW_THREAD, "r", src_network_id=0)
            s.dram_transaction(resp, 0.0, 0, mem_node, 64, is_read=True)
            s.run()
            return s.dispatcher.executed[-1][2]

        t_local = response_start(sim, 0)
        sim2 = Simulator(bench_machine(nodes=2), dispatcher=null_dispatcher())
        t_remote = response_start(sim2, 1)
        assert t_remote > t_local
        # remote pays one fabric transit each way (§3.2's 7:1 knob)
        assert t_remote >= t_local + 2 * sim.config.remote_dram_transit_cycles

    def test_write_without_ack_extends_final_tick(self, sim):
        t = sim.dram_transaction(None, 0.0, 0, 0, 64, is_read=False)
        assert sim.stats.final_tick == t
        assert sim.stats.dram_writes == 1

    def test_stats_track_bytes(self, sim):
        sim.dram_transaction(MessageRecord(0, 0, "r"), 0.0, 0, 0, 64, True)
        sim.dram_transaction(None, 0.0, 0, 0, 128, False)
        assert sim.stats.dram_bytes_read == 64
        assert sim.stats.dram_bytes_written == 128


class TestLazyLanes:
    def test_lanes_created_on_demand(self, sim):
        assert sim.instantiated_lanes == 0
        sim.lane(0)
        sim.lane(0)
        sim.lane(sim.config.total_lanes - 1)
        assert sim.instantiated_lanes == 2

    def test_invalid_lane_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.lane(sim.config.total_lanes)


class TestMessageTrace:
    def test_trace_off_by_default(self, sim):
        sim.send(MessageRecord(0, NEW_THREAD, "x"), 0.0, src_node=0)
        assert sim.trace == []

    def test_trace_records_sends(self):
        s = Simulator(
            bench_machine(nodes=2), dispatcher=null_dispatcher(), trace=True
        )
        dst = s.config.first_lane_of_node(1)
        s.send(
            MessageRecord(dst, NEW_THREAD, "hop", src_network_id=0),
            5.0,
            src_node=0,
        )
        assert len(s.trace) == 1
        t_issue, t_deliver, src, dst_got, label = s.trace[0]
        assert (t_issue, src, dst_got, label) == (5.0, 0, dst, "hop")
        assert t_deliver >= 5.0 + s.config.remote_msg_latency_cycles

    def test_trace_through_runtime(self):
        from repro.udweave import UDThread, UpDownRuntime, event

        rt = UpDownRuntime(bench_machine(nodes=1))
        rt.sim.trace_enabled = True

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.spawn(1, "T::sink")
                ctx.yield_terminate()

            @event
            def sink(self, ctx):
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        labels = [t[4] for t in rt.sim.trace]
        assert "T::sink" in labels
