"""MachineConfig: topology arithmetic and validation."""

import pytest

from repro.machine import MachineConfig, bench_machine, paper_machine


class TestTopologyArithmetic:
    def test_paper_machine_lane_counts(self):
        cfg = paper_machine()
        assert cfg.lanes_per_node == 2048
        assert cfg.total_lanes == 16384 * 2048  # ~33M lanes (§3.1)

    def test_node_of_roundtrip(self):
        cfg = MachineConfig(nodes=4, accels_per_node=2, lanes_per_accel=4)
        for node in range(4):
            for accel in range(2):
                for lane in range(4):
                    nwid = cfg.network_id(node, accel, lane)
                    assert cfg.node_of(nwid) == node
                    assert cfg.lane_in_node(nwid) == accel * 4 + lane

    def test_network_ids_are_dense_and_unique(self):
        cfg = MachineConfig(nodes=3, accels_per_node=2, lanes_per_accel=2)
        ids = [
            cfg.network_id(n, a, l)
            for n in range(3)
            for a in range(2)
            for l in range(2)
        ]
        assert sorted(ids) == list(range(cfg.total_lanes))

    def test_accel_of_is_global(self):
        cfg = MachineConfig(nodes=2, accels_per_node=3, lanes_per_accel=4)
        assert cfg.accel_of(0) == 0
        assert cfg.accel_of(cfg.lanes_per_node) == 3  # first accel of node 1

    def test_first_lane_of_accel(self):
        cfg = MachineConfig(nodes=2, accels_per_node=2, lanes_per_accel=8)
        assert cfg.first_lane_of_accel(0) == 0
        assert cfg.first_lane_of_accel(3) == 24

    def test_out_of_range_rejected(self):
        cfg = MachineConfig(nodes=2, accels_per_node=2, lanes_per_accel=2)
        with pytest.raises(ValueError):
            cfg.node_of(cfg.total_lanes)
        with pytest.raises(ValueError):
            cfg.network_id(2, 0, 0)
        with pytest.raises(ValueError):
            cfg.first_lane_of_node(5)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"accels_per_node": 0},
            {"lanes_per_accel": -1},
            {"clock_hz": 0},
            {"remote_dram_latency_ratio": 0},
            {"remote_dram_bandwidth_ratio": 0.0},
            {"remote_dram_bandwidth_ratio": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MachineConfig(**kwargs)

    def test_cycles_to_seconds_uses_2ghz(self):
        cfg = MachineConfig()
        # the artifact's conversion: time[s] = ticks / 2e9
        assert cfg.cycles_to_seconds(2_000_000_000) == pytest.approx(1.0)

    def test_scaled_changes_only_nodes(self):
        cfg = bench_machine(nodes=2)
        cfg2 = cfg.scaled(16)
        assert cfg2.nodes == 16
        assert cfg2.lanes_per_accel == cfg.lanes_per_accel
        assert cfg2.node_dram_bytes_per_cycle == cfg.node_dram_bytes_per_cycle


class TestBenchMachine:
    def test_bandwidth_scales_with_lane_reduction(self):
        # 32 lanes/node = 1/64 of the paper node; bandwidth scales by the
        # same factor times the calibrated boost
        cfg = bench_machine(
            nodes=1, accels_per_node=4, lanes_per_accel=8, bandwidth_boost=1.0
        )
        assert cfg.lanes_per_node == 32
        assert cfg.node_dram_bytes_per_cycle == pytest.approx(4700.0 / 64)
        assert cfg.node_injection_bytes_per_cycle == pytest.approx(2000.0 / 64)

    def test_default_shape_is_two_lane_slice(self):
        cfg = bench_machine(nodes=4)
        assert cfg.lanes_per_node == 2
        assert cfg.node_dram_bytes_per_cycle == pytest.approx(
            4700.0 / 1024 * 4.0
        )

    def test_overrides_pass_through(self):
        cfg = bench_machine(nodes=1, dram_latency_cycles=999)
        assert cfg.dram_latency_cycles == 999
