"""Program registry: label assignment, handler lookup, inheritance."""

import pytest

from repro.udweave import Program, ProgramError, UDThread, event


class TA(UDThread):
    @event
    def e1(self, ctx):
        pass

    @event
    def e2(self, ctx):
        pass

    def helper(self, ctx):  # not an event
        pass


class TB(TA):
    @event
    def e3(self, ctx):
        pass


class TestRegistration:
    def test_labels_are_class_qualified(self):
        p = Program()
        p.register(TA)
        assert p.label_id("TA::e1") != p.label_id("TA::e2")
        assert p.label_name(p.label_id("TA::e1")) == "TA::e1"

    def test_handler_lookup(self):
        p = Program()
        p.register(TA)
        cls, attr = p.handler(p.label_id("TA::e2"))
        assert cls is TA and attr == "e2"

    def test_non_event_methods_not_registered(self):
        p = Program()
        p.register(TA)
        with pytest.raises(ProgramError):
            p.label_id("TA::helper")

    def test_inherited_events_registered_for_subclass(self):
        p = Program()
        p.register(TB)
        for name in ("e1", "e2", "e3"):
            cls, _ = p.handler(p.label_id(f"TB::{name}"))
            assert cls is TB

    def test_reregistration_is_idempotent(self):
        p = Program()
        p.register(TA)
        before = list(p.labels())
        p.register(TA)
        assert list(p.labels()) == before

    def test_name_collision_rejected(self):
        p = Program()
        p.register(TA)

        class TA2(UDThread):  # same __name__ via type()
            @event
            def x(self, ctx):
                pass

        TA2.__name__ = "TA"
        with pytest.raises(ProgramError):
            p.register(TA2)

    def test_eventless_class_rejected(self):
        p = Program()

        class Empty(UDThread):
            pass

        with pytest.raises(ProgramError):
            p.register(Empty)

    def test_unknown_lookups_raise(self):
        p = Program()
        with pytest.raises(ProgramError):
            p.label_id("Nope::e")
        with pytest.raises(ProgramError):
            p.label_name(99)
        with pytest.raises(ProgramError):
            p.handler(99)

    def test_decorator_usage(self):
        p = Program()

        @p.register
        class TDec(UDThread):
            @event
            def go(self, ctx):
                pass

        assert p.label_id("TDec::go") >= 0

    def test_label_of(self):
        p = Program()
        p.register(TA)
        assert p.label_of(TA, "e1") == "TA::e1"
        with pytest.raises(ProgramError):
            p.label_of(TA, "missing")
