"""LaneContext: intrinsics, DRAM split-phase access, scratchpad, yields."""

import pytest

from repro.machine import bench_machine
from repro.udweave import (
    MAX_DRAM_READ_WORDS,
    UDThread,
    UDWeaveError,
    UpDownRuntime,
    event,
)


def runtime(nodes=2):
    return UpDownRuntime(bench_machine(nodes=nodes))


class TestDramAccess:
    def test_read_roundtrip_with_tag(self):
        rt = runtime()
        reg = rt.dram_malloc(8 * 64, name="arr")
        reg[:] = range(64)
        got = []

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.send_dram_read(reg.addr(8), 4, "back", tag="req1")
                ctx.yield_()

            @event
            def back(self, ctx, tag, *vals):
                got.append((tag, vals))
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert got == [("req1", (8, 9, 10, 11))]

    def test_read_without_tag_has_plain_operands(self):
        rt = runtime()
        reg = rt.dram_malloc(8 * 8, name="arr")
        reg[:] = range(8)
        got = []

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.send_dram_read(reg.addr(0), 2, "back")
                ctx.yield_()

            @event
            def back(self, ctx, a, b):
                got.append((a, b))
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert got == [(0, 1)]

    def test_read_size_limits(self):
        rt = runtime()
        reg = rt.dram_malloc(8 * 64, name="arr")

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.send_dram_read(reg.addr(0), MAX_DRAM_READ_WORDS + 1, "go")

        rt.start(0, "T::go")
        with pytest.raises(UDWeaveError, match="1..8"):
            rt.run()

    def test_write_then_read_sees_value(self):
        rt = runtime()
        reg = rt.dram_malloc(8 * 8, name="arr")
        got = []

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.send_dram_write(reg.addr(3), [77], ack_label="wrote")
                ctx.yield_()

            @event
            def wrote(self, ctx):
                ctx.send_dram_read(reg.addr(3), 1, "back")
                ctx.yield_()

            @event
            def back(self, ctx, v):
                got.append(v)
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert got == [77]

    def test_empty_write_rejected(self):
        rt = runtime()
        reg = rt.dram_malloc(64, name="arr")

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.send_dram_write(reg.addr(0), [])

        rt.start(0, "T::go")
        with pytest.raises(UDWeaveError):
            rt.run()

    def test_dram_response_is_slower_when_remote(self):
        """Memory on node 1 read from node 0 pays the network round trip."""
        times = {}
        for first_node in (0, 1):
            rt = runtime(nodes=2)
            reg = rt.gmem.dram_malloc(
                4096, first_node, 1, 4096, name="arr"
            )

            @rt.register
            class T(UDThread):
                @event
                def go(self, ctx):
                    ctx.send_dram_read(reg.addr(0), 1, "back")
                    ctx.yield_()

                @event
                def back(self, ctx, v):
                    ctx.yield_terminate()

            rt.start(0, "T::go")
            stats = rt.run()
            times[first_node] = stats.final_tick
        assert times[1] > times[0] + 1000  # two remote hops


class TestScratchpad:
    def test_sp_rw(self):
        rt = runtime()
        got = []

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.sp_write("k", 5)
                got.append(ctx.sp_read("k"))
                got.append(ctx.sp_read("missing", "default"))
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert got == [5, "default"]

    def test_scratchpad_is_lane_private(self):
        rt = runtime()
        got = []

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.sp_write("k", "lane0")
                ctx.spawn(1, "T::peek")
                ctx.yield_terminate()

            @event
            def peek(self, ctx):
                got.append(ctx.sp_read("k"))
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert got == [None]


class TestYields:
    def test_double_yield_rejected(self):
        rt = runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.yield_()
                ctx.yield_()

        rt.start(0, "T::go")
        with pytest.raises(UDWeaveError, match="already ended"):
            rt.run()

    def test_yield_then_terminate_rejected(self):
        rt = runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.yield_()
                ctx.yield_terminate()

        rt.start(0, "T::go")
        with pytest.raises(UDWeaveError):
            rt.run()

    def test_negative_delay_rejected(self):
        rt = runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.send_event(ctx.runtime.host_evw("x"), delay=-5)

        rt.start(0, "T::go")
        with pytest.raises(UDWeaveError):
            rt.run()

    def test_delayed_send_arrives_later(self):
        rt = runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.send_event(ctx.runtime.host_evw("late"), delay=5000)
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        t, _ = rt.sim.host_inbox[0]
        assert t >= 5000


class TestContinuations:
    def test_send_reply_to_ignored_continuation_is_noop(self):
        rt = runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):  # started with no continuation
                ctx.send_reply(1, 2, 3)
                ctx.send_event(ctx.runtime.host_evw("ok"))
                ctx.yield_terminate()

        rt.start(0, "T::go")
        stats = rt.run()
        assert rt.host_messages("ok")
        # only the host message was sent
        assert stats.messages_sent == 1

    def test_listing2_call_return_composition(self):
        """The paper's Listing 2: e1 -> e2 (new thread, next lane) -> e3."""
        rt = runtime()
        trace = []

        @rt.register
        class TCallReturn(UDThread):
            @event
            def e1(self, ctx):
                trace.append("e1")
                evw = ctx.evw_new(ctx.network_id + 1, "TCallReturn::e2")
                ctw = ctx.self_evw("e3")
                ctx.send_event(evw, 0, 1, cont=ctw)
                ctx.yield_()

            @event
            def e2(self, ctx, d0, d1):
                trace.append(("e2", d0, d1))
                ctx.send_reply()
                ctx.yield_terminate()

            @event
            def e3(self, ctx):
                trace.append("e3")
                ctx.send_event(ctx.runtime.host_evw("done"))
                ctx.yield_terminate()

        rt.start(0, "TCallReturn::e1")
        rt.run()
        assert trace == ["e1", ("e2", 0, 1), "e3"]

    def test_cevnt_addresses_current_thread(self):
        rt = runtime()
        seen = []

        @rt.register
        class T(UDThread):
            def __init__(self):
                self.marker = None

            @event
            def go(self, ctx):
                self.marker = "set"
                from repro.udweave import eventword

                evw = eventword.with_label(
                    ctx.cevnt, ctx.runtime.label_id("T::again")
                )
                ctx.send_event(evw)
                ctx.yield_()

            @event
            def again(self, ctx):
                seen.append(self.marker)
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert seen == ["set"]


class TestPooledScratchpad:
    """§2.1.1: scratchpad pooling within an accelerator."""

    def test_siblings_share_through_the_pool(self):
        rt = runtime(nodes=1)
        got = []

        @rt.register
        class T(UDThread):
            @event
            def writer(self, ctx):
                # lane 0 writes into lane 1's scratchpad
                ctx.sp_write_pooled(1, "shared", 42)
                ctx.spawn(1, "T::reader")
                ctx.yield_terminate()

            @event
            def reader(self, ctx):
                got.append(ctx.sp_read("shared"))
                got.append(ctx.sp_read_pooled(0, "missing", "dflt"))
                ctx.yield_terminate()

        rt.start(0, "T::writer")
        rt.run()
        assert got == [42, "dflt"]

    def test_pooled_access_costs_more_than_private(self):
        rt = runtime(nodes=1)
        deltas = {}

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                before = ctx.cycles
                ctx.sp_write("k", 1)
                deltas["private"] = ctx.cycles - before
                before = ctx.cycles
                ctx.sp_write_pooled(1, "k", 1)
                deltas["pooled"] = ctx.cycles - before
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert deltas["pooled"] > deltas["private"]

    def test_pool_bounded_to_accelerator(self):
        rt = runtime(nodes=1)

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.sp_read_pooled(ctx.config.lanes_per_accel, "k")

        rt.start(0, "T::go")
        with pytest.raises(UDWeaveError, match="outside"):
            rt.run()
