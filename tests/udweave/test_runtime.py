"""UpDownRuntime: dispatch, thread lifecycle, yields, cost charging."""

import pytest

from repro.machine import bench_machine
from repro.udweave import (
    UDThread,
    UDWeaveError,
    UpDownRuntime,
    event,
)


def make_runtime(nodes=1):
    return UpDownRuntime(bench_machine(nodes=nodes))


class TestDispatch:
    def test_thread_state_persists_across_events(self):
        rt = make_runtime()

        @rt.register
        class Counter(UDThread):
            def __init__(self):
                self.n = 0

            @event
            def bump(self, ctx, stop_at):
                self.n += 1
                if self.n >= stop_at:
                    ctx.send_event(ctx.runtime.host_evw("n"), self.n)
                    ctx.yield_terminate()
                else:
                    ctx.send_event(ctx.self_evw("bump"), stop_at)
                    ctx.yield_()

        rt.start(0, "Counter::bump", 5)
        rt.run()
        assert rt.host_messages("n")[0].operands == (5,)

    def test_message_to_dead_thread_raises(self):
        rt = make_runtime()

        @rt.register
        class Dier(UDThread):
            @event
            def die(self, ctx):
                # address self after termination
                ctx.send_event(ctx.self_evw("die"))
                ctx.yield_terminate()

        rt.start(0, "Dier::die")
        with pytest.raises(UDWeaveError, match="dead thread"):
            rt.run()

    def test_missing_yield_raises(self):
        rt = make_runtime()

        @rt.register
        class Forgetful(UDThread):
            @event
            def oops(self, ctx):
                pass  # neither yield_ nor yield_terminate

        rt.start(0, "Forgetful::oops")
        with pytest.raises(UDWeaveError, match="yield"):
            rt.run()

    def test_wrong_thread_type_raises(self):
        rt = make_runtime()

        @rt.register
        class A(UDThread):
            @event
            def ea(self, ctx):
                ctx.yield_()

        @rt.register
        class B(UDThread):
            @event
            def go(self, ctx):
                # build an evw pointing at *this* thread but with A's label
                from repro.udweave import eventword

                bad = eventword.encode(
                    ctx.network_id,
                    ctx.runtime.label_id("A::ea"),
                    thread=ctx.tid,
                )
                ctx.send_event(bad)
                ctx.yield_()

        rt.start(0, "B::go")
        with pytest.raises(UDWeaveError, match="delivered to thread"):
            rt.run()

    def test_thread_create_and_terminate_counted(self):
        rt = make_runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.yield_terminate()

        rt.start(0, "T::go")
        stats = rt.run()
        assert stats.threads_created == 1
        assert stats.threads_terminated == 1


class TestCostCharging:
    def test_event_cycles_follow_table2(self):
        """dispatch(2) + send(1) + yield(1) = 4 cycles for this event."""
        rt = make_runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.send_event(ctx.runtime.host_evw("x"))
                ctx.yield_terminate()

        rt.start(0, "T::go")
        stats = rt.run()
        c = rt.config.costs
        expected = c.event_dispatch + c.send_message + c.thread_deallocate
        assert stats.busy_cycles_by_lane[0] == expected

    def test_work_charges_instructions(self):
        rt = make_runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.work(100)
                ctx.yield_terminate()

        rt.start(0, "T::go")
        stats = rt.run()
        assert stats.busy_cycles_by_lane[0] >= 100

    def test_negative_work_rejected(self):
        rt = make_runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.work(-1)

        rt.start(0, "T::go")
        with pytest.raises(UDWeaveError):
            rt.run()


class TestLabelResolution:
    def test_bare_names_resolve_through_mro(self):
        rt = make_runtime()

        class Base(UDThread):
            @event
            def shared(self, ctx):
                ctx.send_event(ctx.runtime.host_evw("ok"))
                ctx.yield_terminate()

        @rt.register
        class Derived(Base):
            @event
            def go(self, ctx):
                ctx.send_event(ctx.self_evw("shared"))
                ctx.yield_()

        rt.start(0, "Derived::go")
        rt.run()
        assert rt.host_messages("ok")

    def test_unknown_bare_name_raises(self):
        rt = make_runtime()

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.self_evw("nonexistent")

        rt.start(0, "T::go")
        with pytest.raises(Exception, match="not registered"):
            rt.run()

    def test_host_evw_tags_are_stable(self):
        rt = make_runtime()
        assert rt.host_evw("a") == rt.host_evw("a")
        assert rt.host_evw("a") != rt.host_evw("b")
