"""Event-IR lowering: golden dumps, batch safety, interpreter fallback.

Golden dumps pin the lowered form of every builtin app reduce handler
(pagerank, bfs, tc, bucket_sort).  Combining-cache and scratchpad key
reprs embed the owning app's ``uid`` — a process-global counter — so the
exact-text goldens substitute the live names; the *shape* (op sequence,
operand sources, batchability verdict) is pinned literally.
"""

import pytest

from repro.graph import rmat
from repro.harness import bench_config
from repro.udweave import UpDownRuntime
from repro.udweave.ir import (
    PARK_SAFE_OPS,
    LoweringUnsupported,
    Symbol,
    TraceContext,
    batch_columns,
    lower_reduce_entry,
    render_plan,
)

GRAPH = rmat(6, seed=7)
BLOCK = 4096


def _job(rt, reduce_cls_name):
    return next(
        j
        for j in rt._kvmsr_jobs.values()
        if j.reduce_cls is not None
        and j.reduce_cls.__name__ == reduce_cls_name
    )


class TestGoldenDumps:
    def test_pagerank_reduce_is_batchable(self):
        from repro.apps import PageRankApp

        rt = UpDownRuntime(bench_config(2, batch_dispatch=True))
        PageRankApp(rt, GRAPH, block_size=BLOCK).run(iterations=1)
        job = _job(rt, "PRReduceTask")
        plan = job._batch_plan  # lowered lazily on the first emit
        assert plan is not None and plan.parkable
        assert render_plan(plan) == (
            f"handler PRReduceTask::__reduce_entry__\n"
            f"  binding=HashBinding(seed=0)\n"
            f"  batchable\n"
            f"  CC_ADD cache={job.payload.cache.name} key=op[1] delta=op[2]\n"
            f"  KVR_RETURN job={job.job_id}\n"
            f"  TERMINATE"
        )
        rt.shutdown()

    def test_bucket_sort_count_batchable_scatter_falls_back(self):
        import numpy as np

        from repro.apps.bucket_sort import BucketSortApp

        rt = UpDownRuntime(bench_config(2, batch_dispatch=True))
        vals = np.arange(500, dtype=np.int64)[::-1].copy()
        BucketSortApp(rt, vals).run()
        count = _job(rt, "SortCountReduce")
        plan = count._batch_plan
        assert plan is not None and plan.parkable
        assert render_plan(plan) == (
            f"handler SortCountReduce::__reduce_entry__\n"
            f"  binding=HashBinding(seed=0)\n"
            f"  batchable\n"
            f"  CC_ADD cache={count.payload.cache.name} "
            f"key=op[1] delta=op[2]\n"
            f"  KVR_RETURN job={count.job_id}\n"
            f"  TERMINATE"
        )
        # the scatter phase appends to a raw scratchpad list — the trace
        # meets a Symbol where a list belongs and aborts
        scatter = _job(rt, "SortScatterReduce")
        assert scatter._batch_plan is None and scatter._batch_tried
        splan = lower_reduce_entry(rt, scatter, (scatter.job_id, 3, 11))
        assert not splan.parkable
        assert splan.reason.startswith("trace aborted: AttributeError")
        assert [op[0] for op in splan.ops] == ["CHARGE", "SCRATCH_RW"]
        rt.shutdown()

    def test_bfs_reduce_falls_back_on_raw_scratchpad(self):
        from repro.apps import BFSApp

        rt = UpDownRuntime(bench_config(2, batch_dispatch=True))
        BFSApp(rt, GRAPH, block_size=BLOCK).run(root=0)
        job = _job(rt, "BFSReduce")
        assert job._batch_plan is None  # nothing ever parked
        plan = lower_reduce_entry(rt, job, (job.job_id, 1, 0, 1))
        assert not plan.parkable
        # sp_read's result steers an `is None` check the trace cannot
        # see; the SCRATCH_RW whitelist refusal is what keeps that
        # silently-mistraced arm from ever executing as a batch
        assert plan.reason == "op SCRATCH_RW is not batch-safe"
        assert [op[0] for op in plan.ops] == [
            "CHARGE", "SCRATCH_RW", "CHARGE", "KVR_RETURN", "TERMINATE",
        ]
        assert "SCRATCH_RW" not in PARK_SAFE_OPS
        rt.shutdown()

    def test_tc_reduce_falls_back_on_key_unpack(self):
        from repro.apps import TriangleCountApp

        rt = UpDownRuntime(bench_config(2, batch_dispatch=True))
        TriangleCountApp(rt, GRAPH, block_size=BLOCK).run()
        job = _job(rt, "TCReduceTask")
        assert job._batch_plan is None
        plan = lower_reduce_entry(rt, job, (job.job_id, (1, 2)))
        assert not plan.parkable
        assert plan.reason == (
            "symbolic operand 'op1' used in unsupported computation"
        )
        assert plan.ops == []  # aborted before the first intrinsic
        rt.shutdown()


class TestTraceSafety:
    def test_symbol_refuses_computation(self):
        s = Symbol(1, "op1")
        for expr in (
            lambda: s + 1,
            lambda: 1 + s,
            lambda: s < 2,
            lambda: bool(s),
            lambda: len(s),
            lambda: iter(s),
            lambda: s == 0,
            lambda: s != 0,
            lambda: s[0],
        ):
            with pytest.raises(LoweringUnsupported):
                expr()

    def test_trace_context_refuses_machine_state(self):
        rt = UpDownRuntime(bench_config(2))
        tctx = TraceContext(rt)
        for attr in ("lane", "sim", "record"):
            with pytest.raises(LoweringUnsupported):
                getattr(tctx, attr)
        with pytest.raises(LoweringUnsupported):
            tctx.send_dram_read(0, 1, "reply")
        with pytest.raises(LoweringUnsupported):
            tctx.spawn(0, "X::y")
        with pytest.raises(LoweringUnsupported):
            tctx.ud_print("hi")  # unknown intrinsic via __getattr__
        rt.shutdown()


class TestFallbackParity:
    def test_unlowerable_handler_runs_interpreted_identically(self):
        """BFS never lowers — batch on must be byte-for-byte inert."""
        from repro.apps import BFSApp

        snaps = {}
        parents = {}
        for batch in (False, True):
            rt = UpDownRuntime(bench_config(2, batch_dispatch=batch))
            res = BFSApp(rt, GRAPH, block_size=BLOCK).run(root=0)
            snaps[batch] = rt.sim.stats.scalar_snapshot()
            parents[batch] = list(res.parents)
            assert rt.sim.stats.records_batched == 0
            assert rt.sim.stats.batches_executed == 0
            rt.shutdown()
        assert snaps[True] == snaps[False]
        assert parents[True] == parents[False]


class TestRecordBatchColumns:
    def test_columns_and_order(self):
        import numpy as np

        from repro.udweave.ir import HandlerPlan

        plan = HandlerPlan("PRReduceTask::__reduce_entry__", 7, [], True)
        entries = [
            (10.0, 3, plan, (0, 5, 0.25)),
            (10.0, 4, plan, (0, 6, 0.5)),
            (12.5, 1, plan, (0, 5, 0.125)),
        ]
        batch = batch_columns(entries, 0, 3)
        assert len(batch) == 3
        assert batch.label == "PRReduceTask::__reduce_entry__"
        assert batch.times.dtype == np.float64
        assert batch.seqs.dtype == np.int64
        assert list(batch.times) == [10.0, 10.0, 12.5]
        assert list(batch.seqs) == [3, 4, 1]
        assert len(batch.operands) == 3
        assert list(batch.operands[1]) == [5, 6, 5]
        assert batch.is_sorted()  # (time, seq) lexicographic
        assert not batch_columns(entries[::-1], 0, 3).is_sorted()
        sub = batch_columns(entries, 1, 2)
        assert len(sub) == 1 and list(sub.operands[2]) == [0.5]
