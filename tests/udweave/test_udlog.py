"""BASIM_PRINT-style logs and the artifact's timing-extraction recipe."""

import numpy as np
import pytest

from repro.apps import BFSApp, PageRankApp
from repro.graph import rmat
from repro.machine import bench_machine
from repro.udweave import UDLog, UDThread, UpDownRuntime, event
from repro.udweave.udlog import LogEntry


class TestUDLog:
    def test_render_matches_artifact_format(self):
        e = LogEntry(527500.0, 0, 12, "main_master::init", "BFS Start")
        line = e.render()
        assert line.startswith("[BASIM_PRINT] 527500: [NWID 0][TID 12]")
        assert "BFS Start" in line

    def test_ticks_between(self):
        log = UDLog()
        log.emit(15000, 0, 1, "l", "updown_init")
        log.emit(900000, 0, 1, "l", "progress")
        log.emit(10582600, 0, 1, "l", "updown_terminate")
        # the appendix's PR example: (10582600 - 15000) / 2e9 = 0.0053s
        assert log.seconds_between("updown_init", "updown_terminate") == (
            pytest.approx(0.0053, abs=1e-4)
        )

    def test_missing_marker_raises(self):
        log = UDLog()
        log.emit(1, 0, 0, "l", "start")
        with pytest.raises(ValueError):
            log.ticks_between("start", "never_logged")

    def test_matching_searches_label_and_message(self):
        log = UDLog()
        log.emit(1, 0, 0, "main_master::init", "hello")
        assert log.matching("main_master") and log.matching("hello")

    def test_ud_print_collects_context(self):
        rt = UpDownRuntime(bench_machine(nodes=1))

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.ud_print("checkpoint")
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert len(rt.udlog) == 1
        entry = rt.udlog.entries[0]
        assert entry.label == "T::go"
        assert entry.network_id == 0

    def test_ud_print_is_cost_free(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        cycles = {}

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                before = ctx.cycles
                ctx.ud_print("x")
                cycles["delta"] = ctx.cycles - before
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert cycles["delta"] == 0


class TestAppLogs:
    def test_pagerank_logs_init_and_terminate(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=2))
        app = PageRankApp(rt, rmat_s6, max_degree=16)
        res = app.run(max_events=5_000_000)
        # the artifact's timing recipe reproduces the result timing
        secs = rt.udlog.seconds_between("updown_init", "updown_terminate")
        assert 0 < secs <= res.elapsed_seconds

    def test_bfs_logs_match_listing19_shape(self, rmat_s6):
        rt = UpDownRuntime(bench_machine(nodes=2))
        app = BFSApp(rt, rmat_s6, max_degree=16)
        res = app.run(max_events=10_000_000)
        starts = rt.udlog.matching("BFS Start")
        iters = rt.udlog.matching(r"\[Itera ")
        finish = rt.udlog.matching("BFS finish")
        assert len(starts) == res.rounds
        assert len(iters) == res.rounds
        assert len(finish) == 1
        secs = rt.udlog.seconds_between("BFS Start", "BFS finish")
        assert 0 < secs <= res.elapsed_seconds
        # the last Itera line reports an empty queue
        assert "add queue 0" in iters[-1].message
