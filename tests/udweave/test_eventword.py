"""Event words: 64-bit encode/decode, evw_update_event semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.udweave import eventword as ew


class TestEncodeDecode:
    def test_roundtrip_concrete_thread(self):
        evw = ew.encode(1234, 56, thread=789)
        assert ew.decode(evw) == (1234, 56, 789, False)

    def test_roundtrip_new_thread(self):
        evw = ew.encode(5, 3, thread=None)
        nwid, label, thread, host = ew.decode(evw)
        assert (nwid, label, thread, host) == (5, 3, None, False)

    def test_host_flag(self):
        evw = ew.encode(0, 2, thread=0, host=True)
        assert ew.decode(evw)[3] is True

    def test_fits_in_64_bits(self):
        evw = ew.encode(ew.MAX_NETWORK_ID, ew.MAX_LABEL_ID, ew.MAX_THREAD_ID)
        assert 0 <= evw < (1 << 64)

    def test_paper_machine_network_ids_fit(self):
        # 16384 nodes x 2048 lanes = 33,554,432 IDs (paper §3.1)
        assert ew.MAX_NETWORK_ID >= 16384 * 2048 - 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"network_id": -1, "label_id": 0},
            {"network_id": ew.MAX_NETWORK_ID + 1, "label_id": 0},
            {"network_id": 0, "label_id": ew.MAX_LABEL_ID + 1},
            {"network_id": 0, "label_id": 0, "thread": ew.MAX_THREAD_ID + 1},
        ],
    )
    def test_out_of_range_rejected(self, kwargs):
        with pytest.raises(ew.EventWordError):
            ew.encode(**kwargs)

    def test_decode_rejects_non_64bit(self):
        with pytest.raises(ew.EventWordError):
            ew.decode(-1)
        with pytest.raises(ew.EventWordError):
            ew.decode(1 << 64)


class TestWithLabel:
    def test_replaces_only_label(self):
        """Paper §2.1.2: evw_update_event keeps thread context and lane."""
        evw = ew.encode(42, 7, thread=9)
        updated = ew.with_label(evw, 13)
        assert ew.decode(updated) == (42, 13, 9, False)

    def test_preserves_new_thread_flag(self):
        evw = ew.encode(42, 7, thread=None)
        updated = ew.with_label(evw, 13)
        assert ew.decode(updated)[2] is None

    def test_bad_label_rejected(self):
        with pytest.raises(ew.EventWordError):
            ew.with_label(ew.encode(0, 0, 0), ew.MAX_LABEL_ID + 1)


@given(
    nwid=st.integers(0, ew.MAX_NETWORK_ID),
    label=st.integers(0, ew.MAX_LABEL_ID),
    thread=st.one_of(st.none(), st.integers(0, ew.MAX_THREAD_ID)),
    host=st.booleans(),
)
def test_roundtrip_property(nwid, label, thread, host):
    evw = ew.encode(nwid, label, thread, host)
    assert ew.decode(evw) == (nwid, label, thread, host)
    assert ew.network_id_of(evw) == nwid
    assert ew.label_id_of(evw) == label


@given(
    nwid=st.integers(0, ew.MAX_NETWORK_ID),
    label=st.integers(0, ew.MAX_LABEL_ID),
    new_label=st.integers(0, ew.MAX_LABEL_ID),
    thread=st.one_of(st.none(), st.integers(0, ew.MAX_THREAD_ID)),
)
def test_with_label_property(nwid, label, new_label, thread):
    evw = ew.encode(nwid, label, thread)
    updated = ew.with_label(evw, new_label)
    n2, l2, t2, h2 = ew.decode(updated)
    assert (n2, l2, t2, h2) == (nwid, new_label, thread, False)
