"""Binary graph IO: the *_gv.bin / *_nl.bin format."""

import numpy as np
import pytest

from repro.graph import (
    VERTEX_STRIDE_WORDS,
    csr_from_records,
    load_graph,
    rmat,
    save_graph,
    split_and_shuffle,
    vertex_records,
)


class TestVertexRecords:
    def test_unsplit_records(self, rmat_s6):
        rec = vertex_records(rmat_s6)
        assert rec.shape == (rmat_s6.n, VERTEX_STRIDE_WORDS)
        assert np.array_equal(rec[:, 0], np.arange(rmat_s6.n))  # rep = id
        assert np.array_equal(rec[:, 1], rmat_s6.degrees)
        assert np.array_equal(rec[:, 3], rmat_s6.degrees)  # orig == degree

    def test_split_records(self, rmat_s6):
        s = split_and_shuffle(rmat_s6, 8)
        rec = vertex_records(rmat_s6, s)
        assert rec.shape == (s.n_sub, VERTEX_STRIDE_WORDS)
        assert np.array_equal(rec[:, 0], s.rep)
        assert np.array_equal(rec[:, 3], s.orig_degree[s.rep])
        # offsets point at each sub's neighbor run
        assert np.array_equal(rec[:, 2], s.graph.offsets[:-1])


class TestRoundTrip:
    def test_save_load_unsplit(self, tmp_path, rmat_s6):
        prefix = tmp_path / "g"
        gv, nl = save_graph(prefix, rmat_s6)
        assert gv.exists() and nl.exists()
        rec, nbrs, meta = load_graph(prefix)
        assert meta["n"] == rmat_s6.n and meta["m"] == rmat_s6.m
        g2 = csr_from_records(rec, nbrs)
        assert np.array_equal(g2.offsets, rmat_s6.offsets)
        assert np.array_equal(g2.neighbors, rmat_s6.neighbors)

    def test_save_load_split(self, tmp_path, rmat_s6):
        s = split_and_shuffle(rmat_s6, 8)
        prefix = tmp_path / "gs"
        save_graph(prefix, rmat_s6, s)
        rec, nbrs, meta = load_graph(prefix)
        assert meta["n"] == s.n_sub
        assert meta["n_orig"] == rmat_s6.n
        assert meta["max_degree"] == 8
        g2 = csr_from_records(rec, nbrs)
        assert np.array_equal(g2.neighbors, s.graph.neighbors)

    def test_corrupt_sidecar_detected(self, tmp_path, rmat_s6):
        prefix = tmp_path / "g"
        gv, _ = save_graph(prefix, rmat_s6)
        # truncate the vertex binary
        data = gv.read_bytes()
        gv.write_bytes(data[: len(data) // 2])
        with pytest.raises(OSError, match="disagrees"):
            load_graph(prefix)
