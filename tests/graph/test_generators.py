"""Graph generators: RMAT, ER, Forest Fire, utility graphs."""

import numpy as np
import pytest

from repro.graph import (
    complete_graph,
    erdos_renyi,
    forest_fire,
    path_graph,
    rmat,
    rmat_edges,
    star_graph,
)
from repro.graph.generators import RMAT_A, RMAT_B, RMAT_C


class TestRMAT:
    def test_artifact_parameters(self):
        """a=0.57, b=0.19, c=0.19, edge factor 16 (artifact appendix)."""
        assert (RMAT_A, RMAT_B, RMAT_C) == (0.57, 0.19, 0.19)

    def test_raw_edge_count(self):
        e = rmat_edges(8, edge_factor=16, seed=0)
        assert len(e) == 16 * 256
        assert e.min() >= 0 and e.max() < 256

    def test_deterministic_by_seed(self):
        a = rmat_edges(6, seed=5)
        b = rmat_edges(6, seed=5)
        c = rmat_edges(6, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_skewed_degrees(self):
        """RMAT's point: heavy-tailed degree distribution."""
        g = rmat(10, seed=48)
        degs = g.degrees
        assert degs.max() > 8 * degs.mean()

    def test_symmetrized_by_default(self):
        g = rmat(6, seed=0)
        assert g.is_symmetric()

    def test_invalid_scale_rejected(self):
        with pytest.raises(Exception):
            rmat_edges(0)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(Exception):
            rmat_edges(4, a=0.9, b=0.9, c=0.9)


class TestErdosRenyi:
    def test_uniform_degrees(self):
        g = erdos_renyi(512, avg_degree=16.0, seed=0)
        degs = g.degrees
        # no heavy tail: max degree within a small factor of the mean
        assert degs.max() < 4 * degs.mean()

    def test_size_scales_with_avg_degree(self):
        g8 = erdos_renyi(256, 8.0, seed=1)
        g16 = erdos_renyi(256, 16.0, seed=1)
        assert g16.m > g8.m

    def test_too_small_rejected(self):
        with pytest.raises(Exception):
            erdos_renyi(1)


class TestForestFire:
    def test_connected_ish_and_heavy_tailed(self):
        g = forest_fire(256, forward_prob=0.35, seed=3)
        assert g.n == 256
        assert (g.degrees > 0).all()  # every new vertex links somewhere
        assert g.is_symmetric()

    def test_burn_probability_bounds(self):
        with pytest.raises(Exception):
            forest_fire(16, forward_prob=1.0)

    def test_higher_burn_gives_denser_graph(self):
        sparse = forest_fire(128, forward_prob=0.1, seed=1)
        dense = forest_fire(128, forward_prob=0.5, seed=1)
        assert dense.m > sparse.m


class TestUtilityGraphs:
    def test_path(self):
        g = path_graph(5)
        assert g.m == 8  # 4 undirected edges
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 20
        assert g.max_degree == 4

    def test_star(self):
        g = star_graph(10)
        assert g.degree(0) == 9
        assert all(g.degree(i) == 1 for i in range(1, 10))


class TestGridAndSmallWorld:
    def test_grid_shape(self):
        from repro.graph import grid_graph

        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 2 * (3 * 3 + 2 * 4)  # directed count of mesh edges
        assert g.max_degree == 4
        assert g.is_symmetric()

    def test_grid_corner_degrees(self):
        from repro.graph import grid_graph

        g = grid_graph(3, 3)
        assert g.degree(0) == 2  # corner
        assert g.degree(4) == 4  # center

    def test_grid_validation(self):
        from repro.graph import grid_graph
        from repro.graph import GraphError
        import pytest

        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_watts_strogatz_properties(self):
        from repro.graph import watts_strogatz

        g = watts_strogatz(64, k=4, rewire_prob=0.2, seed=3)
        assert g.n == 64
        assert g.is_symmetric()
        # ~ n*k/2 undirected edges (rewiring may drop a few duplicates)
        assert 0.8 * 64 * 4 <= g.m <= 64 * 4

    def test_watts_strogatz_zero_rewire_is_ring(self):
        from repro.graph import watts_strogatz

        g = watts_strogatz(16, k=2, rewire_prob=0.0, seed=0)
        assert all(g.degree(v) == 2 for v in range(16))

    def test_watts_strogatz_validation(self):
        from repro.graph import watts_strogatz
        from repro.graph import GraphError
        import pytest

        with pytest.raises(GraphError):
            watts_strogatz(10, k=3)  # odd k
        with pytest.raises(GraphError):
            watts_strogatz(10, k=4, rewire_prob=2.0)
