"""Named dataset stand-ins."""

import pytest

from repro.graph import dataset_names, dataset_spec, load_dataset


class TestDatasets:
    def test_all_paper_graphs_present(self):
        names = dataset_names()
        for required in (
            "rmat-s12",
            "rmat-s10",
            "erdos-renyi",
            "forest-fire",
            "soc-livej",
            "com-orkut",
            "twitter",
            "friendster",
        ):
            assert required in names

    def test_specs_document_originals(self):
        spec = dataset_spec("soc-livej")
        assert "LiveJournal" in spec.stands_in_for

    def test_loading_is_memoized(self):
        a = load_dataset("rmat-s10")
        b = load_dataset("rmat-s10")
        assert a is b

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="available"):
            load_dataset("no-such-graph")

    def test_orkut_denser_than_livej(self):
        """Stand-ins preserve relative density (orkut ef ~38 vs livej ~14)."""
        lj = load_dataset("soc-livej")
        ok = load_dataset("com-orkut")
        assert ok.m / ok.n > 1.5 * lj.m / lj.n

    def test_twitter_skewier_than_er(self):
        tw = load_dataset("twitter")
        er = load_dataset("erdos-renyi")
        skew_tw = tw.max_degree / tw.degrees.mean()
        skew_er = er.max_degree / er.degrees.mean()
        assert skew_tw > 3 * skew_er
