"""Vertex splitting: degree cap, edge preservation, shuffle behavior."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    CSRGraph,
    GraphError,
    rmat,
    split_and_shuffle,
    star_graph,
    validate_split,
)


class TestSplitCorrectness:
    def test_degree_capped(self, rmat_s7):
        s = split_and_shuffle(rmat_s7, 16)
        assert s.graph.max_degree <= 16

    def test_edge_multiset_preserved(self, rmat_s7):
        validate_split(split_and_shuffle(rmat_s7, 16), rmat_s7)

    def test_sub_counts(self):
        g = star_graph(33)  # hub degree 32
        s = split_and_shuffle(g, 10)
        assert len(s.subs_of(0)) == 4  # ceil(32/10)
        assert len(s.subs_of(1)) == 1

    def test_zero_degree_vertex_keeps_one_sub(self):
        g = CSRGraph.from_edges([(0, 1)], n=3)  # vertex 2 isolated
        s = split_and_shuffle(g, 4)
        assert len(s.subs_of(2)) == 1
        assert s.n_sub == 3

    def test_rep_and_orig_degree_consistent(self, rmat_s7):
        s = split_and_shuffle(rmat_s7, 16)
        for sub in range(s.n_sub):
            v = int(s.rep[sub])
            assert s.orig_degree[v] == rmat_s7.degree(v)

    def test_subs_of_partitions_sub_ids(self, rmat_s7):
        s = split_and_shuffle(rmat_s7, 16)
        all_subs = sorted(
            int(x) for v in range(s.n_orig) for x in s.subs_of(v)
        )
        assert all_subs == list(range(s.n_sub))

    def test_no_split_when_under_cap(self, rmat_s7):
        s = split_and_shuffle(rmat_s7, 10_000, shuffle=False)
        assert s.n_sub == rmat_s7.n
        assert np.array_equal(s.graph.neighbors, rmat_s7.neighbors)

    def test_stats(self):
        g = star_graph(20)
        s = split_and_shuffle(g, 5)
        st_ = s.stats()
        assert st_["max_degree_before"] == 19
        assert st_["max_degree_after"] <= 5
        assert st_["split_vertices"] == 1


class TestShuffle:
    def test_shuffle_is_seeded(self, rmat_s7):
        a = split_and_shuffle(rmat_s7, 16, seed=1)
        b = split_and_shuffle(rmat_s7, 16, seed=1)
        c = split_and_shuffle(rmat_s7, 16, seed=2)
        assert np.array_equal(a.rep, b.rep)
        assert not np.array_equal(a.rep, c.rep)

    def test_shuffle_disperses_hub_subs(self):
        """The point of shuffling: a hub's sub-vertices land away from
        each other so Block binding spreads them over lanes."""
        g = star_graph(1025)  # hub degree 1024
        s = split_and_shuffle(g, 8, seed=0)
        hub_positions = np.sort(s.subs_of(0))
        # 128 hub subs among 1153 total; contiguous would span 128
        span = hub_positions[-1] - hub_positions[0]
        assert span > s.n_sub // 2

    def test_unshuffled_keeps_original_order(self, rmat_s7):
        s = split_and_shuffle(rmat_s7, 16, shuffle=False)
        assert np.all(np.diff(s.rep) >= 0)

    def test_shuffle_without_seed_rejected(self, rmat_s7):
        with pytest.raises(GraphError):
            split_and_shuffle(rmat_s7, 16, seed=None, shuffle=True)

    def test_bad_max_degree_rejected(self, rmat_s7):
        with pytest.raises(GraphError):
            split_and_shuffle(rmat_s7, 0)


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=80
    ),
    max_degree=st.integers(1, 20),
    seed=st.integers(0, 3),
)
def test_split_properties(edges, max_degree, seed):
    """For any graph and cap: degree capped, multiset preserved, PR-relevant
    metadata consistent."""
    g = CSRGraph.from_edges(edges, n=13, symmetrize=True)
    s = split_and_shuffle(g, max_degree, seed=seed)
    assert s.graph.max_degree <= max_degree
    validate_split(s, g)
    # every sub's neighbors are a slice of its rep's neighbor multiset
    assert int(s.graph.degrees.sum()) == g.m
