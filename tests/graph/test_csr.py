"""CSR graph construction and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import CSRGraph, GraphError


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)], n=3)
        assert g.n == 3 and g.m == 3
        assert list(g.out_neighbors(0)) == [1, 2]
        assert g.degree(1) == 1

    def test_symmetrize_doubles_edges(self):
        g = CSRGraph.from_edges([(0, 1)], n=2, symmetrize=True)
        assert g.m == 2
        assert list(g.out_neighbors(1)) == [0]

    def test_dedup_removes_duplicates(self):
        g = CSRGraph.from_edges([(0, 1), (0, 1), (0, 1)], n=2)
        assert g.m == 1

    def test_dedup_disabled_keeps_multiplicity(self):
        g = CSRGraph.from_edges([(0, 1), (0, 1)], n=2, dedup=False)
        assert g.m == 2

    def test_self_loops_dropped_by_default(self):
        g = CSRGraph.from_edges([(0, 0), (0, 1)], n=2)
        assert g.m == 1

    def test_neighbors_sorted_within_vertex(self):
        g = CSRGraph.from_edges([(0, 5), (0, 2), (0, 9)], n=10)
        assert list(g.out_neighbors(0)) == [2, 5, 9]

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], n=4)
        assert g.n == 4 and g.m == 0
        assert g.max_degree == 0

    def test_n_inferred_from_edges(self):
        g = CSRGraph.from_edges([(0, 7)])
        assert g.n == 8

    def test_endpoint_exceeding_n_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([(0, 5)], n=3)

    def test_malformed_offsets_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_neighbor_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))


class TestTransforms:
    def test_reversed_transposes(self):
        g = CSRGraph.from_edges([(0, 1), (0, 2)], n=3)
        r = g.reversed()
        assert list(r.out_neighbors(1)) == [0]
        assert list(r.out_neighbors(2)) == [0]
        assert r.degree(0) == 0

    def test_double_reverse_is_identity(self):
        g = CSRGraph.from_edges([(0, 1), (2, 1), (1, 2)], n=3)
        rr = g.reversed().reversed()
        assert np.array_equal(rr.offsets, g.offsets)
        assert np.array_equal(rr.neighbors, g.neighbors)

    def test_is_symmetric(self):
        sym = CSRGraph.from_edges([(0, 1)], n=2, symmetrize=True)
        asym = CSRGraph.from_edges([(0, 1)], n=2)
        assert sym.is_symmetric()
        assert not asym.is_symmetric()

    def test_edges_iterator(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], n=3)
        assert sorted(g.edges()) == [(0, 1), (1, 2)]


@settings(max_examples=50)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60
    )
)
def test_csr_invariants(edges):
    g = CSRGraph.from_edges(edges, n=16, symmetrize=True)
    # degrees sum to m, offsets monotone, neighbors in range
    assert g.degrees.sum() == g.m
    assert np.all(np.diff(g.offsets) >= 0)
    if g.m:
        assert g.neighbors.min() >= 0 and g.neighbors.max() < 16
    # symmetrized + dedup = symmetric simple graph
    assert g.is_symmetric()
    for v in range(16):
        nbrs = list(g.out_neighbors(v))
        assert nbrs == sorted(set(nbrs))  # sorted, no dups
        assert v not in nbrs  # no self loops
