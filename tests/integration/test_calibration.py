"""Simulator calibration: DES measurements vs closed-form predictions.

The authors calibrate Fastsim against the cycle-accurate Gem5sim (§5.1).
We have no second simulator, so we calibrate against *analytic* models in
regimes simple enough to solve by hand: pure-compute saturation, memory
bandwidth limits, network latency, and injection serialization.
"""

import pytest

from repro.kvmsr import KVMSRJob, make_do_all, MapTask, RangeInput
from repro.machine import MachineConfig, bench_machine
from repro.udweave import UDThread, UpDownRuntime, event


class TestComputeBound:
    def test_do_all_makespan_matches_work_over_lanes(self):
        """N tasks of W cycles on L lanes must take ~N*W/L cycles."""
        n_tasks, work = 256, 500
        rt = UpDownRuntime(bench_machine(nodes=4))  # 8 lanes
        make_do_all(rt, n_tasks, lambda ctx, k: ctx.work(work)).launch()
        stats = rt.run(max_events=2_000_000)
        ideal = n_tasks * work / rt.config.total_lanes
        assert ideal <= stats.final_tick <= ideal * 1.5

    def test_utilization_near_one_when_saturated(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        make_do_all(rt, 512, lambda ctx, k: ctx.work(1000)).launch()
        stats = rt.run(max_events=2_000_000)
        assert stats.utilization(rt.config.total_lanes) > 0.85


class TestMemoryBound:
    def test_dram_throughput_matches_bandwidth(self):
        """Streaming reads from one node's memory are served at the
        configured bytes/cycle, no faster."""
        cfg = bench_machine(nodes=1, node_dram_bytes_per_cycle=16.0)
        rt = UpDownRuntime(cfg)
        region = rt.dram_malloc(8 * 4096, name="stream")
        n_reads = 256  # 64B each -> 16KB total -> >= 1024 cycles at 16B/c

        @rt.register
        class Reader(UDThread):
            def __init__(self):
                self.left = n_reads

            @event
            def go(self, ctx):
                for i in range(n_reads):
                    ctx.send_dram_read(region.addr((i * 8) % 4096), 8, "back")
                ctx.yield_()

            @event
            def back(self, ctx, *words):
                self.left -= 1
                if self.left == 0:
                    ctx.yield_terminate()
                else:
                    ctx.yield_()

        rt.start(0, "Reader::go")
        stats = rt.run()
        ideal = n_reads * 64 / 16.0
        assert stats.final_tick >= ideal
        assert stats.final_tick <= ideal * 1.6  # + latency and dispatch


class TestLatency:
    def test_remote_message_roundtrip(self):
        """Ping-pong across nodes: 2 x 1000-cycle hops dominate."""
        rt = UpDownRuntime(bench_machine(nodes=2))
        remote = rt.config.first_lane_of_node(1)

        @rt.register
        class Ping(UDThread):
            @event
            def go(self, ctx):
                ctx.spawn(remote, "Ping::pong", cont=ctx.self_evw("back"))
                ctx.yield_()

            @event
            def pong(self, ctx):
                ctx.send_reply()
                ctx.yield_terminate()

            @event
            def back(self, ctx):
                ctx.yield_terminate()

        rt.start(0, "Ping::go")
        stats = rt.run()
        rtt = 2 * rt.config.remote_msg_latency_cycles
        assert rtt <= stats.final_tick <= rtt * 1.2

    def test_local_roundtrip_much_cheaper(self):
        rt = UpDownRuntime(bench_machine(nodes=2))

        @rt.register
        class Ping(UDThread):
            @event
            def go(self, ctx):
                ctx.spawn(1, "Ping::pong", cont=ctx.self_evw("back"))
                ctx.yield_()

            @event
            def pong(self, ctx):
                ctx.send_reply()
                ctx.yield_terminate()

            @event
            def back(self, ctx):
                ctx.yield_terminate()

        rt.start(0, "Ping::go")
        stats = rt.run()
        assert stats.final_tick < 3 * rt.config.local_msg_latency_cycles


class TestInjectionBound:
    def test_burst_send_serializes_at_injection_bandwidth(self):
        """A lane blasting remote messages is limited by the node's
        injection port: makespan >= n * message_bytes / injection_bw."""
        cfg = bench_machine(nodes=2, node_injection_bytes_per_cycle=8.0)
        rt = UpDownRuntime(cfg)
        remote = cfg.first_lane_of_node(1)
        n_msgs = 128

        @rt.register
        class Blast(UDThread):
            @event
            def go(self, ctx):
                for _ in range(n_msgs):
                    ctx.spawn(remote, "Blast::sink")
                ctx.yield_terminate()

            @event
            def sink(self, ctx):
                ctx.yield_terminate()

        rt.start(0, "Blast::go")
        stats = rt.run()
        ideal = n_msgs * cfg.message_bytes / 8.0
        assert stats.final_tick >= ideal


class TestFidelityModes:
    """Fast (1-channel) vs detailed (banked) memory — the Fastsim/Gem5sim
    calibration cross-check of §5.1, with the two fidelity levels of this
    simulator standing in for the two simulators."""

    def test_fast_and_detailed_agree_on_results(self, rmat_s6=None):
        import numpy as np

        from repro.apps import PageRankApp
        from repro.graph import rmat

        g = rmat(7, seed=48)
        ranks = {}
        for banks in (1, 8):
            rt = UpDownRuntime(
                bench_machine(nodes=4), memory_banks_per_node=banks
            )
            app = PageRankApp(rt, g, max_degree=16, block_size=4096)
            ranks[banks] = app.run(max_events=10_000_000).ranks
        # timing differences reorder float accumulation (as on the real
        # machine); results agree to float tolerance, not bit-exactly
        assert np.allclose(ranks[1], ranks[8], rtol=0, atol=1e-12)

    def test_fast_and_detailed_agree_on_timing(self):
        """Balanced traffic: per-bank shares sum to the node bandwidth, so
        the two fidelity levels agree within a tolerance (the paper's 1-4
        node calibration claim)."""
        from repro.apps import PageRankApp
        from repro.graph import rmat

        g = rmat(9, seed=48)
        times = {}
        for banks in (1, 8):
            rt = UpDownRuntime(
                bench_machine(nodes=4), memory_banks_per_node=banks
            )
            app = PageRankApp(rt, g, max_degree=32, block_size=4096)
            times[banks] = app.run(max_events=30_000_000).elapsed_seconds
        ratio = times[8] / times[1]
        assert 0.7 < ratio < 1.5

    def test_detailed_mode_separates_banks(self):
        """Hot single-256B-line traffic serializes on one bank in detailed
        mode: the detailed makespan exceeds the fast one."""
        from repro.machine.memory import MemorySystem

        cfg = bench_machine(nodes=1, node_dram_bytes_per_cycle=64.0)
        fast = MemorySystem(cfg, banks_per_node=1)
        detailed = MemorySystem(cfg, banks_per_node=8)
        t_fast = max(
            fast.access(0.0, 0, 0, 64, local_offset=0).response_ready
            for _ in range(32)
        )
        t_detailed = max(
            detailed.access(0.0, 0, 0, 64, local_offset=0).response_ready
            for _ in range(32)
        )
        assert t_detailed > t_fast  # one bank has 1/8 the bandwidth

    def test_bank_selection_by_address(self):
        from repro.machine.memory import MemorySystem

        cfg = bench_machine(nodes=1)
        mem = MemorySystem(cfg, banks_per_node=4)
        assert mem._bank_of(0) == 0
        assert mem._bank_of(256) == 1
        assert mem._bank_of(1024) == 0

    def test_invalid_banks_rejected(self):
        from repro.machine.memory import MemorySystem

        with pytest.raises(ValueError):
            MemorySystem(bench_machine(nodes=1), banks_per_node=0)
