"""Failure injection and multi-application coexistence."""

import numpy as np
import pytest

from repro.apps import PageRankApp, TriangleCountApp
from repro.baselines import pagerank as ref_pagerank, triangle_count
from repro.graph import rmat
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


class TestMessageReorderingRobustness:
    """Applications must not depend on message timing: results are
    identical under injected network-latency jitter (which reorders
    deliveries across lanes)."""

    def test_pagerank_invariant_under_jitter(self, rmat_s6):
        results = []
        for seed in (0, 1, 2):
            rt = UpDownRuntime(
                bench_machine(nodes=2),
                latency_jitter_cycles=500.0,
                seed=seed,
            )
            app = PageRankApp(rt, rmat_s6, max_degree=16)
            results.append(app.run(max_events=5_000_000).ranks)
        expected = ref_pagerank(rmat_s6, 1)
        for ranks in results:
            assert np.abs(ranks - expected).max() < 1e-9

    def test_tc_invariant_under_jitter(self, rmat_s6):
        expected = triangle_count(rmat_s6)
        for seed in (0, 3):
            rt = UpDownRuntime(
                bench_machine(nodes=2),
                latency_jitter_cycles=800.0,
                seed=seed,
            )
            res = TriangleCountApp(rt, rmat_s6).run(max_events=10_000_000)
            assert res.triangles == expected

    def test_jitter_changes_timing_not_results(self, rmat_s6):
        times = set()
        for seed in (0, 1):
            rt = UpDownRuntime(
                bench_machine(nodes=2),
                latency_jitter_cycles=500.0,
                seed=seed,
            )
            app = PageRankApp(rt, rmat_s6, max_degree=16)
            times.add(app.run(max_events=5_000_000).elapsed_seconds)
        assert len(times) == 2  # timing did change


class TestCoexistence:
    def test_two_apps_share_one_machine(self, rmat_s6):
        """Sequential phases of different apps on one runtime: distinct
        regions, distinct jobs, no cross-talk."""
        rt = UpDownRuntime(bench_machine(nodes=2))
        pr = PageRankApp(rt, rmat_s6, max_degree=16)
        tc = TriangleCountApp(rt, rmat_s6)
        pr_res = pr.run(max_events=5_000_000)
        tc_res = tc.run(max_events=10_000_000)
        assert np.abs(pr_res.ranks - ref_pagerank(rmat_s6, 1)).max() < 1e-9
        assert tc_res.triangles == triangle_count(rmat_s6)

    def test_pagerank_twice_on_one_machine(self, rmat_s6):
        """Fresh app instances must not inherit stale combining-cache or
        counter state."""
        rt = UpDownRuntime(bench_machine(nodes=2))
        a = PageRankApp(rt, rmat_s6, max_degree=16).run(max_events=5_000_000)
        rt2 = UpDownRuntime(bench_machine(nodes=2))
        b = PageRankApp(rt2, rmat_s6, max_degree=16).run(max_events=5_000_000)
        assert np.array_equal(a.ranks, b.ranks)
