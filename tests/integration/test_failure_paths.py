"""Failure injection: resource exhaustion and guard rails fault loudly."""

import pytest

from repro.apps import BFSApp
from repro.graph import star_graph
from repro.machine import bench_machine
from repro.memmodel import ScratchpadError
from repro.udweave import UDThread, UpDownRuntime, event


class TestScratchpadExhaustion:
    def test_sp_malloc_through_context(self):
        rt = UpDownRuntime(bench_machine(nodes=1), sp_capacity_words=32)
        offsets = []

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                offsets.append(ctx.sp_malloc(16))
                offsets.append(ctx.sp_malloc(16))
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert offsets == [0, 16]

    def test_exhaustion_raises_with_lane_identity(self):
        rt = UpDownRuntime(bench_machine(nodes=1), sp_capacity_words=8)

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.sp_malloc(8)
                ctx.sp_malloc(1)

        rt.start(0, "T::go")
        with pytest.raises(ScratchpadError, match="lane 0"):
            rt.run()

    def test_lanes_have_independent_arenas(self):
        rt = UpDownRuntime(bench_machine(nodes=1), sp_capacity_words=8)
        got = []

        @rt.register
        class T(UDThread):
            @event
            def go(self, ctx):
                ctx.sp_malloc(8)  # fill lane 0
                ctx.spawn(1, "T::other")
                ctx.yield_terminate()

            @event
            def other(self, ctx):
                got.append(ctx.sp_malloc(8))  # lane 1 is fresh
                ctx.yield_terminate()

        rt.start(0, "T::go")
        rt.run()
        assert got == [0]


class TestFrontierOverflow:
    def test_bfs_frontier_overflow_faults(self):
        """An undersized frontier segment fails loudly, not silently."""
        g = star_graph(256)  # everything lands in round 1
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = BFSApp(
            rt, g, max_degree=1024, frontier_cap=16, block_size=4096
        )
        with pytest.raises(RuntimeError, match="frontier segment overflow"):
            app.run(root=0, max_events=5_000_000)


class TestRunawayGuard:
    def test_max_events_stops_infinite_programs(self):
        from repro.machine import SimulationError

        rt = UpDownRuntime(bench_machine(nodes=1))

        @rt.register
        class Loop(UDThread):
            @event
            def go(self, ctx):
                ctx.send_event(ctx.self_evw("go"))
                ctx.yield_()

        rt.start(0, "Loop::go")
        with pytest.raises(SimulationError, match="max_events"):
            rt.run(max_events=500)
