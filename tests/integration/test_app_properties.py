"""Property-based end-to-end tests: random graphs through the full stack.

Each property drives the complete pipeline (graph construction → region
setup → KVMSR execution → oracle comparison) on arbitrary small graphs —
the highest-leverage correctness net in the suite.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import (
    BFSApp,
    ConnectedComponentsApp,
    PageRankApp,
    TriangleCountApp,
    reference_components,
)
from repro.baselines import bfs as ref_bfs, pagerank as ref_pr, triangle_count
from repro.graph import CSRGraph
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime

# small-but-arbitrary symmetric graphs
edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=1, max_size=40
)

SET = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SET
@given(edges=edge_lists, max_degree=st.integers(2, 8))
def test_pagerank_property(edges, max_degree):
    g = CSRGraph.from_edges(edges, n=12, symmetrize=True)
    rt = UpDownRuntime(bench_machine(nodes=2))
    app = PageRankApp(rt, g, max_degree=max_degree, block_size=4096)
    res = app.run(max_events=10_000_000)
    assert np.abs(res.ranks - ref_pr(g, 1)).max() < 1e-9


@SET
@given(edges=edge_lists, root=st.integers(0, 11))
def test_bfs_property(edges, root):
    g = CSRGraph.from_edges(edges, n=12, symmetrize=True)
    rt = UpDownRuntime(bench_machine(nodes=2))
    app = BFSApp(rt, g, max_degree=8, block_size=4096)
    res = app.run(root=root, max_events=10_000_000)
    dist, _ = ref_bfs(g, root)
    assert np.array_equal(res.distances, dist)


@SET
@given(edges=edge_lists)
def test_triangle_property(edges):
    g = CSRGraph.from_edges(edges, n=12, symmetrize=True)
    rt = UpDownRuntime(bench_machine(nodes=2))
    res = TriangleCountApp(rt, g, block_size=4096).run(max_events=10_000_000)
    assert res.triangles == triangle_count(g)


@SET
@given(edges=edge_lists)
def test_components_property(edges):
    g = CSRGraph.from_edges(edges, n=12, symmetrize=True)
    rt = UpDownRuntime(bench_machine(nodes=2))
    res = ConnectedComponentsApp(rt, g, block_size=4096).run(
        max_events=10_000_000
    )
    assert np.array_equal(res.labels, reference_components(g))
