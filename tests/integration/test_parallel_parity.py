"""Bit-identical parity of conservative parallel runs vs sequential.

The hard guarantee of ``repro.machine.parallel``: a sharded run — whether
in-process (``shards=N``) or across forked workers (``parallel=True``) —
produces *exactly* the sequential results: the same scalar fingerprint
(all 14 always-on counters including ``final_tick``), the same host
mailbox in the same order, the same functional outputs, and (when
recording) one merged flight recorder whose Chrome trace export works.

Sits alongside ``test_determinism_parity.py``: that file pins run-to-run
and observation-tier determinism; this one pins shard-count independence.
"""

import json

import pytest

from repro.apps import BFSApp, PageRankApp
from repro.graph import rmat
from repro.harness import bench_config
from repro.udweave import UpDownRuntime

GRAPH = rmat(8, seed=7)
BLOCK = 4096
NODES = 4


def _mailbox(rt):
    """Host inbox as comparable values (delivery time, label, operands)."""
    return [(t, rec.label, rec.operands) for t, rec in rt.sim.host_inbox]


def _run_pr(shards=1, parallel=False, record=None):
    from repro.observe import make_recorder

    rt = UpDownRuntime(
        bench_config(NODES),
        shards=shards,
        parallel=parallel,
        recorder=make_recorder(record),
    )
    app = PageRankApp(rt, GRAPH, max_degree=16, block_size=BLOCK)
    res = app.run(iterations=2, max_events=10_000_000)
    rt.shutdown()
    return rt, res


def _run_bfs(shards=1, parallel=False):
    rt = UpDownRuntime(bench_config(NODES), shards=shards, parallel=parallel)
    app = BFSApp(rt, GRAPH, max_degree=16, block_size=BLOCK)
    res = app.run(root=0, max_events=10_000_000)
    rt.shutdown()
    return rt, res


class TestInProcessShards:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_pagerank_fingerprint_identical(self, shards):
        seq, seq_res = _run_pr()
        shd, shd_res = _run_pr(shards=shards)
        assert (
            shd.sim.stats.scalar_snapshot() == seq.sim.stats.scalar_snapshot()
        )
        assert _mailbox(shd) == _mailbox(seq)
        # functional output too, not just timing
        assert list(shd_res.ranks) == list(seq_res.ranks)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_bfs_fingerprint_identical(self, shards):
        seq, seq_res = _run_bfs()
        shd, shd_res = _run_bfs(shards=shards)
        assert (
            shd.sim.stats.scalar_snapshot() == seq.sim.stats.scalar_snapshot()
        )
        assert _mailbox(shd) == _mailbox(seq)
        assert list(shd_res.parents) == list(seq_res.parents)


class TestForkedWorkers:
    """The multiprocessing mode must match sequential bit-for-bit too."""

    def test_pagerank_fingerprint_identical(self):
        seq, seq_res = _run_pr()
        par, par_res = _run_pr(shards=2, parallel=True)
        assert (
            par.sim.stats.scalar_snapshot() == seq.sim.stats.scalar_snapshot()
        )
        assert _mailbox(par) == _mailbox(seq)
        # write-log replication kept the parent's functional memory
        # current — results are read host-side after the run
        assert list(par_res.ranks) == list(seq_res.ranks)

    def test_bfs_fingerprint_identical(self):
        seq, seq_res = _run_bfs()
        par, par_res = _run_bfs(shards=4, parallel=True)
        assert (
            par.sim.stats.scalar_snapshot() == seq.sim.stats.scalar_snapshot()
        )
        assert _mailbox(par) == _mailbox(seq)
        assert list(par_res.parents) == list(seq_res.parents)


class TestForkedWorkerMatrix:
    """Forked-worker parity across the machine-model feature matrix:
    packet coalescing (PacketRecord boundary frames), batched dispatch,
    and injected faults with reliable delivery (fault-delayed ``rdt``
    records crossing shards) must each stay bit-exact — and the healthy
    path must never touch the ring-overflow spill channel."""

    def _run(self, parallel, coalescing=False, batch_dispatch=False,
             faulty=False):
        from repro.faults import FaultPlan

        rt = UpDownRuntime(
            bench_config(
                NODES, coalescing=coalescing, batch_dispatch=batch_dispatch
            ),
            faults=FaultPlan(seed=11, drop_rate=0.01) if faulty else None,
            reliable=faulty,
            shards=2 if parallel else 1,
            parallel=parallel,
        )
        app = PageRankApp(rt, GRAPH, max_degree=16, block_size=BLOCK)
        res = app.run(iterations=2, max_events=10_000_000)
        fp = rt.sim.stats.scalar_snapshot()
        metrics = rt.sim.parallel_metrics()
        rt.shutdown()
        return fp, list(res.ranks), metrics

    @pytest.mark.parametrize(
        "knobs",
        [
            dict(coalescing=True),
            dict(batch_dispatch=True),
            dict(faulty=True),
            dict(coalescing=True, batch_dispatch=True, faulty=True),
        ],
        ids=["coalescing", "batch_dispatch", "faulted", "all_on"],
    )
    def test_feature_matrix_fingerprint_identical(self, knobs):
        seq_fp, seq_ranks, _ = self._run(parallel=False, **knobs)
        par_fp, par_ranks, metrics = self._run(parallel=True, **knobs)
        assert par_fp == seq_fp
        assert par_ranks == seq_ranks
        # acceptance bar: default ring capacity absorbs the whole
        # boundary stream — the spill path is for pathology only
        assert metrics["ring_overflows"] == 0
        if knobs.get("coalescing"):
            # packet seal points anchor at global next-event times, so
            # coalescing pins every window to base width
            assert set(metrics["window_hist"]) == {1}


class TestRecordedParallelRun:
    """``record=`` under parallel mode: per-shard recorders are stitched
    into the one recorder the caller holds, and the merged telemetry
    exports as a single Chrome trace."""

    def test_merged_recorder_exports_one_trace(self, tmp_path):
        from repro.observe.trace import chrome_trace

        seq, _ = _run_pr(record="full")
        par, _ = _run_pr(shards=2, parallel=True, record="full")
        # recorder identity is stable: the object handed in at build
        # time is the one holding the merged telemetry after the run
        assert par.recorder is par.sim.recorder
        seq_trace = chrome_trace(seq.recorder, seq.config.clock_hz, {})
        par_trace = chrome_trace(par.recorder, par.config.clock_hz, {})
        out = tmp_path / "parallel.trace.json"
        out.write_text(json.dumps(par_trace))
        assert json.loads(out.read_text())["traceEvents"]
        # channel telemetry is deterministic (samples are taken at
        # channel-admission points, which parity fixes), so the merged
        # trace holds exactly the sequential events — order-insensitive,
        # because sequential emission order is pop order while the merge
        # sorts by span start (Chrome's JSON is order-independent)
        def canon(trace):
            return sorted(
                json.dumps(e, sort_keys=True) for e in trace["traceEvents"]
            )

        assert canon(par_trace) == canon(seq_trace)

    def test_histogram_tier_merges(self):
        seq, _ = _run_pr(record="histograms")
        par, _ = _run_pr(shards=2, parallel=True, record="histograms")
        for node, stats in seq.recorder.inj_by_node.items():
            merged = par.recorder.inj_by_node[node]
            assert merged.admits == stats.admits
            assert merged.bytes == stats.bytes
            assert merged.wait_sum == stats.wait_sum
        for kind, hist in seq.recorder.msg_latency.items():
            assert par.recorder.msg_latency[kind].count == hist.count
        assert par.recorder.inj_wait.count == seq.recorder.inj_wait.count


class TestCoalescedParity:
    """``coalescing=True`` composes with every execution mode: packet
    composition is shard-count-invariant (seals happen at the same
    conservative window boundaries everywhere), so the *full* fingerprint
    — including ``packets_sent`` / ``records_coalesced`` — matches across
    sequential, in-process shards, and forked workers, and stripping the
    two packet counters recovers the coalescing-off fingerprint."""

    def _run(self, shards=1, parallel=False, coalescing=True):
        rt = UpDownRuntime(
            bench_config(NODES, coalescing=coalescing),
            shards=shards,
            parallel=parallel,
        )
        app = PageRankApp(rt, GRAPH, max_degree=16, block_size=BLOCK)
        res = app.run(iterations=2, max_events=10_000_000)
        rt.shutdown()
        return rt, res

    def test_fingerprint_shard_invariant_with_coalescing(self):
        seq, seq_res = self._run()
        fp = seq.sim.stats.scalar_snapshot()
        assert fp["packets_sent"] > 0
        assert fp["records_coalesced"] > 0
        for kw in (dict(shards=2), dict(shards=2, parallel=True)):
            rt, res = self._run(**kw)
            assert rt.sim.stats.scalar_snapshot() == fp, kw
            assert _mailbox(rt) == _mailbox(seq), kw
            assert list(res.ranks) == list(seq_res.ranks), kw

    def test_coalescing_invisible_outside_packet_counters(self):
        on, on_res = self._run()
        off, off_res = self._run(coalescing=False)
        fp_on = on.sim.stats.scalar_snapshot()
        fp_off = off.sim.stats.scalar_snapshot()
        # record-level conservation: every remote record either opened a
        # packet or joined one (no transport/faults in this run)
        assert (
            fp_on["packets_sent"] + fp_on["records_coalesced"]
            == fp_on["messages_remote"]
        )
        for key in ("packets_sent", "records_coalesced"):
            fp_on.pop(key)
            fp_off.pop(key)
        assert fp_on == fp_off
        assert _mailbox(on) == _mailbox(off)
        assert list(on_res.ranks) == list(off_res.ranks)


class TestMultiDrainSharded:
    """Apps that call run() more than once, set up device state between
    phases, and read results through shared payload objects — the full
    AGILE workflow.  In-process sharding shares the host's Python heap,
    so every phase-boundary idiom works and parity must hold end to end.
    """

    def test_workflow_parity_across_phases(self):
        from repro.apps import Pattern, make_workload
        from repro.workflows import WF2Workflow

        def run(shards=1):
            wf = WF2Workflow(
                bench_config(2),
                [Pattern(0, (0, 1))],
                seeds=[0, 1],
                hops=2,
                shards=shards,
            )
            return wf.run(
                make_workload(60, n_edge_types=2, seed=3), gap_cycles=500.0
            )

        seq = run()
        shd = run(shards=2)
        assert shd.records == seq.records
        assert shd.alerts == seq.alerts
        assert shd.reached == seq.reached
        assert shd.phase_seconds == seq.phase_seconds


class TestForkedSetupGuard:
    """Forked workers inherit host registrations by copy-on-write at
    fork time only; setup performed between drains would silently
    diverge, so the executor must detect and reject it."""

    def test_post_fork_registration_rejected(self):
        from repro.machine import SimulationError
        from repro.udweave import UDThread, event

        rt = UpDownRuntime(bench_config(2), shards=2, parallel=True)

        @rt.register
        class Ping(UDThread):
            @event
            def go(self, ctx):
                ctx.yield_terminate()

        rt.start(0, "Ping::go")
        rt.run()

        @rt.register
        class Pong(UDThread):
            @event
            def go(self, ctx):
                ctx.yield_terminate()

        rt.start(0, "Pong::go")
        with pytest.raises(SimulationError, match="setup"):
            rt.run()
        rt.shutdown()
