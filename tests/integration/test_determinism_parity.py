"""Golden determinism parity for the hot-path overhaul.

The DES core guarantees bit-exact reproducibility: same program, same
seeds → identical final tick, identical scalar counters, identical host
mailbox.  These tests pin that guarantee across the two axes the
interned-label/pooled-context rework could plausibly have broken:

* run-to-run (two fresh machines, same inputs);
* ``detailed_stats`` on vs off (the histogram tier must be observation
  only — collecting it cannot perturb the simulation).
"""

import pytest

from repro.apps import BFSApp, PageRankApp, Pattern, make_workload
from repro.graph import rmat
from repro.harness import bench_config
from repro.udweave import UpDownRuntime
from repro.workflows import WF2Workflow

GRAPH = rmat(8, seed=7)
BLOCK = 4096


def _mailbox(rt):
    """Host inbox as comparable values (delivery time, label, operands)."""
    return [
        (t, rec.label, rec.operands) for t, rec in rt.sim.host_inbox
    ]


def _run_pr(detailed=False):
    rt = UpDownRuntime(bench_config(4), detailed_stats=detailed)
    app = PageRankApp(rt, GRAPH, max_degree=16, block_size=BLOCK)
    app.run(iterations=2, max_events=10_000_000)
    return rt


def _run_bfs(detailed=False):
    rt = UpDownRuntime(bench_config(4), detailed_stats=detailed)
    app = BFSApp(rt, GRAPH, max_degree=16, block_size=BLOCK)
    app.run(root=0, max_events=10_000_000)
    return rt


def _run_wf2():
    wf = WF2Workflow(
        bench_config(2), [Pattern(0, (0, 1))], seeds=[0, 1], hops=2
    )
    return wf.run(make_workload(60, n_edge_types=2, seed=3), gap_cycles=500.0)


class TestRunToRun:
    @pytest.mark.parametrize("runner", [_run_pr, _run_bfs])
    def test_identical_twice(self, runner):
        a, b = runner(), runner()
        assert a.sim.stats.scalar_snapshot() == b.sim.stats.scalar_snapshot()
        assert _mailbox(a) == _mailbox(b)

    def test_wf2_identical_twice(self):
        a, b = _run_wf2(), _run_wf2()
        assert a.records == b.records
        assert a.alerts == b.alerts
        assert a.reached == b.reached
        assert a.phase_seconds == b.phase_seconds


class TestStatsTierParity:
    """detailed_stats only adds observations — it must not change the run."""

    @pytest.mark.parametrize("runner", [_run_pr, _run_bfs])
    def test_scalars_and_mailbox_unaffected(self, runner):
        off, on = runner(detailed=False), runner(detailed=True)
        assert (
            off.sim.stats.scalar_snapshot() == on.sim.stats.scalar_snapshot()
        )
        assert off.sim.stats.final_tick == on.sim.stats.final_tick
        assert _mailbox(off) == _mailbox(on)

    def test_histogram_only_collected_when_on(self):
        off, on = _run_pr(detailed=False), _run_pr(detailed=True)
        assert not off.sim.stats.events_by_label
        assert on.sim.stats.events_by_label
        # the histogram tier agrees with the always-on scalar tier
        assert (
            sum(on.sim.stats.events_by_label.values())
            == on.sim.stats.events_executed
        )
