"""Integration: the scaling mechanisms behind Figures 9 and 12, in miniature.

These tests check the *mechanisms* (more nodes -> faster; more memory
striping -> faster until compute-bound; small graphs saturate) on small
configurations; the full benchmark sweeps live in benchmarks/.
"""

import numpy as np
import pytest

from repro.graph import rmat
from repro.harness import run_bfs, run_pagerank, run_triangle_count, speedups, sweep


@pytest.fixture(scope="module")
def graph():
    return rmat(9, seed=48)


class TestStrongScalingMechanism:
    def test_pagerank_speeds_up_with_nodes(self, graph):
        recs = sweep(run_pagerank, (1, 4), graph=graph, max_degree=32)
        sp = speedups(recs)
        assert sp[4] > 1.5

    def test_bfs_speeds_up_with_nodes(self):
        # BFS has the longest per-round latency chain of the three apps,
        # so its scaling needs a bigger graph to emerge (it is also the
        # weakest scaler in the paper's Table 9)
        g = rmat(11, seed=48)
        recs = sweep(run_bfs, (1, 4), graph=g, max_degree=64)
        sp = speedups(recs)
        assert sp[4] > 1.5

    def test_tc_speeds_up_with_nodes(self, graph):
        recs = sweep(run_triangle_count, (1, 4), graph=graph)
        sp = speedups(recs)
        assert sp[4] > 1.5

    def test_tiny_graph_saturates(self):
        """Parallelism exhaustion: a 16-vertex problem cannot use 8 nodes
        well (soc-livej's Table 9 behaviour in miniature)."""
        small = rmat(4, seed=1)
        recs = sweep(run_pagerank, (1, 8), graph=small, max_degree=32)
        sp = speedups(recs)
        assert sp[8] < 4.0


class TestPlacementMechanism:
    def test_memory_striping_improves_pagerank(self, graph):
        """Figure 12: only NRnodes changes; bandwidth-bound PR gains."""
        narrow = run_pagerank(graph, nodes=4, max_degree=32, mem_nodes=1)
        wide = run_pagerank(graph, nodes=4, max_degree=32, mem_nodes=4)
        assert wide.seconds < narrow.seconds

    def test_striping_gain_tapers(self):
        """Once the memory bottleneck eases, other limits take over.

        Needs a memory-pressured setup (many compute nodes per memory
        node), like Figure 12's 64-compute-node configuration."""
        g = rmat(10, seed=48)
        times = {
            m: run_pagerank(g, nodes=16, max_degree=32, mem_nodes=m).seconds
            for m in (1, 4, 16)
        }
        gain_first = times[1] / times[4]
        gain_last = times[4] / times[16]
        assert gain_first > gain_last


class TestAccounting:
    def test_utilization_and_imbalance_sane(self, graph):
        rec = run_pagerank(graph, nodes=2, max_degree=32)
        stats = rec.extra["stats"]
        util = stats.utilization(total_lanes=64)
        assert 0.0 < util <= 1.0
        assert stats.load_imbalance() >= 1.0

    def test_remote_traffic_appears_with_nodes(self, graph):
        one = run_pagerank(graph, nodes=1, max_degree=32).extra["stats"]
        four = run_pagerank(graph, nodes=4, max_degree=32).extra["stats"]
        assert one.messages_remote == 0
        assert four.messages_remote > 0
