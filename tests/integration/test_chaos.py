"""Chaos parity: applications survive injected faults bit-for-bit.

The acceptance bar for the fault subsystem (DESIGN.md "Fault model"):

* a seeded plan dropping ~1% of remote messages, with ack/retry enabled,
  yields **bit-identical application results** to the fault-free run —
  PageRank ranks, BFS distances, and triangle counts;
* the *same faulty run* is bit-reproducible and shard-count-invariant
  (``shards=1/2/4`` agree on every stats counter);
* with faults disabled the whole subsystem is dormant: fingerprints are
  bit-identical to a runtime built without any fault arguments.

PageRank's float bit-identity is by construction, not luck: the workload
is dyadic (power-of-two vertex count, uniform out-degree 2, damping 0.5),
so every contribution is an exact binary fraction, every addition is
exact, and sums are order-invariant — retry-induced reordering cannot
perturb the result.  BFS distances and triangle counts are integers and
order-insensitive by nature.
"""

import numpy as np
import pytest

from repro.apps import BFSApp, PageRankApp, TriangleCountApp
from repro.faults import FaultPlan
from repro.graph import CSRGraph
from repro.harness import bench_config
from repro.udweave import UpDownRuntime

NODES = 4
BLOCK = 512
N = 64  # power of two: 1/N and damping/N are exact binary fractions

#: ring-with-chords graph: vertex i -> i+1, i+2 (mod N).  Uniform
#: out-degree 2 keeps every PageRank contribution dyadic.
RING = CSRGraph.from_edges(
    [(i, (i + 1) % N) for i in range(N)]
    + [(i, (i + 2) % N) for i in range(N)],
    n=N,
)
#: symmetrized variant for BFS/TC (undirected semantics; closes the
#: (i, i+1, i+2) triangles).
RING_SYM = CSRGraph.from_edges(
    [(i, (i + 1) % N) for i in range(N)]
    + [(i, (i + 2) % N) for i in range(N)],
    n=N,
    symmetrize=True,
)

#: ~1% remote drop; seed chosen so the bench workloads actually lose
#: messages (asserted below — a plan that never fires proves nothing)
PLAN = dict(seed=11, drop_rate=0.01)


def chaos_rt(faulty, shards=1, **kw):
    return UpDownRuntime(
        bench_config(NODES),
        faults=FaultPlan(**PLAN) if faulty else None,
        reliable=faulty,
        shards=shards,
        **kw,
    )


class TestApplicationResultsSurviveDrops:
    def test_pagerank_ranks_bit_identical(self):
        def run(faulty):
            rt = chaos_rt(faulty)
            app = PageRankApp(
                rt, RING, max_degree=16, damping=0.5, block_size=BLOCK
            )
            res = app.run(iterations=3, max_events=10_000_000)
            return rt, res

        _rt, golden = run(faulty=False)
        rt, res = run(faulty=True)
        assert rt.sim.stats.faults_messages_dropped > 0
        assert rt.sim.stats.transport_retransmits > 0
        assert np.array_equal(res.ranks, golden.ranks)  # bitwise

    def test_bfs_distances_bit_identical(self):
        def run(faulty):
            rt = chaos_rt(faulty)
            app = BFSApp(rt, RING_SYM, max_degree=16, block_size=BLOCK)
            res = app.run(root=0, max_events=10_000_000)
            return rt, res

        _rt, golden = run(faulty=False)
        rt, res = run(faulty=True)
        assert rt.sim.stats.faults_messages_dropped > 0
        assert np.array_equal(res.distances, golden.distances)
        assert res.traversed_edges == golden.traversed_edges

    def test_triangle_count_identical(self):
        def run(faulty):
            rt = chaos_rt(faulty)
            app = TriangleCountApp(rt, RING_SYM, block_size=BLOCK)
            res = app.run(max_events=10_000_000)
            return rt, res

        _rt, golden = run(faulty=False)
        rt, res = run(faulty=True)
        assert golden.triangles == N  # every (i, i+1, i+2) closes
        assert rt.sim.stats.faults_messages_dropped > 0
        assert res.triangles == golden.triangles


class TestFaultyRunsAreShardInvariant:
    def test_same_faults_same_fingerprint_across_shards(self):
        """The same plan perturbs the same messages at the same times no
        matter how the machine is partitioned: fault draws are keyed by
        (actor, count), both of which are partition-independent."""
        runs = {}
        for shards in (1, 2, 4):
            rt = chaos_rt(faulty=True, shards=shards)
            app = PageRankApp(
                rt, RING, max_degree=16, damping=0.5, block_size=BLOCK
            )
            res = app.run(iterations=2, max_events=10_000_000)
            rt.shutdown()
            runs[shards] = (rt.sim.stats.scalar_snapshot(), list(res.ranks))
        assert runs[1][0]["faults_messages_dropped"] > 0
        assert runs[2] == runs[1]
        assert runs[4] == runs[1]

    def test_faulty_run_is_bit_reproducible(self):
        fps = []
        for _ in range(2):
            rt = chaos_rt(faulty=True)
            app = PageRankApp(
                rt, RING, max_degree=16, damping=0.5, block_size=BLOCK
            )
            app.run(iterations=2, max_events=10_000_000)
            fps.append(rt.sim.stats.scalar_snapshot())
        assert fps[0] == fps[1]


class TestCoalescingUnderChaos:
    """Packet coalescing composes with drops + ack/retry: fault draws and
    transport tracking stay keyed per *record*, and healthy deliveries —
    retransmits included — re-enter the coalescing path."""

    def _run(self, coalescing, shards=1):
        rt = UpDownRuntime(
            bench_config(NODES, coalescing=coalescing),
            faults=FaultPlan(**PLAN),
            reliable=True,
            shards=shards,
        )
        app = PageRankApp(
            rt, RING, max_degree=16, damping=0.5, block_size=BLOCK
        )
        res = app.run(iterations=3, max_events=10_000_000)
        rt.shutdown()
        return rt.sim.stats.scalar_snapshot(), list(res.ranks)

    def test_retransmitted_records_recoalesce(self):
        fp_on, ranks_on = self._run(coalescing=True)
        fp_off, ranks_off = self._run(coalescing=False)
        assert fp_on["faults_messages_dropped"] > 0
        assert fp_on["transport_retransmits"] > 0
        assert fp_on["packets_sent"] > 0
        assert fp_on["records_coalesced"] > 0
        # record-level conservation under chaos: every *healthy* remote
        # delivery (retransmits included) opened or joined a packet;
        # dropped records occupy no packet, and this plan neither delays
        # nor duplicates.
        assert (
            fp_on["packets_sent"] + fp_on["records_coalesced"]
            == fp_on["messages_remote"] - fp_on["faults_messages_dropped"]
        )
        # the same records were perturbed: packets never change fault
        # draws, so outside the packet counters the runs are bit-equal
        for key in ("packets_sent", "records_coalesced"):
            fp_on.pop(key)
            fp_off.pop(key)
        assert fp_on == fp_off
        assert ranks_on == ranks_off

    def test_chaotic_coalesced_run_is_shard_invariant(self):
        seq = self._run(coalescing=True)
        assert self._run(coalescing=True, shards=2) == seq


class TestDisabledFaultsAreFree:
    def test_faults_none_matches_runtime_without_fault_args(self):
        """``faults=None`` must be indistinguishable from a build that
        never heard of the subsystem — the healthy send path stays on
        the fast branch and every fingerprint counter matches."""

        def run(**kw):
            rt = UpDownRuntime(bench_config(NODES), **kw)
            app = PageRankApp(
                rt, RING, max_degree=16, damping=0.5, block_size=BLOCK
            )
            res = app.run(iterations=2, max_events=10_000_000)
            return rt.sim.stats.scalar_snapshot(), list(res.ranks)

        assert run() == run(faults=None, reliable=False, watchdog_cycles=None)
