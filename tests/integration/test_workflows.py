"""WF2 workflow composition + perflog format."""

import pytest

from repro.apps import Pattern, make_workload, reference_matches, reference_multihop
from repro.machine import bench_machine
from repro.workflows import WF2Workflow


@pytest.fixture(scope="module")
def wf2_result():
    records = make_workload(100, n_vertices=25, n_edge_types=3, seed=13)
    wf = WF2Workflow(
        bench_machine(nodes=4),
        patterns=[Pattern(0, (0, 1)), Pattern(1, (2, 2))],
        seeds=[1, 3],
        hops=2,
    )
    report = wf.run(records, gap_cycles=60_000, max_events=20_000_000)
    return records, wf, report


class TestWF2:
    def test_all_phases_produce_results(self, wf2_result):
        records, wf, report = wf2_result
        assert report.records == len(records)
        assert set(report.phase_seconds) == {
            "k1_ingest",
            "k4_match_mean_latency",
            "reasoning",
        }
        assert all(v > 0 for v in report.phase_seconds.values())

    def test_alerts_match_oracle(self, wf2_result):
        records, wf, report = wf2_result
        got = sorted((a[0], a[1]) for a in report.alerts)
        want = sorted(
            (a[0], a[1]) for a in reference_matches(records, wf.patterns)
        )
        assert got == want

    def test_reasoning_matches_oracle(self, wf2_result):
        records, wf, report = wf2_result
        assert report.reached == reference_multihop(
            records, wf.seeds, wf.hops
        )

    def test_perflog_has_listing21_shape(self, wf2_result, tmp_path):
        _records, _wf, report = wf2_result
        path = report.write_perflog(tmp_path / "perflog.tsv")
        lines = path.read_text().strip().split("\n")
        header = lines[0].split("\t")
        assert header[:4] == ["HOST_SEC", "FINAL_TICK", "SIM_TICKS", "SIM_SEC"]
        assert "MSG_STR" in header
        started = [l for l in lines if "UDKVMSR started" in l]
        finished = [l for l in lines if "UDKVMSR finished" in l]
        assert started and len(started) == len(finished)
        # every data row parses into the full column set
        for line in lines[1:3]:
            assert len(line.split("\t")) == len(header)

    def test_phase_markers_extractable(self, wf2_result):
        """The artifact's timing recipe works on our log: diff the ticks
        of the started/finished markers (Listing 21's extraction)."""
        _records, _wf, report = wf2_result
        rows = [
            l.split("\t")
            for l in report.perflog.split("\n")[1:]
            if "wf2k1" in l
        ]
        started = [r for r in rows if "UDKVMSR started" in r[-1]]
        finished = [r for r in rows if "UDKVMSR finished" in r[-1]]
        ticks = int(finished[-1][1]) - int(started[0][1])
        assert ticks > 0
        assert ticks / 2e9 == pytest.approx(
            report.phase_seconds["k1_ingest"], rel=0.01
        )
