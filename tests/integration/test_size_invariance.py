"""Machine-size invariance: the answer never depends on the machine.

The artifact's third expected result: "the algorithms do not need to be
adapted as more computational resources become available.  The resource
binding is completed by the KVMSR library."  Corollary: results are
identical (to float tolerance where accumulation order matters) across
every machine size.
"""

import numpy as np
import pytest

from repro.apps import (
    BFSApp,
    ConnectedComponentsApp,
    IngestionApp,
    PageRankApp,
    TriangleCountApp,
    make_workload,
)
from repro.datastruct import GlobalSortApp
from repro.graph import rmat
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime

SIZES = (1, 3, 8)  # deliberately includes a non-power-of-two


@pytest.fixture(scope="module")
def graph():
    return rmat(7, seed=48)


class TestSizeInvariance:
    def test_pagerank_ranks(self, graph):
        ranks = {}
        for nodes in SIZES:
            rt = UpDownRuntime(bench_machine(nodes=nodes))
            app = PageRankApp(rt, graph, max_degree=16, block_size=4096)
            ranks[nodes] = app.run(max_events=10_000_000).ranks
        for nodes in SIZES[1:]:
            assert np.allclose(ranks[SIZES[0]], ranks[nodes], atol=1e-12)

    def test_bfs_distances(self, graph):
        dists = {}
        for nodes in SIZES:
            rt = UpDownRuntime(bench_machine(nodes=nodes))
            app = BFSApp(rt, graph, max_degree=16, block_size=4096)
            dists[nodes] = app.run(root=0, max_events=10_000_000).distances
        for nodes in SIZES[1:]:
            assert np.array_equal(dists[SIZES[0]], dists[nodes])

    def test_triangle_count(self, graph):
        counts = set()
        for nodes in SIZES:
            rt = UpDownRuntime(bench_machine(nodes=nodes))
            app = TriangleCountApp(rt, graph, block_size=4096)
            counts.add(app.run(max_events=20_000_000).triangles)
        assert len(counts) == 1

    def test_components_labels(self, graph):
        labels = {}
        for nodes in SIZES:
            rt = UpDownRuntime(bench_machine(nodes=nodes))
            app = ConnectedComponentsApp(rt, graph, block_size=4096)
            labels[nodes] = app.run(max_events=30_000_000).labels
        for nodes in SIZES[1:]:
            assert np.array_equal(labels[SIZES[0]], labels[nodes])

    def test_ingestion_tables(self):
        records = make_workload(60, seed=5)
        snapshots = []
        for nodes in SIZES:
            rt = UpDownRuntime(bench_machine(nodes=nodes))
            app = IngestionApp(rt, records, block_words=16)
            app.run(max_events=10_000_000)
            v, e = app.pga.snapshot()
            snapshots.append((set(v), set(e)))
        assert all(s == snapshots[0] for s in snapshots[1:])

    def test_sort_output(self):
        rng = np.random.default_rng(3)
        vals = rng.integers(0, 5000, 200)
        outs = []
        for nodes in SIZES:
            rt = UpDownRuntime(bench_machine(nodes=nodes))
            res = GlobalSortApp(rt, vals, nbuckets=8).run(
                max_events=5_000_000
            )
            outs.append(res.output)
        for out in outs[1:]:
            assert np.array_equal(outs[0], out)
