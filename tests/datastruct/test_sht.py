"""Scalable hash table: semantics vs a dict model, capacity, distribution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastruct import ScalableHashTable, SHTError
from repro.machine import bench_machine
from repro.udweave import UDThread, UpDownRuntime, event


def drive(rt, body, done_check=True):
    """Run ``body(ctx)`` in one device event."""

    @rt.register
    class _D(UDThread):
        @event
        def go(self, ctx):
            body(ctx)
            ctx.send_event(ctx.runtime.host_evw("drv_done"))
            ctx.yield_terminate()

    rt.start(0, "_D::go")
    rt.run(max_events=3_000_000)
    if done_check:
        assert rt.host_messages("drv_done")


class TestBasicOps:
    def test_insert_lookup_remove(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        sht = ScalableHashTable(rt, "t", value_words=2)
        replies = []

        @rt.register
        class D(UDThread):
            @event
            def go(self, ctx):
                sht.insert_from(ctx, 5, (50, 51), cont=ctx.self_evw("step2"))
                ctx.yield_()

            @event
            def step2(self, ctx, ok):
                sht.lookup_from(ctx, 5, ctx.self_evw("step3"))
                ctx.yield_()

            @event
            def step3(self, ctx, found, *vals):
                replies.append((found, vals))
                sht.remove_from(ctx, 5, cont=ctx.self_evw("step4"))
                ctx.yield_()

            @event
            def step4(self, ctx, removed):
                replies.append(removed)
                sht.lookup_from(ctx, 5, ctx.self_evw("step5"))
                ctx.yield_()

            @event
            def step5(self, ctx, found, *vals):
                replies.append(found)
                ctx.yield_terminate()

        rt.start(0, "D::go")
        rt.run(max_events=500_000)
        assert replies == [(1, (50, 51)), 1, 0]

    def test_duplicate_insert_raises(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        sht = ScalableHashTable(rt, "t")

        def body(ctx):
            sht.insert_from(ctx, 1, (1,))
            sht.insert_from(ctx, 1, (2,))

        with pytest.raises(SHTError, match="duplicate"):
            drive(rt, body, done_check=False)

    def test_update_upserts(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        sht = ScalableHashTable(rt, "t")
        drive(rt, lambda ctx: (
            sht.update_from(ctx, 1, (10,)),
            sht.update_from(ctx, 1, (20,)),
        ))
        assert sht.snapshot() == {1: (20,)}

    def test_value_width_enforced(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        sht = ScalableHashTable(rt, "t", value_words=1)
        with pytest.raises(SHTError, match="exceeds"):
            drive(rt, lambda ctx: sht.insert_from(ctx, 1, (1, 2)),
                  done_check=False)

    def test_lookup_with_tag(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        sht = ScalableHashTable(rt, "t")
        got = []

        @rt.register
        class D(UDThread):
            @event
            def go(self, ctx):
                sht.update_from(ctx, 3, (33,))
                sht.lookup_from(ctx, 3, ctx.self_evw("r"), tag="A")
                sht.lookup_from(ctx, 99, ctx.self_evw("r"), tag="B")
                ctx.yield_()

            @event
            def r(self, ctx, tag, found, *vals):
                got.append((tag, found, vals))
                if len(got) == 2:
                    ctx.yield_terminate()
                else:
                    ctx.yield_()

        rt.start(0, "D::go")
        rt.run(max_events=200_000)
        assert sorted(got) == [("A", 1, (33,)), ("B", 0, ())]


class TestCapacityAndNaming:
    def test_per_lane_capacity_enforced(self):
        rt = UpDownRuntime(
            bench_machine(nodes=1, accels_per_node=1, lanes_per_accel=1)
        )
        sht = ScalableHashTable(
            rt, "tiny", buckets_per_lane=1, entries_per_bucket=2
        )

        def body(ctx):
            for k in range(3):  # one lane, capacity 2
                sht.insert_from(ctx, k, (k,))

        with pytest.raises(SHTError, match="full"):
            drive(rt, body, done_check=False)

    def test_duplicate_table_name_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        ScalableHashTable(rt, "t")
        with pytest.raises(SHTError):
            ScalableHashTable(rt, "t")

    def test_unknown_table_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(SHTError):
            ScalableHashTable.named(rt, "missing")

    def test_keys_spread_over_lanes(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        sht = ScalableHashTable(rt, "t")
        owners = {sht.owner_lane(k) for k in range(500)}
        assert len(owners) > rt.config.total_lanes // 2


class TestDictEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["update", "remove"]),
                st.integers(0, 15),
                st.integers(0, 1000),
            ),
            max_size=40,
        )
    )
    def test_matches_dict_model(self, ops):
        """Any sequence of upserts/removes leaves the SHT equal to a dict."""
        rt = UpDownRuntime(bench_machine(nodes=2))
        sht = ScalableHashTable(rt, "model")
        model = {}

        def body(ctx):
            for op, k, v in ops:
                if op == "update":
                    sht.update_from(ctx, k, (v,))
                    model[k] = (v,)
                else:
                    sht.remove_from(ctx, k)
                    model.pop(k, None)

        # ops within one event are issued concurrently; serialize by key
        # ownership: all ops on key k hit the same lane in issue order,
        # and cross-lane ops are independent - so the dict model holds.
        drive(rt, body)
        assert sht.snapshot() == model
