"""MPMC queue: no loss, no duplication, segment distribution."""

import pytest

from repro.datastruct import MPMCQueue
from repro.machine import bench_machine
from repro.udweave import UDThread, UpDownRuntime, event


class TestMPMCQueue:
    def test_enqueue_then_snapshot(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        q = MPMCQueue(rt, "q")

        @rt.register
        class D(UDThread):
            @event
            def go(self, ctx):
                for i in range(25):
                    q.enqueue_from(ctx, 1000 + i, ticket=i)
                ctx.yield_terminate()

        rt.start(0, "D::go")
        rt.run(max_events=200_000)
        assert sorted(q.snapshot()) == [1000 + i for i in range(25)]
        assert len(q) == 25

    def test_no_loss_no_dup_through_dequeues(self):
        """Every enqueued item is dequeued exactly once when consumers
        sweep every segment."""
        rt = UpDownRuntime(bench_machine(nodes=4))
        q = MPMCQueue(rt, "q", n_segments=8)
        received = []

        @rt.register
        class Producer(UDThread):
            @event
            def go(self, ctx):
                for i in range(30):
                    q.enqueue_from(ctx, i, ticket=i)
                # sweep each segment until empty, twice over
                ctx.spawn(0, "Consumer::sweep", 0, 0)
                ctx.yield_terminate()

        @rt.register
        class Consumer(UDThread):
            @event
            def sweep(self, ctx, ticket, empties):
                self.ticket, self.empties = ticket, empties
                q.dequeue_from(ctx, ticket, ctx.self_evw("got"))
                ctx.yield_()

            @event
            def got(self, ctx, found, *item):
                if found:
                    received.append(item[0])
                    empties = 0
                else:
                    empties = self.empties + 1
                if empties > 2 * 8:  # every segment seen empty
                    ctx.yield_terminate()
                    return
                ctx.spawn(0, "Consumer::sweep", self.ticket + 1, empties)
                ctx.yield_terminate()

        rt.start(0, "Producer::go")
        rt.run(max_events=500_000)
        assert sorted(received) == list(range(30))
        assert len(q) == 0

    def test_dequeue_empty_replies_zero(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        q = MPMCQueue(rt, "q")
        got = []

        @rt.register
        class D(UDThread):
            @event
            def go(self, ctx):
                q.dequeue_from(ctx, 0, ctx.self_evw("r"))
                ctx.yield_()

            @event
            def r(self, ctx, found, *item):
                got.append(found)
                ctx.yield_terminate()

        rt.start(0, "D::go")
        rt.run(max_events=50_000)
        assert got == [0]

    def test_tickets_spread_segments(self):
        rt = UpDownRuntime(bench_machine(nodes=8))
        q = MPMCQueue(rt, "q", n_segments=16)
        lanes = {q._lane_for_ticket(t) for t in range(200)}
        assert len(lanes) > 8

    def test_oversized_segment_range_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError, match="exceed"):
            MPMCQueue(rt, "q", n_segments=100)

    def test_duplicate_name_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        MPMCQueue(rt, "q")
        with pytest.raises(ValueError):
            MPMCQueue(rt, "q")
