"""SHMEM symmetric regions: placement, put/get, reductions."""

import numpy as np
import pytest

from repro.datastruct import SymmetricRegion, sum_reduce
from repro.machine import bench_machine
from repro.udweave import UDThread, UpDownRuntime, event


class TestPlacement:
    def test_each_slice_lives_on_its_node(self):
        rt = UpDownRuntime(bench_machine(nodes=4))
        sym = SymmetricRegion(rt, "s", words_per_node=16)
        for node in range(4):
            va = sym.addr(node, 0)
            assert rt.gmem.node_of(va) == node
            va_last = sym.addr(node, 15)
            assert rt.gmem.node_of(va_last) == node

    def test_offset_bounds_enforced(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        sym = SymmetricRegion(rt, "s", words_per_node=8)
        with pytest.raises(ValueError):
            sym.addr(0, 8)

    def test_host_view_isolated_per_node(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        sym = SymmetricRegion(rt, "s", words_per_node=4)
        sym.host_view(0)[:] = 1
        sym.host_view(1)[:] = 2
        assert list(sym.host_view(0)) == [1] * 4
        assert list(sym.host_view(1)) == [2] * 4


class TestPutGet:
    def test_remote_put_then_get(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        sym = SymmetricRegion(rt, "s", words_per_node=8)
        got = []

        @rt.register
        class D(UDThread):
            @event
            def go(self, ctx):  # runs on node 0
                sym.put_from(ctx, 1, 3, [42])
                # read it back (same source, so ordering holds per target)
                sym.get_from(ctx, 1, 3, 1, "back")
                ctx.yield_()

            @event
            def back(self, ctx, v):
                got.append(v)
                ctx.yield_terminate()

        rt.start(0, "D::go")
        rt.run(max_events=100_000)
        assert got == [42]
        assert sym.host_view(1)[3] == 42


class TestSumReduce:
    def test_sums_all_slices(self):
        rt = UpDownRuntime(bench_machine(nodes=4))
        sym = SymmetricRegion(rt, "s", words_per_node=10)
        for node in range(4):
            sym.host_view(node)[:] = node
        total, stats = sum_reduce(sym)
        assert total == 10 * (0 + 1 + 2 + 3)
        assert stats.events_executed > 0

    def test_single_node_machine(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        sym = SymmetricRegion(rt, "s", words_per_node=5)
        sym.host_view(0)[:] = [1, 2, 3, 4, 5]
        total, _ = sum_reduce(sym)
        assert total == 15

    def test_wide_slices(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        sym = SymmetricRegion(rt, "s", words_per_node=100)
        sym.host_view(0)[:] = 1
        sym.host_view(1)[:] = 2
        total, _ = sum_reduce(sym)
        assert total == 300


class TestCollectives:
    def test_broadcast_copies_root_slice(self):
        from repro.datastruct import broadcast

        rt = UpDownRuntime(bench_machine(nodes=4))
        sym = SymmetricRegion(rt, "b", words_per_node=12)
        sym.host_view(2)[:] = np.arange(12)
        broadcast(sym, root=2)
        for node in range(4):
            assert list(sym.host_view(node)) == list(range(12))

    def test_broadcast_bad_root_rejected(self):
        from repro.datastruct import broadcast

        rt = UpDownRuntime(bench_machine(nodes=2))
        sym = SymmetricRegion(rt, "b", words_per_node=4)
        with pytest.raises(ValueError):
            broadcast(sym, root=5)

    def test_barrier_completes_and_costs_time(self):
        from repro.datastruct import barrier

        rt = UpDownRuntime(bench_machine(nodes=4))
        stats = barrier(rt)
        assert stats.final_tick > 0
        assert stats.events_executed >= rt.config.nodes

    def test_broadcast_then_sum(self):
        from repro.datastruct import broadcast, sum_reduce

        rt = UpDownRuntime(bench_machine(nodes=4))
        sym = SymmetricRegion(rt, "bs", words_per_node=8)
        sym.host_view(0)[:] = 3
        broadcast(sym, root=0)
        total, _ = sum_reduce(sym)
        assert total == 3 * 8 * 4
