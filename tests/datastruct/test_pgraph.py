"""Parallel graph abstraction: streaming vertex/edge inserts."""

from repro.datastruct import ParallelGraph
from repro.machine import bench_machine
from repro.udweave import UDThread, UpDownRuntime, event


def drive(rt, body):
    @rt.register
    class _D(UDThread):
        @event
        def go(self, ctx):
            body(ctx)
            ctx.yield_terminate()

    rt.start(0, "_D::go")
    rt.run(max_events=2_000_000)


class TestParallelGraph:
    def test_insert_and_snapshot(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        pg = ParallelGraph(rt)
        drive(rt, lambda ctx: (
            pg.insert_vertex_from(ctx, 1, (100,)),
            pg.insert_vertex_from(ctx, 2, (200,)),
            pg.insert_edge_from(ctx, 1, 2, (7, 0)),
        ))
        vertices, edges = pg.snapshot()
        assert vertices == {1: (100,), 2: (200,)}
        assert edges == {(1, 2): (7, 0)}
        assert pg.n_vertices == 2 and pg.n_edges == 1

    def test_edge_upsert_overwrites(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        pg = ParallelGraph(rt)
        drive(rt, lambda ctx: (
            pg.insert_edge_from(ctx, 1, 2, (7, 0)),
            pg.insert_edge_from(ctx, 1, 2, (9, 1)),
        ))
        _, edges = pg.snapshot()
        assert edges == {(1, 2): (9, 1)}

    def test_directed_edges_distinct(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        pg = ParallelGraph(rt)
        drive(rt, lambda ctx: (
            pg.insert_edge_from(ctx, 1, 2, (1, 0)),
            pg.insert_edge_from(ctx, 2, 1, (2, 0)),
        ))
        _, edges = pg.snapshot()
        assert set(edges) == {(1, 2), (2, 1)}

    def test_lookup_edge(self):
        rt = UpDownRuntime(bench_machine(nodes=2))
        pg = ParallelGraph(rt)
        got = []

        @rt.register
        class D(UDThread):
            @event
            def go(self, ctx):
                pg.insert_edge_from(
                    ctx, 5, 6, (3, 9), cont=ctx.self_evw("inserted")
                )
                ctx.yield_()

            @event
            def inserted(self, ctx, ok):
                pg.lookup_edge_from(ctx, 5, 6, ctx.self_evw("found"))
                ctx.yield_()

            @event
            def found(self, ctx, hit, *vals):
                got.append((hit, vals))
                ctx.yield_terminate()

        rt.start(0, "D::go")
        rt.run(max_events=200_000)
        assert got == [(1, (3, 9))]

    def test_two_tables_are_independent(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        pg = ParallelGraph(rt)
        drive(rt, lambda ctx: pg.insert_vertex_from(ctx, 1, (1,)))
        assert pg.n_edges == 0
