"""Global sort and histogram: correctness against NumPy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datastruct import GlobalSortApp, HistogramApp
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


class TestGlobalSort:
    def test_sorts_random_input(self):
        rng = np.random.default_rng(1)
        vals = rng.integers(0, 10_000, 400)
        rt = UpDownRuntime(bench_machine(nodes=2))
        res = GlobalSortApp(rt, vals, nbuckets=16).run(max_events=3_000_000)
        assert np.array_equal(res.output, np.sort(vals))

    def test_duplicates_preserved(self):
        vals = np.array([5, 3, 5, 1, 3, 3])
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = GlobalSortApp(rt, vals, nbuckets=4).run(max_events=500_000)
        assert list(res.output) == [1, 3, 3, 3, 5, 5]

    def test_already_sorted(self):
        vals = np.arange(100)
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = GlobalSortApp(rt, vals, nbuckets=8).run(max_events=1_000_000)
        assert np.array_equal(res.output, vals)

    def test_all_equal_values(self):
        vals = np.full(50, 7)
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = GlobalSortApp(rt, vals, nbuckets=8).run(max_events=500_000)
        assert np.array_equal(res.output, vals)

    def test_negative_values(self):
        vals = np.array([-5, 3, -100, 0, 42])
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = GlobalSortApp(rt, vals, nbuckets=4).run(max_events=500_000)
        assert list(res.output) == [-100, -5, 0, 3, 42]

    def test_empty_rejected(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            GlobalSortApp(rt, np.array([], dtype=np.int64))

    @settings(max_examples=10, deadline=None)
    @given(
        vals=st.lists(st.integers(-1000, 1000), min_size=1, max_size=120)
    )
    def test_sort_property(self, vals):
        rt = UpDownRuntime(bench_machine(nodes=2))
        res = GlobalSortApp(rt, np.array(vals), nbuckets=8).run(
            max_events=2_000_000
        )
        assert list(res.output) == sorted(vals)


class TestHistogram:
    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        vals = rng.integers(0, 1000, 300)
        rt = UpDownRuntime(bench_machine(nodes=2))
        app = HistogramApp(rt, vals, nbins=10)
        res = app.run(max_events=2_000_000)
        expected, _ = np.histogram(vals, bins=10, range=(app.lo, app.hi))
        assert np.array_equal(res.counts, expected)
        assert res.counts.sum() == len(vals)

    def test_single_bin(self):
        vals = np.array([1, 2, 3])
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = HistogramApp(rt, vals, nbins=1).run(max_events=200_000)
        assert list(res.counts) == [3]

    def test_constant_values(self):
        vals = np.full(20, 9)
        rt = UpDownRuntime(bench_machine(nodes=1))
        res = HistogramApp(rt, vals, nbins=4).run(max_events=200_000)
        assert res.counts.sum() == 20

    def test_explicit_range_clamps(self):
        vals = np.array([0, 5, 10, 15, 100])
        rt = UpDownRuntime(bench_machine(nodes=1))
        app = HistogramApp(rt, vals, nbins=2, lo=0, hi=10)
        res = app.run(max_events=200_000)
        # values above hi clamp into the last bin
        assert res.counts.sum() == 5

    def test_validation(self):
        rt = UpDownRuntime(bench_machine(nodes=1))
        with pytest.raises(ValueError):
            HistogramApp(rt, np.array([]), nbins=4)
        with pytest.raises(ValueError):
            HistogramApp(rt, np.array([1]), nbins=0)
