#!/usr/bin/env python3
"""Advanced analytics: K-Truss peeling and multihop reasoning.

Two workloads beyond the headline benchmarks, both validated in-line:

* **K-Truss** (paper §6): iterative support counting + edge peeling on
  KVMSR, checked against networkx;
* **Multihop reasoning** (Table 3): stream records into the Parallel
  Graph Abstraction, then answer k-hop reachability queries over the
  live structure, checked against a truncated BFS oracle.

Run:  python examples/advanced_analytics.py
"""

from repro.apps import (
    KTrussApp,
    MultihopApp,
    make_workload,
    reference_ktruss,
    reference_multihop,
)
from repro.graph import rmat
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def ktruss_demo():
    graph = rmat(7, seed=48)
    print(f"K-Truss on {graph}")
    for k in (3, 4, 5):
        runtime = UpDownRuntime(bench_machine(nodes=4))
        result = KTrussApp(runtime, graph, k).run()
        expected = reference_ktruss(graph, k)
        assert set(result.truss.edges()) == expected
        print(
            f"  k={k}: {result.edges_remaining:5} edges survive "
            f"({result.rounds} peeling rounds, "
            f"{result.elapsed_seconds * 1e6:9.1f} us simulated) — "
            "matches networkx"
        )


def multihop_demo():
    records = make_workload(300, n_vertices=64, seed=12)
    runtime = UpDownRuntime(bench_machine(nodes=4))
    app = MultihopApp(runtime, records)
    app.run_ingest()
    vertices, edges = app.pga.snapshot()
    print(f"\nmultihop: ingested {len(edges)} edges, {len(vertices)} "
          "vertex records")
    seeds = [1, 2]
    for hops in (1, 2, 3):
        result = app2_query(records, seeds, hops)
        expected = reference_multihop(records, seeds, hops)
        assert result.reached == expected
        print(
            f"  within {hops} hop(s) of {seeds}: "
            f"{len(result.reached):3} vertices — matches the BFS oracle"
        )


def app2_query(records, seeds, hops):
    # a fresh machine per query keeps the timing comparable
    runtime = UpDownRuntime(bench_machine(nodes=4))
    app = MultihopApp(runtime, records)
    app.run_ingest()
    return app.query(seeds, hops)


if __name__ == "__main__":
    ktruss_demo()
    multihop_demo()
