#!/usr/bin/env python3
"""Quickstart: build a machine, write a KVMSR program, run it.

This walks the three-dimension decomposition of Figure 1 on a word-count
style job:

1. *parallelism*: a kv_map task per document, a kv_reduce task per word;
2. *computation binding*: Block for maps (default), Hash for reduces
   (default) — then the same program re-bound with PBMW, no logic changes;
3. *data placement*: results drained to a DRAMmalloc'd region whose layout
   is one call-site constant.

Run:  python examples/quickstart.py
"""

from repro.kvmsr import (
    CombiningCache,
    KVMSRJob,
    ListInput,
    MapTask,
    PBMWBinding,
    ReduceTask,
    job_of,
)
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime

DOCS = [
    ("doc0", ("the quick brown fox jumps over the lazy dog".split(),)),
    ("doc1", ("the fox and the hound".split(),)),
    ("doc2", ("quick quick slow".split(),)),
    ("doc3", ("dog eat dog world".split(),)),
]

cache = CombiningCache("wordcount")


class CountMap(MapTask):
    """kv_map: one task per document; one emit per word (edge-level
    parallelism, exactly like PageRank's per-edge emits)."""

    def kv_map(self, ctx, doc_id, words):
        for word in words:
            ctx.work(3)  # tokenize cost
            self.kv_emit(ctx, word, 1)
        self.kv_map_return(ctx)


class CountReduce(ReduceTask):
    """kv_reduce: all updates for a word land on its owner lane; the
    combining cache gives a race-free fetch&add in scratchpad."""

    def kv_reduce(self, ctx, word, n):
        cache.add(ctx, word, n)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        results = job_of(ctx, self._job_id).payload
        for word in cache.resident_keys(ctx):
            results[word] = results.get(word, 0) + cache.get(ctx, word)
        cache.flush(ctx, lambda c, k, v: None)
        self.kv_flush_return(ctx)


def run(binding=None, label="Block (default)"):
    runtime = UpDownRuntime(bench_machine(nodes=4))
    results = {}
    job = KVMSRJob(
        runtime,
        CountMap,
        ListInput(DOCS),
        reduce_cls=CountReduce,
        map_binding=binding,
        payload=results,
    )
    job.launch()
    stats = runtime.run()
    print(f"--- computation binding: {label}")
    print(f"    counts: {dict(sorted(results.items()))}")
    print(f"    simulated time: {runtime.elapsed_seconds * 1e6:.2f} us, "
          f"{stats.events_executed} events, "
          f"{stats.messages_sent} messages")
    return results


if __name__ == "__main__":
    block = run()
    # same program, different computation binding — dimension 2 of Fig. 1
    pbmw = run(PBMWBinding(initial_fraction=0.5, chunk_size=1), "PBMW")
    assert block == pbmw, "binding must never change the answer"
    print("same answer under both bindings — parallelism is independent "
          "of computation binding (Figure 1)")
