#!/usr/bin/env python3
"""Custom computation binding + data placement on a skewed workload.

Demonstrates dimension 2 and 3 of Figure 1 under skew:

* a *skewed* key space (zipf-like work per key) runs under Block vs PBMW
  map bindings — PBMW's master-worker stealing wins when early blocks are
  heavy (§4.3.3's motivation);
* the output region is laid out with two different DRAMmalloc calls and
  the simulator reports where the bytes landed.

Run:  python examples/custom_binding.py
"""

import numpy as np

from repro.kvmsr import (
    BlockBinding,
    KVMSRJob,
    MapTask,
    PBMWBinding,
    RangeInput,
    job_of,
)
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime

N_KEYS = 512


class SkewedWork(MapTask):
    """A contiguous run of heavy keys (a degree-sorted vertex array's hub
    block).  Block binding hands the whole heavy prefix to the first lanes;
    PBMW's smaller initial blocks + work stealing spread it (§4.3.3)."""

    def kv_map(self, ctx, key):
        ctx.work(5000 if key < 64 else 5)
        self.kv_map_return(ctx)


def run(binding, label):
    rt = UpDownRuntime(bench_machine(nodes=8))
    job = KVMSRJob(
        rt, SkewedWork, RangeInput(N_KEYS), map_binding=binding, name=label
    )
    job.launch()
    stats = rt.run()
    print(
        f"  {label:22} {rt.elapsed_seconds * 1e6:8.2f} us   "
        f"load imbalance {stats.load_imbalance():5.2f}x"
    )
    return rt.elapsed_seconds


def placement_demo():
    rt = UpDownRuntime(bench_machine(nodes=8))
    gm = rt.gmem
    cyclic = gm.dram_malloc(64 * 4096, 0, 8, 4096, name="cyclic")
    onenode = gm.dram_malloc(64 * 4096, 0, 1, 4096, name="one-node")
    for name, region in (("cyclic over 8 nodes", cyclic),
                         ("all on node 0", onenode)):
        per_node = [region.descriptor.bytes_on_node(n) for n in range(8)]
        print(f"  {name:22} bytes per node: {per_node}")


if __name__ == "__main__":
    print("skewed work under different computation bindings:")
    t_block = run(BlockBinding(), "Block")
    t_pbmw = run(PBMWBinding(initial_fraction=0.25, chunk_size=4), "PBMW")
    print(f"  -> PBMW is {t_block / t_pbmw:.2f}x faster under this skew")

    print("\ndata placement (same size, different DRAMmalloc parameters):")
    placement_demo()
