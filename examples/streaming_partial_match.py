#!/usr/bin/env python3
"""Streaming analytics: ingestion + partial match (paper §5.2.4).

A CSV record stream is parsed by the TFORM transducer, inserted into the
Parallel Graph Abstraction, and simultaneously matched against registered
path patterns — alerts fire the moment the last edge of a pattern arrives.
Prints per-record latency and validates the alerts against the sequential
oracle.

Run:  python examples/streaming_partial_match.py
"""

from repro.apps import (
    IngestionApp,
    PartialMatchApp,
    Pattern,
    make_workload,
    reference_matches,
)
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime


def main():
    records = make_workload(200, n_edge_types=4, seed=3)

    # --- bulk ingestion: parse a parallel file into the graph -----------
    rt = UpDownRuntime(bench_machine(nodes=4))
    ingest = IngestionApp(rt, records, block_words=32)
    result = ingest.run()
    vertices, edges = ingest.pga.snapshot()
    print(
        f"ingested {result.records} records "
        f"({len(vertices)} vertices, {len(edges)} edges) in "
        f"{result.elapsed_seconds * 1e6:.1f} us simulated — "
        f"{result.records_per_second:.3g} records/s"
    )

    # --- streaming partial match ----------------------------------------
    patterns = [
        Pattern(0, (0, 1)),        # a type-0 edge followed by a type-1 edge
        Pattern(1, (2, 3, 0)),     # a three-hop typed path
    ]
    rt2 = UpDownRuntime(bench_machine(nodes=4))
    matcher = PartialMatchApp(rt2, patterns)
    stream = matcher.run_stream(records, gap_cycles=50_000)

    print(f"\nstreamed {len(stream.latencies_seconds)} edge records")
    print(f"mean matching latency: {stream.mean_latency_seconds * 1e6:.2f} us")
    print(f"alerts: {len(stream.alerts)}")
    for rec_id, pattern_id, vertex in stream.alerts[:5]:
        print(f"  record {rec_id}: pattern {pattern_id} completed at "
              f"vertex {vertex}")

    expected = reference_matches(records, patterns)
    got = sorted((a[0], a[1]) for a in stream.alerts)
    want = sorted((a[0], a[1]) for a in expected)
    assert got == want, "alerts must match the sequential oracle"
    print("alerts validated against the sequential oracle")


if __name__ == "__main__":
    main()
