#!/usr/bin/env python3
"""PageRank strong scaling: a small Figure 9 (left) on your laptop.

Runs one PR iteration on an RMAT graph across a node sweep, validates the
ranks against the NumPy oracle at every configuration, and prints the
speedup curve plus a data-placement comparison (the Figure 12 experiment:
one number in a DRAMmalloc call).

Run:  python examples/pagerank_scaling.py
"""

import numpy as np

from repro.baselines import pagerank as reference_pagerank
from repro.graph import rmat
from repro.harness import run_pagerank, speedups, sweep
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime
from repro.apps import PageRankApp

NODES = (1, 2, 4, 8, 16, 32)


def main():
    graph = rmat(11, seed=48)
    print(f"graph: {graph}")
    expected = reference_pagerank(graph, iterations=1)

    print("\nstrong scaling (1 PR iteration per configuration):")
    records = sweep(run_pagerank, NODES, graph=graph, max_degree=64)
    for nodes, sp in speedups(records).items():
        bar = "#" * int(sp * 2)
        print(f"  {nodes:3} nodes: {sp:6.2f}x  {bar}")

    # validate the largest configuration end to end
    rt = UpDownRuntime(bench_machine(nodes=NODES[-1]))
    app = PageRankApp(rt, graph, max_degree=64, block_size=4096)
    result = app.run()
    err = np.abs(result.ranks - expected).max()
    print(f"\nmax |rank error| vs NumPy oracle at {NODES[-1]} nodes: {err:.2e}")
    assert err < 1e-9

    print("\ndata placement (Figure 12): same program, one number changed")
    for mem_nodes in (1, 4, 16):
        rec = run_pagerank(
            graph, nodes=16, max_degree=64, mem_nodes=mem_nodes
        )
        print(
            f"  DRAMmalloc(..., 0, NRnodes={mem_nodes:2}, 4KB): "
            f"{rec.seconds * 1e6:9.2f} us"
        )


if __name__ == "__main__":
    main()
