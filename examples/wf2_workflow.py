#!/usr/bin/env python3
"""WF2: the full streaming-analytics workflow, end to end.

Composes the three kernels the paper's §5.2.4 evaluation exercises —
K1 ingestion (TFORM parse + graph construction), K4 partial match
(streaming pattern queries), and multihop reasoning — and writes the
artifact-style ``perflog.tsv`` with the UDKVMSR phase markers the
appendix's timing recipe extracts.

Run:  python examples/wf2_workflow.py
"""

from pathlib import Path

from repro.apps import Pattern, make_workload
from repro.machine import bench_machine
from repro.workflows import WF2Workflow


def main():
    records = make_workload(250, n_vertices=48, n_edge_types=4, seed=17)
    workflow = WF2Workflow(
        bench_machine(nodes=4),
        patterns=[
            Pattern(0, (0, 1)),      # two-hop typed path
            Pattern(1, (2, 3, 0)),   # three-hop typed path
        ],
        seeds=[1, 2, 3],
        hops=2,
    )
    report = workflow.run(records, gap_cycles=40_000)

    print(f"K1 ingestion: {report.records} records in "
          f"{report.phase_seconds['k1_ingest'] * 1e6:.1f} us simulated")
    print(f"K4 partial match: {len(report.alerts)} alerts, "
          f"{report.phase_seconds['k4_match_mean_latency'] * 1e6:.2f} us "
          "mean latency")
    print(f"reasoning: {len(report.reached)} vertices within "
          f"{workflow.hops} hops of {workflow.seeds} "
          f"({report.phase_seconds['reasoning'] * 1e6:.1f} us)")

    out = Path("wf2_perflog.tsv")
    report.write_perflog(out)
    lines = report.perflog.count("\n") + 1
    markers = report.perflog.count("UDKVMSR")
    print(f"\nwrote {out} ({lines} rows, {markers} UDKVMSR phase markers)")
    print("sample rows:")
    for line in report.perflog.split("\n")[:3]:
        print("  " + line[:100])
    out.unlink()  # keep the working tree clean


if __name__ == "__main__":
    main()
