#!/usr/bin/env python3
"""Always-on service mode: open-loop traffic, admission control, SLOs.

Drives a live mutating graph with an open-loop request stream — edge
updates (ingested and pattern-matched), exact-match lookups, multihop
traversals, and partial-match probes — measures per-class p50/p99
latency against deadlines, then repeats the soak under a deterministic
1% message-drop plan with ack/retry delivery and shows the SLO verdict
still passes, byte-identical across a same-seed rerun.

Run:  python examples/service_soak.py
"""

from repro.faults import FaultPlan
from repro.harness import run_service
from repro.service import (
    AdmissionControl,
    BurstyArrivals,
    SLOSpec,
    ServiceWorkload,
)


def soak(reqs, **kw):
    rec = run_service(
        reqs,
        nodes=4,
        admission=AdmissionControl(max_queue_wait_cycles=50_000.0),
        slo=SLOSpec(),
        watchdog_cycles=50_000.0,
        **kw,
    )
    return rec.extra["service"]


def describe(name, svc):
    print(f"\n--- {name} ---")
    s = svc.status_counts
    print(
        f"requests: {svc.requests_total} "
        f"(ok={s['ok']} miss={s['deadline_miss']} "
        f"shed={s['shed']} lost={s['lost']})"
    )
    for cls, m in svc.verdict.per_class.items():
        print(
            f"  {cls:>8}: n={m['count']:3d}  "
            f"p50<={m['p50_cycles']:7.0f} cyc  "
            f"p99<={m['p99_cycles']:7.0f} cyc"
        )
    if svc.fault_counts:
        print(f"faults injected: {svc.fault_counts}")
    print(f"SLO verdict: {'PASS' if svc.verdict.passed else 'FAIL'}")
    for v in svc.verdict.violations:
        print(f"  violation: {v}")


def main():
    # bursty open-loop traffic: 16-request bursts, long intentional idle
    # gaps (which the liveness watchdog must not mistake for a stall)
    wl = ServiceWorkload(seed=21, n_vertices=64)
    arrivals = BurstyArrivals(
        burst_size=16, gap_cycles=250.0, idle_gap_cycles=60_000.0
    )
    reqs = wl.requests(arrivals.times(96))

    healthy = soak(reqs)
    describe("healthy soak", healthy)
    assert healthy.verdict.passed, "healthy soak must meet its SLO"

    chaos = soak(
        reqs, faults=FaultPlan(seed=13, drop_rate=0.01), reliable=True
    )
    describe("chaos soak (1% drops + ack/retry)", chaos)
    assert chaos.fault_counts.get("msg_drop", 0) > 0, "plan must drop"
    assert chaos.verdict.passed, "recovered chaos soak must meet its SLO"

    rerun = soak(
        reqs, faults=FaultPlan(seed=13, drop_rate=0.01), reliable=True
    )
    assert rerun.fingerprint() == chaos.fingerprint(), (
        "same-seed soak must be byte-identical"
    )
    print("\nsame-seed chaos rerun: fingerprint identical — "
          "the verdict is reproducible evidence, not a one-off")


if __name__ == "__main__":
    main()
