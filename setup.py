"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` take the ``setup.py develop`` path.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
