"""GNN kernels: genFeatures (doAll) and integrate (kvmap) — Table 3.

The AGILE GNN workload has two UpDown kernels [46]:

* **genFeatures** — a ``doAll`` over vertices materializing per-vertex
  feature vectors (here, simple degree-derived features: enough to give
  every vertex a distinct, checkable vector);
* **integrate** — the vertex-centric aggregation step: each vertex pushes
  its feature vector to its out-neighbors; reduces sum the incoming
  vectors (the mean/sum aggregation at the heart of GraphSAGE-style
  layers).  Exactly PageRank's communication pattern with vector values,
  which is why the paper groups them.

Feature vectors are ``FEATURE_DIM`` words; emits carry the whole vector
(small enough for operand registers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import VERTEX_STRIDE_WORDS, vertex_records
from repro.kvmsr import (
    ArrayInput,
    CombiningCache,
    KVMSRJob,
    MapTask,
    ReduceTask,
    job_of,
)
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime, event

FEATURE_DIM = 4


def reference_features(graph: CSRGraph) -> np.ndarray:
    """The genFeatures oracle: degree-derived vectors."""
    deg = graph.degrees.astype(np.float64)
    v = np.arange(graph.n, dtype=np.float64)
    return np.stack([deg, deg * deg, v, np.ones(graph.n)], axis=1)


def reference_integrate(graph: CSRGraph, feats: np.ndarray) -> np.ndarray:
    """The integrate oracle: ``out[u] = Σ_{v→u} feats[v]``."""
    out = np.zeros_like(feats)
    for v in range(graph.n):
        for u in graph.out_neighbors(v):
            out[u] += feats[v]
    return out


class GenFeaturesTask(MapTask):
    """doAll body: compute one vertex's features and store them."""

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        feats = [float(degree), float(degree * degree), float(rep), 1.0]
        ctx.work(6)
        ctx.send_dram_write(app.feat_region.addr(rep * FEATURE_DIM), feats)
        self.kv_map_return(ctx)


class IntegrateTask(MapTask):
    """Push this vertex's feature vector along every out-edge."""

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        self._degree, self._nl_off = degree, nl_off
        if degree == 0:
            self.kv_map_return(ctx)
            return
        ctx.send_dram_read(
            app.feat_region.addr(rep * FEATURE_DIM), FEATURE_DIM, "got_feat"
        )
        ctx.yield_()

    @event
    def got_feat(self, ctx, *feat):
        app = self.job(ctx).payload
        self._feat = feat
        self._left = self._degree
        for i in range(0, self._degree, 8):
            k = min(8, self._degree - i)
            ctx.send_dram_read(
                app.nl_region.addr(self._nl_off + i), k, "got_nbrs"
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def got_nbrs(self, ctx, *neighbors):
        for u in neighbors:
            self.kv_emit(ctx, u, *self._feat)
            ctx.work(1)
        self._left -= len(neighbors)
        if self._left == 0:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


class IntegrateReduce(ReduceTask):
    """Vector fetch&add through the combining cache."""

    def kv_reduce(self, ctx, key, *feat):
        app = self.job(ctx).payload
        app.cache.add(ctx, key, np.asarray(feat))
        ctx.work(FEATURE_DIM)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload

        def write(c, key, vec):
            c.send_dram_write(
                app.out_region.addr(key * FEATURE_DIM), list(vec)
            )

        drained = app.cache.flush(ctx, write)
        self.kv_flush_return(ctx, drained)


@dataclass
class GNNResult:
    features: np.ndarray
    aggregated: np.ndarray
    elapsed_seconds: float
    stats: SimStats


class GNNApp:
    """genFeatures + integrate over one graph."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        graph: CSRGraph,
        mem_nodes: Optional[int] = None,
        block_size: int = 32 * 1024,
    ) -> None:
        self.runtime = runtime
        self.graph = graph
        gm = runtime.gmem
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        records = vertex_records(graph)
        self.gv_region = gm.dram_malloc(
            records.size * 8, 0, mem_nodes, block_size, name="gnn_gv"
        )
        self.gv_region[:] = records.ravel()
        self.nl_region = gm.dram_malloc(
            max(8, graph.m * 8), 0, mem_nodes, block_size, name="gnn_nl"
        )
        if graph.m:
            self.nl_region[: graph.m] = graph.neighbors
        self.feat_region = gm.dram_malloc(
            graph.n * FEATURE_DIM * 8, 0, mem_nodes, block_size,
            dtype=np.float64, name="gnn_feat",
        )
        self.out_region = gm.dram_malloc(
            graph.n * FEATURE_DIM * 8, 0, mem_nodes, block_size,
            dtype=np.float64, name="gnn_out",
        )
        vin = ArrayInput(self.gv_region, VERTEX_STRIDE_WORDS, graph.n)
        self.gen_job = KVMSRJob(
            runtime, GenFeaturesTask, vin, payload=self, name="gnn_gen"
        )
        self.int_job = KVMSRJob(
            runtime,
            IntegrateTask,
            vin,
            reduce_cls=IntegrateReduce,
            payload=self,
            name="gnn_int",
        )
        self.cache = CombiningCache(f"gnn{self.int_job.job_id}")

    def run(self, max_events: Optional[int] = None) -> GNNResult:
        rt = self.runtime
        self.gen_job.launch(cont_tag="gnn_gen_done")
        rt.run(max_events=max_events)
        if not rt.host_messages("gnn_gen_done"):
            raise RuntimeError("genFeatures did not complete")
        self.int_job.launch(cont_tag="gnn_int_done")
        stats = rt.run(max_events=max_events)
        if not rt.host_messages("gnn_int_done"):
            raise RuntimeError("integrate did not complete")
        n = self.graph.n
        return GNNResult(
            features=self.feat_region.data.reshape(n, FEATURE_DIM).copy(),
            aggregated=self.out_region.data.reshape(n, FEATURE_DIM).copy(),
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )
