"""Single-source shortest paths on KVMSR — a §4.4-style further example.

Bellman-Ford in KVMSR rounds, the weighted sibling of the label-propagation
components app: every round, each reachable vertex pushes
``dist[v] + w(v, u)`` along its out-edges; reduces min-combine per target
on the owner lane; the flush applies improvements and reports how many
distances changed, and the device-side driver repeats until a round
changes nothing (at most |V| - 1 productive rounds).

Edge weights live in a region parallel to the neighbor list — the same
two-array graph layout as every other app, plus one array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import VERTEX_STRIDE_WORDS, vertex_records
from repro.kvmsr import ArrayInput, KVMSRJob, MapTask, ReduceTask, job_of
from repro.kvmsr.binding import splitmix64
from repro.machine.stats import SimStats
from repro.udweave import UDThread, UpDownRuntime, event

#: "infinity" marker for unreached vertices (fits int64)
UNREACHED = (1 << 62) - 1


def default_weights(graph: CSRGraph, max_weight: int = 16) -> np.ndarray:
    """Deterministic positive weights per directed edge: a hash of the
    (src, dst, occurrence) triple, in ``1..max_weight``."""
    if max_weight < 1:
        raise ValueError("weights must be positive")
    weights = np.empty(graph.m, dtype=np.int64)
    for v in range(graph.n):
        lo, hi = int(graph.offsets[v]), int(graph.offsets[v + 1])
        for idx in range(lo, hi):
            u = int(graph.neighbors[idx])
            weights[idx] = 1 + splitmix64(v * 1_000_003 + u) % max_weight
    return weights


class SSSPMapTask(MapTask):
    """Push this vertex's tentative distance along every out-edge."""

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        self._degree, self._nl_off = degree, nl_off
        if degree == 0:
            self.kv_map_return(ctx)
            return
        ctx.send_dram_read(app.dist_region.addr(rep), 1, "got_dist")
        ctx.yield_()

    @event
    def got_dist(self, ctx, dist):
        app = self.job(ctx).payload
        if dist >= UNREACHED:  # unreached vertices push nothing yet
            self.kv_map_return(ctx)
            return
        self._dist = dist
        self._left = self._degree
        for i in range(0, self._degree, 8):
            k = min(8, self._degree - i)
            # interleave: neighbors then their weights (two reads)
            ctx.send_dram_read(
                app.nl_region.addr(self._nl_off + i), k, "got_nbrs", tag=i
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def got_nbrs(self, ctx, i, *neighbors):
        app = self.job(ctx).payload
        ctx.send_dram_read(
            app.weight_region.addr(self._nl_off + i),
            len(neighbors),
            "got_weights",
            tag=neighbors,
        )
        ctx.yield_()

    @event
    def got_weights(self, ctx, neighbors, *weights):
        for u, w in zip(neighbors, weights):
            self.kv_emit(ctx, u, self._dist + w)
            ctx.work(2)
        self._left -= len(neighbors)
        if self._left == 0:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


class SSSPReduceTask(ReduceTask):
    """Min-combine tentative distances on the owner lane."""

    def kv_reduce(self, ctx, u, cand):
        app = self.job(ctx).payload
        key = ("sspmin", app.uid, u)
        current = ctx.sp_read(key)
        ctx.work(2)
        if current is None or cand < current:
            ctx.sp_write(key, cand)
            owned = ctx.sp_read(("sspk", app.uid), None)
            if owned is None:
                owned = set()
                ctx.sp_write(("sspk", app.uid), owned)
            owned.add(u)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        owned = ctx.sp_read(("sspk", app.uid), None) or set()
        improved = 0
        for u in owned:
            cand = ctx.sp_read(("sspmin", app.uid, u))
            ctx.sp_write(("sspmin", app.uid, u), None)
            ctx.work(2)
            if cand < int(app.dist_region.data[u]):
                ctx.send_dram_write(app.dist_region.addr(u), [cand])
                improved += 1
        ctx.sp_write(("sspk", app.uid), set())
        self.kv_flush_return(ctx, improved)


class SSSPDriver(UDThread):
    """Relax rounds until a fixed point."""

    def __init__(self) -> None:
        self.job_id = -1
        self.cont = None
        self.rounds = 0

    @event
    def start(self, ctx, job_id):
        self.job_id = job_id
        self.cont = ctx.ccont
        job_of(ctx, job_id).launch_from(ctx, ctx.self_evw("round_done"))
        ctx.yield_()

    @event
    def round_done(self, ctx, tasks, emitted, polls, improved):
        self.rounds += 1
        if improved == 0:
            ctx.send_event(self.cont, self.rounds)
            ctx.yield_terminate()
        else:
            job_of(ctx, self.job_id).launch_from(
                ctx, ctx.self_evw("round_done")
            )
            ctx.yield_()


@dataclass
class SSSPResult:
    distances: np.ndarray  # UNREACHED -> -1
    rounds: int
    elapsed_seconds: float
    stats: SimStats


class SSSPApp:
    """Weighted shortest paths from one source on a simulated machine."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        graph: CSRGraph,
        weights: Optional[np.ndarray] = None,
        mem_nodes: Optional[int] = None,
        block_size: int = 4096,
        max_inflight: int = 64,
    ) -> None:
        if weights is None:
            weights = default_weights(graph)
        weights = np.asarray(weights, dtype=np.int64)
        if len(weights) != graph.m:
            raise ValueError("need exactly one weight per directed edge")
        if graph.m and weights.min() <= 0:
            raise ValueError("weights must be positive")
        self.runtime = runtime
        self.graph = graph
        self.weights = weights
        gm = runtime.gmem
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        records = vertex_records(graph)
        self.gv_region = gm.dram_malloc(
            records.size * 8, 0, mem_nodes, block_size, name="sssp_gv"
        )
        self.gv_region[:] = records.ravel()
        self.nl_region = gm.dram_malloc(
            max(8, graph.m * 8), 0, mem_nodes, block_size, name="sssp_nl"
        )
        self.weight_region = gm.dram_malloc(
            max(8, graph.m * 8), 0, mem_nodes, block_size, name="sssp_w"
        )
        if graph.m:
            self.nl_region[: graph.m] = graph.neighbors
            self.weight_region[: graph.m] = weights
        self.dist_region = gm.dram_malloc(
            graph.n * 8, 0, mem_nodes, block_size, name="sssp_dist"
        )
        self.job = KVMSRJob(
            runtime,
            SSSPMapTask,
            ArrayInput(self.gv_region, VERTEX_STRIDE_WORDS, graph.n),
            reduce_cls=SSSPReduceTask,
            payload=self,
            max_inflight=max_inflight,
            name="sssp_round",
        )
        self.uid = self.job.job_id
        runtime.register(SSSPDriver)

    def run(
        self, source: int = 0, max_events: Optional[int] = None
    ) -> SSSPResult:
        if not (0 <= source < self.graph.n):
            raise ValueError(f"source {source} out of range")
        rt = self.runtime
        self.dist_region[:] = UNREACHED
        self.dist_region[source] = 0
        rt.start(
            self.job.master_lane,
            "SSSPDriver::start",
            self.job.job_id,
            cont=rt.host_evw("sssp_done"),
        )
        stats = rt.run(max_events=max_events)
        done = rt.host_messages("sssp_done")
        if not done:
            raise RuntimeError("SSSP did not complete")
        (rounds,) = done[-1].operands
        dist = self.dist_region.data.copy()
        dist[dist >= UNREACHED] = -1
        return SSSPResult(
            distances=dist,
            rounds=rounds,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )


def reference_sssp(
    graph: CSRGraph, weights: np.ndarray, source: int
) -> np.ndarray:
    """Oracle: Dijkstra over the weighted edges (networkx)."""
    import networkx as nx

    G = nx.DiGraph()
    G.add_nodes_from(range(graph.n))
    for v in range(graph.n):
        lo, hi = int(graph.offsets[v]), int(graph.offsets[v + 1])
        for idx in range(lo, hi):
            u = int(graph.neighbors[idx])
            w = int(weights[idx])
            # parallel edges keep the lightest
            if G.has_edge(v, u):
                w = min(w, G[v][u]["weight"])
            G.add_edge(v, u, weight=w)
    lengths = nx.single_source_dijkstra_path_length(G, source)
    out = np.full(graph.n, -1, dtype=np.int64)
    for v, d in lengths.items():
        out[v] = d
    return out
