"""Triangle Counting on KVMSR+UDWeave (paper §4.3).

kv_map tasks run over all vertices, each enumerating the edges
``<v_x, v_y>`` with ``x > y`` (avoiding double counting); each pair becomes
a kv_reduce task — placed by a Hash binding over the *combination* of the
vertex names — that streams both neighbor lists from DRAM and counts
common neighbors ``z < y``, so each triangle ``z < y < x`` is counted
exactly once.

This is the paper's second TC version: "streams both neighbor lists in the
reduce function, consuming more memory bandwidth but improving load
balance" (§4.3.3) — the scratchpad-reuse variant was abandoned.  The map
phase defaults to Block binding; pass ``pbmw=True`` for the PBMW variant
(§4.3.3's skew-robust alternative).

The per-lane triangle counters are the paper's example of shared mutable
state; totals return through the flush-phase value channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.graph.csr import CSRGraph
from repro.graph.io import VERTEX_STRIDE_WORDS, vertex_records
from repro.kvmsr import (
    ArrayInput,
    KVMSRJob,
    MapTask,
    PBMWBinding,
    ReduceTask,
    job_of,
)
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime, event

DEFAULT_BLOCK_SIZE = 32 * 1024


class TCMapTask(MapTask):
    """Enumerate edge pairs with x > y (vertex parallelism, §4.3.2)."""

    def __init__(self) -> None:
        super().__init__()
        self.x = -1
        self.left = 0

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        self.x = rep
        if degree == 0:
            self.kv_map_return(ctx)
            return
        self.left = degree
        for i in range(0, degree, 8):
            k = min(8, degree - i)
            ctx.send_dram_read(app.nl_region.addr(nl_off + i), k, "got_nbrs")
            ctx.work(2)
        ctx.yield_()

    @event
    def got_nbrs(self, ctx, *neighbors):
        for y in neighbors:
            ctx.work(1)
            if y < self.x:
                self.kv_emit(ctx, (self.x, int(y)))
        self.left -= len(neighbors)
        if self.left == 0:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


class TCReduceTask(ReduceTask):
    """Neighbor-list intersection for one edge pair (§4.3.2)."""

    def __init__(self) -> None:
        super().__init__()
        self.x = -1
        self.y = -1
        self.meta: Dict[str, tuple] = {}
        self.chunks: Dict[tuple, tuple] = {}
        self.chunks_left = 0

    def kv_reduce(self, ctx, key):
        app = self.job(ctx).payload
        self.x, self.y = key
        # degree + neighbor-list offset are words 1..2 of the vertex record
        gv = app.gv_region
        ctx.send_dram_read(
            gv.addr(VERTEX_STRIDE_WORDS * self.x + 1), 2, "got_rec", tag="x"
        )
        ctx.send_dram_read(
            gv.addr(VERTEX_STRIDE_WORDS * self.y + 1), 2, "got_rec", tag="y"
        )
        ctx.yield_()

    @event
    def got_rec(self, ctx, tag, degree, nl_off):
        self.meta[tag] = (degree, nl_off)
        if len(self.meta) < 2:
            ctx.yield_()
            return
        app = self.job(ctx).payload
        nl = app.nl_region
        self.chunks_left = 0
        for which in ("x", "y"):
            deg, off = self.meta[which]
            for i in range(0, deg, 8):
                k = min(8, deg - i)
                ctx.send_dram_read(
                    nl.addr(off + i), k, "got_chunk", tag=(which, i)
                )
                self.chunks_left += 1
                ctx.work(1)
        if self.chunks_left == 0:
            # Both endpoints isolated — impossible for a real edge, but
            # degrade gracefully for hand-built inputs.
            self._count(ctx)
        else:
            ctx.yield_()

    @event
    def got_chunk(self, ctx, tag, *values):
        self.chunks[tag] = values
        self.chunks_left -= 1
        if self.chunks_left == 0:
            self._count(ctx)
        else:
            ctx.yield_()

    def _count(self, ctx) -> None:
        app = self.job(ctx).payload
        nx = [
            v
            for (w, i) in sorted(self.chunks)
            if w == "x"
            for v in self.chunks[(w, i)]
        ]
        ny = [
            v
            for (w, i) in sorted(self.chunks)
            if w == "y"
            for v in self.chunks[(w, i)]
        ]
        # sorted-merge intersection over the z < y prefixes: each triangle
        # z < y < x is counted at exactly one (x, y) pair
        count = 0
        i = j = 0
        y = self.y
        while i < len(nx) and j < len(ny) and nx[i] < y and ny[j] < y:
            if nx[i] == ny[j]:
                count += 1
                i += 1
                j += 1
            elif nx[i] < ny[j]:
                i += 1
            else:
                j += 1
        ctx.work(i + j + 2)
        if count:
            key = ("tcc", app.uid)
            ctx.sp_write(key, ctx.sp_read(key, 0) + count)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        key = ("tcc", app.uid)
        total = ctx.sp_read(key, 0)
        ctx.sp_write(key, 0)
        self.kv_flush_return(ctx, total)


@dataclass
class TriangleCountResult:
    triangles: int
    elapsed_seconds: float
    stats: SimStats


class TriangleCountApp:
    """Host-side setup + driver for TC on one simulated machine."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        graph: CSRGraph,
        mem_nodes: Optional[int] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        pbmw: bool = False,
        max_inflight: int = 64,
    ) -> None:
        self.runtime = runtime
        self.graph = graph
        gm = runtime.gmem
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        records = vertex_records(graph)
        self.gv_region = gm.dram_malloc(
            records.size * 8, 0, mem_nodes, block_size, name="tc_gv"
        )
        self.gv_region[:] = records.ravel()
        self.nl_region = gm.dram_malloc(
            max(8, graph.m * 8), 0, mem_nodes, block_size, name="tc_nl"
        )
        if graph.m:
            self.nl_region[: graph.m] = graph.neighbors
        self.job = KVMSRJob(
            runtime,
            TCMapTask,
            ArrayInput(self.gv_region, VERTEX_STRIDE_WORDS, graph.n),
            reduce_cls=TCReduceTask,
            map_binding=PBMWBinding() if pbmw else None,
            payload=self,
            max_inflight=max_inflight,
            name="tc",
        )
        self.uid = self.job.job_id

    def run(self, max_events: Optional[int] = None) -> TriangleCountResult:
        rt = self.runtime
        self.job.launch(cont_tag="tc_done")
        stats = rt.run(max_events=max_events)
        done = rt.host_messages("tc_done")
        if not done:
            raise RuntimeError("TC did not complete")
        _tasks, _emitted, _polls, triangles = done[-1].operands
        return TriangleCountResult(
            triangles=int(triangles),
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )
