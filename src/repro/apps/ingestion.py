"""Ingestion: parallel-file parse + streaming graph construction (§5.2.4).

"TFORM and KVMSR are used to load, parse a parallel file, and insert it
into a graph data structure" (Figure 10).  The file is a word-addressed
global-memory region; KVMSR maps over fixed-size blocks; inside, each
kv_map task "deals with variable-size records that can span block
boundaries, accessing across blocks" — the task skips to the first record
starting in its block and keeps reading past the block end until its last
record completes.  Parsed records are emitted straight to kv_reduce tasks
that insert them into the Parallel Graph Abstraction — the third-party
composition where "the intermediate key-value map does not need to be
materialized" (§2.1.3); the artifact runs parse and insert as two phases,
ours fuses them through the shuffle, which is the composition the paper
advocates.

Ownership rule for boundary records: a record belongs to the block where
its first byte lies.  Block ``b > 0`` therefore scans from byte
``block_begin - 1`` for a newline (the previous record's terminator) and
parses from the byte after it; block 0 parses from byte 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.datastruct.pgraph import ParallelGraph
from repro.kvmsr import KVMSRJob, MapTask, RangeInput, ReduceTask, job_of
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime, event

from .tform import (
    REC_EDGE,
    REC_VERTEX,
    Record,
    Transducer,
    pack_text,
    unpack_words,
    workload_csv,
)

#: default parse granularity: 64 words = 512 bytes per block
DEFAULT_BLOCK_WORDS = 64

#: modeled TFORM speed: accelerated sub-byte transduction (paper [28])
TFORM_CYCLES_PER_BYTE = 0.5

#: 8-word read chunks kept in flight per parse task (latency tolerance)
READ_AHEAD = 4


class IngestMapTask(MapTask):
    """Parse one file block; emit every record starting inside it.

    Reads are software-pipelined: up to :data:`READ_AHEAD` 8-word chunks
    stay in flight while earlier bytes are parsed (UpDown's non-blocking
    memory access + multithreading latency tolerance, §3.2).  Responses
    may arrive out of order; bytes are consumed strictly in order.
    """

    def __init__(self) -> None:
        super().__init__()
        self.transducer = Transducer()
        self.byte_pos = 0
        self.block_end = 0
        self.started = False  # seen the first record start yet?
        self.file_bytes = 0
        self.buffer: dict = {}       # word index -> words tuple
        self.next_issue_word = 0
        self.inflight = 0
        self.finishing = False

    def kv_map(self, ctx, block):
        app = self.job(ctx).payload
        bw = app.block_words
        self.file_bytes = app.file_bytes
        block_begin = block * bw * 8
        self.block_end = min((block + 1) * bw * 8, self.file_bytes)
        if block == 0:
            self.byte_pos = 0
            self.started = True
        else:
            # scan from the byte before the block for the prior terminator
            self.byte_pos = block_begin - 1
            self.started = False
        self.next_issue_word = self.byte_pos // 8
        self._pump_reads(ctx)
        if self.inflight == 0:  # block starts at/after end of file
            self.kv_map_return(ctx)
        else:
            ctx.yield_()

    def _pump_reads(self, ctx) -> None:
        app = self.job(ctx).payload
        while (
            not self.finishing
            and self.inflight < READ_AHEAD
            and self.next_issue_word < app.file_words
        ):
            w = self.next_issue_word
            nwords = min(8, app.file_words - w)
            ctx.send_dram_read(
                app.file_region.addr(w), nwords, "got_words", tag=w
            )
            self.next_issue_word = w + nwords
            self.inflight += 1

    @event
    def got_words(self, ctx, word_index, *words):
        self.inflight -= 1
        if not self.finishing:
            self.buffer[word_index] = words
            app = self.job(ctx).payload
            # consume buffered chunks strictly in byte order
            while not self.finishing:
                containing = None
                for w, data in self.buffer.items():
                    if w * 8 <= self.byte_pos < (w + len(data)) * 8:
                        containing = w
                        break
                if containing is None:
                    break
                self._consume(
                    ctx, containing, self.buffer.pop(containing), app
                )
            self._pump_reads(ctx)
        if self.finishing and self.inflight == 0:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()

    def _consume(self, ctx, chunk_word, words, app) -> None:
        data = unpack_words(words)
        offset = self.byte_pos - chunk_word * 8
        data = data[offset:]
        limit = min(len(data), self.file_bytes - self.byte_pos)
        data = data[:limit]
        ctx.work(len(data) * app.tform_cycles_per_byte)
        consumed = 0
        for i, b in enumerate(data):
            pos = self.byte_pos + i
            if not self.started:
                if b == 0x0A:
                    if pos + 1 >= self.block_end:
                        # the next record starts at or past our boundary:
                        # it belongs to the next block
                        self.finishing = True
                        return
                    self.started = True  # records start after this newline
                consumed = i + 1
                continue
            if pos >= self.block_end and not self.transducer.mid_record:
                # past our block with no record in flight: done
                self.finishing = True
                return
            for rec in self.transducer.feed(bytes([b])):
                self._emit_record(ctx, rec)
            consumed = i + 1
        self.byte_pos += consumed
        if self.byte_pos >= self.file_bytes or (
            self.byte_pos >= self.block_end
            and self.started
            and not self.transducer.mid_record
        ):
            self.finishing = True
        elif not self.started and self.byte_pos >= self.block_end:
            # no record starts in this block (a record spans it entirely)
            self.finishing = True

    def _emit_record(self, ctx, rec: Record) -> None:
        ctx.work(4)
        words = rec.to_words()
        if rec.kind == REC_EDGE:
            self.kv_emit(ctx, (words[1], words[2], "e"), *words[:6])
        else:
            self.kv_emit(ctx, (words[1], "v"), *words[:3])


class IngestReduceTask(ReduceTask):
    """Insert one parsed record into the Parallel Graph (with ack)."""

    def kv_reduce(self, ctx, key, kind, *fields):
        app = self.job(ctx).payload
        ack = ctx.self_evw("ack")
        if kind == REC_EDGE:
            src, dst, etype, ts = fields[:4]
            app.pga.insert_edge_from(ctx, src, dst, (etype, ts), cont=ack)
        else:
            vid, attr = fields[:2]
            app.pga.insert_vertex_from(ctx, vid, (attr,), cont=ack)
        ctx.yield_()

    @event
    def ack(self, ctx, ok):
        self.kv_reduce_return(ctx)


@dataclass
class IngestionResult:
    records: int
    elapsed_seconds: float
    stats: SimStats

    @property
    def records_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.records / self.elapsed_seconds

    @property
    def bytes_per_second(self) -> float:
        """64 bytes per record — Figure 10's terabytes/second axis."""
        return self.records_per_second * 64


class IngestionApp:
    """Host-side setup + driver for the ingestion workflow."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        records: Sequence[Record],
        block_words: int = DEFAULT_BLOCK_WORDS,
        mem_nodes: Optional[int] = None,
        file_block_size: int = 4096,
        tform_cycles_per_byte: float = TFORM_CYCLES_PER_BYTE,
        name: str = "ingest",
        adjacency: bool = False,
    ) -> None:
        if block_words < 8:
            raise ValueError("blocks must be at least 8 words")
        self.runtime = runtime
        self.records = list(records)
        self.block_words = block_words
        self.tform_cycles_per_byte = tform_cycles_per_byte
        csv = workload_csv(self.records)
        words = pack_text(csv)
        self.file_bytes = len(csv.encode())
        self.file_words = len(words)
        gm = runtime.gmem
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        self.file_region = gm.dram_malloc(
            self.file_words * 8, 0, mem_nodes, file_block_size,
            name=f"{name}_file",
        )
        self.file_region[:] = words
        self.pga = ParallelGraph(
            runtime, name=f"{name}_pga", adjacency=adjacency
        )
        n_blocks = -(-self.file_words // block_words)
        self.job = KVMSRJob(
            runtime,
            IngestMapTask,
            RangeInput(n_blocks),
            reduce_cls=IngestReduceTask,
            payload=self,
            name=name,
        )

    def run(self, max_events: Optional[int] = None) -> IngestionResult:
        rt = self.runtime
        self.job.launch(cont_tag="ingest_done")
        stats = rt.run(max_events=max_events)
        done = rt.host_messages("ingest_done")
        if not done:
            raise RuntimeError("ingestion did not complete")
        _tasks, emitted, _polls, _fv = done[-1].operands
        return IngestionResult(
            records=emitted,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )

    # -- host-side verification -------------------------------------------

    def expected_tables(self):
        """What the PGA should contain after ingestion (arrival order is
        nondeterministic, so duplicate keys may hold any contributor's
        payload; callers compare key sets and singleton values)."""
        vertices = {}
        edges = {}
        for r in self.records:
            if r.kind == REC_VERTEX:
                vertices.setdefault(r.fields[0], set()).add((r.fields[1], 0, 0))
            else:
                src, dst, etype, ts = r.fields
                edges.setdefault((src, dst), set()).add((etype, ts))
        return vertices, edges
