"""Multihop reasoning over an ingested graph (Table 3: "Multihop
Ingestion" + "Multihop Reasoning", both "doAll, kvmap").

The AGILE workflow ingests a record stream into the Parallel Graph
Abstraction, then answers k-hop reachability queries over the live
structure.  Each hop is one KVMSR invocation mapping over the current
frontier: every map task queries its vertex's adjacency (resident on the
vertex's owner lane), emits the neighbors, and reduces dedup against an
owner-lane "seen" set — the same ownership discipline as BFS, but over
the *streamed* graph rather than a preprocessed CSR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.kvmsr import KVMSRJob, ListInput, MapTask, ReduceTask, job_of
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime, event

from .ingestion import IngestionApp
from .tform import REC_EDGE, Record


class HopMapTask(MapTask):
    """Fetch one frontier vertex's neighbors; emit each."""

    def kv_map(self, ctx, vid):
        app = self.job(ctx).payload
        app.pga.neighbors_from(ctx, vid, ctx.self_evw("got_adj"))
        ctx.yield_()

    @event
    def got_adj(self, ctx, *neighbors):
        for u in neighbors:
            self.kv_emit(ctx, u)
            ctx.work(1)
        self.kv_map_return(ctx)


class HopReduceTask(ReduceTask):
    """Owner-lane dedup; newly reached vertices join the next frontier."""

    def kv_reduce(self, ctx, u):
        app = self.job(ctx).payload
        seen_key = ("mh_seen", app.uid, u)
        ctx.work(2)
        if ctx.sp_read(seen_key) is None:
            ctx.sp_write(seen_key, True)
            new_key = ("mh_new", app.uid)
            new: List[int] = ctx.sp_read(new_key, None) or []
            new.append(u)
            ctx.sp_write(new_key, new)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        new_key = ("mh_new", app.uid)
        new = ctx.sp_read(new_key, None) or []
        app.next_frontier.extend(new)
        ctx.sp_write(new_key, [])
        self.kv_flush_return(ctx, len(new))


@dataclass
class MultihopResult:
    reached: Dict[int, int]  # vertex -> hop distance
    hops: int
    elapsed_seconds: float
    stats: SimStats


class MultihopApp:
    """Ingest a record stream, then answer k-hop reachability queries."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        records: Sequence[Record],
        name: str = "multihop",
        block_words: int = 32,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.ingest = IngestionApp(
            runtime,
            records,
            block_words=block_words,
            name=f"{name}_ing",
            adjacency=True,
        )
        self.pga = self.ingest.pga
        self.next_frontier: List[int] = []
        self.uid = -1
        self._ingested = False

    def run_ingest(self, max_events: Optional[int] = None) -> None:
        """Phase 1: stream the records into the graph."""
        self.ingest.run(max_events=max_events)
        self._ingested = True

    def query(
        self,
        seeds: Sequence[int],
        hops: int,
        max_events: Optional[int] = None,
    ) -> MultihopResult:
        """Phase 2: all vertices within ``hops`` edges of ``seeds``."""
        if not self._ingested:
            raise RuntimeError("call run_ingest() before querying")
        if hops < 0:
            raise ValueError("hop count cannot be negative")
        rt = self.runtime
        reached: Dict[int, int] = {int(s): 0 for s in seeds}
        frontier = sorted(reached)
        # seed the owner-lane seen sets host-side (query setup)
        stats = rt.sim.stats
        for hop in range(1, hops + 1):
            if not frontier:
                break
            self.next_frontier = []
            job = KVMSRJob(
                rt,
                HopMapTask,
                ListInput([(v, ()) for v in frontier]),
                reduce_cls=HopReduceTask,
                payload=self,
                name=f"{self.name}_hop{self.uid + 1}",
            )
            self.uid = job.job_id
            # mark already-reached vertices as seen on their owner lanes
            # (host-side query state priming, like BFS's root seeding)
            for v in reached:
                owner = job.reduce_binding.lane_for(v, job.reduce_lanes)
                rt.sim.lane(owner).scratchpad[("mh_seen", job.job_id, v)] = True
            job.launch(cont_tag="multihop_hop_done")
            stats = rt.run(max_events=max_events)
            if not rt.host_messages("multihop_hop_done"):
                raise RuntimeError("multihop hop did not complete")
            for v in self.next_frontier:
                reached[int(v)] = hop
            frontier = sorted(set(int(v) for v in self.next_frontier))
        return MultihopResult(
            reached=reached,
            hops=hops,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )


def reference_multihop(
    records: Sequence[Record], seeds: Sequence[int], hops: int
) -> Dict[int, int]:
    """Oracle: BFS over the edge records, truncated at ``hops``."""
    adj: Dict[int, Set[int]] = {}
    for r in records:
        if r.kind == REC_EDGE:
            src, dst = r.fields[0], r.fields[1]
            adj.setdefault(src, set()).add(dst)
    dist = {int(s): 0 for s in seeds}
    frontier = list(dist)
    for hop in range(1, hops + 1):
        nxt = []
        for v in frontier:
            for u in adj.get(v, ()):
                if u not in dist:
                    dist[u] = hop
                    nxt.append(u)
        frontier = nxt
    return dist
