"""UpDown applications written against KVMSR+UDWeave (paper §4, Table 3)."""

from .bfs import BFSApp, BFSResult
from .bucket_sort import BucketSortApp
from .compaction import CompactionApp, CompactionResult
from .components import (
    ComponentsResult,
    ConnectedComponentsApp,
    reference_components,
)
from .exact_match import ExactMatchApp, ExactMatchResult
from .gnn import GNNApp, GNNResult, reference_features, reference_integrate
from .ingestion import IngestionApp, IngestionResult
from .ktruss import KTrussApp, KTrussResult, reference_ktruss
from .multihop import MultihopApp, MultihopResult, reference_multihop
from .pagerank import PageRankApp, PageRankResult
from .pagerank_pull import PullPageRankApp, PullPageRankResult
from .partial_match import (
    PartialMatchApp,
    PartialMatchResult,
    Pattern,
    reference_matches,
)
from .sequences import ConstructSequencesApp, SequencesResult, reference_sequences
from .sssp import SSSPApp, SSSPResult, default_weights, reference_sssp
from .tform import Record, Transducer, make_workload, parse_all, workload_csv
from .triangle import TriangleCountApp, TriangleCountResult

__all__ = [
    "PageRankApp",
    "PageRankResult",
    "PullPageRankApp",
    "PullPageRankResult",
    "BFSApp",
    "BFSResult",
    "TriangleCountApp",
    "TriangleCountResult",
    "IngestionApp",
    "IngestionResult",
    "KTrussApp",
    "KTrussResult",
    "reference_ktruss",
    "MultihopApp",
    "MultihopResult",
    "reference_multihop",
    "PartialMatchApp",
    "PartialMatchResult",
    "Pattern",
    "reference_matches",
    "Record",
    "Transducer",
    "make_workload",
    "parse_all",
    "workload_csv",
    "GNNApp",
    "GNNResult",
    "reference_features",
    "reference_integrate",
    "ExactMatchApp",
    "ExactMatchResult",
    "CompactionApp",
    "CompactionResult",
    "ConnectedComponentsApp",
    "ComponentsResult",
    "reference_components",
    "ConstructSequencesApp",
    "SequencesResult",
    "reference_sequences",
    "BucketSortApp",
    "SSSPApp",
    "SSSPResult",
    "default_weights",
    "reference_sssp",
]
