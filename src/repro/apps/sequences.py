"""Construct Sequences — Table 3 ("doAll, kvmap").

Groups a stream of timestamped events by entity and orders each entity's
events by time (the AGILE multihop workflows build per-account activity
sequences this way).  Same two-phase shape as the global sort:

1. **Count**: map over the event array, emit ``<entity, 1>``; the reduce
   counts events per entity and flushes counts to a region.
2. Host prefix sum assigns each entity its output slice.
3. **Place**: map emits ``<entity, (ts, value)>``; each entity's owner lane
   buffers, sorts by timestamp at flush, and writes the sequence into the
   entity's slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Dict, Optional

import numpy as np

from repro.kvmsr import (
    ArrayInput,
    CombiningCache,
    KVMSRJob,
    MapTask,
    ReduceTask,
    job_of,
)
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime

#: event record: (entity, timestamp, value)
EVENT_WORDS = 3


class SeqCountTask(MapTask):
    def kv_map(self, ctx, key, entity, ts, value):
        ctx.work(2)
        self.kv_emit(ctx, entity, 1)
        self.kv_map_return(ctx)


class SeqCountReduce(ReduceTask):
    def kv_reduce(self, ctx, entity, one):
        app = self.job(ctx).payload
        app.cache.add(ctx, entity, one)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        drained = app.cache.flush_to_region(ctx, app.counts_region)
        self.kv_flush_return(ctx, drained)


class SeqPlaceTask(MapTask):
    def kv_map(self, ctx, key, entity, ts, value):
        ctx.work(2)
        self.kv_emit(ctx, entity, ts, value)
        self.kv_map_return(ctx)


class SeqPlaceReduce(ReduceTask):
    def kv_reduce(self, ctx, entity, ts, value):
        app = self.job(ctx).payload
        key = ("seqb", app.uid, entity)
        items = ctx.sp_read(key)
        if items is None:
            items = []
            owned = ctx.sp_read(("seqk", app.uid), None)
            if owned is None:
                owned = []
            owned.append(entity)
            ctx.sp_write(("seqk", app.uid), owned)
        items.append((ts, value))
        ctx.sp_write(key, items)
        ctx.work(2)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        owned = ctx.sp_read(("seqk", app.uid), None) or []
        written = 0
        for entity in owned:
            items = ctx.sp_read(("seqb", app.uid, entity)) or []
            items.sort()  # by (ts, value)
            k = len(items)
            ctx.work(int(k * max(1.0, log2(max(k, 2)))))
            base = int(app.offsets[entity])
            values = [v for _ts, v in items]
            for i in range(0, k, 8):
                ctx.send_dram_write(
                    app.out_region.addr(base + i), values[i : i + 8]
                )
            written += k
            ctx.sp_write(("seqb", app.uid, entity), None)
        ctx.sp_write(("seqk", app.uid), [])
        self.kv_flush_return(ctx, written)


@dataclass
class SequencesResult:
    sequences: Dict[int, list]
    elapsed_seconds: float
    stats: SimStats


class ConstructSequencesApp:
    """Build per-entity, time-ordered event sequences."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        events: np.ndarray,
        n_entities: int,
        name: str = "seq",
    ) -> None:
        events = np.asarray(events, dtype=np.int64)
        if events.ndim != 2 or events.shape[1] != EVENT_WORDS:
            raise ValueError("events must be (n, 3): entity, ts, value")
        if len(events) == 0:
            raise ValueError("need at least one event")
        self.runtime = runtime
        self.n_entities = n_entities
        self.n_events = len(events)
        gm = runtime.gmem
        self.events_region = gm.dram_malloc(
            events.size * 8, name=f"{name}_events"
        )
        self.events_region[:] = events.ravel()
        self.counts_region = gm.dram_malloc(
            n_entities * 8, name=f"{name}_counts"
        )
        self.out_region = gm.dram_malloc(
            self.n_events * 8, name=f"{name}_out"
        )
        ein = ArrayInput(self.events_region, EVENT_WORDS, self.n_events)
        self.count_job = KVMSRJob(
            runtime, SeqCountTask, ein, reduce_cls=SeqCountReduce,
            payload=self, name=f"{name}_count",
        )
        self.place_job = KVMSRJob(
            runtime, SeqPlaceTask, ein, reduce_cls=SeqPlaceReduce,
            payload=self, name=f"{name}_place",
        )
        self.cache = CombiningCache(f"seq{self.count_job.job_id}")
        self.uid = self.count_job.job_id
        self.offsets: Optional[np.ndarray] = None

    def run(self, max_events: Optional[int] = None) -> SequencesResult:
        rt = self.runtime
        self.count_job.launch(cont_tag="seq_count_done")
        rt.run(max_events=max_events)
        if not rt.host_messages("seq_count_done"):
            raise RuntimeError("sequence count did not complete")
        counts = self.counts_region.data
        self.offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(
            np.int64
        )
        self.place_job.launch(cont_tag="seq_place_done")
        stats = rt.run(max_events=max_events)
        if not rt.host_messages("seq_place_done"):
            raise RuntimeError("sequence place did not complete")
        sequences: Dict[int, list] = {}
        for e in range(self.n_entities):
            c = int(counts[e])
            if c:
                base = int(self.offsets[e])
                sequences[e] = self.out_region.data[base : base + c].tolist()
        return SequencesResult(
            sequences=sequences,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )


def reference_sequences(events: np.ndarray) -> Dict[int, list]:
    """Host oracle: stable (ts, value)-ordered values per entity."""
    out: Dict[int, list] = {}
    for entity, ts, value in sorted(
        map(tuple, np.asarray(events, dtype=np.int64))
    ):
        out.setdefault(int(entity), []).append(int(value))
    return out
