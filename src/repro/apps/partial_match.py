"""Partial Match: streaming pattern queries over ingested updates (§5.2.4).

"Records are received from the network and inserted into the graph.  They
are processed against a set of registered patterns.  The objective is to
incrementally evaluate the patterns and identify matches as rapidly as
possible!  Latency is the metric." (Figure 11.)

A pattern here is a typed path: ``types = (t0, t1, ..., tk)`` matches when
edges with those types arrive forming a path ``v0 -t0-> v1 -t1-> ...``
*in arrival order* (each edge may extend any prefix completed before it).
Partial-match state lives in a scalable hash table keyed by
``(pattern, stage, frontier vertex)`` — the paper's "based on scalable
hash tables (SHT)" — so state for a vertex serializes on its owner lane.

Per edge record the pipeline: insert the edge into the Parallel Graph,
open stage-0 state when the edge's type starts a pattern, and probe/extend
every stage the type could continue; a completed last stage raises an
alert to the host.  The host computes per-record latency from injection
time to the record's completion message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datastruct.pgraph import ParallelGraph
from repro.datastruct.sht import ScalableHashTable
from repro.machine.stats import SimStats
from repro.udweave import UDThread, UpDownRuntime, event

from .tform import REC_EDGE, Record


@dataclass(frozen=True)
class Pattern:
    """A typed-path query: ``types[i]`` is stage ``i``'s edge type."""

    pattern_id: int
    types: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.types) < 1:
            raise ValueError("a pattern needs at least one stage")


class PMRecordTask(UDThread):
    """Process one streamed edge record end to end.

    Two phases per record, mirroring the incremental semantics: first
    every probe resolves against the state *prior* records left behind,
    then this record's own state updates (stage-0 opens and extensions)
    are applied.  Without the barrier, a record whose edge both opens and
    extends the same state key (e.g. a self-loop under pattern (t, t))
    could observe its own stage-0 insert.
    """

    def __init__(self) -> None:
        self.rec_id = -1
        self.probes_pending = 0
        self.acks_pending = 0
        self.updates_applied = False
        self.app_name = ""
        self.dst = -1
        self.ts = 0
        self.planned_updates: list = []

    @event
    def start(self, ctx, app_name, rec_id, src, dst, etype, ts):
        app = PartialMatchApp.named(ctx.runtime, app_name)
        self.app_name, self.rec_id = app_name, rec_id
        self.dst, self.ts = dst, ts
        self.planned_updates = []
        # ingest the edge into the running graph (independent of matching)
        app.pga.insert_edge_from(
            ctx, src, dst, (etype, ts), cont=ctx.self_evw("ack")
        )
        self.acks_pending = 1
        # phase A: plan stage-0 opens, issue probes for extendable stages
        for p in app.patterns:
            ctx.work(2)
            if p.types[0] == etype:
                self.planned_updates.append((p.pattern_id, 0, dst))
            for stage in range(1, len(p.types)):
                if p.types[stage] == etype:
                    app.state.lookup_from(
                        ctx,
                        (p.pattern_id, stage - 1, src),
                        ctx.self_evw("probe_reply"),
                        tag=(p.pattern_id, stage),
                    )
                    self.probes_pending += 1
        if self.probes_pending == 0:
            self._apply_updates(ctx)
        ctx.yield_()

    @event
    def probe_reply(self, ctx, tag, found, *values):
        app = PartialMatchApp.named(ctx.runtime, self.app_name)
        pattern_id, stage = tag
        if found:
            pattern = app.pattern_by_id[pattern_id]
            if stage == len(pattern.types) - 1:
                ctx.send_event(
                    ctx.runtime.host_evw("pm_alert"),
                    self.rec_id,
                    pattern_id,
                    self.dst,
                )
            else:
                self.planned_updates.append((pattern_id, stage, self.dst))
        self.probes_pending -= 1
        if self.probes_pending == 0:
            self._apply_updates(ctx)
            self._maybe_finish(ctx)
        else:
            ctx.yield_()

    def _apply_updates(self, ctx) -> None:
        """Phase B: write this record's state transitions."""
        app = PartialMatchApp.named(ctx.runtime, self.app_name)
        ack = ctx.self_evw("ack")
        for key in self.planned_updates:
            app.state.update_from(ctx, key, (self.ts,), cont=ack)
            self.acks_pending += 1
        self.planned_updates = []
        self.updates_applied = True

    @event
    def ack(self, ctx, ok):
        self.acks_pending -= 1
        self._maybe_finish(ctx)

    def _maybe_finish(self, ctx) -> None:
        if (
            self.updates_applied
            and self.acks_pending == 0
            and self.probes_pending == 0
        ):
            ctx.send_event(ctx.runtime.host_evw("pm_rec_done"), self.rec_id)
            ctx.yield_terminate()
        else:
            ctx.yield_()


@dataclass
class PartialMatchResult:
    latencies_seconds: np.ndarray
    alerts: List[Tuple[int, int, int]]  # (rec_id, pattern_id, vertex)
    elapsed_seconds: float
    stats: SimStats

    @property
    def mean_latency_seconds(self) -> float:
        return float(self.latencies_seconds.mean()) if len(
            self.latencies_seconds
        ) else 0.0


class PartialMatchApp:
    """Host-side setup + streaming driver for partial match."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        patterns: Sequence[Pattern],
        name: str = "pm",
        ingest_lanes: Optional[int] = None,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.patterns = list(patterns)
        self.pattern_by_id = {p.pattern_id: p for p in self.patterns}
        if len(self.pattern_by_id) != len(self.patterns):
            raise ValueError("pattern ids must be unique")
        self.pga = ParallelGraph(runtime, name=f"{name}_pga")
        self.state = ScalableHashTable(runtime, f"{name}_state", value_words=2)
        self.ingest_lanes = ingest_lanes or runtime.config.total_lanes
        runtime.register(PMRecordTask)
        apps = getattr(runtime, "_pm_apps", None)
        if apps is None:
            apps = {}
            runtime._pm_apps = apps  # type: ignore[attr-defined]
        apps[name] = self

    @staticmethod
    def named(runtime: UpDownRuntime, name: str) -> "PartialMatchApp":
        return runtime._pm_apps[name]  # type: ignore[attr-defined]

    def run_stream(
        self,
        records: Sequence[Record],
        gap_cycles: float = 2000.0,
        max_events: Optional[int] = None,
    ) -> PartialMatchResult:
        """Stream edge records at one per ``gap_cycles`` and measure
        per-record completion latency."""
        rt = self.runtime
        inject_times: Dict[int, float] = {}
        rec_id = 0
        for rec in records:
            if rec.kind != REC_EDGE:
                continue
            src, dst, etype, ts = rec.fields
            t = rec_id * gap_cycles
            inject_times[rec_id] = t
            lane = rec_id % self.ingest_lanes
            rt.start(
                lane,
                "PMRecordTask::start",
                self.name,
                rec_id,
                src,
                dst,
                etype,
                ts,
                t=t,
            )
            rec_id += 1
        stats = rt.run(max_events=max_events)
        done_times: Dict[int, float] = {}
        for t, msg in rt.sim.host_inbox:
            if msg.label == "pm_rec_done":
                done_times[msg.operands[0]] = t
        if set(done_times) != set(inject_times):
            missing = sorted(set(inject_times) - set(done_times))
            raise RuntimeError(f"records never completed: {missing[:5]}...")
        lat = np.array(
            [
                rt.config.cycles_to_seconds(done_times[i] - inject_times[i])
                for i in sorted(inject_times)
            ]
        )
        alerts = [
            tuple(msg.operands)
            for _t, msg in rt.sim.host_inbox
            if msg.label == "pm_alert"
        ]
        return PartialMatchResult(
            latencies_seconds=lat,
            alerts=alerts,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )


def reference_matches(
    records: Sequence[Record], patterns: Sequence[Pattern]
) -> List[Tuple[int, int, int]]:
    """Sequential oracle: the alerts a one-record-at-a-time evaluation
    produces.  Matches the simulated app when records are streamed with a
    gap large enough to avoid overlapping processing."""
    state = set()
    alerts: List[Tuple[int, int, int]] = []
    rec_id = 0
    for rec in records:
        if rec.kind != REC_EDGE:
            continue
        src, dst, etype, _ts = rec.fields
        new_state = []
        for p in patterns:
            for stage in range(1, len(p.types)):
                if p.types[stage] == etype and (p.pattern_id, stage - 1, src) in state:
                    if stage == len(p.types) - 1:
                        alerts.append((rec_id, p.pattern_id, dst))
                    else:
                        new_state.append((p.pattern_id, stage, dst))
            if p.types[0] == etype:
                new_state.append((p.pattern_id, 0, dst))
        state.update(new_state)
        rec_id += 1
    return alerts
