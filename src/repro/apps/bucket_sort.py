"""Bucket Sort — Table 3 ("N" for UDWeave, "Y" for KVMSR: kvmap only).

The application-level entry point over the scalable global sort
(:mod:`repro.datastruct.sort`): Table 3's bucket sort is the pure-KVMSR
kernel, so this wrapper only chooses a machine-appropriate bucket count
and exposes the result in application terms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datastruct.sort import GlobalSortApp, SortResult
from repro.udweave import UpDownRuntime


class BucketSortApp:
    """Sort an int64 array with one bucket per target lane."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        values: np.ndarray,
        buckets_per_lane: int = 1,
    ) -> None:
        if buckets_per_lane < 1:
            raise ValueError("need at least one bucket per lane")
        nbuckets = max(4, runtime.config.total_lanes * buckets_per_lane)
        self._sorter = GlobalSortApp(runtime, values, nbuckets=nbuckets)

    def run(self, max_events: Optional[int] = None) -> SortResult:
        return self._sorter.run(max_events=max_events)
