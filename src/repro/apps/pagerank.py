"""PageRank on KVMSR+UDWeave (paper §4.1, Listing 3).

Push-based PR exploiting edge-level parallelism: one kv_map task per
(sub-)vertex reads its neighbor list from DRAM in groups of eight and
emits a ``<neighbor, contribution>`` tuple per edge; kv_reduce tasks
accumulate contributions into each vertex through the combining cache
(the software fetch&add), draining to DRAM at the flush phase.  An apply
phase (a second KVMSR job, map-only) folds in the damping term and resets
the accumulators, and a driver thread chains iterations device-side.

Data placement follows §4.1.1: the vertex array and neighbor list are
spread with ``DRAMmalloc(size, 0, NRnodes, 32KB)`` — "a simple default
spreading that ensures high bandwidth access but makes no attempt to
optimize data locality".  ``mem_nodes`` overrides NRnodes for the
Figure 12 placement sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import VERTEX_STRIDE_WORDS, vertex_records
from repro.graph.splitting import split_and_shuffle
from repro.kvmsr import (
    ArrayInput,
    CombiningCache,
    DataDrivenBinding,
    KVMSRJob,
    MapTask,
    RangeInput,
    ReduceTask,
    job_of,
)
from repro.machine.stats import SimStats
from repro.udweave import UDThread, UpDownRuntime, event

#: §4.1.1 default data spreading block size.
DEFAULT_BLOCK_SIZE = 32 * 1024

#: §5.2.1: PR splits vertices to a maximum degree of 512.
DEFAULT_MAX_DEGREE = 512


class PRMapTask(MapTask):
    """Listing 3's ``PageRankWorker``: one task per sub-vertex."""

    def __init__(self) -> None:
        super().__init__()
        self.rep = 0
        self.degree = 0
        self.nl_off = 0
        self.contrib = 0.0
        self.loaded = 0

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        self.rep, self.degree, self.nl_off = rep, degree, nl_off
        if degree == 0:
            self.kv_map_return(ctx)
            return
        self._orig_degree = orig_degree
        # pr_value lives in its own (float) array; fetch it split-phase.
        ctx.send_dram_read(app.pr_region.addr(rep), 1, "got_pr")
        ctx.work(2)
        ctx.yield_()

    @event
    def got_pr(self, ctx, pr_value):
        app = self.job(ctx).payload
        # outgoing contribution uses the *original* total degree so the
        # split yields the correct result for the original graph (§5.2.1)
        self.contrib = app.damping * pr_value / self._orig_degree
        self.loaded = 0
        nl = app.nl_region
        for i in range(0, self.degree, 8):
            k = min(8, self.degree - i)
            ctx.send_dram_read(nl.addr(self.nl_off + i), k, "returnRead")
            ctx.work(2)
        ctx.yield_()

    @event
    def returnRead(self, ctx, *neighbors):
        for u in neighbors:
            self.kv_emit(ctx, u, self.contrib)
            ctx.work(1)
        self.loaded += len(neighbors)
        if self.loaded == self.degree:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


class PRReduceTask(ReduceTask):
    """Accumulate contributions via the combining cache (fetch&add)."""

    def kv_reduce(self, ctx, key, delta):
        app = self.job(ctx).payload
        app.cache.add(ctx, key, delta)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        drained = app.cache.flush_to_region(ctx, app.sum_region)
        self.kv_flush_return(ctx, drained)


class PRApplyTask(MapTask):
    """Per-vertex damping fold: ``pr = (1-d)/n + Σ`` and accumulator reset."""

    def kv_map(self, ctx, v):
        self._v = v
        app = self.job(ctx).payload
        ctx.send_dram_read(app.sum_region.addr(v), 1, "got_sum")
        ctx.yield_()

    @event
    def got_sum(self, ctx, acc):
        app = self.job(ctx).payload
        ctx.work(3)
        ctx.send_dram_write(app.pr_region.addr(self._v), [app.base_rank + acc])
        ctx.send_dram_write(app.sum_region.addr(self._v), [0.0])
        self.kv_map_return(ctx)


class PRDriver(UDThread):
    """Chains push + apply KVMSR phases for N iterations, device-side."""

    def __init__(self) -> None:
        self.remaining = 0
        self.cont = None
        self.push_job_id = -1

    @event
    def start(self, ctx, push_job_id, iterations):
        self.cont = ctx.ccont
        self.remaining = iterations
        self.push_job_id = push_job_id
        ctx.ud_print("updown_init")  # the artifact's start marker
        self._push(ctx)

    def _push(self, ctx):
        app = job_of(ctx, self.push_job_id).payload
        app.push_job.launch_from(ctx, ctx.self_evw("push_done"))
        ctx.yield_()

    @event
    def push_done(self, ctx, tasks, emitted, polls, drained):
        app = job_of(ctx, self.push_job_id).payload
        app.apply_job.launch_from(ctx, ctx.self_evw("apply_done"))
        ctx.yield_()

    @event
    def apply_done(self, ctx, tasks, emitted, polls, drained):
        self.remaining -= 1
        if self.remaining > 0:
            self._push(ctx)
        else:
            ctx.ud_print("updown_terminate")  # the artifact's end marker
            ctx.send_event(self.cont)
            ctx.yield_terminate()


@dataclass
class PageRankResult:
    ranks: np.ndarray
    iterations: int
    elapsed_seconds: float
    stats: SimStats
    edges_per_iteration: int

    @property
    def giga_updates_per_second(self) -> float:
        """The paper's GUPS figure of merit (§5.2.1)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return (
            self.edges_per_iteration * self.iterations / self.elapsed_seconds / 1e9
        )


class PageRankApp:
    """Host-side setup + driver for PageRank on one simulated machine."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        graph: CSRGraph,
        max_degree: int = DEFAULT_MAX_DEGREE,
        damping: float = 0.85,
        mem_nodes: Optional[int] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        split_seed: int = 0,
        max_inflight: int = 64,
        reduce_placement: str = "hash",
        split=None,
    ) -> None:
        """``reduce_placement`` selects the kv_reduce computation binding:
        ``"hash"`` (the paper's default) or ``"data"`` — the §2.3
        "Data-driven (future)" scheme placing each vertex's reduce on the
        node that owns its accumulator word, so combining-cache flushes
        hit local DRAM.

        ``split`` overrides the built-in ``split_and_shuffle`` with a
        prebuilt :class:`~repro.graph.splitting.SplitGraph` (ablations use
        this to toggle the shuffle)."""
        if reduce_placement not in ("hash", "data"):
            raise ValueError("reduce_placement must be 'hash' or 'data'")
        self.runtime = runtime
        self.graph = graph
        self.damping = damping
        self.split = (
            split
            if split is not None
            else split_and_shuffle(graph, max_degree, seed=split_seed)
        )
        n_orig, n_sub = self.split.n_orig, self.split.n_sub
        self.base_rank = (1.0 - damping) / n_orig

        records = vertex_records(graph, self.split)
        gm = runtime.gmem
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        self.gv_region = gm.dram_malloc(
            records.size * 8, 0, mem_nodes, block_size, name="pr_gv"
        )
        self.gv_region[:] = records.ravel()
        self.nl_region = gm.dram_malloc(
            max(8, self.split.graph.m * 8), 0, mem_nodes, block_size, name="pr_nl"
        )
        if self.split.graph.m:
            self.nl_region[: self.split.graph.m] = self.split.graph.neighbors
        self.pr_region = gm.dram_malloc(
            n_orig * 8, 0, mem_nodes, block_size, dtype=np.float64, name="pr_val"
        )
        self.pr_region[:] = 1.0 / n_orig
        self.sum_region = gm.dram_malloc(
            n_orig * 8, 0, mem_nodes, block_size, dtype=np.float64, name="pr_sum"
        )

        reduce_binding = None
        if reduce_placement == "data":
            reduce_binding = DataDrivenBinding(
                runtime.gmem, self.sum_region.addr, runtime.config
            )
        self.push_job = KVMSRJob(
            runtime,
            PRMapTask,
            ArrayInput(self.gv_region, VERTEX_STRIDE_WORDS, n_sub),
            reduce_cls=PRReduceTask,
            reduce_binding=reduce_binding,
            payload=self,
            max_inflight=max_inflight,
            name="pr_push",
        )
        self.apply_job = KVMSRJob(
            runtime,
            PRApplyTask,
            RangeInput(n_orig),
            payload=self,
            max_inflight=max_inflight,
            name="pr_apply",
        )
        self.cache = CombiningCache(f"pr{self.push_job.job_id}")
        runtime.register(PRDriver)

    def run(self, iterations: int = 1, max_events: Optional[int] = None) -> PageRankResult:
        """Simulate ``iterations`` synchronous PR iterations."""
        if iterations < 1:
            raise ValueError("need at least one iteration")
        rt = self.runtime
        rt.start(
            self.push_job.master_lane,
            "PRDriver::start",
            self.push_job.job_id,
            iterations,
            cont=rt.host_evw("pagerank_done"),
        )
        stats = rt.run(max_events=max_events)
        if not rt.host_messages("pagerank_done"):
            raise RuntimeError("PageRank did not complete")
        return PageRankResult(
            ranks=self.pr_region.data.copy(),
            iterations=iterations,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
            edges_per_iteration=self.split.graph.m,
        )
