"""TFORM: transducer-based record parsing (paper §5.2.4, Table 3/5).

The AGILE TFORM tool compiles data transformations into deterministic
finite-state transducers for fast sub-byte encode/decode [28].  This module
implements the CSV-record transducer the ingestion workflow needs:

* a byte-driven DFA that parses comma-separated integer fields into
  fixed-shape 8-word (64-byte) records — the paper's record unit;
* packing/unpacking between text and the 8-bytes-per-word layout the
  simulated file region uses;
* a synthetic workload generator standing in for the WF2 CSV datasets
  (same record structure: vertex and typed-edge records).

The transducer is intentionally incremental: callers feed bytes chunk by
chunk (as 64-byte DRAM reads complete) and collect whole records as they
fall out, which is what lets map tasks handle records that span block
boundaries (§5.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: record type codes (word 0 of the 8-word record)
REC_VERTEX = 1
REC_EDGE = 2

#: words per parsed record — 64 bytes, the paper's record size
RECORD_WORDS = 8

_TYPE_CODES = {"V": REC_VERTEX, "E": REC_EDGE}
_TYPE_CHARS = {v: k for k, v in _TYPE_CODES.items()}


class TformError(ValueError):
    """Malformed input byte stream."""


@dataclass
class Record:
    """One parsed record: a vertex (``V,id,attr``) or a typed edge
    (``E,src,dst,etype,ts``)."""

    kind: int
    fields: Tuple[int, ...]

    def to_words(self) -> Tuple[int, ...]:
        words = (self.kind,) + self.fields
        return words + (0,) * (RECORD_WORDS - len(words))

    @classmethod
    def vertex(cls, vid: int, attr: int = 0) -> "Record":
        return cls(REC_VERTEX, (vid, attr))

    @classmethod
    def edge(cls, src: int, dst: int, etype: int, ts: int = 0) -> "Record":
        return cls(REC_EDGE, (src, dst, etype, ts))

    def to_csv(self) -> str:
        return ",".join([_TYPE_CHARS[self.kind], *map(str, self.fields)])


# DFA states
_S_TYPE = 0      # expecting the record-type character
_S_FIELD = 1     # inside / expecting a numeric field
_S_SKIP = 2      # error recovery: discard until newline (unused by tests
#                 with clean input, exercised by failure-injection tests)


class Transducer:
    """Incremental CSV-record transducer (one instance per parse stream)."""

    def __init__(self) -> None:
        self.state = _S_TYPE
        self.kind = 0
        self.fields: List[int] = []
        self.current = 0
        self.in_number = False
        self.bytes_consumed = 0

    def feed(self, data: bytes) -> List[Record]:
        """Consume bytes; return records completed by this chunk."""
        out: List[Record] = []
        for b in data:
            self.bytes_consumed += 1
            ch = chr(b)
            if self.state == _S_TYPE:
                if ch in ("\n", "\r", "\x00"):
                    continue  # blank line / padding
                code = _TYPE_CODES.get(ch)
                if code is None:
                    self.state = _S_SKIP
                    continue
                self.kind = code
                self.fields = []
                self.current = 0
                self.in_number = False
                self.state = _S_FIELD
            elif self.state == _S_FIELD:
                if ch == ",":
                    if self.in_number:
                        self.fields.append(self.current)
                    self.current = 0
                    self.in_number = False
                elif ch.isdigit():
                    self.current = self.current * 10 + (b - 48)
                    self.in_number = True
                elif ch == "\n":
                    if self.in_number:
                        self.fields.append(self.current)
                    out.append(Record(self.kind, tuple(self.fields)))
                    self.state = _S_TYPE
                else:
                    self.state = _S_SKIP
            else:  # _S_SKIP
                if ch == "\n":
                    self.state = _S_TYPE
        return out

    @property
    def mid_record(self) -> bool:
        """True while a record is partially parsed."""
        return self.state != _S_TYPE


def parse_all(text: str) -> List[Record]:
    """Parse a whole CSV text (reference path for tests)."""
    return Transducer().feed(text.encode())


# ---------------------------------------------------------------------------
# Text <-> word packing (the simulated file is a word-addressed region)
# ---------------------------------------------------------------------------


def pack_text(text: str) -> np.ndarray:
    """Pack text into little-endian 8-byte words, NUL-padded."""
    raw = text.encode()
    pad = (-len(raw)) % 8
    raw += b"\x00" * pad
    return np.frombuffer(raw, dtype="<u8").astype(np.int64)


def unpack_word(word: int) -> bytes:
    """The 8 bytes of one packed word (int64 words may print negative)."""
    return (int(word) & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")


def unpack_words(words: Sequence[int]) -> bytes:
    return b"".join(unpack_word(w) for w in words)


# ---------------------------------------------------------------------------
# Synthetic WF2-style workload
# ---------------------------------------------------------------------------


def make_workload(
    n_edges: int,
    n_vertices: Optional[int] = None,
    n_edge_types: int = 8,
    vertex_fraction: float = 0.25,
    seed: int = 0,
) -> List[Record]:
    """A record stream shaped like the WF2 CSV inputs: a mix of vertex
    property records and typed, timestamped edges over a skewed ID space."""
    if n_edges < 1:
        raise ValueError("need at least one edge record")
    rng = np.random.default_rng(seed)
    if n_vertices is None:
        n_vertices = max(4, n_edges // 4)
    records: List[Record] = []
    n_vrec = int(n_edges * vertex_fraction)
    for i in range(n_vrec):
        records.append(Record.vertex(int(rng.integers(0, n_vertices)), i))
    # zipf-ish endpoint skew: square a uniform draw
    u = rng.random(n_edges)
    src = (u * u * n_vertices).astype(np.int64)
    dst = rng.integers(0, n_vertices, n_edges)
    types = rng.integers(0, n_edge_types, n_edges)
    for i in range(n_edges):
        records.append(
            Record.edge(int(src[i]), int(dst[i]), int(types[i]), ts=i)
        )
    order = rng.permutation(len(records))
    return [records[i] for i in order]


def workload_csv(records: Sequence[Record]) -> str:
    """Render a record list as the CSV text the ingestion parses."""
    return "".join(r.to_csv() + "\n" for r in records)
