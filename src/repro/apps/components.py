"""Connected Components by label propagation — a §4.4-style further
example ("we have programmed many other examples").

Classic KVMSR iteration: every vertex pushes its current component label
to its neighbors; reduces keep the minimum per vertex (combining cache
with ``min`` semantics); a device-side driver repeats rounds until the
flush reports no label changed.  The changed-count rides the same
flush-value channel BFS uses for its frontier size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import VERTEX_STRIDE_WORDS, vertex_records
from repro.kvmsr import ArrayInput, KVMSRJob, MapTask, ReduceTask, job_of
from repro.machine.stats import SimStats
from repro.udweave import UDThread, UpDownRuntime, event


class CCMapTask(MapTask):
    """Push this vertex's label along every edge."""

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        self._degree, self._nl_off = degree, nl_off
        if degree == 0:
            self.kv_map_return(ctx)
            return
        ctx.send_dram_read(app.label_region.addr(rep), 1, "got_label")
        ctx.yield_()

    @event
    def got_label(self, ctx, label):
        app = self.job(ctx).payload
        self._label = label
        self._left = self._degree
        for i in range(0, self._degree, 8):
            k = min(8, self._degree - i)
            ctx.send_dram_read(
                app.nl_region.addr(self._nl_off + i), k, "got_nbrs"
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def got_nbrs(self, ctx, *neighbors):
        for u in neighbors:
            self.kv_emit(ctx, u, self._label)
            ctx.work(1)
        self._left -= len(neighbors)
        if self._left == 0:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


class CCReduceTask(ReduceTask):
    """Keep the minimum label seen per vertex (owner-lane min-combine)."""

    def kv_reduce(self, ctx, u, label):
        app = self.job(ctx).payload
        key = ("ccmin", app.uid, u)
        current = ctx.sp_read(key)
        ctx.work(2)
        if current is None or label < current:
            ctx.sp_write(key, label)
            owned = ctx.sp_read(("cck", app.uid), None)
            if owned is None:
                owned = set()
                ctx.sp_write(("cck", app.uid), owned)
            owned.add(u)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        """Apply the min-labels; count how many vertices changed."""
        app = self.job(ctx).payload
        owned = ctx.sp_read(("cck", app.uid), None) or set()
        changed = 0
        for u in owned:
            new = ctx.sp_read(("ccmin", app.uid, u))
            ctx.sp_write(("ccmin", app.uid, u), None)
            old = int(app.label_region.data[u])
            ctx.work(2)
            if new < old:
                ctx.send_dram_write(app.label_region.addr(u), [new])
                changed += 1
        ctx.sp_write(("cck", app.uid), set())
        self.kv_flush_return(ctx, changed)


class CCDriver(UDThread):
    """Repeat propagation rounds until a round changes nothing."""

    def __init__(self) -> None:
        self.job_id = -1
        self.cont = None
        self.rounds = 0

    @event
    def start(self, ctx, job_id):
        self.job_id = job_id
        self.cont = ctx.ccont
        job_of(ctx, job_id).launch_from(ctx, ctx.self_evw("round_done"))
        ctx.yield_()

    @event
    def round_done(self, ctx, tasks, emitted, polls, changed):
        self.rounds += 1
        if changed == 0:
            ctx.send_event(self.cont, self.rounds)
            ctx.yield_terminate()
        else:
            job_of(ctx, self.job_id).launch_from(
                ctx, ctx.self_evw("round_done")
            )
            ctx.yield_()


@dataclass
class ComponentsResult:
    labels: np.ndarray
    n_components: int
    rounds: int
    elapsed_seconds: float
    stats: SimStats


class ConnectedComponentsApp:
    """Label-propagation connected components on one simulated machine."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        graph: CSRGraph,
        mem_nodes: Optional[int] = None,
        block_size: int = 4096,
        max_inflight: int = 64,
    ) -> None:
        if not graph.is_symmetric():
            raise ValueError(
                "label propagation finds components of symmetric graphs"
            )
        self.runtime = runtime
        self.graph = graph
        gm = runtime.gmem
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        records = vertex_records(graph)
        self.gv_region = gm.dram_malloc(
            records.size * 8, 0, mem_nodes, block_size, name="cc_gv"
        )
        self.gv_region[:] = records.ravel()
        self.nl_region = gm.dram_malloc(
            max(8, graph.m * 8), 0, mem_nodes, block_size, name="cc_nl"
        )
        if graph.m:
            self.nl_region[: graph.m] = graph.neighbors
        self.label_region = gm.dram_malloc(
            graph.n * 8, 0, mem_nodes, block_size, name="cc_labels"
        )
        self.label_region[:] = np.arange(graph.n)
        self.job = KVMSRJob(
            runtime,
            CCMapTask,
            ArrayInput(self.gv_region, VERTEX_STRIDE_WORDS, graph.n),
            reduce_cls=CCReduceTask,
            payload=self,
            max_inflight=max_inflight,
            name="cc_round",
        )
        self.uid = self.job.job_id
        runtime.register(CCDriver)

    def run(self, max_events: Optional[int] = None) -> ComponentsResult:
        rt = self.runtime
        rt.start(
            self.job.master_lane,
            "CCDriver::start",
            self.job.job_id,
            cont=rt.host_evw("cc_done"),
        )
        stats = rt.run(max_events=max_events)
        done = rt.host_messages("cc_done")
        if not done:
            raise RuntimeError("connected components did not complete")
        (rounds,) = done[-1].operands
        labels = self.label_region.data.copy()
        return ComponentsResult(
            labels=labels,
            n_components=len(np.unique(labels)),
            rounds=rounds,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )


def reference_components(graph: CSRGraph) -> np.ndarray:
    """Oracle: min-vertex-id label per component via union-find."""
    parent = list(range(graph.n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for v, u in graph.edges():
        a, b = find(v), find(u)
        if a != b:
            parent[max(a, b)] = min(a, b)
    return np.array([find(v) for v in range(graph.n)], dtype=np.int64)
