"""K-Truss decomposition on KVMSR (paper §6: "triangle counters in
K-Truss" as shared mutable state; evaluated at length in [37]).

The k-truss of a graph is the maximal subgraph in which every edge is
supported by at least ``k - 2`` triangles.  The standard peeling
algorithm alternates support counting and edge removal until a fixed
point.  In the KVMSR rendering each round is one invocation:

* **map** over live vertices: enumerate live edge pairs ``<x, y>`` with
  ``x > y`` (exactly TC's map);
* **reduce** per pair: intersect the endpoints' *live* neighbor lists —
  the support of edge (x, y) — and record weak edges (support < k-2)
  in per-lane scratchpad;
* **flush** reports the number of weak edges; the host (TOP core) peels
  them and rebuilds the live CSR for the next round, the same inter-phase
  glue the artifact's host programs do.

Unlike TC's ``z < y`` convention, support counts *all* common neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.io import VERTEX_STRIDE_WORDS, vertex_records
from repro.kvmsr import ArrayInput, KVMSRJob, MapTask, ReduceTask, job_of
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime, event


class KTrussMapTask(MapTask):
    """Enumerate live edge pairs with x > y."""

    def __init__(self) -> None:
        super().__init__()
        self.x = -1
        self.left = 0

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        self.x = rep
        if degree == 0:
            self.kv_map_return(ctx)
            return
        self.left = degree
        for i in range(0, degree, 8):
            k = min(8, degree - i)
            ctx.send_dram_read(app.nl_region.addr(nl_off + i), k, "got_nbrs")
            ctx.work(2)
        ctx.yield_()

    @event
    def got_nbrs(self, ctx, *neighbors):
        for y in neighbors:
            ctx.work(1)
            if y < self.x:
                self.kv_emit(ctx, (self.x, int(y)))
        self.left -= len(neighbors)
        if self.left == 0:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


class KTrussReduceTask(ReduceTask):
    """Support = |N(x) ∩ N(y)| over the live graph; weak edges recorded."""

    def __init__(self) -> None:
        super().__init__()
        self.x = -1
        self.y = -1
        self.meta: Dict[str, tuple] = {}
        self.chunks: Dict[tuple, tuple] = {}
        self.chunks_left = 0

    def kv_reduce(self, ctx, key):
        app = self.job(ctx).payload
        self.x, self.y = key
        gv = app.gv_region
        ctx.send_dram_read(
            gv.addr(VERTEX_STRIDE_WORDS * self.x + 1), 2, "got_rec", tag="x"
        )
        ctx.send_dram_read(
            gv.addr(VERTEX_STRIDE_WORDS * self.y + 1), 2, "got_rec", tag="y"
        )
        ctx.yield_()

    @event
    def got_rec(self, ctx, tag, degree, nl_off):
        self.meta[tag] = (degree, nl_off)
        if len(self.meta) < 2:
            ctx.yield_()
            return
        app = self.job(ctx).payload
        self.chunks_left = 0
        for which in ("x", "y"):
            deg, off = self.meta[which]
            for i in range(0, deg, 8):
                k = min(8, deg - i)
                ctx.send_dram_read(
                    app.nl_region.addr(off + i), k, "got_chunk",
                    tag=(which, i),
                )
                self.chunks_left += 1
                ctx.work(1)
        if self.chunks_left == 0:
            self._judge(ctx, 0)
        else:
            ctx.yield_()

    @event
    def got_chunk(self, ctx, tag, *values):
        self.chunks[tag] = values
        self.chunks_left -= 1
        if self.chunks_left == 0:
            nx = [
                v
                for (w, i) in sorted(self.chunks)
                if w == "x"
                for v in self.chunks[(w, i)]
            ]
            ny = [
                v
                for (w, i) in sorted(self.chunks)
                if w == "y"
                for v in self.chunks[(w, i)]
            ]
            support = 0
            i = j = 0
            while i < len(nx) and j < len(ny):
                if nx[i] == ny[j]:
                    support += 1
                    i += 1
                    j += 1
                elif nx[i] < ny[j]:
                    i += 1
                else:
                    j += 1
            ctx.work(i + j + 2)
            self._judge(ctx, support)
        else:
            ctx.yield_()

    def _judge(self, ctx, support: int) -> None:
        app = self.job(ctx).payload
        if support < app.k - 2:
            weak_key = ("ktw", app.uid)
            weak: List[tuple] = ctx.sp_read(weak_key, None) or []
            weak.append((self.x, self.y))
            ctx.sp_write(weak_key, weak)
            ctx.work(2)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        weak_key = ("ktw", app.uid)
        weak = ctx.sp_read(weak_key, None) or []
        # hand the weak list to the host peel step through the payload
        app.weak_edges.extend(weak)
        ctx.sp_write(weak_key, [])
        self.kv_flush_return(ctx, len(weak))


@dataclass
class KTrussResult:
    truss: CSRGraph
    rounds: int
    edges_remaining: int
    elapsed_seconds: float
    stats: SimStats


class KTrussApp:
    """Peel a graph to its k-truss on one simulated machine."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        graph: CSRGraph,
        k: int,
        mem_nodes: Optional[int] = None,
        block_size: int = 4096,
        max_inflight: int = 64,
    ) -> None:
        if k < 3:
            raise ValueError("k-truss is defined for k >= 3")
        if not graph.is_symmetric():
            raise ValueError("k-truss expects a symmetric simple graph")
        self.runtime = runtime
        self.k = k
        self.block_size = block_size
        self.max_inflight = max_inflight
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        self.mem_nodes = mem_nodes
        self.graph = graph
        self.weak_edges: List[Tuple[int, int]] = []
        self.uid = -1
        self._round = 0
        self.gv_region = None
        self.nl_region = None

    def _load_round(self, graph: CSRGraph) -> KVMSRJob:
        """Allocate fresh regions for this round's live graph (the VA
        space is never reused, so stale pointers fault)."""
        gm = self.runtime.gmem
        records = vertex_records(graph)
        self.gv_region = gm.dram_malloc(
            records.size * 8, 0, self.mem_nodes, self.block_size,
            name=f"kt_gv_{self._round}",
        )
        self.gv_region[:] = records.ravel()
        self.nl_region = gm.dram_malloc(
            max(8, graph.m * 8), 0, self.mem_nodes, self.block_size,
            name=f"kt_nl_{self._round}",
        )
        if graph.m:
            self.nl_region[: graph.m] = graph.neighbors
        job = KVMSRJob(
            self.runtime,
            KTrussMapTask,
            ArrayInput(self.gv_region, VERTEX_STRIDE_WORDS, graph.n),
            reduce_cls=KTrussReduceTask,
            payload=self,
            max_inflight=self.max_inflight,
            name=f"ktruss_{self._round}",
        )
        self.uid = job.job_id
        return job

    def run(self, max_events: Optional[int] = None) -> KTrussResult:
        rt = self.runtime
        live = self.graph
        rounds = 0
        stats = None
        while True:
            self.weak_edges = []
            self._round = rounds
            job = self._load_round(live)
            job.launch(cont_tag="ktruss_round_done")
            stats = rt.run(max_events=max_events)
            if not rt.host_messages("ktruss_round_done"):
                raise RuntimeError("k-truss round did not complete")
            rounds += 1
            if not self.weak_edges:
                break
            live = _peel(live, self.weak_edges)
            if live.m == 0:
                break
        return KTrussResult(
            truss=live,
            rounds=rounds,
            edges_remaining=live.m,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )


def _peel(graph: CSRGraph, weak: List[Tuple[int, int]]) -> CSRGraph:
    """Host (TOP-core) peel: drop both directions of each weak edge."""
    dead: Set[Tuple[int, int]] = set()
    for x, y in weak:
        dead.add((x, y))
        dead.add((y, x))
    kept = [e for e in graph.edges() if e not in dead]
    if not kept:
        return CSRGraph.from_edges([], n=graph.n)
    return CSRGraph.from_edges(
        kept, n=graph.n, dedup=False, drop_self_loops=False
    )


def reference_ktruss(graph: CSRGraph, k: int) -> Set[Tuple[int, int]]:
    """Oracle: networkx k_truss edge set (both directions)."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(graph.n))
    G.add_edges_from(graph.edges())
    truss = nx.k_truss(G, k)
    out: Set[Tuple[int, int]] = set()
    for a, b in truss.edges():
        out.add((a, b))
        out.add((b, a))
    return out
