"""Pull-based PageRank: the design alternative the paper rejected.

§4.1 chooses a *push* formulation ("each edge propagation is a task").
The pull alternative — every vertex reads its in-neighbors' contributions
— needs no shuffle at all: each map task streams its in-neighbor list and
the contributions array from DRAM and writes its own next value.  The
trade is messages for memory reads:

* push: ~1 network message (emit) + 1 reduce event per edge, combining
  cache absorbs hot destinations;
* pull: ~2 DRAM word-reads per edge (in-neighbor id + its contribution),
  zero shuffle traffic, but hub *sources* get their contribution word
  read by every neighbor — a read hotspot instead of a write one.

``benchmarks/bench_ablation_push_pull.py`` measures the crossover.  The
pull app reuses the same contributions-precompute trick the literature
uses: a do_all phase materializes ``contrib[v] = d * pr[v] / deg(v)`` so
the gather phase reads one word per in-edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import VERTEX_STRIDE_WORDS, vertex_records
from repro.kvmsr import ArrayInput, KVMSRJob, MapTask, job_of
from repro.machine.stats import SimStats
from repro.udweave import UDThread, UpDownRuntime, event


class PullContribTask(MapTask):
    """Phase 1 (do_all): contrib[v] = damping * pr[v] / out_degree(v)."""

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        self._rep, self._odeg = rep, orig_degree
        ctx.send_dram_read(app.pr_region.addr(rep), 1, "got_pr")
        ctx.yield_()

    @event
    def got_pr(self, ctx, pr_value):
        app = self.job(ctx).payload
        contrib = (
            app.damping * pr_value / self._odeg if self._odeg else 0.0
        )
        ctx.work(3)
        ctx.send_dram_write(app.contrib_region.addr(self._rep), [contrib])
        self.kv_map_return(ctx)


class PullGatherTask(MapTask):
    """Phase 2: stream in-neighbors, read their contributions, sum."""

    def __init__(self) -> None:
        super().__init__()
        self._acc = 0.0
        self._reads_left = 0

    def kv_map(self, ctx, key, rep, degree, nl_off, orig_degree):
        app = self.job(ctx).payload
        self._rep = rep
        self._acc = 0.0
        if degree == 0:
            self._store(ctx)
            return
        self._reads_left = -(-degree // 8)
        for i in range(0, degree, 8):
            k = min(8, degree - i)
            ctx.send_dram_read(
                app.rev_nl_region.addr(nl_off + i), k, "got_in_nbrs"
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def got_in_nbrs(self, ctx, *in_neighbors):
        app = self.job(ctx).payload
        self._reads_left += len(in_neighbors) - 1  # swap 1 list read for
        for u in in_neighbors:                     # n contribution reads
            ctx.send_dram_read(
                app.contrib_region.addr(u), 1, "got_contrib"
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def got_contrib(self, ctx, contrib):
        self._acc += contrib
        ctx.work(1)
        self._reads_left -= 1
        if self._reads_left == 0:
            self._store(ctx)
        else:
            ctx.yield_()

    def _store(self, ctx) -> None:
        app = self.job(ctx).payload
        ctx.send_dram_write(
            app.pr_region.addr(self._rep), [app.base_rank + self._acc]
        )
        self.kv_map_return(ctx)


class PullDriver(UDThread):
    """contrib phase -> gather phase, per iteration."""

    def __init__(self) -> None:
        self.remaining = 0
        self.cont = None
        self.contrib_job_id = -1

    @event
    def start(self, ctx, contrib_job_id, iterations):
        self.cont = ctx.ccont
        self.remaining = iterations
        self.contrib_job_id = contrib_job_id
        self._contrib(ctx)

    def _contrib(self, ctx):
        app = job_of(ctx, self.contrib_job_id).payload
        app.contrib_job.launch_from(ctx, ctx.self_evw("contrib_done"))
        ctx.yield_()

    @event
    def contrib_done(self, ctx, *ops):
        app = job_of(ctx, self.contrib_job_id).payload
        app.gather_job.launch_from(ctx, ctx.self_evw("gather_done"))
        ctx.yield_()

    @event
    def gather_done(self, ctx, *ops):
        self.remaining -= 1
        if self.remaining > 0:
            self._contrib(ctx)
        else:
            ctx.send_event(self.cont)
            ctx.yield_terminate()


@dataclass
class PullPageRankResult:
    ranks: np.ndarray
    iterations: int
    elapsed_seconds: float
    stats: SimStats


class PullPageRankApp:
    """Pull-formulation PageRank (no shuffle; reads instead of emits).

    No vertex splitting: pull tasks are keyed by *destination*, and the
    hot spot is the contribution word of hub sources — which striping, not
    splitting, addresses.  The gather phase maps over the reverse graph.
    """

    def __init__(
        self,
        runtime: UpDownRuntime,
        graph: CSRGraph,
        damping: float = 0.85,
        mem_nodes: Optional[int] = None,
        block_size: int = 4096,
        max_inflight: int = 64,
    ) -> None:
        self.runtime = runtime
        self.graph = graph
        self.damping = damping
        self.base_rank = (1.0 - damping) / graph.n
        reverse = graph.reversed()
        gm = runtime.gmem
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        # forward records carry out-degrees (for contributions)...
        fwd_records = vertex_records(graph)
        self.gv_region = gm.dram_malloc(
            fwd_records.size * 8, 0, mem_nodes, block_size, name="ppr_gv"
        )
        self.gv_region[:] = fwd_records.ravel()
        # ...reverse records carry in-neighbor lists (for gathering)
        rev_records = vertex_records(reverse)
        self.rev_gv_region = gm.dram_malloc(
            rev_records.size * 8, 0, mem_nodes, block_size, name="ppr_rgv"
        )
        self.rev_gv_region[:] = rev_records.ravel()
        self.rev_nl_region = gm.dram_malloc(
            max(8, reverse.m * 8), 0, mem_nodes, block_size, name="ppr_rnl"
        )
        if reverse.m:
            self.rev_nl_region[: reverse.m] = reverse.neighbors
        self.pr_region = gm.dram_malloc(
            graph.n * 8, 0, mem_nodes, block_size, dtype=np.float64,
            name="ppr_val",
        )
        self.pr_region[:] = 1.0 / graph.n
        self.contrib_region = gm.dram_malloc(
            graph.n * 8, 0, mem_nodes, block_size, dtype=np.float64,
            name="ppr_contrib",
        )
        self.contrib_job = KVMSRJob(
            runtime,
            PullContribTask,
            ArrayInput(self.gv_region, VERTEX_STRIDE_WORDS, graph.n),
            payload=self,
            max_inflight=max_inflight,
            name="ppr_contrib",
        )
        self.gather_job = KVMSRJob(
            runtime,
            PullGatherTask,
            ArrayInput(self.rev_gv_region, VERTEX_STRIDE_WORDS, graph.n),
            payload=self,
            max_inflight=max_inflight,
            name="ppr_gather",
        )
        runtime.register(PullDriver)

    def run(
        self, iterations: int = 1, max_events: Optional[int] = None
    ) -> PullPageRankResult:
        if iterations < 1:
            raise ValueError("need at least one iteration")
        rt = self.runtime
        rt.start(
            self.contrib_job.master_lane,
            "PullDriver::start",
            self.contrib_job.job_id,
            iterations,
            cont=rt.host_evw("pull_pagerank_done"),
        )
        stats = rt.run(max_events=max_events)
        if not rt.host_messages("pull_pagerank_done"):
            raise RuntimeError("pull PageRank did not complete")
        return PullPageRankResult(
            ranks=self.pr_region.data.copy(),
            iterations=iterations,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )
