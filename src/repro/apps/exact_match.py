"""Exact Match: bulk key probes against a scalable hash table — Table 3
("doAll using kvmap", reduce for synchronization/counting only).

Build phase: a doAll-style KVMSR job inserts every data record into an
SHT (one insert + ack per task).  Match phase: a second job probes the SHT
for every query key; hits emit ``<0, 1>`` and the reduce counts them, so
the hit total arrives through the flush value channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.datastruct.sht import ScalableHashTable
from repro.kvmsr import (
    ArrayInput,
    KVMSRJob,
    MapTask,
    ReduceTask,
    job_of,
)
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime, event


class BuildTask(MapTask):
    def kv_map(self, ctx, key, record_key, record_value):
        app = self.job(ctx).payload
        app.table.insert_from(
            ctx, record_key, (record_value,), cont=ctx.self_evw("ack")
        )
        ctx.yield_()

    @event
    def ack(self, ctx, ok):
        self.kv_map_return(ctx)


class ProbeTask(MapTask):
    def kv_map(self, ctx, key, probe_key):
        app = self.job(ctx).payload
        app.table.lookup_from(ctx, probe_key, ctx.self_evw("reply"))
        ctx.yield_()

    @event
    def reply(self, ctx, found, *values):
        if found:
            self.kv_emit(ctx, 0, 1)
        self.kv_map_return(ctx)


class CountReduce(ReduceTask):
    def kv_reduce(self, ctx, key, one):
        k = ("em_hits", self._job_id)
        ctx.sp_write(k, ctx.sp_read(k, 0) + one)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        k = ("em_hits", self._job_id)
        hits = ctx.sp_read(k, 0)
        ctx.sp_write(k, 0)
        self.kv_flush_return(ctx, hits)


@dataclass
class ExactMatchResult:
    hits: int
    elapsed_seconds: float
    stats: SimStats


class ExactMatchApp:
    """Count how many probe keys exist among the data records."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        data: Sequence[tuple],
        probes: Sequence[int],
        name: str = "em",
    ) -> None:
        data = list(data)
        probes = list(probes)
        if not data or not probes:
            raise ValueError("need data records and probe keys")
        self.runtime = runtime
        self.table = ScalableHashTable(runtime, f"{name}_sht", value_words=1)
        gm = runtime.gmem
        self.data_region = gm.dram_malloc(
            len(data) * 2 * 8, name=f"{name}_data"
        )
        self.data_region[:] = np.asarray(data, dtype=np.int64).ravel()
        self.probe_region = gm.dram_malloc(
            len(probes) * 8, name=f"{name}_probes"
        )
        self.probe_region[:] = np.asarray(probes, dtype=np.int64)
        self.build_job = KVMSRJob(
            runtime,
            BuildTask,
            ArrayInput(self.data_region, 2, len(data)),
            payload=self,
            name=f"{name}_build",
        )
        self.probe_job = KVMSRJob(
            runtime,
            ProbeTask,
            ArrayInput(self.probe_region, 1, len(probes)),
            reduce_cls=CountReduce,
            payload=self,
            name=f"{name}_probe",
        )

    def run(self, max_events: Optional[int] = None) -> ExactMatchResult:
        rt = self.runtime
        self.build_job.launch(cont_tag="em_build_done")
        rt.run(max_events=max_events)
        if not rt.host_messages("em_build_done"):
            raise RuntimeError("exact-match build did not complete")
        self.probe_job.launch(cont_tag="em_probe_done")
        stats = rt.run(max_events=max_events)
        done = rt.host_messages("em_probe_done")
        if not done:
            raise RuntimeError("exact-match probe did not complete")
        _t, _e, _p, hits = done[-1].operands
        return ExactMatchResult(
            hits=int(hits), elapsed_seconds=rt.elapsed_seconds, stats=stats
        )
