"""Breadth-First Search on KVMSR+UDWeave (paper §4.2).

Push BFS in rounds.  Departures from PageRank's flat data parallelism,
exactly as §4.2 describes:

* **kv_map granularity**: one map task per *accelerator*, not per vertex.
  Each map task is a local master that spawns a worker on every lane of
  its accelerator (UDWeave-level master-worker, §4.2.2).
* **Frontier placement**: each lane owns a contiguous frontier segment
  inside a per-node contiguous allocation —
  ``DRAMmalloc(size, 0, NRnodes, size/NRnodes)`` (§4.2.1) — giving data
  locality for reading the current frontier and writing the next one.
  Two buffers alternate by round parity.
* **Reduce**: unmarked neighbors are marked (distance + parent written)
  and their sub-vertices appended to the *reduce lane's own* next-frontier
  segment.  The Hash binding spreads vertices over lanes, so the local
  frontiers stay balanced.  Duplicate suppression uses an owner-lane
  scratchpad "seen" set — all reduces for a vertex serialize on one lane,
  so no global atomics are needed.

The flush-phase value channel reports how many vertices were appended;
the device-side driver ends the search when a round appends nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import VERTEX_STRIDE_WORDS, vertex_records
from repro.graph.splitting import split_and_shuffle
from repro.kvmsr import (
    KeyToLaneBinding,
    KVMSRJob,
    MapTask,
    RangeInput,
    ReduceTask,
    emit_to_reduce,
    job_of,
)
from repro.machine.stats import SimStats
from repro.udweave import UDThread, UpDownRuntime, event

DEFAULT_BLOCK_SIZE = 32 * 1024

#: §5.2 / artifact: BFS splits vertices to a maximum degree of 4096.
DEFAULT_MAX_DEGREE = 4096


def _next_pow2(x: int) -> int:
    return 1 << max(0, (x - 1).bit_length())


class BFSWorker(UDThread):
    """Processes one lane's current-frontier segment; emits neighbors."""

    def __init__(self) -> None:
        self.job_id = -1
        self.report = None
        self.round = 0
        self.emitted = 0
        self.chunks_left = 0
        self.vertices_left = 0
        self.vstate: Dict[int, list] = {}
        self._next_vkey = 0

    @event
    def start(self, ctx, job_id, round_no, report_evw):
        self.job_id, self.round, self.report = job_id, round_no, report_evw
        app = job_of(ctx, job_id).payload
        parity = round_no & 1
        count = ctx.sp_read(("bfsc", app.uid, parity), 0)
        ctx.sp_write(("bfsc", app.uid, parity), 0)  # consumed
        if count == 0:
            self._finish(ctx)
            return
        self.vertices_left = count
        base = ctx.network_id * app.frontier_cap
        region = app.frontier_regions[parity]
        self.chunks_left = -(-count // 8)
        for i in range(0, count, 8):
            k = min(8, count - i)
            ctx.send_dram_read(region.addr(base + i), k, "got_frontier")
            ctx.work(2)
        ctx.yield_()

    @event
    def got_frontier(self, ctx, *subs):
        app = job_of(ctx, self.job_id).payload
        self.chunks_left -= 1
        for s in subs:
            ctx.send_dram_read(
                app.gv_region.addr(VERTEX_STRIDE_WORDS * s),
                VERTEX_STRIDE_WORDS,
                "got_vertex",
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def got_vertex(self, ctx, rep, degree, nl_off, orig_degree):
        app = job_of(ctx, self.job_id).payload
        if degree == 0:
            self.vertices_left -= 1
            self._maybe_finish(ctx)
            return
        state = [rep, degree]  # [parent id, neighbors outstanding]
        key = self._next_vkey
        self._next_vkey += 1
        self.vstate[key] = state
        for i in range(0, degree, 8):
            k = min(8, degree - i)
            ctx.send_dram_read(
                app.nl_region.addr(nl_off + i), k, "got_neighbors", tag=key
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def got_neighbors(self, ctx, key, *neighbors):
        app = job_of(ctx, self.job_id).payload
        state = self.vstate[key]
        depth = self.round + 1
        for u in neighbors:
            emit_to_reduce(ctx, self.job_id, u, state[0], depth)
            self.emitted += 1
        state[1] -= len(neighbors)
        if state[1] == 0:
            del self.vstate[key]
            self.vertices_left -= 1
        self._maybe_finish(ctx)

    def _maybe_finish(self, ctx) -> None:
        if self.vertices_left == 0 and self.chunks_left == 0:
            self._finish(ctx)
        else:
            ctx.yield_()

    def _finish(self, ctx) -> None:
        ctx.send_event(self.report, self.emitted)
        ctx.yield_terminate()


class BFSAccelMaster(MapTask):
    """One kv_map task per accelerator: the local master (§4.2.2)."""

    def __init__(self) -> None:
        super().__init__()
        self.pending = 0

    def kv_map(self, ctx, accel):
        cfg = ctx.config
        app = job_of(ctx, self._job_id).payload
        # Round number lives in the master lane's scratchpad, not in the
        # shared app object: each launch is one round, and in-simulation
        # state is what conservative sharding replicates correctly.
        round_key = ("bfsr", app.uid)
        round_no = ctx.sp_read(round_key, 0)
        ctx.sp_write(round_key, round_no + 1)
        first = ctx.config.first_lane_of_accel(accel)
        self.pending = cfg.lanes_per_accel
        report = ctx.self_evw("worker_done")
        for lane in range(first, first + cfg.lanes_per_accel):
            ctx.spawn(
                lane, "BFSWorker::start", self._job_id, round_no, report
            )
            ctx.work(2)
        ctx.yield_()

    @event
    def worker_done(self, ctx, n_emitted):
        self.add_emitted(n_emitted)
        self.pending -= 1
        if self.pending == 0:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


class BFSReduce(ReduceTask):
    """Mark-and-append: the frontier insert of §4.2.2."""

    def __init__(self) -> None:
        super().__init__()
        self.u = -1
        self.depth = 0
        self.subs_left = 0

    def kv_reduce(self, ctx, u, parent, depth):
        app = self.job(ctx).payload
        self.depth = depth
        if ctx.sp_read(("bfss", app.uid, u)) is not None:
            ctx.work(1)
            self.kv_reduce_return(ctx)
            return
        ctx.sp_write(("bfss", app.uid, u), True)
        ctx.send_dram_write(app.dist_region.addr(u), [depth])
        ctx.send_dram_write(app.parent_region.addr(u), [parent])
        self.u = u
        ctx.send_dram_read(app.subs_off_region.addr(u), 2, "got_range")
        ctx.yield_()

    @event
    def got_range(self, ctx, lo, hi):
        app = self.job(ctx).payload
        if lo == hi:
            self.kv_reduce_return(ctx)
            return
        self.subs_left = hi - lo
        for i in range(lo, hi, 8):
            k = min(8, hi - i)
            ctx.send_dram_read(app.sub_ids_region.addr(i), k, "got_subs")
            ctx.work(1)
        ctx.yield_()

    @event
    def got_subs(self, ctx, *subs):
        app = self.job(ctx).payload
        # the next frontier's parity: depth == round + 1 already names it
        parity = self.depth & 1
        count_key = ("bfsc", app.uid, parity)
        count = ctx.sp_read(count_key, 0)
        region = app.frontier_regions[parity]
        base = ctx.network_id * app.frontier_cap
        for s in subs:
            if count >= app.frontier_cap:
                raise RuntimeError(
                    f"frontier segment overflow on lane {ctx.network_id} "
                    f"(cap {app.frontier_cap})"
                )
            ctx.send_dram_write(region.addr(base + count), [s])
            count += 1
            ctx.work(1)
        ctx.sp_write(count_key, count)
        appended_key = ("bfsa", app.uid)
        ctx.sp_write(appended_key, ctx.sp_read(appended_key, 0) + len(subs))
        self.subs_left -= len(subs)
        if self.subs_left == 0:
            self.kv_reduce_return(ctx)
        else:
            ctx.yield_()

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        appended = ctx.sp_read(("bfsa", app.uid), 0)
        ctx.sp_write(("bfsa", app.uid), 0)
        self.kv_flush_return(ctx, appended)


class BFSDriver(UDThread):
    """Round loop: relaunch until a round appends nothing."""

    def __init__(self) -> None:
        self.job_id = -1
        self.cont = None
        self.rounds = 0
        self.traversed = 0

    @event
    def start(self, ctx, job_id):
        self.job_id = job_id
        self.cont = ctx.ccont
        app = job_of(ctx, job_id).payload
        app.round = 0
        ctx.ud_print("BFS Start")
        job_of(ctx, job_id).launch_from(ctx, ctx.self_evw("round_done"))
        ctx.yield_()

    @event
    def round_done(self, ctx, tasks, emitted, polls, appended):
        app = job_of(ctx, self.job_id).payload
        self.rounds += 1
        self.traversed += emitted
        ctx.ud_print(
            f"[Itera {app.round}]: add queue {appended} "
            f"traversed edges {emitted}"
        )
        if appended == 0:
            ctx.ud_print("BFS finish")
            ctx.send_event(self.cont, self.rounds, self.traversed)
            ctx.yield_terminate()
        else:
            app.round += 1
            ctx.ud_print("BFS Start")
            job_of(ctx, self.job_id).launch_from(
                ctx, ctx.self_evw("round_done")
            )
            ctx.yield_()


@dataclass
class BFSResult:
    distances: np.ndarray
    parents: np.ndarray
    rounds: int
    traversed_edges: int
    elapsed_seconds: float
    stats: SimStats

    @property
    def giga_teps(self) -> float:
        """Giga traversed-edges per second (§5.2.2's figure of merit)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.traversed_edges / self.elapsed_seconds / 1e9


class BFSApp:
    """Host-side setup + driver for BFS on one simulated machine."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        graph: CSRGraph,
        max_degree: int = DEFAULT_MAX_DEGREE,
        mem_nodes: Optional[int] = None,
        frontier_mem_nodes: Optional[int] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        split_seed: int = 0,
        frontier_cap: Optional[int] = None,
    ) -> None:
        self.runtime = runtime
        self.graph = graph
        cfg = runtime.config
        self.split = split_and_shuffle(graph, max_degree, seed=split_seed)
        n_orig, n_sub = self.split.n_orig, self.split.n_sub
        self.round = 0

        gm = runtime.gmem
        if mem_nodes is None:
            mem_nodes = 1 << (cfg.nodes.bit_length() - 1)

        records = vertex_records(graph, self.split)
        self.gv_region = gm.dram_malloc(
            records.size * 8, 0, mem_nodes, block_size, name="bfs_gv"
        )
        self.gv_region[:] = records.ravel()
        self.nl_region = gm.dram_malloc(
            max(8, self.split.graph.m * 8), 0, mem_nodes, block_size,
            name="bfs_nl",
        )
        if self.split.graph.m:
            self.nl_region[: self.split.graph.m] = self.split.graph.neighbors
        self.dist_region = gm.dram_malloc(
            n_orig * 8, 0, mem_nodes, block_size, name="bfs_dist"
        )
        self.dist_region[:] = -1
        self.parent_region = gm.dram_malloc(
            n_orig * 8, 0, mem_nodes, block_size, name="bfs_parent"
        )
        self.parent_region[:] = -1
        self.subs_off_region = gm.dram_malloc(
            (n_orig + 1) * 8, 0, mem_nodes, block_size, name="bfs_subs_off"
        )
        self.subs_off_region[:] = self.split.subs_offsets
        self.sub_ids_region = gm.dram_malloc(
            max(8, n_sub * 8), 0, mem_nodes, block_size, name="bfs_sub_ids"
        )
        self.sub_ids_region[: n_sub] = self.split.sub_ids

        # Frontier: per-lane segments, contiguous per node (§4.2.1's
        # DRAMmalloc(size, 0, NRnodes, size/NRnodes) locality layout).
        total_lanes = cfg.total_lanes
        if frontier_cap is None:
            frontier_cap = max(16, _next_pow2(-(-4 * n_sub // total_lanes)))
        self.frontier_cap = frontier_cap
        fsize = total_lanes * frontier_cap * 8
        # one per-node slice per block keeps each lane's segment on its own
        # node; nr_nodes must be a power of two, so non-power-of-two
        # machines round DOWN (the spill nodes lose locality, not
        # correctness)
        fblock = max(
            cfg.min_dram_block_bytes, cfg.lanes_per_node * frontier_cap * 8
        )
        fnodes = frontier_mem_nodes or cfg.nodes
        fnodes = 1 << (fnodes.bit_length() - 1)
        self.frontier_regions = [
            gm.dram_malloc(fsize, 0, fnodes, fblock, name=f"bfs_frontier{p}")
            for p in (0, 1)
        ]

        self.job = KVMSRJob(
            runtime,
            BFSAccelMaster,
            RangeInput(cfg.total_accels),
            reduce_cls=BFSReduce,
            map_binding=KeyToLaneBinding(cfg.first_lane_of_accel),
            payload=self,
            name="bfs_round",
        )
        self.uid = self.job.job_id
        runtime.register(BFSWorker)
        runtime.register(BFSDriver)

    # ------------------------------------------------------------------

    def _seed(self, root: int) -> None:
        """Pre-load the round-0 frontier with the root's sub-vertices
        (memory-image initialization, like the artifact's host program)."""
        self.dist_region[root] = 0
        self.parent_region[root] = root
        owner = self.job.reduce_binding.lane_for(root, self.job.reduce_lanes)
        subs = self.split.subs_of(root)
        base = owner * self.frontier_cap
        if len(subs) > self.frontier_cap:
            raise RuntimeError("frontier capacity too small for the root")
        self.frontier_regions[0][base : base + len(subs)] = subs
        lane = self.runtime.sim.lane(owner)
        lane.scratchpad[("bfsc", self.uid, 0)] = len(subs)
        lane.scratchpad[("bfss", self.uid, root)] = True

    def run(self, root: int = 0, max_events: Optional[int] = None) -> BFSResult:
        if not (0 <= root < self.split.n_orig):
            raise ValueError(f"root {root} out of range")
        rt = self.runtime
        self._seed(root)
        rt.start(
            self.job.master_lane,
            "BFSDriver::start",
            self.job.job_id,
            cont=rt.host_evw("bfs_done"),
        )
        stats = rt.run(max_events=max_events)
        done = rt.host_messages("bfs_done")
        if not done:
            raise RuntimeError("BFS did not complete")
        rounds, traversed = done[-1].operands
        return BFSResult(
            distances=self.dist_region.data.copy(),
            parents=self.parent_region.data.copy(),
            rounds=rounds,
            traversed_edges=traversed,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )
