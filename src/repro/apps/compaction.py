"""Graph Compaction — Table 3 ("doAll, kvmap").

Removes dead vertices from a vertex array, producing a densely packed
array and the old→new ID mapping.  Two KVMSR phases with a host (TOP-core)
prefix-sum between them, the same multi-phase idiom as the global sort:

1. **Count**: map over ID blocks, each task counts its block's live
   vertices and emits ``<block, count>``; reduces store the counts.
2. Host: exclusive prefix sum over block counts = each block's output base.
3. **Scatter**: map over blocks again; each task walks its block and
   writes each live vertex's record to the next output slot, plus the
   old→new mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kvmsr import KVMSRJob, MapTask, RangeInput, ReduceTask, job_of
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime, event


class CountLiveTask(MapTask):
    def kv_map(self, ctx, block):
        app = self.job(ctx).payload
        self._block = block
        self._lo, self._hi = app.block_range(block)
        self._count = 0
        self._next = self._lo
        self._read(ctx)

    def _read(self, ctx):
        app = self.job(ctx).payload
        if self._next >= self._hi:
            self.kv_emit(ctx, self._block, self._count)
            self.kv_map_return(ctx)
            return
        k = min(8, self._hi - self._next)
        ctx.send_dram_read(app.alive_region.addr(self._next), k, "got_flags")
        ctx.yield_()

    @event
    def got_flags(self, ctx, *flags):
        self._count += sum(1 for f in flags if f)
        ctx.work(len(flags))
        self._next += len(flags)
        self._read(ctx)


class StoreCountReduce(ReduceTask):
    def kv_reduce(self, ctx, block, count):
        app = self.job(ctx).payload
        ctx.send_dram_write(app.counts_region.addr(block), [count])
        self.kv_reduce_return(ctx)


class ScatterTask(MapTask):
    def kv_map(self, ctx, block):
        app = self.job(ctx).payload
        self._lo, self._hi = app.block_range(block)
        self._out = int(app.offsets[block])
        self._next = self._lo
        self._read(ctx)

    def _read(self, ctx):
        app = self.job(ctx).payload
        if self._next >= self._hi:
            self.kv_map_return(ctx)
            return
        k = min(8, self._hi - self._next)
        ctx.send_dram_read(app.alive_region.addr(self._next), k, "got_flags")
        ctx.yield_()

    @event
    def got_flags(self, ctx, *flags):
        app = self.job(ctx).payload
        for i, alive in enumerate(flags):
            vid = self._next + i
            ctx.work(2)
            if alive:
                ctx.send_dram_write(app.out_region.addr(self._out), [vid])
                ctx.send_dram_write(app.mapping_region.addr(vid), [self._out])
                self._out += 1
        self._next += len(flags)
        self._read(ctx)


@dataclass
class CompactionResult:
    compacted: np.ndarray
    mapping: np.ndarray
    live: int
    elapsed_seconds: float
    stats: SimStats


class CompactionApp:
    """Compact a vertex ID space given a liveness mask."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        alive: np.ndarray,
        block_vertices: int = 64,
        name: str = "compact",
    ) -> None:
        alive = np.asarray(alive).astype(np.int64)
        if len(alive) == 0:
            raise ValueError("empty vertex set")
        self.runtime = runtime
        self.n = len(alive)
        self.block_vertices = block_vertices
        self.n_blocks = -(-self.n // block_vertices)
        gm = runtime.gmem
        self.alive_region = gm.dram_malloc(self.n * 8, name=f"{name}_alive")
        self.alive_region[:] = alive
        self.counts_region = gm.dram_malloc(
            self.n_blocks * 8, name=f"{name}_counts"
        )
        self.out_region = gm.dram_malloc(
            max(8, int(alive.sum()) * 8), name=f"{name}_out"
        )
        self.mapping_region = gm.dram_malloc(self.n * 8, name=f"{name}_map")
        self.mapping_region[:] = -1
        self.count_job = KVMSRJob(
            runtime,
            CountLiveTask,
            RangeInput(self.n_blocks),
            reduce_cls=StoreCountReduce,
            payload=self,
            name=f"{name}_count",
        )
        self.scatter_job = KVMSRJob(
            runtime,
            ScatterTask,
            RangeInput(self.n_blocks),
            payload=self,
            name=f"{name}_scatter",
        )
        self.offsets: Optional[np.ndarray] = None

    def block_range(self, block: int):
        lo = block * self.block_vertices
        return lo, min(lo + self.block_vertices, self.n)

    def run(self, max_events: Optional[int] = None) -> CompactionResult:
        rt = self.runtime
        self.count_job.launch(cont_tag="compact_count_done")
        rt.run(max_events=max_events)
        if not rt.host_messages("compact_count_done"):
            raise RuntimeError("compaction count did not complete")
        counts = self.counts_region.data
        self.offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(
            np.int64
        )
        live = int(counts.sum())
        self.scatter_job.launch(cont_tag="compact_scatter_done")
        stats = rt.run(max_events=max_events)
        if not rt.host_messages("compact_scatter_done"):
            raise RuntimeError("compaction scatter did not complete")
        return CompactionResult(
            compacted=self.out_region.data[:live].copy(),
            mapping=self.mapping_region.data.copy(),
            live=live,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )
