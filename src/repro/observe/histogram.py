"""Power-of-two-bucketed histograms for telemetry samples.

Latency and occupancy samples span several orders of magnitude (a local
message is ~100 cycles, a queued remote DRAM access can be tens of
thousands), so the recorder buckets by ``floor(log2(value))`` — constant
memory, one ``bit_length`` per sample, and enough resolution to tell "the
channel is idle" from "the channel is the bottleneck".
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class LogHistogram:
    """Histogram of nonnegative samples in power-of-two buckets.

    Bucket ``b`` holds samples in ``[2**(b-1), 2**b)`` (bucket 0 holds
    samples below 1.0, i.e. sub-cycle).  Alongside the buckets the exact
    count / sum / max are kept so means are not quantized.
    """

    __slots__ = ("buckets", "count", "total", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count: int = 0
        self.total: float = 0.0
        self.max: float = 0.0

    def add(self, value: float) -> None:
        """Record one sample (negative values are clamped to zero)."""
        if value < 0.0:
            value = 0.0
        b = int(value).bit_length()
        buckets = self.buckets
        buckets[b] = buckets.get(b, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s samples into this histogram (shard stitching)."""
        buckets = self.buckets
        for b, n in other.buckets.items():
            buckets[b] = buckets.get(b, 0) + n
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile_bound(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q`` quantile.

        Coarse by construction (a power of two), but monotone and stable —
        good enough for "p90 queue wait jumped 8x" diagnostics.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= target:
                return float(2 ** b) if b > 0 else 1.0
        return float(self.max)

    def rows(self) -> List[Tuple[float, int]]:
        """(bucket upper bound, count) rows, ascending — for exporters."""
        return [
            (float(2 ** b) if b > 0 else 1.0, self.buckets[b])
            for b in sorted(self.buckets)
        ]

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(n={self.count}, mean={self.mean:.1f}, "
            f"max={self.max:.1f})"
        )
