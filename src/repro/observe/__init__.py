"""Flight recorder: tiered, always-cheap simulator telemetry.

The paper's evaluation is read off Fastsim's ``BASIM_PRINT`` /
``perflog.tsv`` logs (artifact appendix): per-lane cycle timelines,
message and DRAM traffic, and KVMSR phase timings explain *why* each
Figure 9-12 curve bends.  This package is that instrument for the repro
simulator — a :class:`FlightRecorder` the machine layer feeds while a run
executes, plus exporters to Chrome ``trace_event`` JSON (viewable in
``chrome://tracing`` / Perfetto) and a plain-text ``perflog.tsv``.

Recording is **tiered** so the default stays structurally free (DESIGN.md,
"Flight recorder & telemetry tiers"):

* ``"off"`` (recorder ``None``) — zero cost: the hot paths hold a ``None``
  hook and skip with one pointer test, the same gating discipline as
  ``detailed_stats``.
* ``"phases"`` — KVMSR job/phase spans only; cost is per *phase*, not per
  event.
* ``"histograms"`` — adds network-injection and DRAM-channel
  occupancy/queue-wait histograms and local/remote message-latency
  histograms; O(1) memory, a few adds per message/access.
* ``"full"`` — adds per-event lane busy spans and per-admission channel
  events (the Chrome-trace timeline tracks); O(events) memory, bounded by
  drop caps.
"""

from .histogram import LogHistogram
from .perflog import format_perflog, write_perflog
from .recorder import FlightRecorder, RecorderError, TIERS, make_recorder
from .trace import chrome_trace, write_chrome_trace

__all__ = [
    "FlightRecorder",
    "RecorderError",
    "LogHistogram",
    "TIERS",
    "make_recorder",
    "chrome_trace",
    "write_chrome_trace",
    "format_perflog",
    "write_perflog",
]
