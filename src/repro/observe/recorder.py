"""The flight recorder proper: what the machine layer feeds during a run.

The recorder is deliberately ignorant of the simulator's object model —
it receives plain numbers from a handful of hook sites (lane dispatch,
``InjectionChannel`` admission, ``MemoryChannel`` service, message send,
KVMSR phase transitions) and accumulates them into exportable structures.
Hook sites hold ``None`` when a tier is off, so a disabled recorder costs
one pointer test per event, the same discipline as ``detailed_stats``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from .histogram import LogHistogram

#: recording tiers, cheapest first; each includes the ones before it.
TIERS = ("phases", "histograms", "full")

#: message-latency taxonomy keys (matching SimStats' message counters).
MESSAGE_KINDS = ("local", "remote", "host_injected", "host_bound")


class RecorderError(ValueError):
    """Raised for invalid recorder configuration."""


class ChannelStats:
    """Per-node accumulator for one serially-occupied channel."""

    __slots__ = (
        "admits", "bytes", "wait_sum", "occupancy_sum", "wait_max",
        "wait_hist",
    )

    def __init__(self) -> None:
        self.admits: int = 0
        self.bytes: int = 0
        self.wait_sum: float = 0.0
        self.occupancy_sum: float = 0.0
        self.wait_max: float = 0.0
        #: per-node queue-wait distribution — backpressure thresholds are
        #: tuned off its p50/p99 (``harness.inspect.occupancy_report``).
        self.wait_hist: LogHistogram = LogHistogram()

    @property
    def mean_wait(self) -> float:
        return self.wait_sum / self.admits if self.admits else 0.0


class FlightRecorder:
    """Tiered telemetry sink for one simulation run.

    Build one, hand it to :class:`~repro.udweave.runtime.UpDownRuntime`
    (or a run helper's ``record=`` flag), run, then export with
    :func:`~repro.observe.trace.chrome_trace` /
    :func:`~repro.observe.perflog.write_perflog` or inspect the fields
    directly.  Recording is observation-only: a recorded run produces
    bit-identical simulation results to an unrecorded one.
    """

    def __init__(
        self,
        tier: str = "full",
        max_lane_spans: int = 1_000_000,
        max_channel_events: int = 200_000,
        max_fault_events: int = 100_000,
    ) -> None:
        if tier not in TIERS:
            raise RecorderError(
                f"unknown recorder tier {tier!r}; pick one of {TIERS}"
            )
        self.tier = tier
        #: tier gates, pre-computed so hook installers read plain bools.
        self.record_phases = True
        self.record_channels = tier in ("histograms", "full")
        self.record_messages = self.record_channels
        self.record_lane_spans = tier == "full"
        self.record_channel_events = tier == "full"
        #: faults are rare and diagnostic — recorded at every tier.
        self.record_faults = True

        # -- lane timeline (full tier) --------------------------------
        #: (network_id, start, end, label) per executed event, capped.
        self.lane_spans: List[Tuple[int, float, float, str]] = []
        self.lane_spans_dropped: int = 0
        self._max_lane_spans = max_lane_spans

        # -- channel telemetry (histograms tier) ----------------------
        self.inj_by_node: Dict[int, ChannelStats] = {}
        self.dram_by_node: Dict[int, ChannelStats] = {}
        self.inj_wait = LogHistogram()
        self.dram_wait = LogHistogram()
        #: (node, start, wait, occupancy, nbytes) admissions (full tier).
        self.inj_events: List[Tuple[int, float, float, float, int]] = []
        self.dram_events: List[Tuple[int, float, float, float, int]] = []
        self.channel_events_dropped: int = 0
        self._max_channel_events = max_channel_events

        # -- message latency (histograms tier) ------------------------
        self.msg_latency: Dict[str, LogHistogram] = {
            kind: LogHistogram() for kind in MESSAGE_KINDS
        }

        # -- packet taxonomy (histograms tier; coalescing runs only) --
        #: batch-size histogram: one sample per unwrapped packet.
        self.packet_sizes = LogHistogram()
        #: packets unwrapped by the drain.
        self.packets_recorded: int = 0
        #: records those packets carried (sum of the sampled sizes).
        self.packet_records: int = 0

        # -- batched dispatch (histograms tier; batch_dispatch runs) --
        #: batch-size histogram: one sample per executed parked-record
        #: run (``repro.udweave.ir``).
        self.batch_sizes = LogHistogram()
        #: batches executed by the flush paths.
        self.batches_recorded: int = 0
        #: records those batches carried (sum of the sampled sizes).
        self.batch_records: int = 0

        # -- KVMSR phases (phases tier) -------------------------------
        #: (job, phase, start, end) spans, closed.
        self.phase_spans: List[Tuple[str, str, float, float]] = []
        #: (name, job, t) instant markers (quiescence polls, ...).
        self.marks: List[Tuple[str, Optional[str], float]] = []
        self._open_phases: Dict[Tuple[str, str], float] = {}

        # -- injected faults (every tier) -----------------------------
        #: per-kind totals (msg_drop, msg_duplicate, msg_delay,
        #: lane_stall, node_drop, rdt_give_up).
        self.fault_counts: Dict[str, int] = {}
        #: (kind, t, detail) per injected fault, capped.
        self.fault_events: List[Tuple[str, float, tuple]] = []
        self.fault_events_dropped: int = 0
        self._max_fault_events = max_fault_events

    # ------------------------------------------------------------------
    # Hot hooks (the machine layer calls these; keep them flat)
    # ------------------------------------------------------------------

    def lane_span(self, nwid: int, start: float, end: float, label: str) -> None:
        """One executed event on a lane (full tier)."""
        spans = self.lane_spans
        if len(spans) < self._max_lane_spans:
            spans.append((nwid, start, end, label))
        else:
            self.lane_spans_dropped += 1

    def message(self, kind: str, latency: float) -> None:
        """One message put on the wire; ``kind`` per :data:`MESSAGE_KINDS`."""
        self.msg_latency[kind].add(latency)

    def packet(self, n_members: int) -> None:
        """One coalesced packet unwrapped by the drain (batch size)."""
        self.packet_sizes.add(n_members)
        self.packets_recorded += 1
        self.packet_records += n_members

    def batch(self, n_records: int) -> None:
        """One batched-dispatch execution of parked records (batch size)."""
        self.batch_sizes.add(n_records)
        self.batches_recorded += 1
        self.batch_records += n_records

    def _channel_sample(
        self,
        by_node: Dict[int, ChannelStats],
        wait_hist: LogHistogram,
        events: List[Tuple[int, float, float, float, int]],
        node: int,
        start: float,
        wait: float,
        occupancy: float,
        nbytes: int,
    ) -> None:
        ch = by_node.get(node)
        if ch is None:
            ch = by_node[node] = ChannelStats()
        ch.admits += 1
        ch.bytes += nbytes
        ch.wait_sum += wait
        ch.occupancy_sum += occupancy
        if wait > ch.wait_max:
            ch.wait_max = wait
        ch.wait_hist.add(wait)
        wait_hist.add(wait)
        if self.record_channel_events:
            if len(events) < self._max_channel_events:
                events.append((node, start, wait, occupancy, nbytes))
            else:
                self.channel_events_dropped += 1

    def inj_sample(
        self, node: int, start: float, wait: float, occupancy: float, nbytes: int
    ) -> None:
        """One admission into a node's network-injection channel."""
        self._channel_sample(
            self.inj_by_node, self.inj_wait, self.inj_events,
            node, start, wait, occupancy, nbytes,
        )

    def dram_sample(
        self, node: int, start: float, wait: float, occupancy: float, nbytes: int
    ) -> None:
        """One serviced request on a node's DRAM channel."""
        self._channel_sample(
            self.dram_by_node, self.dram_wait, self.dram_events,
            node, start, wait, occupancy, nbytes,
        )

    # ------------------------------------------------------------------
    # Phase spans (KVMSR engine)
    # ------------------------------------------------------------------

    def phase_begin(self, job: str, phase: str, t: float) -> None:
        """Open a ``phase`` span for ``job`` at simulated time ``t``.

        Re-opening an already-open (job, phase) pair closes the previous
        span first — relaunched jobs (PageRank iterations) produce one
        span per epoch.
        """
        key = (job, phase)
        prev = self._open_phases.pop(key, None)
        if prev is not None:
            self.phase_spans.append((job, phase, prev, t))
        self._open_phases[key] = t

    def phase_end(self, job: str, phase: str, t: float) -> None:
        """Close a span; a no-op if the (job, phase) pair is not open."""
        start = self._open_phases.pop((job, phase), None)
        if start is not None:
            self.phase_spans.append((job, phase, start, t))

    def mark(self, name: str, t: float, job: Optional[str] = None) -> None:
        """Record an instant marker (e.g. one quiescence poll round)."""
        self.marks.append((name, job, t))

    def fault(self, kind: str, t: float, detail: tuple = ()) -> None:
        """One injected fault taking effect at simulated time ``t``.

        ``detail`` is kind-specific plain data (networkIDs, nodes, stall
        cycles) for the fault trace; counts are unconditional, the event
        list is capped like the other timelines.
        """
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if len(self.fault_events) < self._max_fault_events:
            self.fault_events.append((kind, t, detail))
        else:
            self.fault_events_dropped += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def phases_of(self, job: str) -> List[Tuple[str, float, float]]:
        """Closed (phase, start, end) spans of one job, in time order."""
        return sorted(
            (p, s, e) for j, p, s, e in self.phase_spans if j == job
        )

    def phase_names(self) -> List[str]:
        return sorted({p for _j, p, _s, _e in self.phase_spans})

    # ------------------------------------------------------------------
    # Shard stitching (repro.machine.parallel)
    # ------------------------------------------------------------------

    def sibling(self) -> "FlightRecorder":
        """An empty recorder of the same tier and caps (per-shard copy)."""
        return FlightRecorder(
            self.tier,
            max_lane_spans=self._max_lane_spans,
            max_channel_events=self._max_channel_events,
            max_fault_events=self._max_fault_events,
        )

    def drain_handoff(self) -> "FlightRecorder":
        """A fresh sibling carrying only the open-phase table forward.

        Per-drain delta reporting for forked workers: after shipping its
        accumulated telemetry at drain end, a worker rebinds to this
        fresh recorder so the next drain ships only *new* telemetry (the
        parent merges deltas into its live recorder instead of
        rebuilding from a pre-fork snapshot).  Open phase spans must
        survive the handoff — a phase begun in one drain and ended in
        the next closes with the original start time.
        """
        fresh = self.sibling()
        fresh._open_phases = dict(self._open_phases)
        return fresh

    def export_state(self) -> Dict[str, Any]:
        """Deep-copy snapshot of all accumulated telemetry.

        The parallel coordinator snapshots the pre-fork recorder once,
        then rebuilds the merged view from (snapshot + per-worker
        recorders) at every drain — workers keep accumulating across
        drains, so merging their *full* contents onto a fixed base is the
        idempotent way to stay current.
        """
        import copy

        return {
            "lane_spans": list(self.lane_spans),
            "lane_spans_dropped": self.lane_spans_dropped,
            "inj_by_node": copy.deepcopy(self.inj_by_node),
            "dram_by_node": copy.deepcopy(self.dram_by_node),
            "inj_wait": copy.deepcopy(self.inj_wait),
            "dram_wait": copy.deepcopy(self.dram_wait),
            "inj_events": list(self.inj_events),
            "dram_events": list(self.dram_events),
            "channel_events_dropped": self.channel_events_dropped,
            "msg_latency": copy.deepcopy(self.msg_latency),
            "packet_sizes": copy.deepcopy(self.packet_sizes),
            "packets_recorded": self.packets_recorded,
            "packet_records": self.packet_records,
            "batch_sizes": copy.deepcopy(self.batch_sizes),
            "batches_recorded": self.batches_recorded,
            "batch_records": self.batch_records,
            "phase_spans": list(self.phase_spans),
            "marks": list(self.marks),
            "_open_phases": dict(self._open_phases),
            "fault_counts": dict(self.fault_counts),
            "fault_events": list(self.fault_events),
            "fault_events_dropped": self.fault_events_dropped,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Reset this recorder's content to an :meth:`export_state` copy."""
        import copy

        self.lane_spans = list(state["lane_spans"])
        self.lane_spans_dropped = state["lane_spans_dropped"]
        self.inj_by_node = copy.deepcopy(state["inj_by_node"])
        self.dram_by_node = copy.deepcopy(state["dram_by_node"])
        self.inj_wait = copy.deepcopy(state["inj_wait"])
        self.dram_wait = copy.deepcopy(state["dram_wait"])
        self.inj_events = list(state["inj_events"])
        self.dram_events = list(state["dram_events"])
        self.channel_events_dropped = state["channel_events_dropped"]
        self.msg_latency = copy.deepcopy(state["msg_latency"])
        self.packet_sizes = copy.deepcopy(state["packet_sizes"])
        self.packets_recorded = state["packets_recorded"]
        self.packet_records = state["packet_records"]
        self.batch_sizes = copy.deepcopy(state["batch_sizes"])
        self.batches_recorded = state["batches_recorded"]
        self.batch_records = state["batch_records"]
        self.phase_spans = list(state["phase_spans"])
        self.marks = list(state["marks"])
        self._open_phases = dict(state["_open_phases"])
        self.fault_counts = dict(state["fault_counts"])
        self.fault_events = list(state["fault_events"])
        self.fault_events_dropped = state["fault_events_dropped"]

    def merge_from(self, other: "FlightRecorder") -> None:
        """Fold another recorder's telemetry into this one.

        Per-node channel maps are disjoint across shards (each channel is
        fed only by its owning node), so entries are summed field-wise in
        the rare overlap case and otherwise adopted; histograms merge
        bucket-wise; timeline lists concatenate (callers sort once at the
        end via :meth:`sort_timelines`).
        """
        self.lane_spans.extend(other.lane_spans)
        self.lane_spans_dropped += other.lane_spans_dropped
        for mine, theirs in (
            (self.inj_by_node, other.inj_by_node),
            (self.dram_by_node, other.dram_by_node),
        ):
            for node, ch in theirs.items():
                dst = mine.get(node)
                if dst is None:
                    dst = mine[node] = ChannelStats()
                dst.admits += ch.admits
                dst.bytes += ch.bytes
                dst.wait_sum += ch.wait_sum
                dst.occupancy_sum += ch.occupancy_sum
                if ch.wait_max > dst.wait_max:
                    dst.wait_max = ch.wait_max
                dst.wait_hist.merge(ch.wait_hist)
        self.inj_wait.merge(other.inj_wait)
        self.dram_wait.merge(other.dram_wait)
        self.inj_events.extend(other.inj_events)
        self.dram_events.extend(other.dram_events)
        self.channel_events_dropped += other.channel_events_dropped
        for kind, hist in other.msg_latency.items():
            self.msg_latency[kind].merge(hist)
        self.packet_sizes.merge(other.packet_sizes)
        self.packets_recorded += other.packets_recorded
        self.packet_records += other.packet_records
        self.batch_sizes.merge(other.batch_sizes)
        self.batches_recorded += other.batches_recorded
        self.batch_records += other.batch_records
        self.phase_spans.extend(other.phase_spans)
        self.marks.extend(other.marks)
        self._open_phases.update(other._open_phases)
        for kind, count in other.fault_counts.items():
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + count
        self.fault_events.extend(other.fault_events)
        self.fault_events_dropped += other.fault_events_dropped

    def sort_timelines(self) -> None:
        """Time-order the concatenated per-shard timeline lists.

        After shard merging the lists are grouped by shard; one sort
        restores a global timeline so exports (Chrome trace, perflog)
        read identically to a sequential recording.
        """
        self.lane_spans.sort(key=lambda s: (s[1], s[0], s[2], s[3]))
        self.inj_events.sort(key=lambda e: (e[1], e[0]))
        self.dram_events.sort(key=lambda e: (e[1], e[0]))
        self.phase_spans.sort(key=lambda p: (p[2], p[3], p[0], p[1]))
        self.marks.sort(key=lambda m: (m[2], m[0], m[1] or ""))
        # detail tuples may mix ints and None; repr keeps the key total.
        self.fault_events.sort(key=lambda f: (f[1], f[0], repr(f[2])))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlightRecorder(tier={self.tier!r}, "
            f"lane_spans={len(self.lane_spans)}, "
            f"phases={len(self.phase_spans)})"
        )


RecorderSpec = Union[None, bool, str, FlightRecorder]


def make_recorder(spec: RecorderSpec) -> Optional[FlightRecorder]:
    """Normalize a ``record=`` argument into a recorder (or ``None``).

    ``None``/``False`` → no recording; ``True`` → the full tier; a tier
    name → that tier; an existing :class:`FlightRecorder` → itself.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return FlightRecorder("full")
    if isinstance(spec, FlightRecorder):
        return spec
    if isinstance(spec, str):
        return FlightRecorder(spec)
    raise RecorderError(f"cannot interpret record={spec!r}")
