"""Chrome ``trace_event`` export of a recorded run.

Produces the JSON object format (``{"traceEvents": [...]}``) understood by
``chrome://tracing`` and Perfetto.  Tracks:

* one process ("lanes") with a thread per lane — per-event busy spans;
* one process per channel family ("network injection", "dram") with a
  thread per node — per-admission occupancy spans (full tier only);
* one process ("kvmsr") with a thread per job — phase spans plus instant
  markers (quiescence polls).

Timestamps are microseconds of *simulated* time (``cycles / clock``), so
the timeline reads in the same units as the paper's figures.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .recorder import FlightRecorder

#: stable process ids for the trace tracks.
PID_LANES = 1
PID_NET = 2
PID_DRAM = 3
PID_KVMSR = 4

_PROCESS_NAMES = {
    PID_LANES: "lanes",
    PID_NET: "network injection",
    PID_DRAM: "dram",
    PID_KVMSR: "kvmsr",
}


def _meta(pid: int, name: str, tid: int = 0, what: str = "process_name"):
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "name": what,
        "args": {"name": name},
    }


def chrome_trace(
    recorder: FlightRecorder,
    clock_hz: float,
    scalars: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the trace dict for ``recorder``; serialize with ``json.dump``.

    ``scalars`` (e.g. ``stats.scalar_snapshot()``) lands under
    ``otherData`` so the end-of-run counters travel with the timeline.
    """
    us = 1e6 / clock_hz  # cycles -> microseconds
    events: List[Dict[str, Any]] = [
        _meta(pid, name) for pid, name in _PROCESS_NAMES.items()
    ]

    for nwid, start, end, label in recorder.lane_spans:
        events.append(
            {
                "ph": "X",
                "pid": PID_LANES,
                "tid": nwid,
                "name": label,
                "cat": "lane",
                "ts": start * us,
                "dur": (end - start) * us,
            }
        )

    for pid, cat, samples in (
        (PID_NET, "inj", recorder.inj_events),
        (PID_DRAM, "dram", recorder.dram_events),
    ):
        for node, start, wait, occupancy, nbytes in samples:
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": node,
                    "name": f"{cat} {nbytes}B",
                    "cat": cat,
                    "ts": start * us,
                    "dur": occupancy * us,
                    "args": {"queue_wait_cycles": wait, "bytes": nbytes},
                }
            )

    job_tids: Dict[str, int] = {}

    def _job_tid(job: str) -> int:
        tid = job_tids.get(job)
        if tid is None:
            tid = job_tids[job] = len(job_tids)
            events.append(_meta(PID_KVMSR, job, tid, "thread_name"))
        return tid

    for job, phase, start, end in recorder.phase_spans:
        events.append(
            {
                "ph": "X",
                "pid": PID_KVMSR,
                "tid": _job_tid(job),
                "name": phase,
                "cat": "kvmsr",
                "ts": start * us,
                "dur": (end - start) * us,
                "args": {"job": job},
            }
        )
    for name, job, t in recorder.marks:
        events.append(
            {
                "ph": "i",
                "pid": PID_KVMSR,
                "tid": _job_tid(job) if job is not None else 0,
                "name": name,
                "cat": "kvmsr",
                "ts": t * us,
                "s": "t",
            }
        )

    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "recorder_tier": recorder.tier,
            "clock_hz": clock_hz,
            "lane_spans_dropped": recorder.lane_spans_dropped,
            "channel_events_dropped": recorder.channel_events_dropped,
        },
    }
    if scalars:
        trace["otherData"]["scalars"] = dict(scalars)
    return trace


def write_chrome_trace(
    path,
    recorder: FlightRecorder,
    clock_hz: float,
    scalars: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder, clock_hz, scalars), fh)
    return path
