"""``perflog.tsv`` export: the artifact-style plain-text counter log.

The artifact appendix extracts every reported number from Fastsim's
``perflog.tsv``; this module writes the repro equivalent.  The format is a
uniform four-column TSV so it greps and pivots trivially::

    kind<TAB>name<TAB>field<TAB>value

with one header row.  Kinds: ``scalar`` (end-of-run counters), ``lane``
(per-lane busy cycles / events), ``channel`` (per-node injection and DRAM
occupancy + queue wait), ``msg`` (latency histogram stats per taxonomy
class), ``phase`` (KVMSR phase spans), ``hist`` (power-of-two bucket rows
of the wait/latency histograms).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .histogram import LogHistogram
from .recorder import FlightRecorder

HEADER = ("kind", "name", "field", "value")


def _hist_rows(name: str, hist: LogHistogram) -> List[Tuple[str, ...]]:
    rows: List[Tuple[str, ...]] = [
        ("msg" if name.startswith("latency_") else "hist",
         name, "count", str(hist.count)),
        ("msg" if name.startswith("latency_") else "hist",
         name, "mean", f"{hist.mean:.3f}"),
        ("msg" if name.startswith("latency_") else "hist",
         name, "max", f"{hist.max:.3f}"),
    ]
    for bound, count in hist.rows():
        rows.append(("hist", name, f"le_{bound:.0f}", str(count)))
    return rows


def perflog_rows(
    recorder: Optional[FlightRecorder],
    scalars: Optional[Dict[str, Any]] = None,
    busy_cycles_by_lane: Optional[Dict[int, float]] = None,
) -> List[Tuple[str, ...]]:
    """All data rows (header excluded) for one run's perflog."""
    rows: List[Tuple[str, ...]] = []
    if scalars:
        for key, value in scalars.items():
            rows.append(("scalar", key, "value", repr(value)))
    if busy_cycles_by_lane:
        for nwid in sorted(busy_cycles_by_lane):
            rows.append(
                ("lane", str(nwid), "busy_cycles",
                 f"{busy_cycles_by_lane[nwid]:.3f}")
            )
    if recorder is None:
        return rows
    for family, by_node in (
        ("inj", recorder.inj_by_node),
        ("dram", recorder.dram_by_node),
    ):
        for node in sorted(by_node):
            ch = by_node[node]
            name = f"{family}.{node}"
            rows.append(("channel", name, "admits", str(ch.admits)))
            rows.append(("channel", name, "bytes", str(ch.bytes)))
            rows.append(
                ("channel", name, "occupancy_cycles",
                 f"{ch.occupancy_sum:.3f}")
            )
            rows.append(
                ("channel", name, "queue_wait_mean", f"{ch.mean_wait:.3f}")
            )
            rows.append(
                ("channel", name, "queue_wait_max", f"{ch.wait_max:.3f}")
            )
    for kind, hist in recorder.msg_latency.items():
        if hist.count:
            rows.extend(_hist_rows(f"latency_{kind}", hist))
    if recorder.inj_wait.count:
        rows.extend(_hist_rows("inj_wait", recorder.inj_wait))
    if recorder.dram_wait.count:
        rows.extend(_hist_rows("dram_wait", recorder.dram_wait))
    for job, phase, start, end in recorder.phase_spans:
        rows.append(
            ("phase", f"{job}.{phase}", "span",
             f"{start:.3f}..{end:.3f}")
        )
    for name, job, t in recorder.marks:
        rows.append(
            ("phase", f"{job}.{name}" if job else name, "mark", f"{t:.3f}")
        )
    return rows


def format_perflog(
    recorder: Optional[FlightRecorder],
    scalars: Optional[Dict[str, Any]] = None,
    busy_cycles_by_lane: Optional[Dict[int, float]] = None,
) -> str:
    """The full perflog as TSV text (header + rows)."""
    lines = ["\t".join(HEADER)]
    lines.extend(
        "\t".join(row)
        for row in perflog_rows(recorder, scalars, busy_cycles_by_lane)
    )
    return "\n".join(lines) + "\n"


def write_perflog(
    path,
    recorder: Optional[FlightRecorder],
    scalars: Optional[Dict[str, Any]] = None,
    busy_cycles_by_lane: Optional[Dict[int, float]] = None,
) -> Path:
    """Write the perflog TSV to ``path``; returns the path."""
    path = Path(path)
    path.write_text(format_perflog(recorder, scalars, busy_cycles_by_lane))
    return path
