"""PR/BFS preprocessing CLI (artifact Listings 6-7).

The artifact::

    ./split_and_shuffle -f <raw_graph_file> -m <max_degree> -d -s -l <offset>

* ``-f`` raw edge-list text file
* ``-m`` maximum vertex degree after splitting (512 for PR, 4096 for BFS)
* ``-d`` input is directed (otherwise both edge directions are created)
* ``-s`` print statistics before and after splitting
* ``-l`` skip the first N header lines

Outputs ``<input>_shuffle_max_deg_<m>_gv.bin`` / ``..._nl.bin`` (this
repo's binary vertex/neighbor-list format) plus a ``_stats.txt`` when
``-s`` is given, mirroring the artifact's output naming.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.graph.csr import CSRGraph
from repro.graph.io import save_graph
from repro.graph.splitting import split_and_shuffle

from .common import graph_stats_line, read_edge_list


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.split_and_shuffle",
        description="convert an edge list to split/shuffled binary form",
    )
    p.add_argument("-f", "--file", type=Path, required=True,
                   help="raw graph text file (edge list)")
    p.add_argument("-m", "--max-degree", type=int, required=True,
                   help="maximum vertex degree after splitting")
    p.add_argument("-d", "--directed", action="store_true",
                   help="input is directed (default: symmetrize)")
    p.add_argument("-s", "--stats", action="store_true",
                   help="write before/after statistics")
    p.add_argument("-l", "--skip-lines", type=int, default=0,
                   help="skip the first N input lines")
    p.add_argument("--seed", type=int, default=0,
                   help="shuffle seed (the artifact shuffles unseeded)")
    return p


def main(argv=None) -> Path:
    args = build_parser().parse_args(argv)
    edges = read_edge_list(args.file, args.skip_lines)
    graph = CSRGraph.from_edges(edges, symmetrize=not args.directed)
    split = split_and_shuffle(graph, args.max_degree, seed=args.seed)

    prefix = args.file.with_name(
        f"{args.file.stem}_shuffle_max_deg_{args.max_degree}"
    )
    gv, nl = save_graph(prefix, graph, split)
    print(f"wrote {gv}")
    print(f"wrote {nl}")

    if args.stats:
        before = graph_stats_line("before", graph)
        after = graph_stats_line("after", split.graph)
        extra = f"[split] {split.stats()}"
        print(before)
        print(after)
        print(extra)
        stats_path = args.file.with_name(
            f"{args.file.stem}_m{args.max_degree}_stats.txt"
        )
        stats_path.write_text("\n".join([before, after, extra]) + "\n")
        print(f"wrote {stats_path}")
    return prefix


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
