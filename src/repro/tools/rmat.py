"""RMAT generator CLI (artifact Listing 8).

The artifact: ``python rmat_generator.py -s <scale>`` with
a=0.57, b=0.19, c=0.19 and edge factor 16.

Usage::

    python -m repro.tools.rmat -s 10 [-e 16] [--seed 48] [-o out.txt]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.graph.generators import (
    DEFAULT_EDGE_FACTOR,
    RMAT_A,
    RMAT_B,
    RMAT_C,
    rmat_edges,
)

from .common import write_edge_list


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.rmat",
        description="RMAT edge-list generator (Graph Challenge parameters)",
    )
    p.add_argument("-s", "--scale", type=int, required=True,
                   help="log2 of the vertex count")
    p.add_argument("-e", "--edge-factor", type=int,
                   default=DEFAULT_EDGE_FACTOR)
    p.add_argument("--seed", type=int, default=48)
    p.add_argument("-a", type=float, default=RMAT_A)
    p.add_argument("-b", type=float, default=RMAT_B)
    p.add_argument("-c", type=float, default=RMAT_C)
    p.add_argument("-o", "--output", type=Path, default=None,
                   help="output edge-list path (default rmat-s<scale>.txt)")
    return p


def main(argv=None) -> Path:
    args = build_parser().parse_args(argv)
    edges = rmat_edges(
        args.scale, args.edge_factor, args.a, args.b, args.c, args.seed
    )
    out = args.output or Path(f"rmat-s{args.scale}.txt")
    write_edge_list(out, edges)
    print(f"wrote {len(edges)} edges ({1 << args.scale} vertices) to {out}")
    return out


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
