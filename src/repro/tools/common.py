"""Shared helpers for the artifact-style CLI tools."""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph


def read_edge_list(
    path: Path, skip_lines: int = 0
) -> np.ndarray:
    """Parse a plain-text edge list (one ``src dst`` pair per line,
    whitespace- or tab-separated), skipping ``skip_lines`` header lines
    and ``#`` comments — the artifact's raw-graph format."""
    edges = []
    with open(path) as fh:
        for i, line in enumerate(fh):
            if i < skip_lines:
                continue
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{i + 1}: not an edge: {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
    if not edges:
        raise ValueError(f"{path}: no edges found")
    return np.asarray(edges, dtype=np.int64)


def write_edge_list(path: Path, edges: np.ndarray) -> None:
    with open(path, "w") as fh:
        for s, d in edges:
            fh.write(f"{s}\t{d}\n")


def graph_stats_line(tag: str, graph: CSRGraph) -> str:
    degs = graph.degrees
    return (
        f"[{tag}] vertices={graph.n} edges={graph.m} "
        f"max_degree={graph.max_degree} "
        f"avg_degree={degs.mean():.2f}"
    )


def load_prefix_as_graph(prefix: Path) -> Tuple[CSRGraph, dict]:
    """Load a ``*_gv.bin``/``*_nl.bin`` pair back into a host graph.

    Split binaries are un-split: sub-vertex edges are re-attributed to
    their representative original vertex, reconstructing the graph the
    application semantics are defined on (the apps re-split with their
    own max-degree parameter, exactly like re-running the artifact's
    pipeline)."""
    from repro.graph.io import csr_from_records, load_graph

    records, neighbors, meta = load_graph(prefix)
    split_csr = csr_from_records(records, neighbors)
    if meta.get("max_degree") is None and meta["n"] == meta["n_orig"]:
        return split_csr, meta
    reps = records[:, 0]
    edges = np.column_stack(
        [
            np.repeat(reps, records[:, 1]),
            neighbors,
        ]
    )
    graph = CSRGraph.from_edges(
        edges, n=meta["n_orig"], dedup=False, drop_self_loops=False
    )
    return graph, meta


def die(message: str) -> None:  # pragma: no cover - CLI error path
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)
