"""Command-line tools mirroring the artifact's binaries.

The artifact appendix drives everything through small executables:
``split_and_shuffle`` (PR/BFS preprocessing), a Python RMAT generator,
``tsv`` (TC preprocessing), and per-application run commands taking a
graph and a node count.  Each has an equivalent here:

* ``python -m repro.tools.rmat -s 10 -o rmat-s10.txt``
* ``python -m repro.tools.split_and_shuffle -f graph.txt -m 512 -d -s``
* ``python -m repro.tools.tsv graph.txt prefix``
* ``python -m repro.tools.pagerank <prefix> <nodes> [iters]``
* ``python -m repro.tools.bfs <prefix> <nodes> [root]``
* ``python -m repro.tools.tc <prefix> <nodes>``
"""
