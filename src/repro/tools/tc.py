"""Triangle-count run CLI (artifact Listing 12).

The artifact: ``./three_clique_count_mm_global <gv> <nl> <u> <t> <m>``.
Here::

    python -m repro.tools.tc <prefix> <nodes> [--pbmw] [--verify]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.apps.triangle import TriangleCountApp
from repro.baselines import triangle_count
from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
from repro.udweave import UpDownRuntime

from .common import load_prefix_as_graph


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.tools.tc")
    p.add_argument("prefix", type=Path)
    p.add_argument("nodes", type=int)
    p.add_argument("--pbmw", action="store_true",
                   help="use the PBMW map binding variant (§4.3.3)")
    p.add_argument("--verify", action="store_true")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    graph, _meta = load_prefix_as_graph(args.prefix)
    runtime = UpDownRuntime(bench_config(args.nodes))
    app = TriangleCountApp(
        runtime, graph, pbmw=args.pbmw, block_size=BENCH_BLOCK_SIZE
    )
    result = app.run()
    print(
        f"result: {result.triangles} triangles in "
        f"{result.elapsed_seconds:.6f} simulated seconds"
    )
    if args.verify:
        expected = triangle_count(graph)
        if result.triangles != expected:
            raise SystemExit(
                f"triangle count mismatch: {result.triangles} != {expected}"
            )
        print("verified against the sparse-matrix oracle")
    return result.triangles


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
