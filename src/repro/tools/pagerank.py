"""PageRank run CLI (artifact Listing 10).

The artifact: ``./pagerankMSRdramalloc <graph> <nodes> <accel> <part>
<mem>``.  Here::

    python -m repro.tools.pagerank <prefix> <nodes> \\
        [--iterations N] [--mem-nodes M] [--max-degree D] [--verify]

Prints the BASIM_PRINT log markers and the artifact's timing extraction
(``(t_terminate - t_init) / 2e9``).
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.apps.pagerank import PageRankApp
from repro.baselines import pagerank as reference_pagerank
from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
from repro.udweave import UpDownRuntime

from .common import load_prefix_as_graph


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.tools.pagerank")
    p.add_argument("prefix", type=Path, help="gv/nl binary prefix")
    p.add_argument("nodes", type=int, help="UpDown node count")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--mem-nodes", type=int, default=None,
                   help="NRnodes for DRAMmalloc (Figure 12 sweeps)")
    p.add_argument("--max-degree", type=int, default=64)
    p.add_argument("--verify", action="store_true",
                   help="check ranks against the NumPy oracle")
    return p


def main(argv=None) -> float:
    args = build_parser().parse_args(argv)
    graph, _meta = load_prefix_as_graph(args.prefix)
    runtime = UpDownRuntime(bench_config(args.nodes))
    app = PageRankApp(
        runtime,
        graph,
        max_degree=args.max_degree,
        mem_nodes=args.mem_nodes,
        block_size=BENCH_BLOCK_SIZE,
    )
    result = app.run(iterations=args.iterations)
    print(runtime.udlog.format_log())
    seconds = runtime.udlog.seconds_between("updown_init", "updown_terminate")
    print(f"simulated time: {seconds:.6f} s "
          f"({result.giga_updates_per_second:.4f} GUPS)")
    if args.verify:
        expected = reference_pagerank(graph, args.iterations)
        err = float(np.abs(result.ranks - expected).max())
        print(f"max |error| vs oracle: {err:.2e}")
        if err > 1e-9:
            raise SystemExit(1)
    return seconds


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
