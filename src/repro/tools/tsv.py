"""TC preprocessing CLI (artifact Listing 9).

The artifact: ``./tsv rmat-s28.txt rmat-s28`` — "preprocessed to eliminate
duplicate edges and to sort entries by the source vertex ID", emitting
``*_gv.bin`` (vertex array) and ``*_nl.bin`` (neighbor lists).

Usage::

    python -m repro.tools.tsv <edge_list.txt> <output_prefix> [-l N]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.graph.csr import CSRGraph
from repro.graph.io import save_graph

from .common import graph_stats_line, read_edge_list


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.tsv",
        description="dedup + sort an edge list into gv/nl binaries",
    )
    p.add_argument("input", type=Path, help="edge-list text file")
    p.add_argument("prefix", type=Path, help="output prefix")
    p.add_argument("-l", "--skip-lines", type=int, default=0)
    return p


def main(argv=None) -> Path:
    args = build_parser().parse_args(argv)
    edges = read_edge_list(args.input, args.skip_lines)
    # TC operates on the symmetrized simple graph
    graph = CSRGraph.from_edges(edges, symmetrize=True)
    gv, nl = save_graph(args.prefix, graph)
    print(graph_stats_line("tsv", graph))
    print(f"wrote {gv}")
    print(f"wrote {nl}")
    return args.prefix


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
