"""BFS run CLI (artifact Listing 11).

The artifact: ``./bfs_udweave <graph> <lanes> <accel> <root_VID> <mem>``.
Here::

    python -m repro.tools.bfs <prefix> <nodes> [--root R] [--mem-nodes M]
        [--max-degree D] [--verify]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.apps.bfs import BFSApp
from repro.baselines import bfs as reference_bfs, validate_parents
from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
from repro.udweave import UpDownRuntime

from .common import load_prefix_as_graph


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.tools.bfs")
    p.add_argument("prefix", type=Path)
    p.add_argument("nodes", type=int)
    p.add_argument("--root", type=int, default=0)
    p.add_argument("--mem-nodes", type=int, default=None)
    p.add_argument("--max-degree", type=int, default=128)
    p.add_argument("--verify", action="store_true")
    return p


def main(argv=None) -> float:
    args = build_parser().parse_args(argv)
    graph, _meta = load_prefix_as_graph(args.prefix)
    runtime = UpDownRuntime(bench_config(args.nodes))
    app = BFSApp(
        runtime,
        graph,
        max_degree=args.max_degree,
        mem_nodes=args.mem_nodes,
        block_size=BENCH_BLOCK_SIZE,
    )
    result = app.run(root=args.root)
    print(runtime.udlog.format_log())
    seconds = runtime.udlog.seconds_between("BFS Start", "BFS finish")
    print(
        f"simulated time: {seconds:.6f} s  rounds={result.rounds} "
        f"traversed={result.traversed_edges} "
        f"({result.giga_teps:.4f} GTEPS)"
    )
    if args.verify:
        dist, _parent = reference_bfs(graph, args.root)
        if not np.array_equal(result.distances, dist):
            raise SystemExit("distance mismatch vs oracle")
        if not validate_parents(
            graph, args.root, result.distances, result.parents
        ):
            raise SystemExit("invalid parent tree")
        print("verified against the reference BFS")
    return seconds


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
