"""The discrete-event simulator core (this repo's stand-in for Fastsim).

The engine keeps a single heap of in-flight messages ordered by
(delivery time, sequence).  Executing a message on a lane is delegated to a
*dispatcher* installed by the UDWeave runtime; the dispatcher runs the
Python event handler, charges cycles per the Table 2 cost model, and issues
outgoing messages back through :meth:`Simulator.send` /
:meth:`Simulator.dram_transaction`.

Determinism: ties are broken by a monotone sequence number, and all
latency jitter (used only by failure-injection tests) is seeded, so every
simulation run is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from .config import MachineConfig
from .events import HOST_NWID, MessageRecord, SimEvent
from .lane import Lane
from .memory import MemorySystem
from .network import Network
from .stats import SimStats

#: dispatcher(sim, lane, record, start_time) -> cycles consumed
Dispatcher = Callable[["Simulator", Lane, MessageRecord, float], float]


class SimulationError(RuntimeError):
    """Raised for malformed programs (bad target, missing dispatcher, ...)."""


class Simulator:
    """Event-driven simulation of one UpDown machine."""

    def __init__(
        self,
        config: MachineConfig,
        dispatcher: Optional[Dispatcher] = None,
        latency_jitter_cycles: float = 0.0,
        seed: int = 0,
        memory_banks_per_node: int = 1,
        trace: bool = False,
    ) -> None:
        self.config = config
        self.dispatcher = dispatcher
        self.network = Network(config, jitter_cycles=latency_jitter_cycles, seed=seed)
        self.memory = MemorySystem(config, banks_per_node=memory_banks_per_node)
        self.stats = SimStats()
        #: optional message trace: (t_issue, t_deliver, src, dst, label)
        #: per send.  Off by default — tracing a large run is expensive.
        self.trace_enabled = trace
        self.trace: List[Tuple[float, float, Optional[int], int, str]] = []
        self._heap: List[SimEvent] = []
        self._seq = 0
        self._lanes: dict[int, Lane] = {}
        self.now: float = 0.0
        #: messages addressed to the host (program results / completion).
        self.host_inbox: List[Tuple[float, MessageRecord]] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def lane(self, network_id: int) -> Lane:
        """The lane object for ``network_id`` (created lazily)."""
        ln = self._lanes.get(network_id)
        if ln is None:
            cfg = self.config
            cfg._check_nwid(network_id)
            ln = Lane(
                network_id,
                node=cfg.node_of(network_id),
                accel=cfg.accel_of(network_id),
            )
            self._lanes[network_id] = ln
        return ln

    @property
    def instantiated_lanes(self) -> int:
        return len(self._lanes)

    # ------------------------------------------------------------------
    # Message transport
    # ------------------------------------------------------------------

    def send(
        self,
        record: MessageRecord,
        t_issue: float,
        src_node: Optional[int],
    ) -> float:
        """Put ``record`` on the wire at ``t_issue``; returns delivery time.

        ``src_node=None`` is host injection (program start).
        """
        if record.network_id == HOST_NWID:
            # Results mailbox: charge the send at the source but deliver
            # instantly — the host is outside the modeled machine.
            self._push(t_issue, record)
            self.stats.messages_sent += 1
            return t_issue
        dst_node = self.config.node_of(record.network_id)
        t_deliver = self.network.deliver_time(
            t_issue, src_node, dst_node, self.config.message_bytes
        )
        self._push(t_deliver, record)
        self.stats.messages_sent += 1
        if self.trace_enabled:
            self.trace.append(
                (
                    t_issue,
                    t_deliver,
                    record.src_network_id,
                    record.network_id,
                    record.label,
                )
            )
        if src_node is None or src_node == dst_node:
            self.stats.messages_local += 1
        else:
            self.stats.messages_remote += 1
        return t_deliver

    def dram_transaction(
        self,
        response: Optional[MessageRecord],
        t_issue: float,
        src_node: int,
        memory_node: int,
        nbytes: int,
        is_read: bool,
        local_offset: int = 0,
    ) -> float:
        """Model one split-phase DRAM access; schedule ``response`` if given.

        Returns the time the response (or write completion) lands back at
        the requester.  Reads without a response record are disallowed —
        the data has to go somewhere.
        """
        if is_read and response is None:
            raise SimulationError("DRAM read requires a response record")
        remote = src_node != memory_node
        t_arrive = t_issue + (
            self.network.latency(src_node, memory_node) if remote else 0.0
        )
        result = self.memory.access(
            t_arrive, src_node, memory_node, nbytes, local_offset=local_offset
        )
        t_back = result.response_ready + (
            self.network.latency(memory_node, src_node) if remote else 0.0
        )
        if is_read:
            self.stats.dram_reads += 1
            self.stats.dram_bytes_read += nbytes
        else:
            self.stats.dram_writes += 1
            self.stats.dram_bytes_written += nbytes
        if remote:
            self.stats.dram_remote_accesses += 1
        if response is not None:
            self._push(t_back, response)
        else:
            # Fire-and-forget writes still occupy the machine until they
            # land; the makespan must cover them.
            self.stats.final_tick = max(self.stats.final_tick, t_back)
        return t_back

    def _push(self, time: float, record: MessageRecord) -> None:
        self._seq += 1
        heapq.heappush(self._heap, SimEvent(time, self._seq, record))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def inject(self, record: MessageRecord, t: float = 0.0) -> None:
        """Host-side program start: deliver ``record`` without fabric cost."""
        self._push(t, record)

    def run(self, max_events: Optional[int] = None) -> SimStats:
        """Drain the event heap; returns the accumulated statistics.

        ``max_events`` guards against runaway programs in tests.
        """
        if self.dispatcher is None:
            raise SimulationError("no dispatcher installed")
        processed = 0
        while self._heap:
            ev = heapq.heappop(self._heap)
            self.now = ev.time
            rec = ev.record
            if rec.network_id == HOST_NWID:
                self.host_inbox.append((ev.time, rec))
                self.stats.final_tick = max(self.stats.final_tick, ev.time)
                continue
            ln = self.lane(rec.network_id)
            start = max(ev.time, ln.busy_until)
            cycles = self.dispatcher(self, ln, rec, start)
            end = ln.account_execution(start, cycles)
            self.stats.events_executed += 1
            self.stats.events_by_label[rec.label] += 1
            self.stats.busy_cycles_by_lane[ln.network_id] += cycles
            self.stats.final_tick = max(self.stats.final_tick, end)
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded max_events={max_events}"
                )
        return self.stats

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def host_messages(self, label: Optional[str] = None) -> List[MessageRecord]:
        """Messages the program sent to the host, optionally by label."""
        return [
            rec
            for _, rec in self.host_inbox
            if label is None or rec.label == label
        ]

    @property
    def elapsed_seconds(self) -> float:
        """Simulated wall-clock: ``final_tick / clock`` (artifact appendix)."""
        return self.config.cycles_to_seconds(self.stats.final_tick)
