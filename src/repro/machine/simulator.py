"""The discrete-event simulator core (this repo's stand-in for Fastsim).

The engine keeps a heap of in-flight messages ordered by
``(delivery time, destination, sequence)``.  Executing a message on a lane
is delegated to a *dispatcher* installed by the UDWeave runtime; the
dispatcher runs the Python event handler, charges cycles per the Table 2
cost model, and issues outgoing messages back through
:meth:`Simulator.send` / :meth:`Simulator.dram_transaction`.

Determinism: the heap key is assigned entirely at the point of issue —
``seq`` packs the issuing actor (host, lane, or node) with that actor's
private event count — and all latency jitter (used only by
failure-injection tests) is seeded, so every simulation run is exactly
reproducible.  Because the key never depends on *global* issue order, the
event order is also independent of how the machine is partitioned into
shards: a conservative parallel run (``shards=N``, see
``repro.machine.parallel``) produces bit-identical results to the
sequential drain.

Remote split-phase DRAM is event-driven: the requester admits its own
injection channel at issue time and schedules a :class:`DramArrival`
meta-event at the memory node; the memory channel and the reply virtual
channel are touched only when that event pops — in arrival order, at the
node that owns them.  That locality (every channel is mutated only by its
owning node) is what makes the machine shardable by node.

Hot path: event handlers model 10-100 machine instructions (paper
§2.1.1), so a single figure-9 sweep point executes hundreds of thousands
of Python-dispatched events and per-event overhead here dominates
host-side wall-clock.  The drain loop therefore works on plain
``(time, dest, seq, record)`` heap tuples, caches the lane lookup across
consecutive same-lane deliveries, inlines the lane busy-clock accounting,
and keeps only scalar counters per event — per-label histograms are
gated behind ``detailed_stats`` and per-lane cycle totals are recovered
from the lanes themselves after the drain (see ``repro.machine.stats``).
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, insort
from typing import Callable, List, Optional, Tuple

from .config import MachineConfig
from .events import (
    HOST_NWID,
    PACKET_NWID,
    DramArrival,
    MessageRecord,
    PacketRecord,
)
from .lane import Lane
from .memory import MemorySystem
from .network import InjectionChannel, Network
from .stats import SimStats

#: dispatcher(sim, lane, record, start_time) -> cycles consumed
Dispatcher = Callable[["Simulator", Lane, MessageRecord, float], float]

#: bits reserved for one actor's private event count in a heap ``seq``.
#: 2**44 pushes per actor is far beyond any run this repo executes.
ACTOR_SEQ_BITS = 44


class SimulationError(RuntimeError):
    """Raised for malformed programs (bad target, missing dispatcher, ...)."""


class QuiescenceStall(SimulationError):
    """The machine stopped making progress while threads are pending.

    Raised by the liveness watchdog (``watchdog_cycles=``) when only
    idle-marked events (KVMSR quiescence polls, retransmit timers) have
    executed for longer than the threshold of *simulated* time, and by
    harness runners when a drain ends with an empty heap but live
    threads — the silent-hang shape a lost message or credit produces.

    ``diagnostic`` carries :meth:`Simulator.stall_dump`: the next queued
    events, blocked threads, and whatever the registered diagnostic
    providers report (KVMSR contributes outstanding reduce credits).
    """

    def __init__(self, message: str, diagnostic: Optional[dict] = None):
        if diagnostic:
            message = message + "\n" + _render_dump(diagnostic)
        super().__init__(message)
        self.diagnostic = diagnostic or {}


def _render_dump(dump: dict, indent: str = "  ") -> str:
    """Human-readable rendering of a stall diagnostic dump."""
    lines = []
    for key, value in dump.items():
        if isinstance(value, dict):
            lines.append(f"{indent}{key}:")
            for k, v in value.items():
                lines.append(f"{indent}  {k}: {v!r}")
        elif isinstance(value, (list, tuple)):
            lines.append(f"{indent}{key}:")
            for item in value:
                lines.append(f"{indent}  - {item!r}")
        else:
            lines.append(f"{indent}{key}: {value!r}")
    return "\n".join(lines)


class Simulator:
    """Event-driven simulation of one UpDown machine.

    ``shards`` > 1 partitions the machine's nodes into that many shards
    and drains them through conservative epoch windows (see
    ``repro.machine.parallel``); ``parallel=True`` additionally runs each
    shard in its own forked worker process.  Results are bit-identical to
    the sequential (``shards=1``) drain.
    """

    def __init__(
        self,
        config: MachineConfig,
        dispatcher: Optional[Dispatcher] = None,
        latency_jitter_cycles: float = 0.0,
        seed: int = 0,
        memory_banks_per_node: int = 1,
        trace: bool = False,
        detailed_stats: bool = False,
        recorder=None,
        shards: int = 1,
        parallel: bool = False,
        faults=None,
        watchdog_cycles: Optional[float] = None,
    ) -> None:
        self.config = config
        self.dispatcher = dispatcher
        #: flight recorder (``repro.observe``), or None — the off tier.
        #: Hook sites hold pre-bound methods (or None) so a disabled
        #: recorder costs one pointer test, like ``detailed_stats``.
        self.recorder = recorder
        channel_rec = (
            recorder if recorder is not None and recorder.record_channels
            else None
        )
        self.network = Network(
            config,
            jitter_cycles=latency_jitter_cycles,
            seed=seed,
            recorder=channel_rec,
        )
        self.memory = MemorySystem(
            config,
            banks_per_node=memory_banks_per_node,
            recorder=channel_rec,
            faults=faults,
        )
        self.stats = SimStats(detailed=detailed_stats)
        #: collect per-label event histograms (``stats.events_by_label``).
        #: Off by default — it is the one per-event dict update the scalar
        #: tier avoids; ``harness.inspect.event_report`` needs it on.
        self.detailed_stats = detailed_stats
        #: optional message trace: (t_issue, t_deliver, src, dst, label)
        #: per send.  Off by default — tracing a large run is expensive.
        self.trace_enabled = trace
        self.trace: List[Tuple[float, float, Optional[int], int, str]] = []
        self._heap: List[Tuple[float, int, int, MessageRecord]] = []
        #: per-actor push counters (actor 0 = host, 1+L = lane L,
        #: 1+total_lanes+X = node X's memory/arrival actor).  Each actor
        #: counts its own pushes, so heap keys do not depend on global
        #: issue order — the property sharded runs rely on.
        self._actor_seq: dict = {}
        #: shard-routing hook installed by ``repro.machine.parallel``;
        #: ``None`` means push straight into ``self._heap``.
        self._route: Optional[Callable] = None
        self._lanes: dict[int, Lane] = {}
        self.now: float = 0.0
        #: messages addressed to the host (program results / completion).
        self.host_inbox: List[Tuple[float, MessageRecord]] = []
        # --- shard configuration -------------------------------------
        self.shards = shards
        self.parallel = parallel
        self._scheduler = None
        self._shard_of_node: Optional[List[int]] = None
        #: shared runtime state the parallel executor must replicate
        #: across worker processes; set via :meth:`bind_shared`.
        self.funcmem = None
        self.hostlog = None
        self._recorder_rebinders: List[Callable] = []
        self._setup_token: Optional[Callable] = None
        if shards < 1:
            raise SimulationError("shards must be at least 1")
        if shards > 1:
            if shards > config.nodes:
                raise SimulationError(
                    f"cannot split {config.nodes} node(s) into {shards} "
                    f"shards — shards cannot exceed nodes"
                )
            if latency_jitter_cycles > 0.0:
                raise SimulationError(
                    "latency jitter draws from one shared RNG and is "
                    "incompatible with sharded execution; set "
                    "latency_jitter_cycles=0"
                )
            if config.conservative_lookahead_cycles <= 0.0:
                raise SimulationError(
                    "sharded execution needs a positive conservative "
                    "lookahead (remote_msg_latency_cycles and "
                    "remote_dram_transit_cycles must both be > 0)"
                )
            nodes = config.nodes
            self._shard_of_node = [
                n * shards // nodes for n in range(nodes)
            ]
        # hot-path constants (avoid per-send property/attribute chains)
        self._lanes_per_node = config.lanes_per_node
        self._total_lanes = config.total_lanes
        self._message_bytes = config.message_bytes
        self._deliver_time = self.network.deliver_time
        self._dram_hop = self.network.dram_hop
        self._dram_transit = config.remote_dram_transit_cycles
        # Unrecorded runs inline the two per-remote-access channel
        # admissions (Network.dram_hop semantics, same arithmetic) —
        # the call overhead would otherwise dominate DRAM-heavy apps.
        self._channels_recorded = channel_rec is not None
        self._inj_channels = self.network._injection
        self._reply_channels = self.network._reply
        self._inj_bw = config.node_injection_bytes_per_cycle
        # --- packet coalescing (host-side optimization; see DESIGN.md) -
        # Remote records from one source node to one destination node
        # whose deliveries fall inside one coalescing window share a
        # single heap entry.  Member keys and all charged costs are
        # computed at issue exactly as without coalescing, so results
        # are bit-identical; only Python heap traffic shrinks.
        coalescing = bool(config.coalescing)
        if coalescing and latency_jitter_cycles > 0.0:
            raise SimulationError(
                "packet coalescing requires the jitter-free remote cost "
                "model (member delivery order must be fixed at issue); "
                "set latency_jitter_cycles=0 or coalescing=False"
            )
        self._coalescing_on = coalescing
        #: open (joinable) packets keyed by src_node * nodes + dst_node.
        #: Sealed — cleared — at every conservative window boundary, so
        #: packet composition is identical for every shard count.
        self._open_packets: dict = {}
        self._coalesce_window = config.coalescing_window if coalescing else 0.0
        self._remote_base_cycles = float(config.remote_msg_latency_cycles)
        self._local_base_cycles = float(config.local_msg_latency_cycles)
        self._msg_occupancy = config.message_bytes / self._inj_bw
        self._nodes = config.nodes
        # --- batched dispatch (host-side optimization; see DESIGN.md) --
        # Batch-safe reduce records are *parked* at emit time into the
        # target lane's ``parked`` list — priced, counted, and sequenced
        # exactly as a normal send — then executed in same-plan runs by
        # a compiled executor just before the lane's state is next
        # observed.  Results are bit-identical; only per-record Python
        # machinery (heap traffic, dispatch, context churn) is skipped.
        self._batch_on = bool(config.batch_dispatch)
        #: parking is armed per drain (sequential, fault-free, unwatched,
        #: unrecorded-span drains only — see :meth:`run`); everything
        #: else falls back to per-event interpretation automatically.
        self._park_active = False
        #: records currently parked machine-wide (0 ⇒ flush paths skip).
        self._parked_total = 0
        self._rec_batch = (
            recorder.batch
            if recorder is not None and recorder.record_messages
            else None
        )
        #: end of the sequential drain's *virtual* conservative window;
        #: mirrors the shard scheduler's epoch boundaries (see _drain).
        self._vw_end = 0.0
        self._vw_lookahead = config.conservative_lookahead_cycles
        self._rec_packet = (
            recorder.packet
            if coalescing
            and recorder is not None
            and recorder.record_messages
            else None
        )
        self._rec_msg = (
            recorder.message
            if recorder is not None and recorder.record_messages
            else None
        )
        # --- fault injection (repro.faults.FaultPlan) -----------------
        #: the attached fault plan, or None.  Each fault class gets its
        #: own pre-resolved hook (method pointer or per-node table) so a
        #: fault-free machine pays one pointer test per decision point —
        #: the same zero-cost-off discipline as the recorder.
        self.faults = faults
        if faults is not None:
            self._fault_msg = (
                faults.message_fault if faults.has_message_faults else None
            )
            self._fault_delay = faults.delay_cycles
            self._fault_stall = (
                faults.lane_stall if faults.has_lane_stalls else None
            )
            self._fault_dead = (
                faults.dead_ticks(config.nodes) if faults.fail_stop else None
            )
        else:
            self._fault_msg = None
            self._fault_delay = 0.0
            self._fault_stall = None
            self._fault_dead = None
        self._rec_fault = (
            recorder.fault
            if recorder is not None and recorder.record_faults
            else None
        )
        # --- reliable delivery (repro.faults.ReliableTransport) -------
        #: installed by the UDWeave runtime when ``reliable=`` is set;
        #: None costs one pointer test per send.
        self._transport = None
        # --- liveness watchdog ----------------------------------------
        #: raise :class:`QuiescenceStall` when only idle-marked events
        #: execute for this many *simulated* cycles; None disables.
        self._watchdog_cycles = (
            float(watchdog_cycles) if watchdog_cycles is not None else None
        )
        if self._watchdog_cycles is not None and self._watchdog_cycles <= 0:
            raise SimulationError("watchdog_cycles must be positive")
        #: labels that do not count as forward progress (KVMSR quiescence
        #: polls, retransmit timers); populated via :meth:`mark_idle_labels`.
        self._wd_idle_labels: set = set()
        self._wd_last_progress: float = 0.0
        #: forked shard workers observe only their own shard's events, so
        #: they report progress to the coordinator instead of raising.
        self._wd_report_only: bool = False
        #: (name, fn(sim) -> data) providers consulted by :meth:`stall_dump`.
        self._diag_providers: List[tuple] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def lane(self, network_id: int) -> Lane:
        """The lane object for ``network_id`` (created lazily)."""
        ln = self._lanes.get(network_id)
        if ln is None:
            cfg = self.config
            cfg._check_nwid(network_id)
            ln = Lane(
                network_id,
                node=cfg.node_of(network_id),
                accel=cfg.accel_of(network_id),
            )
            self._lanes[network_id] = ln
        return ln

    @property
    def instantiated_lanes(self) -> int:
        return len(self._lanes)

    def bind_shared(
        self,
        funcmem=None,
        hostlog=None,
        recorder_rebind=None,
        setup_token=None,
    ):
        """Register runtime-owned shared state for parallel execution.

        ``funcmem`` (a ``GlobalMemory``) has its writes logged and
        replicated across shard processes; ``hostlog`` (a ``UDLog``) is
        merged back to the parent; ``recorder_rebind`` is called with the
        fresh per-worker recorder so objects outside the simulator (the
        UDWeave runtime, whose KVMSR hooks read ``runtime.recorder``)
        observe the swap.  ``setup_token`` is a zero-argument callable
        fingerprinting host-side program setup (registered thread
        classes, jobs, host labels); the parallel executor snapshots it
        at fork time and rejects later drains if it changed — forked
        workers cannot observe registrations made in the host process.
        """
        if funcmem is not None:
            self.funcmem = funcmem
        if hostlog is not None:
            self.hostlog = hostlog
        if recorder_rebind is not None:
            self._recorder_rebinders.append(recorder_rebind)
        if setup_token is not None:
            self._setup_token = setup_token

    # ------------------------------------------------------------------
    # Liveness watchdog & diagnostics
    # ------------------------------------------------------------------

    def attach_transport(self, transport) -> None:
        """Install a reliable-delivery layer (``repro.faults.transport``).

        Must happen before any tracked traffic is sent; the transport's
        control labels are marked idle for the watchdog.
        """
        self._transport = transport
        from repro.faults.transport import IDLE_CONTROL_LABELS

        self._wd_idle_labels |= IDLE_CONTROL_LABELS

    def mark_idle_labels(self, labels) -> None:
        """Declare event labels that do not prove forward progress.

        The watchdog measures simulated time since the last *non-idle*
        event; frameworks register their busy-wait labels here (KVMSR's
        quiescence-poll chain does) so a stuck job spinning on polls
        raises :class:`QuiescenceStall` instead of running forever.
        """
        self._wd_idle_labels |= set(labels)

    def add_diagnostic_provider(self, name: str, provider) -> None:
        """Register ``provider(sim) -> data`` for :meth:`stall_dump`."""
        self._diag_providers.append((name, provider))

    def _live_threads(self) -> int:
        return sum(len(ln.threads) for ln in self._lanes.values())

    def stall_dump(self, limit: int = 8) -> dict:
        """Diagnostic snapshot for a stalled machine.

        Covers the three things a hung run needs triaged: what is still
        *in flight* (the next queued events), what is still *waiting*
        (live threads per lane), and whatever registered providers know
        about protocol state (KVMSR reports outstanding reduce credits).
        """
        next_events = [
            (t, dest, getattr(r, "label", type(r).__name__))
            for t, dest, _seq, r in heapq.nsmallest(limit, self._heap)
        ]
        blocked = []
        for nwid in sorted(self._lanes):
            ln = self._lanes[nwid]
            for tid in sorted(ln.threads):
                if len(blocked) >= 2 * limit:
                    break
                blocked.append((nwid, tid, type(ln.threads[tid]).__name__))
        dump = {
            "now": self.now,
            "last_progress_tick": self._wd_last_progress,
            "watchdog_cycles": self._watchdog_cycles,
            "heap_events": len(self._heap),
            "parked_records": self._parked_total,
            "next_events": next_events,
            "pending_threads": self._live_threads(),
            "blocked_threads": blocked,
        }
        for name, provider in self._diag_providers:
            try:
                dump[name] = provider(self)
            except Exception as exc:  # diagnostics must never mask the stall
                dump[name] = f"<diagnostic provider failed: {exc!r}>"
        return dump

    def _note_quiescence(self) -> None:
        """Record whether the machine drained to true quiescence.

        Quiesced = nothing left to deliver *and* nothing left waiting.
        An empty heap with live threads is the silent-hang shape (a lost
        message or credit): callers distinguish it via ``stats.quiesced``
        / ``stats.pending_threads`` instead of a silent return.
        """
        pending = self._live_threads()
        stats = self.stats
        stats.pending_threads = pending
        stats.quiesced = (
            not self._heap and pending == 0 and self._parked_total == 0
        )

    # ------------------------------------------------------------------
    # Message transport
    # ------------------------------------------------------------------

    def _push(self, time: float, record, actor: int) -> None:
        """The single heap-insertion point.

        Every scheduled delivery — sends, host injections, DRAM arrivals
        and responses — funnels through here, so the shard scheduler has
        one place to hook (``self._route``) when events must land in a
        per-shard heap or a cross-shard boundary batch instead of the
        global heap.  ``actor`` identifies the issuing execution context;
        its private counter makes the key unique and shard-independent.
        """
        aseq = self._actor_seq
        count = aseq.get(actor, 0)
        aseq[actor] = count + 1
        entry = (
            time,
            record.network_id,
            (actor << ACTOR_SEQ_BITS) | count,
            record,
        )
        route = self._route
        if route is None:
            heapq.heappush(self._heap, entry)
        else:
            route(entry)

    def send(
        self,
        record: MessageRecord,
        t_issue: float,
        src_node: Optional[int],
    ) -> float:
        """Put ``record`` on the wire at ``t_issue``; returns delivery time.

        ``src_node=None`` is host injection (program start); those sends
        are counted under ``messages_host_injected``, not as local fabric
        traffic — they never touch the modeled network.
        """
        stats = self.stats
        rec_msg = self._rec_msg
        nwid = record.network_id
        src_nwid = record.src_network_id
        if src_nwid is not None and src_nwid >= 0:
            actor = 1 + src_nwid
        elif src_node is None:
            actor = 0
        else:
            actor = 1 + self._total_lanes + src_node
        if nwid == HOST_NWID:
            # Results mailbox: charge the send at the source but deliver
            # instantly — the host is outside the modeled machine.  Still
            # a message: it appears in the trace and in the taxonomy
            # (``messages_host_bound``), so result traffic is visible and
            # the counters partition ``messages_sent``.
            self._push(t_issue, record, actor)
            stats.messages_sent += 1
            stats.messages_host_bound += 1
            if self.trace_enabled:
                self.trace.append(
                    (t_issue, t_issue, record.src_network_id, nwid, record.label)
                )
            if rec_msg is not None:
                rec_msg("host_bound", 0.0)
            return t_issue
        if not 0 <= nwid < self._total_lanes:
            raise ValueError(
                f"networkID {nwid} out of range [0, {self._total_lanes})"
            )
        dst_node = nwid // self._lanes_per_node
        if self._transport is None and self._fault_msg is None:
            if (
                self._coalescing_on
                and src_node is not None
                and src_node != dst_node
            ):
                t_deliver = self._coalesce_remote(
                    record, t_issue, src_node, dst_node, actor
                )
            else:
                t_deliver = self._deliver_time(
                    t_issue, src_node, dst_node, self._message_bytes
                )
                self._push(t_deliver, record, actor)
        else:
            t_deliver = self._send_guarded(
                record, t_issue, src_node, dst_node, actor, src_nwid
            )
        stats.messages_sent += 1
        if self.trace_enabled:
            self.trace.append(
                (
                    t_issue,
                    t_deliver,
                    record.src_network_id,
                    nwid,
                    record.label,
                )
            )
        if src_node is None:
            stats.messages_host_injected += 1
            if rec_msg is not None:
                rec_msg("host_injected", t_deliver - t_issue)
        elif src_node == dst_node:
            stats.messages_local += 1
            if rec_msg is not None:
                rec_msg("local", t_deliver - t_issue)
        else:
            stats.messages_remote += 1
            # Dropped messages (t_deliver == inf) still count as remote
            # traffic — the taxonomy partition of ``messages_sent`` holds
            # under faults — but have no latency to histogram.
            if rec_msg is not None and t_deliver != math.inf:
                rec_msg("remote", t_deliver - t_issue)
        return t_deliver

    def _send_guarded(
        self,
        record: MessageRecord,
        t_issue: float,
        src_node: Optional[int],
        dst_node: int,
        actor: int,
        src_nwid: Optional[int],
    ) -> float:
        """The :meth:`send` delivery step with transport and/or faults on.

        Split out of :meth:`send` so the healthy fast path stays two
        pointer tests; this path runs only when a
        :class:`~repro.faults.ReliableTransport` is attached or the fault
        plan perturbs messages.  Returns the primary delivery time, or
        ``math.inf`` for a dropped message (the trace records the ``inf``,
        marking the drop; callers treat the send as fire-and-forget
        either way).
        """
        remote = src_node is not None and src_node != dst_node
        transport = self._transport
        if (
            transport is not None
            and remote
            and record.rdt is None
            and src_nwid is not None
            and src_nwid >= 0
        ):
            # Lane-to-lane remote data: assign a sequence number, remember
            # the record for retransmit, arm the timeout timer.  Acks,
            # retransmits, and timers carry ``rdt`` already and are never
            # re-tracked; node-actor and host traffic has no source lane
            # scratchpad to track in and stays best-effort.
            transport.track(record, t_issue)
        fmsg = self._fault_msg
        code = 0
        if fmsg is not None and remote:
            # Keyed off the issuing actor and its private push count —
            # both fixed at the point of issue — so the draw is identical
            # run-to-run and across shard counts (each actor lives on
            # exactly one shard).  Local and host traffic is exempt: the
            # fault model perturbs the *fabric*.
            code = fmsg(actor, self._actor_seq.get(actor, 0))
        if code == 0:
            # Healthy delivery: coalesces exactly like the fast path —
            # retransmits re-enter send() and re-coalesce naturally.
            # Faulted deliveries below stay per-record pushes; the fault
            # draw above is keyed per record either way.
            if self._coalescing_on and remote:
                return self._coalesce_remote(
                    record, t_issue, src_node, dst_node, actor
                )
            t_deliver = self._deliver_time(
                t_issue, src_node, dst_node, self._message_bytes
            )
            self._push(t_deliver, record, actor)
            return t_deliver
        t_deliver, t_dup = self.network.fault_delivery(
            code, t_issue, src_node, dst_node,
            self._message_bytes, self._fault_delay,
        )
        stats = self.stats
        rec_fault = self._rec_fault
        if t_deliver is None:
            # Consume the actor's sequence slot even though nothing is
            # pushed: the fault draw is keyed on (actor, count), so a
            # drop that left the count unchanged would make the actor's
            # next remote send draw the identical value and drop too —
            # every drop would start a correlated drop burst.
            seq = self._actor_seq
            seq[actor] = seq.get(actor, 0) + 1
            stats.faults_messages_dropped += 1
            if rec_fault is not None:
                rec_fault("msg_drop", t_issue, (src_nwid, record.network_id))
            return math.inf
        self._push(t_deliver, record, actor)
        if t_dup is not None:
            self._push(t_dup, record, actor)
            stats.faults_messages_duplicated += 1
            if rec_fault is not None:
                rec_fault(
                    "msg_duplicate", t_issue, (src_nwid, record.network_id)
                )
        else:
            stats.faults_messages_delayed += 1
            if rec_fault is not None:
                rec_fault("msg_delay", t_issue, (src_nwid, record.network_id))
        return t_deliver

    def _coalesce_remote(
        self,
        record: MessageRecord,
        t_issue: float,
        src_node: int,
        dst_node: int,
        actor: int,
    ) -> float:
        """Deliver a healthy remote record through the coalescing fabric.

        The record is priced exactly as :meth:`_push` via
        ``Network.deliver_time`` would price it — same injection-channel
        admission, same remote base latency, same ``(time, dest, seq)``
        key from the same actor counter — but instead of its own heap
        entry it joins the open packet for its ``(src_node, dst_node)``
        pair when its delivery falls inside that packet's window.
        Because delivery times on one channel are strictly increasing and
        the window never exceeds the remote base latency, every join
        happens strictly before the packet's first pop, and members stay
        sorted in exactly individual-heap-entry pop order.
        """
        aseq = self._actor_seq
        count = aseq.get(actor, 0)
        aseq[actor] = count + 1
        seq = (actor << ACTOR_SEQ_BITS) | count
        if self._channels_recorded:
            t_deliver = self._deliver_time(
                t_issue, src_node, dst_node, self._message_bytes
            )
        else:
            # Network.deliver_time inlined (remote leg, recorder off):
            # identical arithmetic, so delivery times are bit-identical
            # with coalescing on or off.
            chans = self._inj_channels
            ch = chans.get(src_node)
            if ch is None:
                ch = chans[src_node] = InjectionChannel()
            free_at = ch.free_at
            start = t_issue if t_issue > free_at else free_at
            departed = ch.free_at = start + self._msg_occupancy
            ch.bytes_injected += self._message_bytes
            t_deliver = departed + self._remote_base_cycles
        nwid = record.network_id
        packets = self._open_packets
        key = src_node * self._nodes + dst_node
        pkt = packets.get(key)
        if pkt is not None and t_deliver < pkt.window_end:
            members = pkt.members
            last = members[-1]
            last_t = last[0]
            # Joins must keep members sorted by (time, dest, seq) — the
            # pop order their individual heap entries would have had.
            # Same-channel deliveries strictly increase, so the tie
            # branch is unreachable at realistic tick magnitudes; it
            # guards the float-granularity corner exactly anyway.
            if t_deliver > last_t or (
                t_deliver == last_t
                and (
                    last[1] < nwid or (last[1] == nwid and last[2] < seq)
                )
            ):
                members.append((t_deliver, nwid, seq, record))
                self.stats.records_coalesced += 1
                return t_deliver
        pkt = PacketRecord(t_deliver + self._coalesce_window)
        pkt.members.append((t_deliver, nwid, seq, record))
        packets[key] = pkt
        self.stats.packets_sent += 1
        entry = (t_deliver, nwid, seq, pkt)
        route = self._route
        if route is None:
            heapq.heappush(self._heap, entry)
        else:
            route(entry)
        return t_deliver

    # ------------------------------------------------------------------
    # Batched dispatch (park at emit, flush before observation)
    # ------------------------------------------------------------------

    def park_emit(
        self,
        plan,
        nwid: int,
        operands: tuple,
        t_issue: float,
        src_nwid: int,
        src_node: int,
    ) -> float:
        """Admit a batch-safe reduce record without building a heap event.

        Everything *globally observable at issue time* happens here
        exactly as :meth:`send` would do it: the actor sequence ticks,
        the injection channel admits (remote legs), the message taxonomy
        counters and trace/recorder hooks fire.  Only the delivery is
        deferred — the record parks on the destination lane, keyed by
        the same ``(time, seq)`` its heap entry would have carried, and
        executes (in key order, merged with heap deliveries) the moment
        the lane's state is next observed.  Only reachable while
        ``_park_active`` (armed by :meth:`run` for plain sequential
        drains), which guarantees the fabric is healthy: no transport,
        faults, jitter, or channel recording.
        """
        stats = self.stats
        aseq = self._actor_seq
        actor = 1 + src_nwid
        count = aseq.get(actor, 0)
        aseq[actor] = count + 1
        seq = (actor << ACTOR_SEQ_BITS) | count
        dst_node = nwid // self._lanes_per_node
        rec_msg = self._rec_msg
        if src_node == dst_node:
            t_deliver = t_issue + self._local_base_cycles
            stats.messages_local += 1
            if rec_msg is not None:
                rec_msg("local", t_deliver - t_issue)
        else:
            # Network.deliver_time inlined (remote leg, recorder off) —
            # the same arithmetic the coalescer inlines, so parked
            # delivery times are bit-identical to heap delivery times.
            chans = self._inj_channels
            ch = chans.get(src_node)
            if ch is None:
                ch = chans[src_node] = InjectionChannel()
            free_at = ch.free_at
            start = t_issue if t_issue > free_at else free_at
            departed = ch.free_at = start + self._msg_occupancy
            ch.bytes_injected += self._message_bytes
            t_deliver = departed + self._remote_base_cycles
            stats.messages_remote += 1
            if rec_msg is not None:
                rec_msg("remote", t_deliver - t_issue)
        stats.messages_sent += 1
        if self.trace_enabled:
            self.trace.append(
                (t_issue, t_deliver, src_nwid, nwid, plan.label)
            )
        ln = self._lanes.get(nwid)
        if ln is None:
            ln = self.lane(nwid)
        # Kept sorted by insertion (C-level bisect + memmove on short
        # lists) so flushes never sort and the drain's earliest-key
        # check is one tuple index.  seq uniqueness means comparisons
        # never reach the plan — the heap's own trick.
        insort(ln.parked, (t_deliver, seq, plan, operands))
        self._parked_total += 1
        return t_deliver

    def _flush_parked(self, ln: Lane, cut) -> None:
        """Execute ``ln``'s parked records with keys below ``cut``.

        ``cut`` is a ``(time, seq)`` key prefix-comparable with parked
        entries — ``(t, s)`` flushes strictly-earlier deliveries before
        an incoming event keyed ``(t, s)`` on this lane; ``(t,)`` flushes
        everything before tick ``t``.  The list is insertion-sorted by
        :meth:`park_emit`, so the cut is one bisect; runs execute in
        maximal same-plan groups by the plans' compiled executors, which
        charge per-record costs in exactly the interpreted order — see
        ``repro.udweave.ir``.
        """
        lst = ln.parked
        n = bisect_left(lst, cut)
        if not n:
            return
        stats = self.stats
        rec_batch = self._rec_batch
        detailed = self.detailed_stats
        i = 0
        while i < n:
            plan = lst[i][2]
            j = i + 1
            while j < n and lst[j][2] is plan:
                j += 1
            end = plan.batch_fn(ln, lst, i, j)
            if end > stats.final_tick:
                stats.final_tick = end
            cnt = j - i
            stats.batches_executed += 1
            stats.records_batched += cnt
            stats.events_executed += cnt
            stats.threads_created += cnt
            stats.threads_terminated += cnt
            if detailed:
                stats.events_by_label[plan.label] += cnt
            if rec_batch is not None:
                rec_batch(cnt)
            i = j
        del lst[:n]
        self._parked_total -= n

    def _flush_pooled(self, ln: Lane, now: float, reader_nwid: int) -> None:
        """Flush ``ln`` before a pooled-scratchpad access from a sibling.

        A handler running on ``reader_nwid`` at pop tick ``now`` is about
        to read/write ``ln``'s scratchpad mid-event.  Every parked record
        that would have popped before the reader's own delivery —
        earlier tick, or same tick on a lower-numbered destination (the
        heap's ``(time, dest, seq)`` order) — must land first.
        """
        if ln.network_id < reader_nwid:
            self._flush_parked(ln, (now, math.inf))
        else:
            self._flush_parked(ln, (now,))

    def _seal_packets(self) -> None:
        """Close every open packet (a conservative window boundary).

        Called by the shard schedulers at each epoch window start — the
        sequential drain seals at the same boundaries via its virtual
        windows — so the set of records a packet collects never depends
        on the shard count.
        """
        if self._open_packets:
            self._open_packets.clear()

    def dram_transaction(
        self,
        response: Optional[MessageRecord],
        t_issue: float,
        src_node: int,
        memory_node: int,
        nbytes: int,
        is_read: bool,
        local_offset: int = 0,
        blocking: bool = False,
    ) -> float:
        """Model one split-phase DRAM access; schedule ``response`` if given.

        Local accesses are serviced synchronously; the return value is
        the time the response (or write completion) lands back at the
        requester.  *Remote* non-blocking accesses are event-driven: the
        request is admitted through the requester's injection channel at
        issue time, then a :class:`DramArrival` meta-event carries it to
        the memory node, where the DRAM channel and the reply virtual
        channel are serviced in arrival order when the event pops.  The
        return value for those is the request's *arrival* time at the
        memory node — the response delivery time is not knowable at issue
        (it depends on the queue at the memory node when the request
        lands).

        Reads without a response record are disallowed — the data has to
        go somewhere — unless ``blocking`` is set, in which case the
        *caller* stalls until the returned time (used by
        ``LaneContext.dram_read_blocking`` to charge read-modify-write
        fetches that complete within one event).  Blocking accesses need
        the round trip synchronously, so they service the memory node's
        channels at issue time; under sharding that is only legal when
        both nodes live on the same shard.

        Remote accesses ride the fabric like any other traffic: each
        direction is admitted through an injection channel at its sending
        node (so DRAM-heavy apps can saturate injection bandwidth) and
        then pays the knob-derived ``remote_dram_transit_cycles``.  Reads
        send a command out and the data back; writes send the data out
        and a completion back.  The return direction uses the node's
        *reply* virtual channel (see :meth:`Network.dram_hop`).
        """
        if is_read and response is None and not blocking:
            raise SimulationError("DRAM read requires a response record")
        stats = self.stats
        src_nwid = response.src_network_id if response is not None else None
        if src_nwid is not None and src_nwid >= 0:
            actor = 1 + src_nwid
        else:
            actor = 1 + self._total_lanes + src_node
        if is_read:
            stats.dram_reads += 1
            stats.dram_bytes_read += nbytes
        else:
            stats.dram_writes += 1
            stats.dram_bytes_written += nbytes
        if src_node == memory_node:
            result = self.memory.access(
                t_issue, src_node, memory_node, nbytes,
                local_offset=local_offset,
            )
            t_back = result.response_ready
            if response is not None:
                self._push(t_back, response, actor)
            elif t_back > stats.final_tick:
                # Fire-and-forget writes still occupy the machine until
                # they land; the makespan must cover them.
                stats.final_tick = t_back
            return t_back
        stats.dram_remote_accesses += 1
        msg_bytes = self._message_bytes
        transit = self._dram_transit
        out_bytes = msg_bytes if is_read else msg_bytes + nbytes
        if self._channels_recorded:
            t_arrive = self._dram_hop(
                t_issue, src_node, memory_node, out_bytes, transit
            )
        else:
            # Network.dram_hop inlined (request direction): two calls
            # per remote access would dominate DRAM-heavy apps.
            chans = self._inj_channels
            ch = chans.get(src_node)
            if ch is None:
                ch = chans[src_node] = InjectionChannel()
            free_at = ch.free_at
            start = t_issue if t_issue > free_at else free_at
            departed = ch.free_at = start + out_bytes / self._inj_bw
            ch.bytes_injected += out_bytes
            t_arrive = departed + transit
        back_bytes = nbytes if is_read else msg_bytes
        if blocking:
            # Synchronous round trip: the caller stalls for the result,
            # so the memory node's channels are serviced now, at issue —
            # ahead of any in-flight arrivals.  Under sharding this
            # reaches into the memory node's state, legal only when both
            # nodes share a shard (identical order to the sequential
            # engine either way).
            shard_map = self._shard_of_node
            if (
                shard_map is not None
                and shard_map[src_node] != shard_map[memory_node]
            ):
                raise SimulationError(
                    f"blocking DRAM read from node {src_node} to node "
                    f"{memory_node} crosses a shard boundary; sharded "
                    f"runs must keep blocking reads shard-local (use "
                    f"split-phase reads instead)"
                )
            result = self.memory.access(
                t_arrive, src_node, memory_node, nbytes,
                local_offset=local_offset,
            )
            t_back = self._reply_hop(
                result.response_ready, memory_node, src_node, back_bytes
            )
            if response is not None:
                self._push(t_back, response, actor)
            elif t_back > stats.final_tick:
                stats.final_tick = t_back
            return t_back
        arrival = DramArrival(
            self._total_lanes + memory_node,
            response,
            src_node,
            memory_node,
            nbytes,
            local_offset,
            back_bytes,
        )
        self._push(t_arrive, arrival, actor)
        return t_arrive

    def _reply_hop(
        self, t_ready: float, memory_node: int, src_node: int, nbytes: int
    ) -> float:
        """Return direction of a remote access (reply virtual channel)."""
        if self._channels_recorded:
            return self._dram_hop(
                t_ready, memory_node, src_node, nbytes,
                self._dram_transit, reply=True,
            )
        # Network.dram_hop inlined (reply virtual channel).
        chans = self._reply_channels
        ch = chans.get(memory_node)
        if ch is None:
            ch = chans[memory_node] = InjectionChannel()
        free_at = ch.free_at
        start = t_ready if t_ready > free_at else free_at
        departed = ch.free_at = start + nbytes / self._inj_bw
        ch.bytes_injected += nbytes
        return departed + self._dram_transit

    def _dram_arrive(self, t_arrive: float, arrival: DramArrival) -> None:
        """Service a remote split-phase access at its memory node.

        Runs when the :class:`DramArrival` meta-event pops: the memory
        channel is occupied in *arrival* order (requests that left their
        sources earlier are serviced first), the reply rides the memory
        node's reply virtual channel, and the response — if any — is
        pushed with the memory node's own actor counter.  All state
        touched here belongs to ``arrival.memory_node``, so under
        sharding this executes on the shard that owns it.
        """
        mem_node = arrival.memory_node
        result = self.memory.access(
            t_arrive,
            arrival.src_node,
            mem_node,
            arrival.nbytes,
            local_offset=arrival.local_offset,
        )
        t_back = self._reply_hop(
            result.response_ready, mem_node, arrival.src_node,
            arrival.back_bytes,
        )
        response = arrival.response
        if response is not None:
            self._push(t_back, response, 1 + self._total_lanes + mem_node)
        else:
            stats = self.stats
            if t_back > stats.final_tick:
                stats.final_tick = t_back

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def inject(self, record: MessageRecord, t: float = 0.0) -> None:
        """Host-side program start: deliver ``record`` without fabric cost.

        Injection re-arms the liveness watchdog: the stall the watchdog
        measures is *since the last admitted event*, not absolute
        simulated time.  Open-loop service traffic legitimately leaves
        the machine idle between bursts — only retry timers and poll
        loops (idle-labeled events) execute across the gap — and a
        request admitted at a future tick is proof the idleness is
        intentional.  A genuinely stalled run (no new admissions, only
        idle traffic advancing time) still trips.
        """
        if t > self._wd_last_progress:
            self._wd_last_progress = t
        self._push(t, record, 0)

    def run(
        self,
        max_events: Optional[int] = None,
        until: Optional[float] = None,
    ) -> SimStats:
        """Drain the event heap; returns the accumulated statistics.

        ``max_events`` guards against runaway programs in tests.

        ``until`` bounds the drain: only events strictly before that tick
        execute, and the heap (with everything at or after ``until``)
        stays intact, so the caller can re-enter — the bounded stepping
        the conservative epoch driver (and the service harness's
        interleaved open-loop stepping) is built on.  With in-process
        shards the bound is forwarded to the shard scheduler, which
        clamps its epoch windows to it; forked workers (``parallel=True``)
        keep simulation state out of the host process between drains, so
        bounded stepping is rejected there.
        """
        if self.shards > 1:
            if until is not None and self.parallel:
                raise SimulationError(
                    "bounded stepping (until=) is not supported with "
                    "parallel=True forked workers (simulation state lives "
                    "in the children between drains); use in-process "
                    "shards (parallel=False) for interleaved stepping"
                )
            sched = self._scheduler
            if sched is None:
                from .parallel import make_scheduler

                sched = self._scheduler = make_scheduler(self)
            return sched.drain(max_events, until)
        # Arm record parking only for the drain shape whose observation
        # points the flush hooks fully cover: plain sequential, healthy
        # fabric, no event budget, no watchdog, no per-event observers
        # that the batch executors do not replicate.  Everything else
        # simply interprets per event — bit-identical either way.
        recorder = self.recorder
        self._park_active = (
            self._batch_on
            and max_events is None
            and self._route is None
            and self._transport is None
            and self._fault_msg is None
            and self._fault_dead is None
            and self._fault_stall is None
            and self._watchdog_cycles is None
            and not self._channels_recorded
            and not self.network._jitter_on
            and (recorder is None or not recorder.record_lane_spans)
        )
        stats = self._drain(max_events, math.inf if until is None else until)
        self._note_quiescence()
        return stats

    def _drain(self, max_events: Optional[int], until: float) -> SimStats:
        """The sequential drain loop over ``self._heap`` (see :meth:`run`).

        Packet-aware: a popped :class:`PacketRecord` is *walked* — its
        members execute in exactly the order their individual heap
        entries would have popped, yielding (a re-push keyed at the next
        member) whenever another heap event sorts earlier or the drain
        bound is reached.  Fused dispatch extends the same inner loop to
        plain records: when the next heap entry ties the just-executed
        event's time on the same lane, it runs in the tight loop without
        restarting the outer one.  When coalescing is on and no shard
        scheduler owns windowing (``self._route is None``), the loop
        also maintains *virtual* conservative windows — sealing the
        open-packet table exactly where a sharded run's epoch boundaries
        would fall — so packet composition is shard-count-invariant.
        """
        dispatcher = self.dispatcher
        if dispatcher is None:
            raise SimulationError("no dispatcher installed")
        # Locals for everything the per-event path touches: attribute
        # loads in CPython cost as much as the arithmetic they guard.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        heappushpop = heapq.heappushpop
        lanes = self._lanes
        lane_of = self.lane
        stats = self.stats
        host_inbox = self.host_inbox
        detailed = self.detailed_stats
        recorder = self.recorder
        rec_span = (
            recorder.lane_span
            if recorder is not None and recorder.record_lane_spans
            else None
        )
        rec_packet = self._rec_packet
        events_by_label = stats.events_by_label
        final_tick = stats.final_tick
        events_executed = 0
        total_lanes = self._total_lanes
        # Lane cache: KVMSR map loops and reduce shuffles deliver bursts
        # of consecutive events to the same lane; skip the dict probe.
        cached_nwid = -1
        cached_lane: Optional[Lane] = None
        processed = 0
        # Fault/watchdog hooks — all None on a healthy, unwatched machine,
        # so each costs one pointer test per event.
        fdead = self._fault_dead
        fstall = self._fault_stall
        rec_fault = self._rec_fault
        wd = self._watchdog_cycles
        wd_idle = self._wd_idle_labels
        wd_report = self._wd_report_only
        wd_last = self._wd_last_progress
        # Virtual conservative windows (sequential coalescing only): an
        # infinite window end reduces the whole machinery to one float
        # compare per event when coalescing is off or a scheduler seals.
        open_packets = self._open_packets
        vw_on = self._coalescing_on and self._route is None
        if vw_on:
            vw_end = self._vw_end
            vw_lookahead = self._vw_lookahead
        else:
            vw_end = math.inf
            vw_lookahead = 0.0
        pkt: Optional[PacketRecord] = None
        pkt_members: list = []
        pkt_cursor = 0
        pkt_len = 0
        # Batched dispatch: when parking is armed (or leftovers exist
        # from a bounded drain), every delivery to a lane first flushes
        # that lane's parked records with earlier keys — one truthiness
        # test per event when the list is empty, one bool test when the
        # feature is off entirely.
        park_chk = self._park_active or self._parked_total > 0
        try:
            while heap:
                first = heap[0]
                ev_time = first[0]
                if ev_time >= until:
                    break
                heappop(heap)
                rec = first[3]
                if rec.network_id == PACKET_NWID:
                    # Unwrap a coalesced packet; walk starts at the
                    # member the entry was keyed by.
                    pkt = rec
                    pkt_members = pkt.members
                    pkt_cursor = pkt.cursor
                    pkt_len = len(pkt_members)
                    first = pkt_members[pkt_cursor]
                    ev_time = first[0]
                    rec = first[3]
                    if pkt.open:
                        pkt.open = False
                        if rec_packet is not None:
                            rec_packet(pkt_len)
                while True:
                    self.now = ev_time
                    nwid = rec.network_id
                    if ev_time >= vw_end and nwid >= 0:
                        # A sharded run would start a new epoch window at
                        # this (non-host) pop: seal every open packet.
                        if open_packets:
                            open_packets.clear()
                        vw_end = ev_time + vw_lookahead
                    if nwid == cached_nwid:
                        ln = cached_lane
                    else:
                        if nwid < 0:
                            # Host mailbox delivery (HOST_NWID) — never a
                            # packet member, never fused.
                            host_inbox.append((ev_time, rec))
                            if ev_time > final_tick:
                                final_tick = ev_time
                            break
                        if nwid >= total_lanes:
                            # Remote DRAM request arriving at its memory
                            # node — never a packet member, never fused.
                            if (
                                fdead is not None
                                and ev_time >= fdead[rec.memory_node]
                            ):
                                # Fail-stopped memory node: the request
                                # (and any response) vanishes with it.
                                stats.faults_node_dropped += 1
                                if rec_fault is not None:
                                    rec_fault(
                                        "node_drop",
                                        ev_time,
                                        (rec.memory_node,),
                                    )
                                break
                            self._dram_arrive(ev_time, rec)
                            if wd is not None and ev_time > wd_last:
                                wd_last = ev_time
                            break
                        ln = lanes.get(nwid)
                        if ln is None:
                            ln = lane_of(nwid)
                        cached_nwid = nwid
                        cached_lane = ln
                    if park_chk:
                        lp = ln.parked
                        if lp:
                            # Parked records that would have popped
                            # before this delivery execute now, in key
                            # order.  The list is sorted, so comparing
                            # its head keeps the no-op case inline.
                            e0 = lp[0]
                            t0 = e0[0]
                            if t0 < ev_time or (
                                t0 == ev_time and e0[1] < first[2]
                            ):
                                self._flush_parked(
                                    ln, (ev_time, first[2])
                                )
                    if fdead is not None and ev_time >= fdead[ln.node]:
                        # Whole-node fail-stop: deliveries to a dead node
                        # are discarded (lanes, threads, and scratchpads
                        # stop responding) — but a dropped packet member
                        # must not abandon its living siblings, so this
                        # falls through to the shared advance step.
                        stats.faults_node_dropped += 1
                        if rec_fault is not None:
                            rec_fault("node_drop", ev_time, (nwid,))
                    else:
                        if wd is not None:
                            if rec.label in wd_idle:
                                # Only idle/control traffic (poll loops,
                                # retry timers, acks) — no application
                                # progress.  In report-only mode (forked
                                # shard workers) the parent aggregates
                                # and raises instead.
                                if not wd_report and ev_time - wd_last > wd:
                                    if (
                                        pkt is not None
                                        and pkt_cursor < pkt_len
                                    ):
                                        # keep the unwalked remainder
                                        # visible to stall_dump
                                        pkt.cursor = pkt_cursor
                                        nxt = pkt_members[pkt_cursor]
                                        heappush(
                                            heap,
                                            (nxt[0], nxt[1], nxt[2], pkt),
                                        )
                                        pkt = None
                                    raise QuiescenceStall(
                                        f"no application progress for "
                                        f"{ev_time - wd_last:.0f} cycles "
                                        f"(watchdog threshold {wd:.0f}); "
                                        f"only idle/control events are "
                                        f"executing",
                                        self.stall_dump(),
                                    )
                            elif ev_time > wd_last:
                                wd_last = ev_time
                        busy_until = ln.busy_until
                        start = ev_time if ev_time > busy_until else busy_until
                        if fstall is not None:
                            stall = fstall(nwid, ln.events_executed)
                            if stall:
                                # Transient lane stall: delays this
                                # delivery's service but is not lane work
                                # — busy_cycles (and utilization) exclude
                                # it; the makespan does not.
                                start += stall
                                stats.faults_lane_stalls += 1
                                stats.faults_stall_cycles += stall
                                if rec_fault is not None:
                                    rec_fault(
                                        "lane_stall", ev_time, (nwid, stall)
                                    )
                        cycles = dispatcher(self, ln, rec, start)
                        # inline Lane.account_execution — one call per
                        # event adds up
                        end = start + cycles
                        ln.busy_until = end
                        ln.busy_cycles += cycles
                        ln.events_executed += 1
                        events_executed += 1
                        if detailed:
                            events_by_label[rec.label] += 1
                        if rec_span is not None:
                            rec_span(nwid, start, end, rec.label)
                        if end > final_tick:
                            final_tick = end
                        processed += 1
                        if max_events is not None and processed >= max_events:
                            if pkt is not None and pkt_cursor + 1 < pkt_len:
                                # the executed member is consumed; park
                                # the remainder back on the heap
                                pkt.cursor = pkt_cursor + 1
                                nxt = pkt_members[pkt_cursor + 1]
                                heappush(
                                    heap, (nxt[0], nxt[1], nxt[2], pkt)
                                )
                                pkt = None
                            raise SimulationError(
                                f"simulation exceeded max_events={max_events}"
                            )
                    # --- advance: packet walk, then fused dispatch ----
                    if pkt is not None:
                        pkt_cursor += 1
                        if pkt_cursor < pkt_len:
                            nxt = pkt_members[pkt_cursor]
                            if nxt[0] >= until:
                                # Drain bound: park the remainder for
                                # the next bounded re-entry.
                                pkt.cursor = pkt_cursor
                                heappush(
                                    heap, (nxt[0], nxt[1], nxt[2], pkt)
                                )
                                pkt = None
                                break
                            if heap and heap[0] < nxt:
                                # An earlier heap event interleaves:
                                # swap the re-keyed packet in and that
                                # entry out in ONE sift (heappushpop —
                                # half the cost of push + re-pop) and
                                # keep executing in the tight loop.  The
                                # swapped-out entry sorts before ``nxt``
                                # (< until), and the member key's unique
                                # seq means the comparison never reaches
                                # the record, so the pop order is
                                # exactly the uncoalesced heap's.
                                pkt.cursor = pkt_cursor
                                first = heappushpop(
                                    heap, (nxt[0], nxt[1], nxt[2], pkt)
                                )
                                rec = first[3]
                                if rec.network_id == PACKET_NWID:
                                    pkt = rec
                                    pkt_members = pkt.members
                                    pkt_cursor = pkt.cursor
                                    pkt_len = len(pkt_members)
                                    first = pkt_members[pkt_cursor]
                                    rec = first[3]
                                    if pkt.open:
                                        pkt.open = False
                                        if rec_packet is not None:
                                            rec_packet(pkt_len)
                                else:
                                    pkt = None
                                ev_time = first[0]
                                continue
                            first = nxt
                            ev_time = nxt[0]
                            rec = nxt[3]
                            continue
                        pkt = None
                    if heap:
                        nxt = heap[0]
                        if (
                            nxt[3].network_id == nwid
                            and nxt[0] < until
                        ):
                            # Fused dispatch: the globally-next event is
                            # another delivery to the same lane — run it
                            # in the tight loop instead of restarting
                            # the outer one.  Taking heap[0] keeps the
                            # pop order untouched; the inner loop
                            # already advances time, seals virtual
                            # windows, and checks budgets.  Sentinel
                            # network_ids (packets, host, DRAM) can
                            # never equal a lane id, so only plain
                            # records fuse.
                            heappop(heap)
                            first = nxt
                            rec = nxt[3]
                            ev_time = nxt[0]
                            continue
                    break
            if self._parked_total:
                # Drain bound (or heap exhaustion): everything parked
                # before ``until`` is still owed its execution.
                cut = (until,)
                for ln in lanes.values():
                    if ln.parked:
                        self._flush_parked(ln, cut)
        finally:
            if pkt is not None and pkt_cursor < pkt_len:
                # exceptional unwind mid-walk (dispatcher raise): park
                # the unwalked remainder so the heap stays coherent
                pkt.cursor = pkt_cursor
                nxt = pkt_members[pkt_cursor]
                heappush(heap, (nxt[0], nxt[1], nxt[2], pkt))
            stats.events_executed += events_executed
            stats.events_interpreted += events_executed
            if final_tick > stats.final_tick:
                stats.final_tick = final_tick
            # Watchdog progress survives bounded re-entry (run(until=)
            # stepping and the shard window loop both call _drain many
            # times per logical run).
            self._wd_last_progress = wd_last
            if vw_on:
                self._vw_end = vw_end
            self._sync_lane_stats()
        return stats

    def _sync_lane_stats(self) -> None:
        """Copy per-lane busy-cycle totals into ``stats``.

        Lanes accumulate their own cycles event by event (same float
        addition order the old per-event dict update used), so this
        post-drain copy is bit-identical to hot-path maintenance — at
        zero per-event cost.
        """
        by_lane = self.stats.busy_cycles_by_lane
        for nwid, ln in self._lanes.items():
            if ln.busy_cycles:
                by_lane[nwid] = ln.busy_cycles

    def shutdown(self) -> None:
        """Release parallel-execution resources (worker processes).

        A no-op for sequential and in-process sharded simulators; safe to
        call more than once.  Forked workers are daemonic, so skipping
        this leaks nothing past interpreter exit — but long-lived hosts
        (sweeps, test suites) should call it between machines.
        """
        sched = self._scheduler
        if sched is not None:
            sched.close()

    def parallel_metrics(self) -> Optional[dict]:
        """Hub metrics of the forked-worker transport, or ``None``.

        Populated only for ``parallel=True`` runs: boundary bytes/records
        shipped through the shared-memory rings, ring overflow (spill)
        counts, barrier-wait seconds, and the adaptive-window histogram.
        Kept out of :class:`SimStats` deliberately — these describe the
        *host-side transport*, not the simulated machine, and must not
        perturb fingerprint comparisons against sequential runs.
        """
        sched = self._scheduler
        metrics = getattr(sched, "hub_metrics", None)
        return dict(metrics) if metrics is not None else None

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def host_messages(self, label: Optional[str] = None) -> List[MessageRecord]:
        """Messages the program sent to the host, optionally by label."""
        return [
            rec
            for _, rec in self.host_inbox
            if label is None or rec.label == label
        ]

    @property
    def elapsed_seconds(self) -> float:
        """Simulated wall-clock: ``final_tick / clock`` (artifact appendix)."""
        return self.config.cycles_to_seconds(self.stats.final_tick)
