"""The discrete-event simulator core (this repo's stand-in for Fastsim).

The engine keeps a single heap of in-flight messages ordered by
(delivery time, sequence).  Executing a message on a lane is delegated to a
*dispatcher* installed by the UDWeave runtime; the dispatcher runs the
Python event handler, charges cycles per the Table 2 cost model, and issues
outgoing messages back through :meth:`Simulator.send` /
:meth:`Simulator.dram_transaction`.

Determinism: ties are broken by a monotone sequence number, and all
latency jitter (used only by failure-injection tests) is seeded, so every
simulation run is exactly reproducible.

Hot path: event handlers model 10-100 machine instructions (paper
§2.1.1), so a single figure-9 sweep point executes hundreds of thousands
of Python-dispatched events and per-event overhead here dominates
host-side wall-clock.  The drain loop therefore works on plain
``(time, seq, record)`` heap tuples, caches the lane lookup across
consecutive same-lane deliveries, inlines the lane busy-clock accounting,
and keeps only scalar counters per event — per-label histograms are
gated behind ``detailed_stats`` and per-lane cycle totals are recovered
from the lanes themselves after the drain (see ``repro.machine.stats``).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from .config import MachineConfig
from .events import HOST_NWID, MessageRecord
from .lane import Lane
from .memory import MemorySystem
from .network import InjectionChannel, Network
from .stats import SimStats

#: dispatcher(sim, lane, record, start_time) -> cycles consumed
Dispatcher = Callable[["Simulator", Lane, MessageRecord, float], float]


class SimulationError(RuntimeError):
    """Raised for malformed programs (bad target, missing dispatcher, ...)."""


class Simulator:
    """Event-driven simulation of one UpDown machine."""

    def __init__(
        self,
        config: MachineConfig,
        dispatcher: Optional[Dispatcher] = None,
        latency_jitter_cycles: float = 0.0,
        seed: int = 0,
        memory_banks_per_node: int = 1,
        trace: bool = False,
        detailed_stats: bool = False,
        recorder=None,
    ) -> None:
        self.config = config
        self.dispatcher = dispatcher
        #: flight recorder (``repro.observe``), or None — the off tier.
        #: Hook sites hold pre-bound methods (or None) so a disabled
        #: recorder costs one pointer test, like ``detailed_stats``.
        self.recorder = recorder
        channel_rec = (
            recorder if recorder is not None and recorder.record_channels
            else None
        )
        self.network = Network(
            config,
            jitter_cycles=latency_jitter_cycles,
            seed=seed,
            recorder=channel_rec,
        )
        self.memory = MemorySystem(
            config, banks_per_node=memory_banks_per_node, recorder=channel_rec
        )
        self.stats = SimStats(detailed=detailed_stats)
        #: collect per-label event histograms (``stats.events_by_label``).
        #: Off by default — it is the one per-event dict update the scalar
        #: tier avoids; ``harness.inspect.event_report`` needs it on.
        self.detailed_stats = detailed_stats
        #: optional message trace: (t_issue, t_deliver, src, dst, label)
        #: per send.  Off by default — tracing a large run is expensive.
        self.trace_enabled = trace
        self.trace: List[Tuple[float, float, Optional[int], int, str]] = []
        self._heap: List[Tuple[float, int, MessageRecord]] = []
        self._seq = 0
        self._lanes: dict[int, Lane] = {}
        self.now: float = 0.0
        #: messages addressed to the host (program results / completion).
        self.host_inbox: List[Tuple[float, MessageRecord]] = []
        # hot-path constants (avoid per-send property/attribute chains)
        self._lanes_per_node = config.lanes_per_node
        self._total_lanes = config.total_lanes
        self._message_bytes = config.message_bytes
        self._deliver_time = self.network.deliver_time
        self._dram_hop = self.network.dram_hop
        self._dram_transit = config.remote_dram_transit_cycles
        # Unrecorded runs inline the two per-remote-access channel
        # admissions (Network.dram_hop semantics, same arithmetic) —
        # the call overhead would otherwise dominate DRAM-heavy apps.
        self._channels_recorded = channel_rec is not None
        self._inj_channels = self.network._injection
        self._reply_channels = self.network._reply
        self._inj_bw = config.node_injection_bytes_per_cycle
        self._rec_msg = (
            recorder.message
            if recorder is not None and recorder.record_messages
            else None
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def lane(self, network_id: int) -> Lane:
        """The lane object for ``network_id`` (created lazily)."""
        ln = self._lanes.get(network_id)
        if ln is None:
            cfg = self.config
            cfg._check_nwid(network_id)
            ln = Lane(
                network_id,
                node=cfg.node_of(network_id),
                accel=cfg.accel_of(network_id),
            )
            self._lanes[network_id] = ln
        return ln

    @property
    def instantiated_lanes(self) -> int:
        return len(self._lanes)

    # ------------------------------------------------------------------
    # Message transport
    # ------------------------------------------------------------------

    def send(
        self,
        record: MessageRecord,
        t_issue: float,
        src_node: Optional[int],
    ) -> float:
        """Put ``record`` on the wire at ``t_issue``; returns delivery time.

        ``src_node=None`` is host injection (program start); those sends
        are counted under ``messages_host_injected``, not as local fabric
        traffic — they never touch the modeled network.
        """
        stats = self.stats
        rec_msg = self._rec_msg
        nwid = record.network_id
        if nwid == HOST_NWID:
            # Results mailbox: charge the send at the source but deliver
            # instantly — the host is outside the modeled machine.  Still
            # a message: it appears in the trace and in the taxonomy
            # (``messages_host_bound``), so result traffic is visible and
            # the counters partition ``messages_sent``.
            self._seq += 1
            heapq.heappush(self._heap, (t_issue, self._seq, record))
            stats.messages_sent += 1
            stats.messages_host_bound += 1
            if self.trace_enabled:
                self.trace.append(
                    (t_issue, t_issue, record.src_network_id, nwid, record.label)
                )
            if rec_msg is not None:
                rec_msg("host_bound", 0.0)
            return t_issue
        if not 0 <= nwid < self._total_lanes:
            raise ValueError(
                f"networkID {nwid} out of range [0, {self._total_lanes})"
            )
        dst_node = nwid // self._lanes_per_node
        t_deliver = self._deliver_time(
            t_issue, src_node, dst_node, self._message_bytes
        )
        self._seq += 1
        heapq.heappush(self._heap, (t_deliver, self._seq, record))
        stats.messages_sent += 1
        if self.trace_enabled:
            self.trace.append(
                (
                    t_issue,
                    t_deliver,
                    record.src_network_id,
                    nwid,
                    record.label,
                )
            )
        if src_node is None:
            stats.messages_host_injected += 1
            if rec_msg is not None:
                rec_msg("host_injected", t_deliver - t_issue)
        elif src_node == dst_node:
            stats.messages_local += 1
            if rec_msg is not None:
                rec_msg("local", t_deliver - t_issue)
        else:
            stats.messages_remote += 1
            if rec_msg is not None:
                rec_msg("remote", t_deliver - t_issue)
        return t_deliver

    def dram_transaction(
        self,
        response: Optional[MessageRecord],
        t_issue: float,
        src_node: int,
        memory_node: int,
        nbytes: int,
        is_read: bool,
        local_offset: int = 0,
        blocking: bool = False,
    ) -> float:
        """Model one split-phase DRAM access; schedule ``response`` if given.

        Returns the time the response (or write completion) lands back at
        the requester.  Reads without a response record are disallowed —
        the data has to go somewhere — unless ``blocking`` is set, in which
        case the *caller* stalls until the returned time (used by
        ``LaneContext.dram_read_blocking`` to charge read-modify-write
        fetches that complete within one event).

        Remote accesses ride the fabric like any other traffic: each
        direction is admitted through an injection channel at its sending
        node (so DRAM-heavy apps can saturate injection bandwidth) and
        then pays the knob-derived ``remote_dram_transit_cycles``.  Reads
        send a command out and the data back; writes send the data out
        and a completion back.  The return direction uses the node's
        *reply* virtual channel (see :meth:`Network.dram_hop`).
        """
        if is_read and response is None and not blocking:
            raise SimulationError("DRAM read requires a response record")
        remote = src_node != memory_node
        if remote:
            msg_bytes = self._message_bytes
            transit = self._dram_transit
            out_bytes = msg_bytes if is_read else msg_bytes + nbytes
            if self._channels_recorded:
                t_arrive = self._dram_hop(
                    t_issue, src_node, memory_node, out_bytes, transit
                )
            else:
                # Network.dram_hop inlined (request direction): two calls
                # per remote access would dominate DRAM-heavy apps.
                chans = self._inj_channels
                ch = chans.get(src_node)
                if ch is None:
                    ch = chans[src_node] = InjectionChannel()
                free_at = ch.free_at
                start = t_issue if t_issue > free_at else free_at
                departed = ch.free_at = start + out_bytes / self._inj_bw
                ch.bytes_injected += out_bytes
                t_arrive = departed + transit
        else:
            t_arrive = t_issue
        result = self.memory.access(
            t_arrive, src_node, memory_node, nbytes, local_offset=local_offset
        )
        if remote:
            back_bytes = nbytes if is_read else msg_bytes
            if self._channels_recorded:
                t_back = self._dram_hop(
                    result.response_ready,
                    memory_node,
                    src_node,
                    back_bytes,
                    transit,
                    reply=True,
                )
            else:
                # Network.dram_hop inlined (reply virtual channel).
                chans = self._reply_channels
                ch = chans.get(memory_node)
                if ch is None:
                    ch = chans[memory_node] = InjectionChannel()
                ready = result.response_ready
                free_at = ch.free_at
                start = ready if ready > free_at else free_at
                departed = ch.free_at = start + back_bytes / self._inj_bw
                ch.bytes_injected += back_bytes
                t_back = departed + transit
        else:
            t_back = result.response_ready
        stats = self.stats
        if is_read:
            stats.dram_reads += 1
            stats.dram_bytes_read += nbytes
        else:
            stats.dram_writes += 1
            stats.dram_bytes_written += nbytes
        if remote:
            stats.dram_remote_accesses += 1
        if response is not None:
            self._push(t_back, response)
        else:
            # Fire-and-forget writes still occupy the machine until they
            # land; the makespan must cover them.
            if t_back > stats.final_tick:
                stats.final_tick = t_back
        return t_back

    def _push(self, time: float, record: MessageRecord) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, record))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def inject(self, record: MessageRecord, t: float = 0.0) -> None:
        """Host-side program start: deliver ``record`` without fabric cost."""
        self._push(t, record)

    def run(self, max_events: Optional[int] = None) -> SimStats:
        """Drain the event heap; returns the accumulated statistics.

        ``max_events`` guards against runaway programs in tests.
        """
        dispatcher = self.dispatcher
        if dispatcher is None:
            raise SimulationError("no dispatcher installed")
        # Locals for everything the per-event path touches: attribute
        # loads in CPython cost as much as the arithmetic they guard.
        heap = self._heap
        heappop = heapq.heappop
        lanes = self._lanes
        lane_of = self.lane
        stats = self.stats
        host_inbox = self.host_inbox
        detailed = self.detailed_stats
        recorder = self.recorder
        rec_span = (
            recorder.lane_span
            if recorder is not None and recorder.record_lane_spans
            else None
        )
        events_by_label = stats.events_by_label
        final_tick = stats.final_tick
        events_executed = 0
        host_nwid = HOST_NWID
        # Lane cache: KVMSR map loops and reduce shuffles deliver bursts
        # of consecutive events to the same lane; skip the dict probe.
        cached_nwid = -1
        cached_lane: Optional[Lane] = None
        processed = 0
        try:
            while heap:
                ev_time, _seq, rec = heappop(heap)
                self.now = ev_time
                nwid = rec.network_id
                if nwid == host_nwid:
                    host_inbox.append((ev_time, rec))
                    if ev_time > final_tick:
                        final_tick = ev_time
                    continue
                if nwid == cached_nwid:
                    ln = cached_lane
                else:
                    ln = lanes.get(nwid)
                    if ln is None:
                        ln = lane_of(nwid)
                    cached_nwid = nwid
                    cached_lane = ln
                busy_until = ln.busy_until
                start = ev_time if ev_time > busy_until else busy_until
                cycles = dispatcher(self, ln, rec, start)
                # inline Lane.account_execution — one call per event adds up
                end = start + cycles
                ln.busy_until = end
                ln.busy_cycles += cycles
                ln.events_executed += 1
                events_executed += 1
                if detailed:
                    events_by_label[rec.label] += 1
                if rec_span is not None:
                    rec_span(nwid, start, end, rec.label)
                if end > final_tick:
                    final_tick = end
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}"
                    )
        finally:
            stats.events_executed += events_executed
            if final_tick > stats.final_tick:
                stats.final_tick = final_tick
            self._sync_lane_stats()
        return stats

    def _sync_lane_stats(self) -> None:
        """Copy per-lane busy-cycle totals into ``stats``.

        Lanes accumulate their own cycles event by event (same float
        addition order the old per-event dict update used), so this
        post-drain copy is bit-identical to hot-path maintenance — at
        zero per-event cost.
        """
        by_lane = self.stats.busy_cycles_by_lane
        for nwid, ln in self._lanes.items():
            if ln.busy_cycles:
                by_lane[nwid] = ln.busy_cycles

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def host_messages(self, label: Optional[str] = None) -> List[MessageRecord]:
        """Messages the program sent to the host, optionally by label."""
        return [
            rec
            for _, rec in self.host_inbox
            if label is None or rec.label == label
        ]

    @property
    def elapsed_seconds(self) -> float:
        """Simulated wall-clock: ``final_tick / clock`` (artifact appendix)."""
        return self.config.cycles_to_seconds(self.stats.final_tick)
