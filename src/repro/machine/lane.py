"""Lane model: one 2 GHz event-driven MIMD compute engine.

A lane owns a table of resident thread contexts (objects with state that
persists across events, paper §2.1.1), a scratchpad, and a busy-until
clock.  Events execute atomically: the simulator starts an event at
``max(arrival, busy_until)`` and advances ``busy_until`` by the event's
charged cycle count — hardware message queueing falls out of this
discipline without an explicit queue structure.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Lane:
    """State of one lane, addressed by its flat networkID."""

    __slots__ = (
        "network_id",
        "node",
        "accel",
        "busy_until",
        "busy_cycles",
        "events_executed",
        "threads",
        "_next_tid",
        "_free_tids",
        "scratchpad",
        "ctx_cache",
        "parked",
    )

    def __init__(self, network_id: int, node: int, accel: int) -> None:
        self.network_id = network_id
        self.node = node
        self.accel = accel
        self.busy_until: float = 0.0
        self.busy_cycles: float = 0.0
        self.events_executed: int = 0
        #: thread context table: tid -> runtime thread object
        self.threads: Dict[int, Any] = {}
        self._next_tid: int = 0
        self._free_tids: list[int] = []
        #: lane-private scratchpad storage (word-addressed key/value store);
        #: capacity policing is done by spmalloc.
        self.scratchpad: Dict[int, Any] = {}
        #: opaque per-lane execution-context pool slot for the installed
        #: dispatcher (the UDWeave runtime parks one reusable LaneContext
        #: here instead of allocating a fresh one per event).
        self.ctx_cache: Any = None
        #: batch-dispatch staging area: ``(time, seq, plan, operands)``
        #: records parked at emit time, flushed in key order before the
        #: lane's state is next observed (``repro.udweave.ir``).
        self.parked: list = []

    def allocate_thread(self, thread_obj: Any) -> int:
        """Install ``thread_obj`` and return its thread-context ID.

        Context IDs are recycled (hardware thread contexts are a finite
        resource and the event word's thread field is bounded), so an ID is
        unique only among *live* threads on the lane.
        """
        if self._free_tids:
            tid = self._free_tids.pop()
        else:
            tid = self._next_tid
            self._next_tid += 1
        self.threads[tid] = thread_obj
        return tid

    def get_thread(self, tid: int) -> Optional[Any]:
        return self.threads.get(tid)

    def deallocate_thread(self, tid: int) -> None:
        """Free a thread context (``yield_terminate``)."""
        if self.threads.pop(tid, None) is not None:
            self._free_tids.append(tid)

    @property
    def live_threads(self) -> int:
        return len(self.threads)

    def account_execution(self, start: float, cycles: float) -> float:
        """Record an event execution of ``cycles`` starting at ``start``.

        Returns the completion time and advances the busy-until clock.
        """
        end = start + cycles
        self.busy_until = end
        self.busy_cycles += cycles
        self.events_executed += 1
        return end
