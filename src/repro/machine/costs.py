"""Lane operation costs for the UpDown accelerator (paper Table 2).

Each lane is a 2 GHz MIMD engine executing events atomically.  The paper's
Table 2 gives the cycle cost of the core lane operations; those constants
live here so the simulator, the UDWeave context, and the micro-benchmarks
(``benchmarks/bench_table2_costs.py``) all agree on a single source of
truth.

Costs are expressed in *lane cycles*.  Wall-clock time is derived by the
simulator as ``cycles / MachineConfig.clock_hz``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Target operating frequency of an UpDown lane (paper §3, artifact appendix).
CLOCK_HZ: int = 2_000_000_000

#: Thread creation is performed by hardware at message delivery (0 cycles).
THREAD_CREATE: int = 0

#: ``yield`` — exit the event, preserve thread state, release the lane.
THREAD_YIELD: int = 1

#: ``yield_terminate`` — exit the event and deallocate the thread.
THREAD_DEALLOCATE: int = 1

#: Scratchpad load/store (single word).
SCRATCHPAD_ACCESS: int = 1

#: ``send_event`` — issue a message.  Table 2 gives 1-2 cycles; we charge the
#: midpoint deterministically (2 when the message carries a continuation,
#: 1 otherwise) so simulations are reproducible.
SEND_MESSAGE: int = 1
SEND_MESSAGE_WITH_CONT: int = 2

#: ``send_dram_read`` / ``send_dram_write`` — issue a split-phase DRAM
#: request.  Table 2 gives 1-2 cycles; reads carrying a return continuation
#: cost 2.
SEND_DRAM: int = 1
SEND_DRAM_WITH_CONT: int = 2

#: Default cost charged per modeled instruction when an application calls
#: ``ctx.work(n)``.  One instruction per cycle on the in-order lane.
INSTRUCTION: int = 1

#: Base cost of dispatching an event on a lane (operand register setup).
#: Event parameters use dedicated operand registers (paper §2.1.1), so
#: dispatch is cheap but not free.
EVENT_DISPATCH: int = 2


@dataclass(frozen=True)
class CostTable:
    """A bundle of lane operation costs.

    The default instance reproduces the paper's Table 2.  Tests and ablation
    benchmarks construct variants (e.g. an expensive-message machine) to show
    how the cost structure shapes scaling.
    """

    thread_create: int = THREAD_CREATE
    thread_yield: int = THREAD_YIELD
    thread_deallocate: int = THREAD_DEALLOCATE
    scratchpad_access: int = SCRATCHPAD_ACCESS
    send_message: int = SEND_MESSAGE
    send_message_with_cont: int = SEND_MESSAGE_WITH_CONT
    send_dram: int = SEND_DRAM
    send_dram_with_cont: int = SEND_DRAM_WITH_CONT
    instruction: int = INSTRUCTION
    event_dispatch: int = EVENT_DISPATCH

    def validate(self) -> None:
        """Raise ``ValueError`` if any cost is negative."""
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ValueError(f"cost {name!r} must be non-negative")


#: The canonical Table 2 cost table.
DEFAULT_COSTS = CostTable()
