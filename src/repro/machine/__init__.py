"""The UpDown machine substrate: a functional, cost-modeled DES.

This package stands in for the authors' Fastsim (paper §5.1): a
discrete-event simulation of lanes, accelerators, nodes, the PolarStar
network, and per-node HBM channels, with the Table 2 lane cost model.
"""

from .config import MachineConfig, bench_machine, paper_machine
from .costs import DEFAULT_COSTS, CLOCK_HZ, CostTable
from .events import HOST_NWID, NEW_THREAD, MessageRecord
from .lane import Lane
from .parallel import ShardWorkerFailed
from .simulator import QuiescenceStall, SimulationError, Simulator
from .stats import SimStats

__all__ = [
    "MachineConfig",
    "bench_machine",
    "paper_machine",
    "CostTable",
    "DEFAULT_COSTS",
    "CLOCK_HZ",
    "MessageRecord",
    "NEW_THREAD",
    "HOST_NWID",
    "Lane",
    "Simulator",
    "SimulationError",
    "QuiescenceStall",
    "ShardWorkerFailed",
    "SimStats",
]
