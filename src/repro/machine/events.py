"""Simulation event records.

The simulator's heap holds plain ``(time, seq, record)`` tuples — tuple
comparison on ``(time, seq)`` is the fastest total order CPython offers,
and the heap sees one comparison per sift step on every one of the
millions of events a run executes.  :class:`SimEvent` remains as a named
view for code that wants field access over positional unpacking.

A :class:`MessageRecord` describes one UpDown event message: the target
(networkID, thread selector, event label), the operands, and an optional
continuation event word.  Records carry the label *twice*:

* ``label`` — the human-readable ``"Class::event"`` string, used by host
  mailbox filtering, traces, logs, and error messages;
* ``label_id`` — the interned integer ID resolved once at send time, so
  the dispatcher indexes a handler table instead of re-resolving the
  string on every delivery.  ``label_id == -1`` marks a hand-built record
  (tests, host tooling); the dispatcher falls back to string resolution
  for those.

The machine layer is deliberately ignorant of the UDWeave object model: it
moves :class:`MessageRecord` values around and asks a registered *dispatcher*
to execute them.  The UDWeave runtime (``repro.udweave``) provides that
dispatcher.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

#: Thread-selector sentinel: create a new thread at delivery (``evw_new``).
NEW_THREAD: int = -1

#: networkID sentinel: the simulation host (results mailbox), not a lane.
HOST_NWID: int = -2

#: label_id sentinel: label not interned; resolve the string instead.
UNRESOLVED_LABEL: int = -1


class MessageRecord:
    """One event message on the wire.

    ``thread`` is either a concrete thread-context ID on the target lane or
    :data:`NEW_THREAD`.  ``label`` names the event handler; ``label_id`` is
    its interned integer form (see module docstring).  ``continuation`` is
    an encoded event word (or ``None``) passed through to the handler as
    its reply-to address — the paper's continuation-passing composition
    (§2.1.3).

    A plain ``__slots__`` class rather than a dataclass: record
    construction sits on the per-send hot path, and the generated
    frozen-dataclass ``__init__`` (one ``object.__setattr__`` per field)
    costs several times more than direct slot assignment.
    """

    __slots__ = (
        "network_id",
        "thread",
        "label",
        "operands",
        "continuation",
        "src_network_id",
        "kind",
        "label_id",
    )

    def __init__(
        self,
        network_id: int,
        thread: int,
        label: str,
        operands: Tuple[Any, ...] = (),
        continuation: Optional[int] = None,
        src_network_id: Optional[int] = None,
        kind: str = "msg",
        label_id: int = UNRESOLVED_LABEL,
    ) -> None:
        self.network_id = network_id
        self.thread = thread
        self.label = label
        self.operands = operands
        self.continuation = continuation
        self.src_network_id = src_network_id
        #: tag used by statistics ("msg" or "dram"); has no semantic effect.
        self.kind = kind
        self.label_id = label_id

    def _key(self) -> Tuple[Any, ...]:
        return (
            self.network_id,
            self.thread,
            self.label,
            self.operands,
            self.continuation,
            self.src_network_id,
            self.kind,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageRecord(network_id={self.network_id}, "
            f"thread={self.thread}, label={self.label!r}, "
            f"operands={self.operands!r}, continuation={self.continuation!r})"
        )


class SimEvent:
    """Named view over a ``(time, seq, record)`` heap tuple.

    The simulator's heap stores raw tuples (deterministic ``(time, seq)``
    ordering; ``seq`` is unique so the record is never compared).  This
    wrapper exists for API compatibility and debugging — construct one
    from a heap tuple with ``SimEvent(*entry)``.
    """

    __slots__ = ("time", "seq", "record")

    def __init__(self, time: float, seq: int, record: MessageRecord) -> None:
        self.time = time
        self.seq = seq
        self.record = record

    def astuple(self) -> Tuple[float, int, MessageRecord]:
        return (self.time, self.seq, self.record)

    def __lt__(self, other: "SimEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimEvent):
            return NotImplemented
        return self.astuple() == other.astuple()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimEvent(time={self.time}, seq={self.seq}, record={self.record!r})"
