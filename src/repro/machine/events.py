"""Simulation event records.

The simulator's heap holds plain ``(time, dest, seq, record)`` tuples —
tuple comparison is the fastest total order CPython offers, and the heap
sees one comparison per sift step on every one of the millions of events a
run executes.  ``dest`` is the destination networkID (so ties at one
timestamp resolve by destination before sequence — the order is then
independent of how a sharded run partitions the machine), and ``seq``
packs the *issuing actor* and its private event count
(``(actor << 44) | count``): every push carries a globally unique key
assigned entirely at the point of issue, which is what lets a conservative
parallel run merge shard outputs into exactly the sequential order.
:class:`SimEvent` remains as a named view for code that wants field access
over positional unpacking.

A :class:`MessageRecord` describes one UpDown event message: the target
(networkID, thread selector, event label), the operands, and an optional
continuation event word.  Records carry the label *twice*:

* ``label`` — the human-readable ``"Class::event"`` string, used by host
  mailbox filtering, traces, logs, and error messages;
* ``label_id`` — the interned integer ID resolved once at send time, so
  the dispatcher indexes a handler table instead of re-resolving the
  string on every delivery.  ``label_id == -1`` marks a hand-built record
  (tests, host tooling); the dispatcher falls back to string resolution
  for those.

The machine layer is deliberately ignorant of the UDWeave object model: it
moves :class:`MessageRecord` values around and asks a registered *dispatcher*
to execute them.  The UDWeave runtime (``repro.udweave``) provides that
dispatcher.
"""

from __future__ import annotations

import pickle as _pickle
import struct as _struct
from typing import Any, Optional, Tuple

#: Thread-selector sentinel: create a new thread at delivery (``evw_new``).
NEW_THREAD: int = -1

#: networkID sentinel: the simulation host (results mailbox), not a lane.
HOST_NWID: int = -2

#: label_id sentinel: label not interned; resolve the string instead.
UNRESOLVED_LABEL: int = -1

#: networkID sentinel: a coalesced fabric packet (:class:`PacketRecord`).
#: Distinct from every real destination (lanes are ``>= 0``, the host is
#: ``-2``), so the drain loop can recognize packets with one comparison.
PACKET_NWID: int = -3


class MessageRecord:
    """One event message on the wire.

    ``thread`` is either a concrete thread-context ID on the target lane or
    :data:`NEW_THREAD`.  ``label`` names the event handler; ``label_id`` is
    its interned integer form (see module docstring).  ``continuation`` is
    an encoded event word (or ``None``) passed through to the handler as
    its reply-to address — the paper's continuation-passing composition
    (§2.1.3).

    A plain ``__slots__`` class rather than a dataclass: record
    construction sits on the per-send hot path, and the generated
    frozen-dataclass ``__init__`` (one ``object.__setattr__`` per field)
    costs several times more than direct slot assignment.
    """

    __slots__ = (
        "network_id",
        "thread",
        "label",
        "operands",
        "continuation",
        "src_network_id",
        "kind",
        "label_id",
        "rdt",
    )

    def __init__(
        self,
        network_id: int,
        thread: int,
        label: str,
        operands: Tuple[Any, ...] = (),
        continuation: Optional[int] = None,
        src_network_id: Optional[int] = None,
        kind: str = "msg",
        label_id: int = UNRESOLVED_LABEL,
        rdt: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.network_id = network_id
        self.thread = thread
        self.label = label
        self.operands = operands
        self.continuation = continuation
        self.src_network_id = src_network_id
        #: tag used by statistics ("msg" or "dram"); has no semantic effect.
        self.kind = kind
        self.label_id = label_id
        #: reliable-delivery tag (``repro.faults.transport``): ``None``
        #: for ordinary traffic, else ``("d", src, seq)`` data /
        #: ``("a", receiver, seq)`` ack / ``("t", dst, seq, attempt)``
        #: retransmit timer.  The dispatcher intercepts tagged records
        #: before label resolution.
        self.rdt = rdt

    def __reduce__(self):
        # Boundary batches between shard workers pickle one record per
        # cross-shard event; the constructor-call form is ~3x faster than
        # the generic __slots__ state protocol.
        return (
            MessageRecord,
            (
                self.network_id,
                self.thread,
                self.label,
                self.operands,
                self.continuation,
                self.src_network_id,
                self.kind,
                self.label_id,
                self.rdt,
            ),
        )

    def _key(self) -> Tuple[Any, ...]:
        return (
            self.network_id,
            self.thread,
            self.label,
            self.operands,
            self.continuation,
            self.src_network_id,
            self.kind,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageRecord(network_id={self.network_id}, "
            f"thread={self.thread}, label={self.label!r}, "
            f"operands={self.operands!r}, continuation={self.continuation!r})"
        )


def _packet_from_rows(window_end, cursor, rows):
    """Rebuild a :class:`PacketRecord` from flattened member rows.

    Pickle reconstructor for cross-shard boundary batches: one
    constructor call per *packet* plus one cheap ``MessageRecord``
    build per member, instead of one generic ``__reduce__`` round trip
    per record.
    """
    pkt = PacketRecord(window_end)
    pkt.cursor = cursor
    members = pkt.members
    append = members.append
    for (
        t,
        dest,
        seq,
        thread,
        label,
        operands,
        continuation,
        src_network_id,
        kind,
        label_id,
        rdt,
    ) in rows:
        append(
            (
                t,
                dest,
                seq,
                MessageRecord(
                    dest,
                    thread,
                    label,
                    operands,
                    continuation,
                    src_network_id,
                    kind,
                    label_id,
                    rdt,
                ),
            )
        )
    return pkt


class PacketRecord:
    """A coalesced batch of remote :class:`MessageRecord` deliveries.

    Purely a *host-side* optimization: remote records from one source
    node to one destination node whose deliveries fall inside one
    coalescing window share a single heap entry instead of one each.
    Every member keeps its own fully-priced ``(time, dest, seq)`` key —
    computed at issue exactly as without coalescing — and ``members`` is
    sorted by that key, so the drain loop walks the batch in precisely
    the order the individual heap entries would have popped.  Nothing
    about the modeled machine changes: per-record lane cost, injection
    occupancy, and remote latency are charged identically.

    ``cursor`` is the index of the next unwalked member (a packet that
    must yield to an earlier heap event is re-pushed keyed at that
    member).  ``open`` means the packet has not yet been unwrapped by a
    drain — the flight recorder samples the batch size exactly once.
    ``window_end`` is the delivery-time bound new members must beat to
    join (first member's delivery plus the coalescing window).
    """

    __slots__ = ("network_id", "members", "cursor", "open", "window_end")

    def __init__(self, window_end: float) -> None:
        self.network_id = PACKET_NWID
        self.members: list = []
        self.cursor = 0
        self.open = True
        self.window_end = window_end

    def __reduce__(self):
        # One reduce per packet: the parallel boundary relay ships the
        # whole batch as flat tuples of plain payload fields.
        rows = [
            (
                t,
                dest,
                seq,
                r.thread,
                r.label,
                r.operands,
                r.continuation,
                r.src_network_id,
                r.kind,
                r.label_id,
                r.rdt,
            )
            for t, dest, seq, r in self.members
        ]
        return (_packet_from_rows, (self.window_end, self.cursor, rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketRecord(members={len(self.members)}, "
            f"cursor={self.cursor}, window_end={self.window_end})"
        )


class DramArrival:
    """A remote split-phase DRAM request in flight to its memory node.

    ``network_id`` is a *virtual* destination — ``total_lanes +
    memory_node`` — which the drain loop recognizes (it is outside the
    lane range) and services by running the memory-channel access and the
    reply hop *at the memory node, in arrival order*.  Keeping all
    mutations of a node's DRAM and reply channels at the owning node is
    what makes the memory system shardable: a requester only touches its
    own injection channel at issue time.

    The functional payload is not carried here: data words are read and
    written when the request *issues* (see ``repro.udweave.context``);
    only the timing flows through this record.
    """

    __slots__ = (
        "network_id",
        "response",
        "src_node",
        "memory_node",
        "nbytes",
        "local_offset",
        "back_bytes",
    )

    def __init__(
        self,
        network_id: int,
        response: Optional[MessageRecord],
        src_node: int,
        memory_node: int,
        nbytes: int,
        local_offset: int,
        back_bytes: int,
    ) -> None:
        self.network_id = network_id
        self.response = response
        self.src_node = src_node
        self.memory_node = memory_node
        self.nbytes = nbytes
        self.local_offset = local_offset
        #: wire bytes of the return direction (data for reads, a
        #: completion message for writes), fixed at issue time.
        self.back_bytes = back_bytes

    def __reduce__(self):
        # fast pickling for cross-shard boundary batches
        return (
            DramArrival,
            (
                self.network_id,
                self.response,
                self.src_node,
                self.memory_node,
                self.nbytes,
                self.local_offset,
                self.back_bytes,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DramArrival(memory_node={self.memory_node}, "
            f"src_node={self.src_node}, nbytes={self.nbytes})"
        )


class RecordBatch:
    """Columnar (NumPy-backed) view of a homogeneous parked-record slice.

    The batch-dispatch path parks same-label reduce records per lane as
    plain ``(time, seq, plan, operands)`` tuples (see
    ``repro.udweave.ir``).  This view exposes one slice of that list as
    NumPy columns — delivery times, sequence keys, and one object column
    per operand slot — for tooling, tests, and analysis that want
    array-at-a-time access (histograms, order checks, key distributions)
    without re-walking Python tuples.

    The *executors* deliberately do not consume this view: per-key float
    accumulation order is part of the bit-exactness contract, which rules
    out vectorized reductions, and typical batches are far below the size
    where column staging pays for itself.  Construction is lazy and
    cheap; columns are materialized once on first access.
    """

    __slots__ = ("times", "seqs", "operands", "label")

    def __init__(self, times, seqs, operands, label: str) -> None:
        self.times = times
        self.seqs = seqs
        #: tuple of object-dtype arrays, one per operand slot
        self.operands = operands
        self.label = label

    @classmethod
    def from_entries(cls, entries, lo: int, hi: int) -> "RecordBatch":
        import numpy as np

        rows = entries[lo:hi]
        times = np.fromiter(
            (e[0] for e in rows), dtype=np.float64, count=len(rows)
        )
        seqs = np.fromiter(
            (e[1] for e in rows), dtype=np.int64, count=len(rows)
        )
        width = len(rows[0][3]) if rows else 0
        operands = tuple(
            np.fromiter(
                (e[3][j] for e in rows), dtype=object, count=len(rows)
            )
            for j in range(width)
        )
        label = rows[0][2].label if rows else ""
        return cls(times, seqs, operands, label)

    def __len__(self) -> int:
        return len(self.times)

    def is_sorted(self) -> bool:
        """True iff the slice is in (time, seq) delivery order."""
        import numpy as np

        if len(self.times) < 2:
            return True
        dt = np.diff(self.times)
        ok = dt > 0
        ties = dt == 0
        return bool(
            np.all(dt >= 0)
            and np.all(ok | (ties & (np.diff(self.seqs) > 0)))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordBatch({self.label!r}, n={len(self.times)})"


class SimEvent:
    """Named view over a ``(time, dest, seq, record)`` heap tuple.

    The simulator's heap stores raw tuples (deterministic
    ``(time, dest, seq)`` ordering; ``seq`` is unique so the record is
    never compared).  This wrapper exists for API compatibility and
    debugging — construct one from a heap tuple with ``SimEvent(*entry)``.
    """

    __slots__ = ("time", "dest", "seq", "record")

    def __init__(
        self, time: float, dest: int, seq: int, record: MessageRecord
    ) -> None:
        self.time = time
        self.dest = dest
        self.seq = seq
        self.record = record

    def astuple(self) -> Tuple[float, int, int, MessageRecord]:
        return (self.time, self.dest, self.seq, self.record)

    def __lt__(self, other: "SimEvent") -> bool:
        return (self.time, self.dest, self.seq) < (
            other.time,
            other.dest,
            other.seq,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimEvent):
            return NotImplemented
        return self.astuple() == other.astuple()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimEvent(time={self.time}, dest={self.dest}, "
            f"seq={self.seq}, record={self.record!r})"
        )


# ---------------------------------------------------------------------------
# Boundary wire codec (shared-memory parallel transport)
# ---------------------------------------------------------------------------
#
# The forked-worker transport (``repro.machine.parallel``) ships boundary
# records between shard workers through shared-memory ring buffers.  Frames
# are struct-packed by these encoders — no per-record pickle on the healthy
# path.  Event labels are interned per stream: the first frame that carries
# a given ``label_id`` announces the label string, every later frame sends
# the 4-byte id alone, and the consumer-side decoder keeps the id → string
# table.  Rings are strictly FIFO (single producer, single consumer), so
# announce-before-use holds by construction.
#
# The value sub-codec covers the types records actually carry — ``None``,
# ``bool``, ``int`` (8-byte fast path, arbitrary precision fallback),
# ``float``, ``str``, ``bytes``, and nested tuples.  Anything else (exotic
# operand payloads from hand-built tests) falls back to a tagged pickle of
# that one value; the frame framing stays intact either way.

#: frame payload type tags (first byte after the u32 length prefix).
WIRE_ENTRY = 1  #: a heap entry ``(time, dest, seq, record)``
WIRE_WLOG = 2  #: one functional-memory write ``(va, values)``

#: record type tags inside a :data:`WIRE_ENTRY` frame.
_REC_MSG = 1
_REC_DRAM = 2
_REC_PACKET = 3

#: label field shapes
_LBL_UNRESOLVED = 0  #: ``label_id == -1``; the string follows
_LBL_ANNOUNCE = 1  #: interned id + string (first use on this stream)
_LBL_CACHED = 2  #: interned id alone; decoder looks the string up

# value tags
_V_NONE = 0
_V_TRUE = 1
_V_FALSE = 2
_V_I64 = 3
_V_BIG = 4
_V_F64 = 5
_V_STR = 6
_V_BYTES = 7
_V_TUPLE = 8
_V_PICKLE = 9

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_pack = _struct.pack
_unpack_from = _struct.unpack_from


def _enc_value(buf: bytearray, v: Any) -> None:
    t = type(v)
    if v is None:
        buf.append(_V_NONE)
    elif t is int:
        if _I64_MIN <= v <= _I64_MAX:
            buf.append(_V_I64)
            buf += v.to_bytes(8, "little", signed=True)
        else:
            raw = v.to_bytes((v.bit_length() + 8) // 8, "little", signed=True)
            buf.append(_V_BIG)
            buf += len(raw).to_bytes(4, "little")
            buf += raw
    elif t is float:
        buf.append(_V_F64)
        buf += _pack("<d", v)
    elif t is str:
        raw = v.encode("utf-8")
        buf.append(_V_STR)
        buf += len(raw).to_bytes(4, "little")
        buf += raw
    elif t is bool:
        buf.append(_V_TRUE if v else _V_FALSE)
    elif t is tuple:
        buf.append(_V_TUPLE)
        buf += len(v).to_bytes(4, "little")
        for item in v:
            _enc_value(buf, item)
    elif t is bytes:
        buf.append(_V_BYTES)
        buf += len(v).to_bytes(4, "little")
        buf += v
    else:
        raw = _pickle.dumps(v, protocol=_pickle.HIGHEST_PROTOCOL)
        buf.append(_V_PICKLE)
        buf += len(raw).to_bytes(4, "little")
        buf += raw


def _dec_value(buf, pos: int):
    tag = buf[pos]
    pos += 1
    if tag == _V_NONE:
        return None, pos
    if tag == _V_I64:
        return (
            int.from_bytes(buf[pos : pos + 8], "little", signed=True),
            pos + 8,
        )
    if tag == _V_F64:
        return _unpack_from("<d", buf, pos)[0], pos + 8
    if tag == _V_STR:
        n = int.from_bytes(buf[pos : pos + 4], "little")
        pos += 4
        return bytes(buf[pos : pos + n]).decode("utf-8"), pos + n
    if tag == _V_TRUE:
        return True, pos
    if tag == _V_FALSE:
        return False, pos
    if tag == _V_TUPLE:
        n = int.from_bytes(buf[pos : pos + 4], "little")
        pos += 4
        items = []
        append = items.append
        for _ in range(n):
            v, pos = _dec_value(buf, pos)
            append(v)
        return tuple(items), pos
    if tag == _V_BIG:
        n = int.from_bytes(buf[pos : pos + 4], "little")
        pos += 4
        return (
            int.from_bytes(buf[pos : pos + n], "little", signed=True),
            pos + n,
        )
    if tag == _V_BYTES:
        n = int.from_bytes(buf[pos : pos + 4], "little")
        pos += 4
        return bytes(buf[pos : pos + n]), pos + n
    if tag == _V_PICKLE:
        n = int.from_bytes(buf[pos : pos + 4], "little")
        pos += 4
        return _pickle.loads(bytes(buf[pos : pos + n])), pos + n
    raise ValueError(f"corrupt boundary frame: unknown value tag {tag}")


class BoundaryEncoder:
    """Stream encoder for one producer→consumer boundary ring.

    Stateful only for label interning (``_announced`` tracks which
    ``label_id`` values this stream has already carried a string for);
    everything else is pure per-frame encoding into a caller-supplied
    ``bytearray``.
    """

    __slots__ = ("_announced",)

    def __init__(self) -> None:
        self._announced: set = set()

    # -- records -----------------------------------------------------

    def _msg_body(self, buf: bytearray, rec: "MessageRecord") -> None:
        buf += rec.network_id.to_bytes(8, "little", signed=True)
        buf += rec.thread.to_bytes(8, "little", signed=True)
        lid = rec.label_id
        if lid < 0:
            buf.append(_LBL_UNRESOLVED)
            _enc_value(buf, rec.label)
        elif lid in self._announced:
            buf.append(_LBL_CACHED)
            buf += lid.to_bytes(4, "little")
        else:
            self._announced.add(lid)
            buf.append(_LBL_ANNOUNCE)
            buf += lid.to_bytes(4, "little")
            _enc_value(buf, rec.label)
        _enc_value(buf, rec.operands)
        _enc_value(buf, rec.continuation)
        _enc_value(buf, rec.src_network_id)
        kind = rec.kind
        if kind == "msg":
            buf.append(0)
        elif kind == "dram":
            buf.append(1)
        else:
            buf.append(2)
            _enc_value(buf, kind)
        _enc_value(buf, rec.rdt)

    def encode_entry(self, buf: bytearray, entry) -> None:
        """Append one ``(time, dest, seq, record)`` heap entry frame body."""
        t, dest, seq, rec = entry
        buf.append(WIRE_ENTRY)
        cls = type(rec)
        if cls is MessageRecord:
            buf.append(_REC_MSG)
            _enc_value(buf, t)
            _enc_value(buf, dest)
            _enc_value(buf, seq)
            self._msg_body(buf, rec)
        elif cls is DramArrival:
            buf.append(_REC_DRAM)
            _enc_value(buf, t)
            _enc_value(buf, dest)
            _enc_value(buf, seq)
            resp = rec.response
            if resp is None:
                buf.append(0)
            else:
                buf.append(1)
                self._msg_body(buf, resp)
            buf += rec.src_node.to_bytes(8, "little", signed=True)
            buf += rec.memory_node.to_bytes(8, "little", signed=True)
            _enc_value(buf, rec.nbytes)
            _enc_value(buf, rec.local_offset)
            _enc_value(buf, rec.back_bytes)
        elif cls is PacketRecord:
            buf.append(_REC_PACKET)
            _enc_value(buf, t)
            _enc_value(buf, dest)
            _enc_value(buf, seq)
            _enc_value(buf, rec.window_end)
            buf += rec.cursor.to_bytes(8, "little", signed=True)
            members = rec.members
            buf += len(members).to_bytes(4, "little")
            for mt, mdest, mseq, mrec in members:
                _enc_value(buf, mt)
                _enc_value(buf, mdest)
                _enc_value(buf, mseq)
                self._msg_body(buf, mrec)
        else:
            raise TypeError(
                f"cannot encode boundary record of type {cls.__name__}"
            )

    def encode_wlog(self, buf: bytearray, va: int, values, step: int = 0) -> None:
        """Append one functional-memory write frame body.

        ``step`` is the producer's window sub-step counter at write time:
        consumers defer application until their own progress passes it,
        which keeps foreign-write visibility deterministic no matter when
        the frame physically arrives.
        """
        buf.append(WIRE_WLOG)
        _enc_value(buf, va)
        _enc_value(buf, step)
        buf += len(values).to_bytes(4, "little")
        for v in values:
            _enc_value(buf, v)


class BoundaryDecoder:
    """Stream decoder paired with one :class:`BoundaryEncoder`.

    Holds the interned ``label_id → label`` table the producer announces
    incrementally.  :meth:`decode_frame` returns either ``("entry",
    heap_entry)`` or ``("wlog", va, values, step)``.
    """

    __slots__ = ("_labels",)

    def __init__(self) -> None:
        self._labels: dict = {}

    def _msg_body(self, buf, pos: int):
        network_id = int.from_bytes(buf[pos : pos + 8], "little", signed=True)
        thread = int.from_bytes(buf[pos + 8 : pos + 16], "little", signed=True)
        pos += 16
        shape = buf[pos]
        pos += 1
        if shape == _LBL_UNRESOLVED:
            label_id = UNRESOLVED_LABEL
            label, pos = _dec_value(buf, pos)
        else:
            label_id = int.from_bytes(buf[pos : pos + 4], "little")
            pos += 4
            if shape == _LBL_ANNOUNCE:
                label, pos = _dec_value(buf, pos)
                self._labels[label_id] = label
            else:
                try:
                    label = self._labels[label_id]
                except KeyError:
                    raise ValueError(
                        f"corrupt boundary stream: label id {label_id} "
                        f"used before announcement"
                    ) from None
        operands, pos = _dec_value(buf, pos)
        continuation, pos = _dec_value(buf, pos)
        src_network_id, pos = _dec_value(buf, pos)
        kcode = buf[pos]
        pos += 1
        if kcode == 0:
            kind = "msg"
        elif kcode == 1:
            kind = "dram"
        else:
            kind, pos = _dec_value(buf, pos)
        rdt, pos = _dec_value(buf, pos)
        rec = MessageRecord(
            network_id,
            thread,
            label,
            operands,
            continuation,
            src_network_id,
            kind,
            label_id,
            rdt,
        )
        return rec, pos

    def decode_frame(self, buf, pos: int = 0):
        """Decode one frame payload (without its u32 length prefix)."""
        ftype = buf[pos]
        pos += 1
        if ftype == WIRE_WLOG:
            va, pos = _dec_value(buf, pos)
            step, pos = _dec_value(buf, pos)
            n = int.from_bytes(buf[pos : pos + 4], "little")
            pos += 4
            values = []
            append = values.append
            for _ in range(n):
                v, pos = _dec_value(buf, pos)
                append(v)
            return ("wlog", va, values, step)
        if ftype != WIRE_ENTRY:
            raise ValueError(f"corrupt boundary frame: type {ftype}")
        rtype = buf[pos]
        pos += 1
        t, pos = _dec_value(buf, pos)
        dest, pos = _dec_value(buf, pos)
        seq, pos = _dec_value(buf, pos)
        if rtype == _REC_MSG:
            rec, pos = self._msg_body(buf, pos)
        elif rtype == _REC_DRAM:
            has_resp = buf[pos]
            pos += 1
            resp = None
            if has_resp:
                resp, pos = self._msg_body(buf, pos)
            src_node = int.from_bytes(
                buf[pos : pos + 8], "little", signed=True
            )
            memory_node = int.from_bytes(
                buf[pos + 8 : pos + 16], "little", signed=True
            )
            pos += 16
            nbytes, pos = _dec_value(buf, pos)
            local_offset, pos = _dec_value(buf, pos)
            back_bytes, pos = _dec_value(buf, pos)
            rec = DramArrival(
                dest, resp, src_node, memory_node, nbytes, local_offset,
                back_bytes,
            )
        elif rtype == _REC_PACKET:
            window_end, pos = _dec_value(buf, pos)
            cursor = int.from_bytes(buf[pos : pos + 8], "little", signed=True)
            pos += 8
            n = int.from_bytes(buf[pos : pos + 4], "little")
            pos += 4
            rec = PacketRecord(window_end)
            rec.cursor = cursor
            append = rec.members.append
            for _ in range(n):
                mt, pos = _dec_value(buf, pos)
                mdest, pos = _dec_value(buf, pos)
                mseq, pos = _dec_value(buf, pos)
                mrec, pos = self._msg_body(buf, pos)
                append((mt, mdest, mseq, mrec))
        else:
            raise ValueError(f"corrupt boundary frame: record type {rtype}")
        return ("entry", (t, dest, seq, rec))
