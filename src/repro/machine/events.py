"""Simulation event records.

The simulator's heap holds :class:`SimEvent` entries.  Two kinds exist:

* ``MESSAGE`` — an UpDown event message arriving at a lane.  Carries a
  :class:`MessageRecord` describing the target (networkID, thread selector,
  event label), the operands, and an optional continuation event word.
* ``DRAM_RESPONSE`` — completion of a split-phase DRAM request, delivered
  back to the issuing thread as a ``MESSAGE`` in practice; kept distinct in
  statistics only.

The machine layer is deliberately ignorant of the UDWeave object model: it
moves :class:`MessageRecord` values around and asks a registered *dispatcher*
to execute them.  The UDWeave runtime (``repro.udweave``) provides that
dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

#: Thread-selector sentinel: create a new thread at delivery (``evw_new``).
NEW_THREAD: int = -1

#: networkID sentinel: the simulation host (results mailbox), not a lane.
HOST_NWID: int = -2


@dataclass(frozen=True)
class MessageRecord:
    """One event message on the wire.

    ``thread`` is either a concrete thread-context ID on the target lane or
    :data:`NEW_THREAD`.  ``label`` names the event handler.  ``continuation``
    is an encoded event word (or ``None``) passed through to the handler as
    its reply-to address — the paper's continuation-passing composition
    (§2.1.3).
    """

    network_id: int
    thread: int
    label: str
    operands: Tuple[Any, ...] = ()
    continuation: Optional[int] = None
    src_network_id: Optional[int] = None
    #: tag used by statistics ("msg" or "dram"); has no semantic effect.
    kind: str = "msg"


@dataclass(order=True)
class SimEvent:
    """Heap entry: deterministic (time, seq) ordering."""

    time: float
    seq: int
    record: MessageRecord = field(compare=False)
