"""Simulation event records.

The simulator's heap holds plain ``(time, dest, seq, record)`` tuples —
tuple comparison is the fastest total order CPython offers, and the heap
sees one comparison per sift step on every one of the millions of events a
run executes.  ``dest`` is the destination networkID (so ties at one
timestamp resolve by destination before sequence — the order is then
independent of how a sharded run partitions the machine), and ``seq``
packs the *issuing actor* and its private event count
(``(actor << 44) | count``): every push carries a globally unique key
assigned entirely at the point of issue, which is what lets a conservative
parallel run merge shard outputs into exactly the sequential order.
:class:`SimEvent` remains as a named view for code that wants field access
over positional unpacking.

A :class:`MessageRecord` describes one UpDown event message: the target
(networkID, thread selector, event label), the operands, and an optional
continuation event word.  Records carry the label *twice*:

* ``label`` — the human-readable ``"Class::event"`` string, used by host
  mailbox filtering, traces, logs, and error messages;
* ``label_id`` — the interned integer ID resolved once at send time, so
  the dispatcher indexes a handler table instead of re-resolving the
  string on every delivery.  ``label_id == -1`` marks a hand-built record
  (tests, host tooling); the dispatcher falls back to string resolution
  for those.

The machine layer is deliberately ignorant of the UDWeave object model: it
moves :class:`MessageRecord` values around and asks a registered *dispatcher*
to execute them.  The UDWeave runtime (``repro.udweave``) provides that
dispatcher.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

#: Thread-selector sentinel: create a new thread at delivery (``evw_new``).
NEW_THREAD: int = -1

#: networkID sentinel: the simulation host (results mailbox), not a lane.
HOST_NWID: int = -2

#: label_id sentinel: label not interned; resolve the string instead.
UNRESOLVED_LABEL: int = -1

#: networkID sentinel: a coalesced fabric packet (:class:`PacketRecord`).
#: Distinct from every real destination (lanes are ``>= 0``, the host is
#: ``-2``), so the drain loop can recognize packets with one comparison.
PACKET_NWID: int = -3


class MessageRecord:
    """One event message on the wire.

    ``thread`` is either a concrete thread-context ID on the target lane or
    :data:`NEW_THREAD`.  ``label`` names the event handler; ``label_id`` is
    its interned integer form (see module docstring).  ``continuation`` is
    an encoded event word (or ``None``) passed through to the handler as
    its reply-to address — the paper's continuation-passing composition
    (§2.1.3).

    A plain ``__slots__`` class rather than a dataclass: record
    construction sits on the per-send hot path, and the generated
    frozen-dataclass ``__init__`` (one ``object.__setattr__`` per field)
    costs several times more than direct slot assignment.
    """

    __slots__ = (
        "network_id",
        "thread",
        "label",
        "operands",
        "continuation",
        "src_network_id",
        "kind",
        "label_id",
        "rdt",
    )

    def __init__(
        self,
        network_id: int,
        thread: int,
        label: str,
        operands: Tuple[Any, ...] = (),
        continuation: Optional[int] = None,
        src_network_id: Optional[int] = None,
        kind: str = "msg",
        label_id: int = UNRESOLVED_LABEL,
        rdt: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.network_id = network_id
        self.thread = thread
        self.label = label
        self.operands = operands
        self.continuation = continuation
        self.src_network_id = src_network_id
        #: tag used by statistics ("msg" or "dram"); has no semantic effect.
        self.kind = kind
        self.label_id = label_id
        #: reliable-delivery tag (``repro.faults.transport``): ``None``
        #: for ordinary traffic, else ``("d", src, seq)`` data /
        #: ``("a", receiver, seq)`` ack / ``("t", dst, seq, attempt)``
        #: retransmit timer.  The dispatcher intercepts tagged records
        #: before label resolution.
        self.rdt = rdt

    def __reduce__(self):
        # Boundary batches between shard workers pickle one record per
        # cross-shard event; the constructor-call form is ~3x faster than
        # the generic __slots__ state protocol.
        return (
            MessageRecord,
            (
                self.network_id,
                self.thread,
                self.label,
                self.operands,
                self.continuation,
                self.src_network_id,
                self.kind,
                self.label_id,
                self.rdt,
            ),
        )

    def _key(self) -> Tuple[Any, ...]:
        return (
            self.network_id,
            self.thread,
            self.label,
            self.operands,
            self.continuation,
            self.src_network_id,
            self.kind,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageRecord(network_id={self.network_id}, "
            f"thread={self.thread}, label={self.label!r}, "
            f"operands={self.operands!r}, continuation={self.continuation!r})"
        )


def _packet_from_rows(window_end, cursor, rows):
    """Rebuild a :class:`PacketRecord` from flattened member rows.

    Pickle reconstructor for cross-shard boundary batches: one
    constructor call per *packet* plus one cheap ``MessageRecord``
    build per member, instead of one generic ``__reduce__`` round trip
    per record.
    """
    pkt = PacketRecord(window_end)
    pkt.cursor = cursor
    members = pkt.members
    append = members.append
    for (
        t,
        dest,
        seq,
        thread,
        label,
        operands,
        continuation,
        src_network_id,
        kind,
        label_id,
        rdt,
    ) in rows:
        append(
            (
                t,
                dest,
                seq,
                MessageRecord(
                    dest,
                    thread,
                    label,
                    operands,
                    continuation,
                    src_network_id,
                    kind,
                    label_id,
                    rdt,
                ),
            )
        )
    return pkt


class PacketRecord:
    """A coalesced batch of remote :class:`MessageRecord` deliveries.

    Purely a *host-side* optimization: remote records from one source
    node to one destination node whose deliveries fall inside one
    coalescing window share a single heap entry instead of one each.
    Every member keeps its own fully-priced ``(time, dest, seq)`` key —
    computed at issue exactly as without coalescing — and ``members`` is
    sorted by that key, so the drain loop walks the batch in precisely
    the order the individual heap entries would have popped.  Nothing
    about the modeled machine changes: per-record lane cost, injection
    occupancy, and remote latency are charged identically.

    ``cursor`` is the index of the next unwalked member (a packet that
    must yield to an earlier heap event is re-pushed keyed at that
    member).  ``open`` means the packet has not yet been unwrapped by a
    drain — the flight recorder samples the batch size exactly once.
    ``window_end`` is the delivery-time bound new members must beat to
    join (first member's delivery plus the coalescing window).
    """

    __slots__ = ("network_id", "members", "cursor", "open", "window_end")

    def __init__(self, window_end: float) -> None:
        self.network_id = PACKET_NWID
        self.members: list = []
        self.cursor = 0
        self.open = True
        self.window_end = window_end

    def __reduce__(self):
        # One reduce per packet: the parallel boundary relay ships the
        # whole batch as flat tuples of plain payload fields.
        rows = [
            (
                t,
                dest,
                seq,
                r.thread,
                r.label,
                r.operands,
                r.continuation,
                r.src_network_id,
                r.kind,
                r.label_id,
                r.rdt,
            )
            for t, dest, seq, r in self.members
        ]
        return (_packet_from_rows, (self.window_end, self.cursor, rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketRecord(members={len(self.members)}, "
            f"cursor={self.cursor}, window_end={self.window_end})"
        )


class DramArrival:
    """A remote split-phase DRAM request in flight to its memory node.

    ``network_id`` is a *virtual* destination — ``total_lanes +
    memory_node`` — which the drain loop recognizes (it is outside the
    lane range) and services by running the memory-channel access and the
    reply hop *at the memory node, in arrival order*.  Keeping all
    mutations of a node's DRAM and reply channels at the owning node is
    what makes the memory system shardable: a requester only touches its
    own injection channel at issue time.

    The functional payload is not carried here: data words are read and
    written when the request *issues* (see ``repro.udweave.context``);
    only the timing flows through this record.
    """

    __slots__ = (
        "network_id",
        "response",
        "src_node",
        "memory_node",
        "nbytes",
        "local_offset",
        "back_bytes",
    )

    def __init__(
        self,
        network_id: int,
        response: Optional[MessageRecord],
        src_node: int,
        memory_node: int,
        nbytes: int,
        local_offset: int,
        back_bytes: int,
    ) -> None:
        self.network_id = network_id
        self.response = response
        self.src_node = src_node
        self.memory_node = memory_node
        self.nbytes = nbytes
        self.local_offset = local_offset
        #: wire bytes of the return direction (data for reads, a
        #: completion message for writes), fixed at issue time.
        self.back_bytes = back_bytes

    def __reduce__(self):
        # fast pickling for cross-shard boundary batches
        return (
            DramArrival,
            (
                self.network_id,
                self.response,
                self.src_node,
                self.memory_node,
                self.nbytes,
                self.local_offset,
                self.back_bytes,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DramArrival(memory_node={self.memory_node}, "
            f"src_node={self.src_node}, nbytes={self.nbytes})"
        )


class RecordBatch:
    """Columnar (NumPy-backed) view of a homogeneous parked-record slice.

    The batch-dispatch path parks same-label reduce records per lane as
    plain ``(time, seq, plan, operands)`` tuples (see
    ``repro.udweave.ir``).  This view exposes one slice of that list as
    NumPy columns — delivery times, sequence keys, and one object column
    per operand slot — for tooling, tests, and analysis that want
    array-at-a-time access (histograms, order checks, key distributions)
    without re-walking Python tuples.

    The *executors* deliberately do not consume this view: per-key float
    accumulation order is part of the bit-exactness contract, which rules
    out vectorized reductions, and typical batches are far below the size
    where column staging pays for itself.  Construction is lazy and
    cheap; columns are materialized once on first access.
    """

    __slots__ = ("times", "seqs", "operands", "label")

    def __init__(self, times, seqs, operands, label: str) -> None:
        self.times = times
        self.seqs = seqs
        #: tuple of object-dtype arrays, one per operand slot
        self.operands = operands
        self.label = label

    @classmethod
    def from_entries(cls, entries, lo: int, hi: int) -> "RecordBatch":
        import numpy as np

        rows = entries[lo:hi]
        times = np.fromiter(
            (e[0] for e in rows), dtype=np.float64, count=len(rows)
        )
        seqs = np.fromiter(
            (e[1] for e in rows), dtype=np.int64, count=len(rows)
        )
        width = len(rows[0][3]) if rows else 0
        operands = tuple(
            np.fromiter(
                (e[3][j] for e in rows), dtype=object, count=len(rows)
            )
            for j in range(width)
        )
        label = rows[0][2].label if rows else ""
        return cls(times, seqs, operands, label)

    def __len__(self) -> int:
        return len(self.times)

    def is_sorted(self) -> bool:
        """True iff the slice is in (time, seq) delivery order."""
        import numpy as np

        if len(self.times) < 2:
            return True
        dt = np.diff(self.times)
        ok = dt > 0
        ties = dt == 0
        return bool(
            np.all(dt >= 0)
            and np.all(ok | (ties & (np.diff(self.seqs) > 0)))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordBatch({self.label!r}, n={len(self.times)})"


class SimEvent:
    """Named view over a ``(time, dest, seq, record)`` heap tuple.

    The simulator's heap stores raw tuples (deterministic
    ``(time, dest, seq)`` ordering; ``seq`` is unique so the record is
    never compared).  This wrapper exists for API compatibility and
    debugging — construct one from a heap tuple with ``SimEvent(*entry)``.
    """

    __slots__ = ("time", "dest", "seq", "record")

    def __init__(
        self, time: float, dest: int, seq: int, record: MessageRecord
    ) -> None:
        self.time = time
        self.dest = dest
        self.seq = seq
        self.record = record

    def astuple(self) -> Tuple[float, int, int, MessageRecord]:
        return (self.time, self.dest, self.seq, self.record)

    def __lt__(self, other: "SimEvent") -> bool:
        return (self.time, self.dest, self.seq) < (
            other.time,
            other.dest,
            other.seq,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimEvent):
            return NotImplemented
        return self.astuple() == other.astuple()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimEvent(time={self.time}, dest={self.dest}, "
            f"seq={self.seq}, record={self.record!r})"
        )
