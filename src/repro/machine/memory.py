"""Per-node DRAM (HBM3e) capacity/latency model and lane scratchpads.

Each UpDown node carries 8 HBM3e stacks delivering ~9.4 TB/s (paper §3).
Following Fastsim's streamlined memory model, a node's memory is one
serially-occupied channel:

* a request arriving at ``t`` starts service at ``max(t, channel_free)``;
* service occupies the channel for ``nbytes / bandwidth`` cycles;
* the response is ready ``access latency`` after service starts;
* remote requesters get a reduced bandwidth share
  (``remote_dram_bandwidth_ratio``, paper §3.2's 3:1 local:remote) and pay
  the network round trip on top (yielding the paper's ~7:1 latency ratio).

Scratchpad memory (64 KB per lane, poolable within an accelerator) is
modeled as a per-lane key/value store with single-cycle access charged by
the UDWeave context; capacity accounting lives in
:mod:`repro.memmodel.spmalloc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import MachineConfig


@dataclass(slots=True)
class DramAccessResult:
    """Timing of one serviced DRAM request."""

    response_ready: float
    service_start: float
    occupancy: float


class MemoryChannel:
    """One node's DRAM channel."""

    __slots__ = ("free_at", "bytes_served", "requests")

    def __init__(self) -> None:
        self.free_at: float = 0.0
        self.bytes_served: int = 0
        self.requests: int = 0

    def service(
        self,
        t_arrive: float,
        nbytes: int,
        bytes_per_cycle: float,
        latency_cycles: float,
    ) -> DramAccessResult:
        start = max(t_arrive, self.free_at)
        occupancy = nbytes / bytes_per_cycle
        self.free_at = start + occupancy
        self.bytes_served += nbytes
        self.requests += 1
        return DramAccessResult(
            response_ready=start + latency_cycles + occupancy,
            service_start=start,
            occupancy=occupancy,
        )


class MemorySystem:
    """All node memory channels of the machine.

    Two fidelity levels, mirroring the paper's Fastsim/Gem5sim pair
    (§5.1): the default *fast* model serializes each node's memory through
    one channel at the node's aggregate bandwidth; the *detailed* model
    (``banks_per_node > 1``) splits the node into independent HBM
    pseudo-channels selected by address, each carrying an equal bandwidth
    share — closer to how 8 HBM3e stacks actually behave, at more
    simulation cost.  ``tests/integration/test_calibration.py`` checks the
    two agree on balanced traffic, the same cross-check the authors ran
    between their simulators.
    """

    #: detailed-mode bank interleave granularity (bytes)
    BANK_INTERLEAVE = 256

    def __init__(
        self,
        config: MachineConfig,
        banks_per_node: int = 1,
        recorder=None,
        faults=None,
    ) -> None:
        if banks_per_node < 1:
            raise ValueError("need at least one bank per node")
        self.config = config
        self.banks_per_node = banks_per_node
        self._channels: Dict[tuple, MemoryChannel] = {}
        #: flight recorder for channel telemetry, or None (the off tier).
        self.recorder = recorder
        #: per-node bandwidth degradation factors from a fault plan
        #: (``repro.faults.FaultPlan.dram_bandwidth_factors``), or None —
        #: the healthy machine costs one pointer test per access.
        self._dram_factors = (
            faults.dram_factors(config.nodes)
            if faults is not None and faults.dram_bandwidth_factors
            else None
        )

    def channel(self, node: int, bank: int = 0) -> MemoryChannel:
        key = (node, bank)
        ch = self._channels.get(key)
        if ch is None:
            ch = self._channels[key] = MemoryChannel()
        return ch

    def _bank_of(self, local_offset: int) -> int:
        return (local_offset // self.BANK_INTERLEAVE) % self.banks_per_node

    def access(
        self,
        t_arrive: float,
        requester_node: int,
        memory_node: int,
        nbytes: int,
        local_offset: int = 0,
    ) -> DramAccessResult:
        """Service an access at ``memory_node`` issued from ``requester_node``.

        ``t_arrive`` is the time the request reaches the memory controller
        (the caller adds network latency for remote requests);
        ``local_offset`` selects the bank in detailed mode.
        """
        cfg = self.config
        bw = cfg.node_dram_bytes_per_cycle / self.banks_per_node
        if requester_node != memory_node:
            bw *= cfg.remote_dram_bandwidth_ratio
        factors = self._dram_factors
        if factors is not None:
            bw *= factors[memory_node]
        bank = self._bank_of(local_offset)
        result = self.channel(memory_node, bank).service(
            t_arrive, nbytes, bw, float(cfg.dram_latency_cycles)
        )
        recorder = self.recorder
        if recorder is not None:
            recorder.dram_sample(
                memory_node,
                result.service_start,
                result.service_start - t_arrive,
                result.occupancy,
                nbytes,
            )
        return result

    # ------------------------------------------------------------------
    # Shard state exchange (repro.machine.parallel)
    # ------------------------------------------------------------------

    def export_channels(self, nodes) -> Dict[tuple, tuple]:
        """Channel state of ``nodes`` as plain picklable data.

        Memory channels are serviced only at their owning node (remote
        accesses arrive as events at the memory node), so per-shard
        exports are disjoint, like :meth:`Network.export_channels`.
        """
        wanted = set(nodes)
        return {
            key: (ch.free_at, ch.bytes_served, ch.requests)
            for key, ch in self._channels.items()
            if key[0] in wanted
        }

    def apply_channels(self, state: Dict[tuple, tuple]) -> None:
        """Overwrite local channel state with an :meth:`export_channels`."""
        for (node, bank), (free_at, nbytes, requests) in state.items():
            ch = self.channel(node, bank)
            ch.free_at = free_at
            ch.bytes_served = nbytes
            ch.requests = requests

    def bytes_served(self, node: int) -> int:
        return sum(
            ch.bytes_served
            for (n, _b), ch in self._channels.items()
            if n == node
        )
