"""System network model.

The UpDown machine uses a diameter-3 PolarStar topology (paper Figure 6)
with 0.5 µs cross-node latency, 4 TB/s per-node injection bandwidth, and
32 PB/s bisection bandwidth.  Following the authors' Fastsim, we use a
*streamlined* latency/capacity model rather than a flit-level one:

* intra-node messages see a fixed (small) latency;
* cross-node messages see the 0.5 µs latency — diameter-3 means latency is
  effectively distance-independent, which this model captures by charging a
  single remote constant;
* each node's injection port is a serially-occupied channel: back-to-back
  sends queue behind each other at ``message_bytes / injection_bw``
  occupancy, modeling injection-bandwidth saturation;
* optional seeded latency jitter supports failure-injection tests that
  check applications tolerate message reordering;
* deterministic *fault* perturbations (drop / duplicate / extra delay,
  from a ``repro.faults.FaultPlan``) are applied here too — see
  :meth:`Network.fault_delivery` — so every faulty delivery is still
  charged through the same injection-channel cost model.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from .config import MachineConfig

#: message-fault codes a ``repro.faults.FaultPlan`` hands the machine.
#: Defined here (the bottom of the dependency stack) because both the
#: fault plan and the simulator's send path speak them.
FAULT_NONE: int = 0
FAULT_DROP: int = 1
FAULT_DUPLICATE: int = 2
FAULT_DELAY: int = 3


class InjectionChannel:
    """A serially-occupied port: requests queue behind one another."""

    __slots__ = ("free_at", "bytes_injected")

    def __init__(self) -> None:
        self.free_at: float = 0.0
        self.bytes_injected: int = 0

    def admit(self, t: float, occupancy: float, nbytes: int) -> float:
        """Admit a transfer arriving at ``t``; return its departure time.

        ``bytes_injected`` stays an exact Python int no matter what the
        caller passes: a float ``nbytes`` (easy to produce from derived
        byte-size arithmetic) would flip the counter to floating point,
        which silently loses whole bytes once a long chaos soak pushes
        the total past 2**53.  Coercing here keeps the accounting
        overflow-proof — Python ints are arbitrary-precision.
        """
        start = max(t, self.free_at)
        self.free_at = start + occupancy
        self.bytes_injected += int(nbytes)
        return self.free_at

    def admit_recorded(
        self, t: float, occupancy: float, nbytes: int, recorder, node: int
    ) -> float:
        """:meth:`admit` plus a flight-recorder occupancy/queue-wait sample.

        A separate method so the unrecorded hot path stays branch-free;
        callers pick once per send based on whether a recorder is attached.
        """
        start = max(t, self.free_at)
        self.free_at = start + occupancy
        self.bytes_injected += int(nbytes)
        recorder.inj_sample(node, start, start - t, occupancy, nbytes)
        return self.free_at


class Network:
    """Latency + injection-bandwidth model of the PolarStar interconnect."""

    def __init__(
        self,
        config: MachineConfig,
        jitter_cycles: float = 0.0,
        seed: int = 0,
        recorder=None,
    ) -> None:
        self.config = config
        self.jitter_cycles = jitter_cycles
        self._rng = random.Random(seed)
        self._injection: Dict[int, InjectionChannel] = {}
        #: reply virtual channel per node (split-phase DRAM responses).
        self._reply: Dict[int, InjectionChannel] = {}
        # hot-path constants: latency() runs once or twice per message
        self._local_base = float(config.local_msg_latency_cycles)
        self._remote_base = float(config.remote_msg_latency_cycles)
        self._injection_bw = config.node_injection_bytes_per_cycle
        #: jitter decision hoisted to a plain bool — the per-call float
        #: compare against the attribute was two loads per message.
        self._jitter_on = jitter_cycles > 0.0
        #: occupancy (``nbytes / injection_bw``) memo: transfer sizes
        #: come from a handful of constants (message_bytes, DRAM block
        #: sizes), so the division and the bandwidth attribute load are
        #: paid once per distinct size instead of once per send.
        self._occupancy: Dict[int, float] = {}
        #: flight recorder for channel telemetry, or None (the off tier).
        self.recorder = recorder

    def _channel(self, node: int) -> InjectionChannel:
        ch = self._injection.get(node)
        if ch is None:
            ch = self._injection[node] = InjectionChannel()
        return ch

    def _reply_channel(self, node: int) -> InjectionChannel:
        ch = self._reply.get(node)
        if ch is None:
            ch = self._reply[node] = InjectionChannel()
        return ch

    def injection_backlog(self, node: int, t: float) -> float:
        """Cycles a transfer arriving at ``t`` would wait to enter
        ``node``'s injection port — zero when the channel is free.

        The admission-control signal: ``repro.service`` reads this at
        request-admission time to shed or defer under backpressure
        instead of queueing unboundedly.  Pure read — no channel state
        changes — so sampling it between bounded drains is safe and
        bit-identical across shard counts.
        """
        ch = self._injection.get(node)
        if ch is None:
            return 0.0
        backlog = ch.free_at - t
        return backlog if backlog > 0.0 else 0.0

    def latency(self, src_node: int, dst_node: int) -> float:
        """One-way message latency in cycles."""
        base = self._local_base if src_node == dst_node else self._remote_base
        if self._jitter_on:
            base += self._rng.uniform(0.0, self.jitter_cycles)
        return base

    def deliver_time(
        self,
        t_issue: float,
        src_node: Optional[int],
        dst_node: int,
        nbytes: int,
    ) -> float:
        """Time at which a message issued at ``t_issue`` arrives.

        ``src_node=None`` models host injection (program start), which
        bypasses the modeled fabric.
        """
        if src_node is None:
            return t_issue
        jitter_on = self._jitter_on
        if src_node == dst_node:
            # Intra-node messages ride the on-chip network; no injection
            # port.  latency() is inlined here — one call per message.
            base = self._local_base
            if jitter_on:
                base += self._rng.uniform(0.0, self.jitter_cycles)
            return t_issue + base
        ch = self._injection.get(src_node)
        if ch is None:
            ch = self._injection[src_node] = InjectionChannel()
        occ = self._occupancy
        occupancy = occ.get(nbytes)
        if occupancy is None:
            occupancy = occ[nbytes] = nbytes / self._injection_bw
        recorder = self.recorder
        if recorder is None:
            # InjectionChannel.admit inlined — once per remote message.
            free_at = ch.free_at
            start = t_issue if t_issue > free_at else free_at
            departed = ch.free_at = start + occupancy
            ch.bytes_injected += nbytes
        else:
            departed = ch.admit_recorded(
                t_issue, occupancy, nbytes, recorder, src_node
            )
        base = self._remote_base
        if jitter_on:
            base += self._rng.uniform(0.0, self.jitter_cycles)
        return departed + base

    def dram_hop(
        self,
        t_issue: float,
        src_node: int,
        dst_node: int,
        nbytes: int,
        transit_cycles: float,
        reply: bool = False,
    ) -> float:
        """One direction of a remote split-phase DRAM transfer.

        Like :meth:`deliver_time`, the transfer occupies an injection
        channel at the source node (DRAM-heavy apps saturate injection
        exactly as message-heavy ones do), then rides the fabric for
        ``transit_cycles`` — the knob-derived
        :attr:`MachineConfig.remote_dram_transit_cycles`, kept
        jitter-free so the memory system stays deterministic.  Intra-node
        hops are free (the caller charges device latency).

        ``reply=True`` selects the node's *reply* virtual channel, which
        responses and write completions ride — the split request/reply
        virtual-network separation real interconnects use against
        protocol deadlock.  It also keeps each channel's admissions
        time-ordered: requests are admitted at issue time, replies at
        (future) device-response time, and the serially-occupied
        ``free_at`` model is only accurate under monotone admission times
        — mixing the two frames in one queue would block present-time
        traffic behind reservations that have not physically started.
        """
        if src_node == dst_node:
            return t_issue
        chans = self._reply if reply else self._injection
        ch = chans.get(src_node)
        if ch is None:
            ch = chans[src_node] = InjectionChannel()
        occ = self._occupancy
        occupancy = occ.get(nbytes)
        if occupancy is None:
            occupancy = occ[nbytes] = nbytes / self._injection_bw
        recorder = self.recorder
        if recorder is None:
            # InjectionChannel.admit inlined: this runs twice per remote
            # DRAM access, and the method call costs as much as the math.
            free_at = ch.free_at
            start = t_issue if t_issue > free_at else free_at
            departed = ch.free_at = start + occupancy
            ch.bytes_injected += nbytes
        else:
            departed = ch.admit_recorded(
                t_issue, occupancy, nbytes, recorder, src_node
            )
        return departed + transit_cycles

    # ------------------------------------------------------------------
    # Fault perturbations (repro.faults)
    # ------------------------------------------------------------------

    def fault_delivery(
        self,
        code: int,
        t_issue: float,
        src_node: int,
        dst_node: int,
        nbytes: int,
        extra_delay_cycles: float,
    ) -> Tuple[Optional[float], Optional[float]]:
        """Delivery times for a remote message the fault plan perturbed.

        Returns ``(t_deliver, t_dup)``:

        * ``FAULT_DROP`` → ``(None, None)``.  The message still occupies
          the source injection port — the bytes left the node before the
          fabric lost them — so a drop is never cheaper than a delivery.
        * ``FAULT_DUPLICATE`` → both times set: the spurious copy is a
          second full transfer, re-admitted through the injection channel
          behind the original (duplicates consume real bandwidth).
        * ``FAULT_DELAY`` → ``(t_deliver + extra_delay_cycles, None)``:
          the message took a congested path; the extra cycles ride on top
          of the normal cost-model delivery time.

        Faults only ever *delay or remove* deliveries relative to the
        fault-free schedule — never accelerate them — which is what keeps
        the conservative-lookahead window bound of sharded execution
        valid under any fault plan.
        """
        t_deliver = self.deliver_time(t_issue, src_node, dst_node, nbytes)
        if code == FAULT_DROP:
            return None, None
        if code == FAULT_DUPLICATE:
            t_dup = self.deliver_time(t_issue, src_node, dst_node, nbytes)
            return t_deliver, t_dup
        return t_deliver + extra_delay_cycles, None

    # ------------------------------------------------------------------
    # Shard state exchange (repro.machine.parallel)
    # ------------------------------------------------------------------

    def export_channels(self, nodes) -> Dict[str, Dict[int, tuple]]:
        """Channel state of ``nodes`` as plain picklable data.

        Shard workers ship the channels of *their own* nodes back to the
        coordinator at drain end — every channel is mutated only by its
        owning node, so per-shard exports are disjoint and the parent can
        apply them without conflict.
        """
        wanted = set(nodes)
        return {
            "inj": {
                n: (ch.free_at, ch.bytes_injected)
                for n, ch in self._injection.items()
                if n in wanted
            },
            "reply": {
                n: (ch.free_at, ch.bytes_injected)
                for n, ch in self._reply.items()
                if n in wanted
            },
        }

    def apply_channels(self, state: Dict[str, Dict[int, tuple]]) -> None:
        """Overwrite local channel state with an :meth:`export_channels`."""
        for key, chans in (("inj", self._injection), ("reply", self._reply)):
            for node, (free_at, nbytes) in state[key].items():
                ch = chans.get(node)
                if ch is None:
                    ch = chans[node] = InjectionChannel()
                ch.free_at = free_at
                ch.bytes_injected = nbytes

    def injected_bytes(self, node: int) -> int:
        """Bytes a node put on the fabric (request + reply channels)."""
        total = 0
        ch = self._injection.get(node)
        if ch is not None:
            total += ch.bytes_injected
        ch = self._reply.get(node)
        if ch is not None:
            total += ch.bytes_injected
        return total
