"""Conservative epoch-windowed parallel execution of the sharded DES.

The authors' Fastsim is a parallel C++/OpenMP simulator; this module is
the equivalent capability for the Python DES.  The machine's nodes are
partitioned into contiguous shards, each owning a per-shard event heap
plus the lanes, DRAM channel, and injection/reply channels of its nodes.
An epoch driver repeatedly:

1. finds the global next-event time ``T`` (the min over shard heaps);
2. advances every shard independently through the window
   ``[T, T + lookahead)``;
3. exchanges the boundary events each shard issued for the others, then
   repeats.

``lookahead`` is :attr:`MachineConfig.conservative_lookahead_cycles` —
the minimum number of cycles any cross-node interaction needs to take
effect (cross-node message base latency, or one remote-DRAM fabric
transit).  Because every event a shard executes inside the window can
only schedule work on *other* shards at ``>= T + lookahead``, no shard
can miss an inbound event by running ahead within the window: the
classic conservative (lookahead-based) synchronization argument, the
same barrier-synchronized discipline GraphLab's engines use.

Determinism — the hard requirement — comes from the heap key: every
scheduled event carries ``(time, dest, seq)`` where ``seq`` is assigned
by the *issuing* actor from its private counter (see
``repro.machine.events``).  Each actor (host, lane, or node) executes on
exactly one shard, so the keys a sharded run assigns are byte-for-byte
the keys the sequential run assigns, and each shard pops exactly the
sequential event sequence restricted to its nodes.  Combined with strict
node-ownership of all cost-model state (channels, memory, lanes) and the
window-barrier exchange of everything that crosses shards, every counter,
timestamp, and mailbox entry is bit-identical to the sequential drain.

Two modes share the same windowing and merge order:

* :class:`ShardScheduler` — in-process (``shards=N``): one simulator,
  per-shard heaps, windows executed round-robin under the GIL.  No
  speedup (it exists for tests, debugging, and as the reference the
  parity suite checks the parallel mode against), but the full sharding
  semantics.
* :class:`ParallelExecutor` — multiprocessing (``parallel=True``): one
  forked worker per shard, inheriting the full runtime state copy-on-
  write.  The parent becomes a hub: it computes windows, relays pickled
  boundary batches between workers (as opaque blobs — pickled once at
  the source, unpickled once at the target), replicates functional-
  memory write logs so every process' ``GlobalMemory`` stays current,
  and merges per-drain statistics, host mailbox, logs, channel states,
  and flight-recorder telemetry back into the parent objects at the end
  of each drain.

Worker processes are daemonic and persist across drains (lane, thread,
and scratchpad state lives in them between ``run()`` calls).  Host-side
mutations after the first parallel drain are limited to new injections —
those are forwarded.  Everything else the host does between drains is
invisible to the forked workers: direct writes into memory regions or
lane scratchpads, and registrations of thread classes, KVMSR jobs, or
host mailbox labels.  Registrations are *detected* (via the runtime's
setup token) and rejected with a clear error; multi-phase applications
that set up between runs should use in-process sharding (``shards=N``),
which shares everything and needs no replication.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
import os
import pickle
import traceback
from typing import Any, Dict, List, Optional

from .simulator import QuiescenceStall, SimulationError


class ShardWorkerFailed(SimulationError):
    """A forked shard worker died instead of answering the coordinator.

    Carries which worker (``shard``, ``None`` when only the pipe end is
    known), its ``exitcode``, and the last epoch ``window`` the pool
    completed before the failure — the point to restart analysis from.
    The pool is torn down before this is raised; no orphaned workers or
    open pipes remain.
    """

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        exitcode: Optional[int] = None,
        window: Optional[tuple] = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.exitcode = exitcode
        self.window = window


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def make_scheduler(sim):
    """The shard scheduler matching ``sim``'s configuration."""
    if sim.parallel:
        return ParallelExecutor(sim)
    return ShardScheduler(sim)


class _ShardRouter:
    """Topology arithmetic shared by both execution modes."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.shards: int = sim.shards
        cfg = sim.config
        self.lookahead: float = cfg.conservative_lookahead_cycles
        self.total_lanes: int = cfg.total_lanes
        self.lanes_per_node: int = cfg.lanes_per_node
        self.shard_of_node: List[int] = sim._shard_of_node
        #: nodes owned by each shard (contiguous blocks).
        self.shard_nodes: List[List[int]] = [
            [] for _ in range(self.shards)
        ]
        for node, shard in enumerate(self.shard_of_node):
            self.shard_nodes[shard].append(node)

    def shard_of_entry(self, entry) -> int:
        """Owning shard of a heap entry (lane delivery or DRAM arrival)."""
        dest = entry[1]
        if dest >= self.total_lanes:
            node = dest - self.total_lanes
        else:
            node = dest // self.lanes_per_node
        return self.shard_of_node[node]

    def _flush_host(self) -> None:
        """Deliver collected host-bound entries in sequential order.

        The host mailbox has no feedback into the simulation, so host
        deliveries are buffered during windows and appended at drain end,
        sorted by the same ``(time, seq)`` key the sequential pop loop
        orders them by — the resulting inbox is bit-identical.
        """
        entries = self._host_entries
        if not entries:
            return
        entries.sort(key=lambda e: (e[0], e[2]))
        sim = self.sim
        inbox = sim.host_inbox
        stats = sim.stats
        final_tick = stats.final_tick
        for entry in entries:
            t = entry[0]
            inbox.append((t, entry[3]))
            if t > final_tick:
                final_tick = t
        stats.final_tick = final_tick
        entries.clear()


class ShardScheduler(_ShardRouter):
    """In-process conservative epoch driver (``shards=N, parallel=False``).

    Hooks ``Simulator._route`` so every push lands in the owning shard's
    heap (host-bound entries are buffered — the host is outside the
    machine), then drains the shards window by window by swapping
    ``sim._heap``.  Cross-shard pushes go straight into the target heap:
    conservative lookahead guarantees they land at or beyond the window
    end, so the target shard — whether it ran already this window or not
    — cannot see them early.
    """

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.heaps: List[list] = [[] for _ in range(self.shards)]
        self._host_entries: List[tuple] = []
        #: persistent epoch-window end — survives bounded ``drain(until=)``
        #: re-entries so a stepped run opens windows at exactly the pops
        #: an un-stepped run (and the sequential drain's virtual windows)
        #: would, keeping packet sealing shard- and stepping-invariant.
        self._win_end: float = 0.0
        sim._route = self._route
        # adopt anything injected before the first drain
        pending, sim._heap = sim._heap, []
        for entry in pending:
            self._route(entry)

    def _route(self, entry) -> None:
        if entry[1] < 0:
            self._host_entries.append(entry)
            return
        heapq.heappush(self.heaps[self.shard_of_entry(entry)], entry)

    def drain(self, max_events: Optional[int], until: Optional[float] = None):
        """Drain the shard heaps; ``until`` bounds the drain like the
        sequential :meth:`Simulator.run` bound: only events strictly
        before that tick execute, later entries stay heaped for re-entry.
        Epoch windows are clamped to the bound — always safe, since any
        window no wider than ``t_next + lookahead`` preserves the
        conservative-synchronization argument.
        """
        sim = self.sim
        heaps = self.heaps
        lookahead = self.lookahead
        stats = sim.stats
        budget = max_events
        bound = math.inf if until is None else until
        while True:
            t_next = math.inf
            for heap in heaps:
                if heap and heap[0][0] < t_next:
                    t_next = heap[0][0]
            if t_next >= bound:
                break
            if t_next >= self._win_end:
                # Epoch boundary: seal open coalescing packets so what a
                # packet collects is fixed before any shard advances —
                # the sequential drain seals at exactly this pop via its
                # virtual windows (no-op when coalescing is off).  A
                # bounded drain can stop mid-window; re-entry then
                # continues the old window rather than opening (and
                # sealing at) one the un-stepped run never had.
                sim._seal_packets()
                self._win_end = t_next + lookahead
            win_until = self._win_end if self._win_end < bound else bound
            for shard in range(self.shards):
                heap = heaps[shard]
                if not heap or heap[0][0] >= win_until:
                    continue
                sim._heap = heap
                before = stats.events_executed
                try:
                    sim._drain(budget, win_until)
                finally:
                    sim._heap = []
                if budget is not None:
                    budget -= stats.events_executed - before
        self._flush_host()
        # quiescence verdict: the shard heaps (not sim._heap, empty by
        # construction here) hold whatever a bounded drain left queued
        pending = sim._live_threads()
        stats.pending_threads = pending
        stats.quiesced = (
            pending == 0
            and sim._parked_total == 0
            and not any(heaps)
        )
        return stats

    def close(self) -> None:
        """Nothing to release in-process."""


class ParallelExecutor(_ShardRouter):
    """Forked worker pool running one shard per process.

    The parent never executes events after the fork: it is the window
    coordinator and boundary-message hub.  Per window, the protocol is

    * ``run(until, budget)`` → each worker drains its heap to ``until``
      and replies with its outbound boundary batches (one pre-pickled
      blob per target shard), host-bound entries, functional-memory
      write log, and executed-event count;
    * ``in(batches, write_logs)`` → the parent concatenates the blobs by
      target and relays them; workers apply foreign write logs (in shard
      index order) and push the inbound entries, replying with their next
      event time — which gives the parent the next window's ``T``.

    At drain end (all heaps empty, nothing in flight) each worker ships
    its per-drain state deltas; the parent merges them into the parent
    ``SimStats`` / recorder / logs so callers see exactly what a
    sequential run would have produced.
    """

    def __init__(self, sim) -> None:
        super().__init__(sim)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SimulationError(
                "parallel=True requires the fork start method (POSIX); "
                "use shards with parallel=False on this platform"
            )
        self._procs: Optional[list] = None
        self._conns: Optional[list] = None
        self._host_entries: List[tuple] = []
        self._recorder_base: Optional[Dict[str, Any]] = None
        self._fork_token = None
        self._broken = False
        #: last fully exchanged epoch window ``(T, T + lookahead)`` —
        #: named in :class:`ShardWorkerFailed` when a worker dies.
        self._last_window: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------

    def drain(self, max_events: Optional[int], until: Optional[float] = None):
        sim = self.sim
        if until is not None:
            raise SimulationError(
                "bounded stepping (until=) is not supported with "
                "parallel=True forked workers; use in-process shards"
            )
        if self._broken:
            raise SimulationError(
                "parallel executor is no longer usable (a worker failed "
                "or the pool was shut down); build a fresh runtime"
            )
        if self._procs is None:
            self._fork()
        elif any(proc.exitcode is not None for proc in self._procs):
            # A worker died between drains (OOM kill, crash during a
            # previous abort path): fail loudly now, not with a hung
            # pipe read mid-window.
            err = self._dead_worker_error()
            self._abort()
            raise err
        elif (
            sim._setup_token is not None
            and sim._setup_token() != self._fork_token
        ):
            self._abort()
            raise SimulationError(
                "host-side program setup changed after the parallel "
                "workers forked (thread classes, KVMSR jobs, or host "
                "mailbox labels registered between run() calls); forked "
                "workers cannot observe host-process registrations. "
                "Complete all setup before the first run(), or use "
                "in-process sharding (shards=N, parallel=False) for "
                "multi-phase applications that set up between runs."
            )
        conns = self._conns
        # Any packets the parent coalesced between drains are about to be
        # forwarded as seeds; seal them so later parent-side sends cannot
        # join a batch the workers already own.
        sim._seal_packets()
        # forward injections buffered in the parent since the last drain
        pending, sim._heap = sim._heap, []
        seeds: List[list] = [[] for _ in range(self.shards)]
        for entry in pending:
            if entry[1] < 0:
                self._host_entries.append(entry)
            else:
                seeds[self.shard_of_entry(entry)].append(entry)
        for shard, conn in enumerate(conns):
            batch = seeds[shard]
            conn.send(("seed", _dumps(batch) if batch else None))
        next_ts = [self._recv(conn, "next")[1] for conn in conns]
        budget = max_events
        lookahead = self.lookahead
        while True:
            t_next = min(
                (t for t in next_ts if t is not None), default=None
            )
            if t_next is None:
                break
            until = t_next + lookahead
            for conn in conns:
                conn.send(("run", until, budget))
            outs = [self._recv(conn, "out") for conn in conns]
            self._last_window = (t_next, until)
            if budget is not None:
                budget -= sum(out[4] for out in outs)
                if budget <= 0:
                    self._abort()
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}"
                    )
            wd = sim._watchdog_cycles
            if wd is not None:
                # Workers run the watchdog in report-only mode (a raise
                # inside one shard would desynchronize the window
                # protocol); the parent aggregates their progress marks
                # and is the one that raises, with per-shard dumps.
                progress = max(out[5] for out in outs)
                if until - progress > wd:
                    dump = self._collect_diagnostics()
                    self._abort()
                    raise QuiescenceStall(
                        f"no application progress for "
                        f"{until - progress:.0f} cycles (watchdog "
                        f"threshold {wd:.0f}) across {self.shards} shard "
                        f"workers; only idle/control events are executing",
                        dump,
                    )
            in_blobs: List[List[bytes]] = [[] for _ in range(self.shards)]
            wlog_blobs: List[tuple] = []
            for shard, out in enumerate(outs):
                _tag, out_list, host_blob, wlog_blob, _executed, _prog = out
                for target, blob in enumerate(out_list):
                    if blob is not None:
                        in_blobs[target].append(blob)
                if host_blob is not None:
                    self._host_entries.extend(pickle.loads(host_blob))
                if wlog_blob is not None:
                    wlog_blobs.append((shard, wlog_blob))
            gmem = sim.funcmem
            if gmem is not None:
                # keep the parent's functional memory current — hosts
                # read result regions directly after run()
                for _shard, blob in wlog_blobs:
                    for va, values in pickle.loads(blob):
                        gmem.write_words(va, values)
            for shard, conn in enumerate(conns):
                conn.send((
                    "in",
                    in_blobs[shard],
                    [blob for s, blob in wlog_blobs if s != shard],
                ))
            next_ts = [self._recv(conn, "next")[1] for conn in conns]
        for conn in conns:
            conn.send(("drain_end",))
        finals = [self._recv(conn, "final")[1] for conn in conns]
        self._merge(finals)
        return sim.stats

    def _recv(self, conn, expected: str):
        try:
            msg = conn.recv()
        except EOFError:
            # The pipe closed without a reply: the worker process died
            # (OOM kill, segfault in an extension, os._exit).  Name the
            # dead shard and the last completed window, then tear the
            # rest of the pool down so nothing daemonic lingers.
            err = self._dead_worker_error()
            self._abort()
            raise err from None
        if msg[0] == "error":
            failure = msg[1]
            self._abort()
            raise SimulationError(f"shard worker failed:\n{failure}")
        if msg[0] != expected:
            self._abort()
            raise SimulationError(
                f"protocol error: expected {expected!r}, got {msg[0]!r}"
            )
        return msg

    def _dead_worker_error(self) -> ShardWorkerFailed:
        """Build the :class:`ShardWorkerFailed` naming the dead shard."""
        dead = []
        for shard, proc in enumerate(self._procs or []):
            proc.join(timeout=0.5)
            if proc.exitcode is not None:
                dead.append((shard, proc.exitcode))
        window = self._last_window
        if window is not None:
            where = (
                f"after completing window "
                f"[{window[0]:.0f}, {window[1]:.0f})"
            )
        else:
            where = "before completing any window"
        if dead:
            shard, exitcode = dead[0]
            return ShardWorkerFailed(
                f"shard {shard} worker died (exit code {exitcode}) "
                f"{where}; remaining workers were shut down",
                shard=shard,
                exitcode=exitcode,
                window=window,
            )
        return ShardWorkerFailed(
            f"a shard worker closed its pipe without replying {where}; "
            f"remaining workers were shut down",
            window=window,
        )

    def _collect_diagnostics(self) -> Dict[str, Any]:
        """Best-effort per-shard stall dumps for a watchdog report.

        Workers that fail to answer (already wedged or dead) are
        reported as unavailable rather than blocking the raise.
        """
        dumps: Dict[str, Any] = {}
        for shard, conn in enumerate(self._conns or []):
            try:
                conn.send(("diag",))
                msg = conn.recv()
                dumps[f"shard_{shard}"] = (
                    msg[1] if msg[0] == "diag" else f"unexpected {msg[0]!r}"
                )
            except Exception:
                dumps[f"shard_{shard}"] = "unavailable (worker not responding)"
        return dumps

    def _fork(self) -> None:
        sim = self.sim
        if sim.dispatcher is None:
            raise SimulationError("no dispatcher installed")
        if sim.recorder is not None:
            self._recorder_base = sim.recorder.export_state()
        if sim._setup_token is not None:
            self._fork_token = sim._setup_token()
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for shard in range(self.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=self._worker_main,
                args=(shard, child_conn),
                daemon=True,
                name=f"des-shard-{shard}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _merge(self, finals: List[Dict[str, Any]]) -> None:
        """Fold per-drain worker state into the parent's objects."""
        sim = self.sim
        stats = sim.stats
        for final in finals:
            stats.absorb_delta(final["stats"])
            stats.busy_cycles_by_lane.update(final["busy"])
            labels = final["labels"]
            if labels:
                by_label = stats.events_by_label
                for label, count in labels.items():
                    by_label[label] += count
            sim.network.apply_channels(final["channels"])
            sim.memory.apply_channels(final["mem"])
        hostlog = sim.hostlog
        if hostlog is not None:
            fresh = [e for final in finals for e in final["udlog"]]
            if fresh:
                hostlog.entries.extend(fresh)
                hostlog.entries.sort(
                    key=lambda e: (e.tick, e.network_id, e.thread_id)
                )
        if sim.trace_enabled:
            fresh = [t for final in finals for t in final["trace"]]
            if fresh:
                sim.trace.extend(fresh)
                sim.trace.sort(
                    key=lambda t: (
                        t[0], t[1], -1 if t[2] is None else t[2], t[3], t[4]
                    )
                )
        recorder = sim.recorder
        if recorder is not None:
            recorder.restore_state(self._recorder_base)
            for final in finals:
                part = final["recorder"]
                if part is not None:
                    recorder.merge_from(part)
            recorder.sort_timelines()
        # quiescence verdict: every shard heap is empty at drain end by
        # construction, so live threads are the whole story
        pending = sum(final["pending"] for final in finals)
        stats.pending_threads = pending
        stats.quiesced = pending == 0
        self._flush_host()

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        After the pool held simulation state, the executor cannot be
        reused — lane/thread state lived in the dead workers.
        """
        procs, self._procs = self._procs, None
        conns, self._conns = self._conns, None
        if not procs:
            return
        self._broken = True
        for conn in conns:
            try:
                conn.send(("exit",))
            except Exception:
                pass
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass

    def _abort(self) -> None:
        self._broken = True
        procs, self._procs = self._procs, None
        conns, self._conns = self._conns, None
        if not procs:
            return
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5)
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Worker side (runs in the forked child)
    # ------------------------------------------------------------------

    def _worker_main(self, shard: int, conn) -> None:
        status = 0
        try:
            self._worker_loop(shard, conn)
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except Exception:
                pass
            status = 1
        finally:
            try:
                conn.close()
            except Exception:
                pass
            # skip atexit/teardown inherited from the parent process
            os._exit(status)

    def _worker_loop(self, shard: int, conn) -> None:
        sim = self.sim
        shards = self.shards
        sim._scheduler = None  # this process is a plain windowed drainer
        # a raise inside one worker would wedge the window protocol; the
        # parent aggregates progress marks and raises QuiescenceStall
        sim._wd_report_only = True
        sim._heap = heap = []
        heappush = heapq.heappush
        outbox: List[list] = [[] for _ in range(shards)]
        host_out: List[tuple] = []
        shard_of_entry = self.shard_of_entry

        def route(entry) -> None:
            dest = entry[1]
            if dest < 0:
                host_out.append(entry)
                return
            target = shard_of_entry(entry)
            if target == shard:
                heappush(heap, entry)
            else:
                outbox[target].append(entry)

        sim._route = route
        # log functional-memory writes for cross-process replication
        wlog: List[tuple] = []
        gmem = sim.funcmem
        orig_write = None
        if gmem is not None:
            orig_write = gmem.write_words

            def write_words(va, values):
                wlog.append((va, list(values)))
                orig_write(va, values)

            gmem.write_words = write_words
        # fresh per-worker recorder: the parent stitches the parts back
        # onto its pre-fork snapshot, so workers must not re-report
        # telemetry they inherited at fork time
        had_recorder = sim.recorder is not None
        if had_recorder:
            _rebind_recorder(sim, sim.recorder.sibling())
        hostlog = sim.hostlog
        stats = sim.stats
        stats_base = stats.scalar_snapshot()
        labels_base = dict(stats.events_by_label)
        udlog_base = len(hostlog.entries) if hostlog is not None else 0
        trace_base = len(sim.trace)
        my_nodes = self.shard_nodes[shard]
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "run":
                _op, until, budget = msg
                before = stats.events_executed
                # window start: same seal point as the in-process
                # scheduler — before any event of the window executes
                # and before this window's outboxes are pickled
                sim._seal_packets()
                try:
                    sim._drain(budget, until)
                except Exception:
                    conn.send(("error", traceback.format_exc()))
                    continue
                out_blobs: List[Optional[bytes]] = []
                for target in range(shards):
                    batch = outbox[target]
                    if batch:
                        out_blobs.append(_dumps(batch))
                        batch.clear()
                    else:
                        out_blobs.append(None)
                host_blob = None
                if host_out:
                    host_blob = _dumps(host_out)
                    host_out.clear()
                wlog_blob = None
                if wlog:
                    wlog_blob = _dumps(wlog)
                    wlog.clear()
                conn.send((
                    "out", out_blobs, host_blob, wlog_blob,
                    stats.events_executed - before,
                    sim._wd_last_progress,
                ))
            elif op == "in":
                _op, in_blobs, wlog_blobs = msg
                if orig_write is not None:
                    for blob in wlog_blobs:
                        for va, values in pickle.loads(blob):
                            orig_write(va, values)
                for blob in in_blobs:
                    for entry in pickle.loads(blob):
                        heappush(heap, entry)
                conn.send(("next", heap[0][0] if heap else None))
            elif op == "seed":
                blob = msg[1]
                if blob is not None:
                    for entry in pickle.loads(blob):
                        heappush(heap, entry)
                conn.send(("next", heap[0][0] if heap else None))
            elif op == "drain_end":
                payload = {
                    "stats": stats.delta_since(stats_base),
                    "busy": {
                        nwid: lane.busy_cycles
                        for nwid, lane in sim._lanes.items()
                        if lane.busy_cycles
                    },
                    "labels": (
                        {
                            label: count - labels_base.get(label, 0)
                            for label, count in stats.events_by_label.items()
                            if count != labels_base.get(label, 0)
                        }
                        if sim.detailed_stats
                        else None
                    ),
                    "channels": sim.network.export_channels(my_nodes),
                    "mem": sim.memory.export_channels(my_nodes),
                    "udlog": (
                        hostlog.entries[udlog_base:]
                        if hostlog is not None
                        else []
                    ),
                    "trace": (
                        sim.trace[trace_base:] if sim.trace_enabled else []
                    ),
                    "recorder": sim.recorder if had_recorder else None,
                    "pending": sim._live_threads(),
                }
                conn.send(("final", payload))
                stats_base = stats.scalar_snapshot()
                labels_base = dict(stats.events_by_label)
                udlog_base = (
                    len(hostlog.entries) if hostlog is not None else 0
                )
                trace_base = len(sim.trace)
            elif op == "diag":
                conn.send(("diag", sim.stall_dump()))
            elif op == "exit":
                return
            else:
                raise SimulationError(f"unknown coordinator op {op!r}")


def _rebind_recorder(sim, fresh) -> None:
    """Swap a simulator's recorder hooks to ``fresh`` (same tier)."""
    old = sim.recorder
    sim.recorder = fresh
    if old.record_messages:
        sim._rec_msg = fresh.message
        if sim._rec_packet is not None:
            sim._rec_packet = fresh.packet
    if old.record_faults:
        sim._rec_fault = fresh.fault
    if old.record_channels:
        sim.network.recorder = fresh
        sim.memory.recorder = fresh
    for rebind in sim._recorder_rebinders:
        rebind(fresh)
