"""Conservative epoch-windowed parallel execution of the sharded DES.

The authors' Fastsim is a parallel C++/OpenMP simulator; this module is
the equivalent capability for the Python DES.  The machine's nodes are
partitioned into contiguous shards, each owning a per-shard event heap
plus the lanes, DRAM channel, and injection/reply channels of its nodes.
An epoch driver repeatedly:

1. finds the global next-event time ``T`` (the min over shard heaps);
2. advances every shard independently through the window
   ``[T, T + lookahead)``;
3. exchanges the boundary events each shard issued for the others, then
   repeats.

``lookahead`` is :attr:`MachineConfig.conservative_lookahead_cycles` —
the minimum number of cycles any cross-node interaction needs to take
effect (cross-node message base latency, or one remote-DRAM fabric
transit).  Because every event a shard executes inside the window can
only schedule work on *other* shards at ``>= T + lookahead``, no shard
can miss an inbound event by running ahead within the window: the
classic conservative (lookahead-based) synchronization argument, the
same barrier-synchronized discipline GraphLab's engines use.

Determinism — the hard requirement — comes from the heap key: every
scheduled event carries ``(time, dest, seq)`` where ``seq`` is assigned
by the *issuing* actor from its private counter (see
``repro.machine.events``).  Each actor (host, lane, or node) executes on
exactly one shard, so the keys a sharded run assigns are byte-for-byte
the keys the sequential run assigns, and each shard pops exactly the
sequential event sequence restricted to its nodes.  Combined with strict
node-ownership of all cost-model state (channels, memory, lanes) and the
window-barrier exchange of everything that crosses shards, every counter,
timestamp, and mailbox entry is bit-identical to the sequential drain.

Two modes share the same windowing and merge order:

* :class:`ShardScheduler` — in-process (``shards=N``): one simulator,
  per-shard heaps, windows executed round-robin under the GIL.  No
  speedup (it exists for tests, debugging, and as the reference the
  parity suite checks the parallel mode against), but the full sharding
  semantics.
* :class:`ParallelExecutor` — multiprocessing (``parallel=True``): one
  forked worker per shard, inheriting the full runtime state copy-on-
  write.  Boundary records flow *directly between workers* through
  shared-memory ring buffers (one fixed-capacity ring per ordered shard
  pair, struct-packed wire frames with per-stream label interning — see
  ``repro.machine.events``); the parent degrades to a window
  coordinator exchanging only small control tuples over the Pipes.

Adaptive lookahead
------------------
When a full window completes with **zero** cross-shard boundary
records, the next window doubles its width, up to
``parallel_adaptive_max`` base lookaheads; the moment any shard emits a
boundary record the width collapses back to one.  A widened window of
``k`` lookaheads runs internally as ``k`` sub-steps of exactly one
lookahead each, synchronized worker-to-worker through shared progress
counters (a CMB-style barrier that never touches the parent): before
executing global sub-step ``g`` a worker waits until every peer has
published sub-step ``g`` and drains its inbound rings.  A record
delivered inside sub-step ``g`` was necessarily emitted in a sub-step
``<= g-1`` (conservative lookahead bounds delivery at one sub-step
width past emission), so the wait guarantees it has arrived — windows
stay conservative at any widening factor and fingerprints remain
bit-exact.  Coalescing pins the factor at 1: packet seal points must
anchor at global next-event times, which only unwidened windows visit.

All shared-memory cursors and counters are read and written exclusively
under one ``multiprocessing.Array`` lock; the mutex acquire/release
pairs provide the happens-before edges between a producer's payload
writes and a consumer's reads (CPython offers no portable fences).
Ring payload bytes themselves are written outside the lock — a consumer
never reads past the published cursor.

Ring capacity (``parallel_ring_kib``) is a performance knob, never a
correctness one: frames that do not fit at a window's final publish
spill to the old pickled-blob Pipe channel (relayed by the parent,
counted in the hub metrics); frames mid-window spin for space while
draining their own inbound rings, which keeps the fabric deadlock-free.

Worker processes are daemonic and persist across drains (lane, thread,
and scratchpad state lives in them between ``run()`` calls).  Host-side
mutations after the first parallel drain are limited to new injections —
those are forwarded.  Everything else the host does between drains is
invisible to the forked workers: direct writes into memory regions or
lane scratchpads, and registrations of thread classes, KVMSR jobs, or
host mailbox labels.  Registrations are *detected* (via the runtime's
setup token) and rejected with a clear error; multi-phase applications
that set up between runs should use in-process sharding (``shards=N``),
which shares everything and needs no replication.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
import multiprocessing.connection
import os
import pickle
import sys
import tempfile
import time
import traceback
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional

from .events import BoundaryDecoder, BoundaryEncoder
from .simulator import QuiescenceStall, SimulationError


class ShardWorkerFailed(SimulationError):
    """A forked shard worker died instead of answering the coordinator.

    Carries which worker (``shard``, ``None`` when only the pipe end is
    known), its ``exitcode``, the last epoch ``window`` the pool
    completed before the failure — the point to restart analysis from —
    and ``stderr_tail``, the last ~2 KB the dead worker wrote to its
    captured stderr (empty when it wrote nothing).  The pool is torn
    down before this is raised; no orphaned workers or open pipes
    remain.
    """

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        exitcode: Optional[int] = None,
        window: Optional[tuple] = None,
        stderr_tail: str = "",
    ) -> None:
        if stderr_tail:
            message = f"{message}\nworker stderr tail:\n{stderr_tail}"
        super().__init__(message)
        self.shard = shard
        self.exitcode = exitcode
        self.window = window
        self.stderr_tail = stderr_tail


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def make_scheduler(sim):
    """The shard scheduler matching ``sim``'s configuration."""
    if sim.parallel:
        return ParallelExecutor(sim)
    return ShardScheduler(sim)


class _ShardRouter:
    """Topology arithmetic shared by both execution modes."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.shards: int = sim.shards
        cfg = sim.config
        self.lookahead: float = cfg.conservative_lookahead_cycles
        self.total_lanes: int = cfg.total_lanes
        self.lanes_per_node: int = cfg.lanes_per_node
        self.shard_of_node: List[int] = sim._shard_of_node
        #: nodes owned by each shard (contiguous blocks).
        self.shard_nodes: List[List[int]] = [
            [] for _ in range(self.shards)
        ]
        for node, shard in enumerate(self.shard_of_node):
            self.shard_nodes[shard].append(node)

    def shard_of_entry(self, entry) -> int:
        """Owning shard of a heap entry (lane delivery or DRAM arrival)."""
        dest = entry[1]
        if dest >= self.total_lanes:
            node = dest - self.total_lanes
        else:
            node = dest // self.lanes_per_node
        return self.shard_of_node[node]

    def _flush_host(self) -> None:
        """Deliver collected host-bound entries in sequential order.

        The host mailbox has no feedback into the simulation, so host
        deliveries are buffered during windows and appended at drain end,
        sorted by the same ``(time, seq)`` key the sequential pop loop
        orders them by — the resulting inbox is bit-identical.
        """
        entries = self._host_entries
        if not entries:
            return
        entries.sort(key=lambda e: (e[0], e[2]))
        sim = self.sim
        inbox = sim.host_inbox
        stats = sim.stats
        final_tick = stats.final_tick
        for entry in entries:
            t = entry[0]
            inbox.append((t, entry[3]))
            if t > final_tick:
                final_tick = t
        stats.final_tick = final_tick
        entries.clear()


class ShardScheduler(_ShardRouter):
    """In-process conservative epoch driver (``shards=N, parallel=False``).

    Hooks ``Simulator._route`` so every push lands in the owning shard's
    heap (host-bound entries are buffered — the host is outside the
    machine), then drains the shards window by window by swapping
    ``sim._heap``.  Cross-shard pushes go straight into the target heap:
    conservative lookahead guarantees they land at or beyond the window
    end, so the target shard — whether it ran already this window or not
    — cannot see them early.
    """

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.heaps: List[list] = [[] for _ in range(self.shards)]
        self._host_entries: List[tuple] = []
        #: persistent epoch-window end — survives bounded ``drain(until=)``
        #: re-entries so a stepped run opens windows at exactly the pops
        #: an un-stepped run (and the sequential drain's virtual windows)
        #: would, keeping packet sealing shard- and stepping-invariant.
        self._win_end: float = 0.0
        sim._route = self._route
        # adopt anything injected before the first drain
        pending, sim._heap = sim._heap, []
        for entry in pending:
            self._route(entry)

    def _route(self, entry) -> None:
        if entry[1] < 0:
            self._host_entries.append(entry)
            return
        heapq.heappush(self.heaps[self.shard_of_entry(entry)], entry)

    def drain(self, max_events: Optional[int], until: Optional[float] = None):
        """Drain the shard heaps; ``until`` bounds the drain like the
        sequential :meth:`Simulator.run` bound: only events strictly
        before that tick execute, later entries stay heaped for re-entry.
        Epoch windows are clamped to the bound — always safe, since any
        window no wider than ``t_next + lookahead`` preserves the
        conservative-synchronization argument.
        """
        sim = self.sim
        heaps = self.heaps
        lookahead = self.lookahead
        stats = sim.stats
        budget = max_events
        bound = math.inf if until is None else until
        while True:
            t_next = math.inf
            for heap in heaps:
                if heap and heap[0][0] < t_next:
                    t_next = heap[0][0]
            if t_next >= bound:
                break
            if t_next >= self._win_end:
                # Epoch boundary: seal open coalescing packets so what a
                # packet collects is fixed before any shard advances —
                # the sequential drain seals at exactly this pop via its
                # virtual windows (no-op when coalescing is off).  A
                # bounded drain can stop mid-window; re-entry then
                # continues the old window rather than opening (and
                # sealing at) one the un-stepped run never had.
                sim._seal_packets()
                self._win_end = t_next + lookahead
            win_until = self._win_end if self._win_end < bound else bound
            for shard in range(self.shards):
                heap = heaps[shard]
                if not heap or heap[0][0] >= win_until:
                    continue
                sim._heap = heap
                before = stats.events_executed
                try:
                    sim._drain(budget, win_until)
                finally:
                    sim._heap = []
                if budget is not None:
                    budget -= stats.events_executed - before
        self._flush_host()
        # quiescence verdict: the shard heaps (not sim._heap, empty by
        # construction here) hold whatever a bounded drain left queued
        pending = sim._live_threads()
        stats.pending_threads = pending
        stats.quiesced = (
            pending == 0
            and sim._parked_total == 0
            and not any(heaps)
        )
        return stats

    def close(self) -> None:
        """Nothing to release in-process."""


class _RingHub:
    """Shared-memory boundary fabric for one worker pool.

    One :mod:`multiprocessing.shared_memory` segment holds ``S * S``
    fixed-capacity rings (ring ``p → q`` at byte offset
    ``(p*S + q) * capacity``; the ``p == q`` diagonal is dead space kept
    for trivially uniform arithmetic).  One locked ``Array('q')`` holds
    the control words, laid out as::

        [0, S)              progress counter of shard p (published
                            window sub-steps, monotone)
        [S, S + S*S)        published write cursor of ring p→q
                            (total bytes, monotone; index = S + p*S + q)
        [S + S*S, S + 2S*S) read cursor of ring p→q (written only by
                            consumer q; index = S + S*S + p*S + q)

    Created in the parent before forking; children inherit the mapping
    and the lock, so no name-based attach is needed and child exits via
    ``os._exit`` never double-free it.  Only the parent releases it.
    """

    def __init__(self, shards: int, capacity: int, ctx) -> None:
        self.shards = shards
        self.capacity = capacity
        self.shm = shared_memory.SharedMemory(
            create=True, size=shards * shards * capacity
        )
        self.ctrl = ctx.Array("q", shards + 2 * shards * shards, lock=True)
        self._released = False

    def release(self) -> None:
        """Close and unlink the segment (idempotent, parent-only)."""
        if self._released:
            return
        self._released = True
        try:
            self.shm.close()
        except Exception:
            pass
        try:
            self.shm.unlink()
        except Exception:
            pass


class _WorkerPort:
    """One worker's endpoint on the ring fabric.

    Owns the outbound rings ``me → *`` (write cursors mirrored locally —
    nobody else writes them) and the inbound read cursors ``* → me``
    (likewise).  Encoders/decoders are per ordered stream so label
    interning announcements always precede cached uses, including across
    the spill path (a spilled frame continues its ring's stream and is
    decoded after every ring frame of the same window — producer order
    is preserved end to end).

    ``pending_wlogs`` holds decoded foreign functional-memory writes as
    ``(producer, step, va, values)``: frames may physically arrive up to
    one sub-step early (immediate cursor publication is what lets a
    producer free ring space mid-flush), so application is deferred
    until the consumer's own progress passes the producer's emission
    sub-step — the visible write order is then a pure function of the
    simulation, not of scheduling jitter.
    """

    _SPIN_YIELDS = 64
    _SPIN_SLEEP_S = 0.0005
    _SPIN_DEADLINE_S = 600.0

    def __init__(self, hub: _RingHub, shard: int) -> None:
        self.me = shard
        S = self.shards = hub.shards
        self.cap = hub.capacity
        self.buf = hub.shm.buf
        self.lock = hub.ctrl.get_lock()
        self.c = hub.ctrl.get_obj()
        self.enc = [BoundaryEncoder() for _ in range(S)]
        self.dec = [BoundaryDecoder() for _ in range(S)]
        #: published write cursors of my outbound rings (local mirror).
        self.wr = [0] * S
        #: my read positions on inbound rings (local mirror).
        self.rd = [0] * S
        #: cached view of each consumer's read cursor on my outbound
        #: ring — refreshed under the lock only when space looks short.
        self.peer_rd = [0] * S
        #: my published progress counter (total window sub-steps).
        self.step = 0
        self.pending_wlogs: List[tuple] = []
        # transport metrics (shipped to the parent hub)
        self.bytes_out = 0
        self.frames_out = 0
        self.barrier_wait_s = 0.0

    def _wr_idx(self, p: int, q: int) -> int:
        return self.shards + p * self.shards + q

    def _rd_idx(self, p: int, q: int) -> int:
        return self.shards + self.shards * self.shards + p * self.shards + q

    def try_write(self, target: int, payload: bytes, drain_cb, may_spill: bool) -> bool:
        """Frame ``payload`` onto ring ``me → target``.

        Returns ``False`` — caller must spill to the Pipe channel — only
        when ``may_spill`` (a window's final publish, where the parent
        relay still reaches the consumer before anything can execute the
        records).  Mid-window the frame *must* travel by ring, so a full
        ring spins for space, draining our own inbound rings while
        waiting: every mid-window wait in the fabric drains, so some
        consumer always makes progress and the spin cannot deadlock.
        """
        n = len(payload) + 4
        cap = self.cap
        me = self.me
        if n > cap:
            if may_spill:
                return False
            raise SimulationError(
                f"a boundary frame of {n} bytes exceeds the shared ring "
                f"capacity ({cap} bytes) and cannot be deferred "
                f"mid-window; raise parallel_ring_kib or lower "
                f"parallel_adaptive_max"
            )
        peer_rd = self.peer_rd
        wr = self.wr
        if cap - (wr[target] - peer_rd[target]) < n:
            rd_idx = self._rd_idx(me, target)
            deadline = None
            spins = 0
            while True:
                with self.lock:
                    peer_rd[target] = self.c[rd_idx]
                if cap - (wr[target] - peer_rd[target]) >= n:
                    break
                if may_spill:
                    return False
                if deadline is None:
                    deadline = time.monotonic() + self._SPIN_DEADLINE_S
                elif time.monotonic() > deadline:
                    raise SimulationError(
                        f"shard {me} waited more than "
                        f"{int(self._SPIN_DEADLINE_S)}s for shard {target} "
                        f"to drain a full boundary ring; a peer worker is "
                        f"stalled or dead"
                    )
                drain_cb()
                spins += 1
                time.sleep(0 if spins <= self._SPIN_YIELDS else self._SPIN_SLEEP_S)
        pos = wr[target] % cap
        base = (me * self.shards + target) * cap
        data = (n - 4).to_bytes(4, "little") + payload
        end = pos + n
        buf = self.buf
        if end <= cap:
            buf[base + pos : base + end] = data
        else:
            k = cap - pos
            buf[base + pos : base + cap] = data[:k]
            buf[base : base + end - cap] = data[k:]
        wr[target] += n
        # Publish immediately (not at sub-step end): consumers may
        # legally decode frames of a sub-step still in progress — entry
        # records self-gate by delivery time and wlogs defer by step tag
        # — and immediate publication is what lets a consumer free ring
        # space while we are mid-flush.
        with self.lock:
            self.c[self._wr_idx(me, target)] = wr[target]
        self.bytes_out += n
        self.frames_out += 1
        return True

    def drain(self, entry_cb) -> None:
        """Consume every published inbound frame.

        Entries go to ``entry_cb`` immediately (the heap gates them by
        delivery time); wlog frames queue in :attr:`pending_wlogs` for
        the caller's next deterministic application point.
        """
        S, me, cap = self.shards, self.me, self.cap
        c, buf, rd = self.c, self.buf, self.rd
        with self.lock:
            wr = [c[self._wr_idx(p, me)] for p in range(S)]
        moved = False
        pending = self.pending_wlogs
        for p in range(S):
            if p == me:
                continue
            have = wr[p] - rd[p]
            if not have:
                continue
            moved = True
            base = (p * S + me) * cap
            start = rd[p] % cap
            end = start + have
            if end <= cap:
                region = bytes(buf[base + start : base + end])
            else:
                region = bytes(buf[base + start : base + cap]) + bytes(
                    buf[base : base + end - cap]
                )
            pos = 0
            decode = self.dec[p].decode_frame
            while pos < have:
                n = int.from_bytes(region[pos : pos + 4], "little")
                frame = decode(region, pos + 4)
                pos += 4 + n
                if frame[0] == "entry":
                    entry_cb(frame[1])
                else:
                    pending.append((p, frame[3], frame[1], frame[2]))
            rd[p] += have
        if moved:
            with self.lock:
                for p in range(S):
                    if p != me:
                        c[self._rd_idx(p, me)] = rd[p]

    def wait_for(self, value: int, drain_cb) -> None:
        """Block until every peer's progress counter reaches ``value``.

        Drains inbound rings while spinning (a peer may be blocked on
        *our* consumption) and accounts the elapsed time as barrier
        wait.
        """
        me, S, c = self.me, self.shards, self.c
        t0 = time.monotonic()
        deadline = t0 + self._SPIN_DEADLINE_S
        spins = 0
        while True:
            with self.lock:
                ok = True
                for p in range(S):
                    if p != me and c[p] < value:
                        ok = False
                        break
            if ok:
                break
            drain_cb()
            spins += 1
            time.sleep(0 if spins <= self._SPIN_YIELDS else self._SPIN_SLEEP_S)
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"shard {me} waited more than "
                    f"{int(self._SPIN_DEADLINE_S)}s for peers to reach "
                    f"window sub-step {value}; a peer worker is stalled "
                    f"or dead"
                )
        self.barrier_wait_s += time.monotonic() - t0

    def publish(self, value: int) -> None:
        """Advance my progress counter to ``value`` (sub-steps done)."""
        with self.lock:
            self.c[self.me] = value
        self.step = value


class ParallelExecutor(_ShardRouter):
    """Forked worker pool running one shard per process.

    The parent never executes events after the fork: it is the window
    coordinator.  Per window it sends one ``run(T, nsteps, budget)``
    control tuple per worker and receives one
    ``out(executed, progress, next_t, emitted, ring_bytes, spill)``
    tuple back — all boundary records travel worker-to-worker through
    the :class:`_RingHub` shared-memory rings, so healthy-path parent
    CPU work per window is O(control tuple), not O(boundary bytes).
    Only ring overflow (counted in :attr:`hub_metrics`) routes records
    through the parent, via an extra ``spill`` round.

    At drain end (all heaps empty, nothing in flight) each worker ships
    its per-drain state deltas — statistics, recorder telemetry, channel
    states, host-bound entries, the cumulative functional-memory write
    log — in one batch; the parent merges them so callers see exactly
    what a sequential run would have produced.
    """

    def __init__(self, sim) -> None:
        super().__init__(sim)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SimulationError(
                "parallel=True requires the fork start method (POSIX); "
                "use shards with parallel=False on this platform"
            )
        self._procs: Optional[list] = None
        self._conns: Optional[list] = None
        self._hub: Optional[_RingHub] = None
        self._stderr_paths: Optional[List[str]] = None
        self._host_entries: List[tuple] = []
        self._fork_token = None
        self._broken = False
        #: last fully exchanged epoch window ``(T, window_end)`` —
        #: named in :class:`ShardWorkerFailed` when a worker dies.
        self._last_window: Optional[tuple] = None
        cfg = sim.config
        #: host-side transport metrics (deliberately outside ``SimStats``
        #: — they describe the coordinator, not the simulated machine,
        #: and must not perturb sequential-vs-parallel fingerprints).
        self.hub_metrics: Dict[str, Any] = {
            "windows": 0,
            "window_hist": {},
            "boundary_bytes": 0,
            "boundary_records": 0,
            "ring_overflows": 0,
            "spill_phases": 0,
            "barrier_wait_s": 0.0,
            "adaptive_max": 1 if cfg.coalescing else cfg.parallel_adaptive_max,
            "ring_kib": cfg.parallel_ring_kib,
        }

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------

    def drain(self, max_events: Optional[int], until: Optional[float] = None):
        sim = self.sim
        if until is not None:
            raise SimulationError(
                "bounded stepping (until=) is not supported with "
                "parallel=True forked workers; use in-process shards"
            )
        if self._broken:
            raise SimulationError(
                "parallel executor is no longer usable (a worker failed "
                "or the pool was shut down); build a fresh runtime"
            )
        if self._procs is None:
            self._fork()
        elif any(proc.exitcode is not None for proc in self._procs):
            # A worker died between drains (OOM kill, crash during a
            # previous abort path): fail loudly now, not with a hung
            # pipe read mid-window.
            err = self._dead_worker_error()
            self._abort()
            raise err
        elif (
            sim._setup_token is not None
            and sim._setup_token() != self._fork_token
        ):
            self._abort()
            raise SimulationError(
                "host-side program setup changed after the parallel "
                "workers forked (thread classes, KVMSR jobs, or host "
                "mailbox labels registered between run() calls); forked "
                "workers cannot observe host-process registrations. "
                "Complete all setup before the first run(), or use "
                "in-process sharding (shards=N, parallel=False) for "
                "multi-phase applications that set up between runs."
            )
        conns = self._conns
        metrics = self.hub_metrics
        # Any packets the parent coalesced between drains are about to be
        # forwarded as seeds; seal them so later parent-side sends cannot
        # join a batch the workers already own.
        sim._seal_packets()
        # forward injections buffered in the parent since the last drain
        pending, sim._heap = sim._heap, []
        seeds: List[list] = [[] for _ in range(self.shards)]
        for entry in pending:
            if entry[1] < 0:
                self._host_entries.append(entry)
            else:
                seeds[self.shard_of_entry(entry)].append(entry)
        for shard, conn in enumerate(conns):
            batch = seeds[shard]
            conn.send(("seed", _dumps(batch) if batch else None))
        next_ts = [msg[1] for msg in self._recv_all("next")]
        budget = max_events
        lookahead = self.lookahead
        adaptive_max = self.hub_metrics["adaptive_max"]
        nsteps = 1
        wd = sim._watchdog_cycles
        hist = metrics["window_hist"]
        while True:
            t_next = min(
                (t for t in next_ts if t is not None), default=None
            )
            if t_next is None:
                break
            window_end = t_next + nsteps * lookahead
            for conn in conns:
                conn.send(("run", t_next, nsteps, budget))
            outs = self._recv_all("out")
            self._last_window = (t_next, window_end)
            metrics["windows"] += 1
            hist[nsteps] = hist.get(nsteps, 0) + 1
            if budget is not None:
                budget -= sum(out[1] for out in outs)
                if budget <= 0:
                    self._abort()
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}"
                    )
            if wd is not None:
                # Workers run the watchdog in report-only mode (a raise
                # inside one shard would desynchronize the window
                # protocol); the parent aggregates their progress marks
                # and is the one that raises, with per-shard dumps.
                progress = max(out[2] for out in outs)
                if window_end - progress > wd:
                    dump = self._collect_diagnostics()
                    self._abort()
                    raise QuiescenceStall(
                        f"no application progress for "
                        f"{window_end - progress:.0f} cycles (watchdog "
                        f"threshold {wd:.0f}) across {self.shards} shard "
                        f"workers; only idle/control events are executing",
                        dump,
                    )
            emitted = sum(out[4] for out in outs)
            metrics["boundary_records"] += emitted
            metrics["boundary_bytes"] += sum(out[5] for out in outs)
            next_ts = [out[3] for out in outs]
            # Relay ring-overflow spills (rare: capacity exceeded at a
            # final publish).  Each group keeps the producer identity so
            # the consumer decodes with the matching stream state.
            spill_to: Dict[int, list] = {}
            n_spilled = 0
            for producer, out in enumerate(outs):
                spill = out[6]
                if not spill:
                    continue
                for target, payloads in spill:
                    spill_to.setdefault(target, []).append(
                        (producer, payloads)
                    )
                    n_spilled += len(payloads)
            if spill_to:
                metrics["spill_phases"] += 1
                metrics["ring_overflows"] += n_spilled
                targets = sorted(spill_to)
                for target in targets:
                    conns[target].send(("spill", spill_to[target]))
                replies = self._recv_all("next", shards=targets)
                for target in targets:
                    next_ts[target] = replies[target][1]
            # Adaptive lookahead: a quiet window earns a doubled next
            # window (capped); any boundary record collapses to base.
            if emitted or adaptive_max == 1:
                nsteps = 1
            elif nsteps < adaptive_max:
                nsteps = min(nsteps * 2, adaptive_max)
        for conn in conns:
            conn.send(("drain_end",))
        finals = [msg[1] for msg in self._recv_all("final")]
        self._merge(finals)
        return sim.stats

    def _recv_all(self, expected: str, shards: Optional[List[int]] = None):
        """Collect one reply from each worker (or the given subset).

        Uses :func:`multiprocessing.connection.wait` with a short
        timeout plus exitcode polling: a sequential ``recv`` loop would
        hang forever when a worker dies while its peers spin on the
        shared-memory barrier waiting for it.

        Returns a list indexed by shard when ``shards`` is ``None``,
        else a dict keyed by the requested shard indices.
        """
        conns = self._conns
        wanted = range(len(conns)) if shards is None else shards
        by_conn = {conns[s]: s for s in wanted}
        results: Dict[int, tuple] = {}
        while by_conn:
            ready = multiprocessing.connection.wait(
                list(by_conn), timeout=0.2
            )
            if not ready:
                procs = self._procs
                if procs and any(p.exitcode is not None for p in procs):
                    err = self._dead_worker_error()
                    self._abort()
                    raise err
                continue
            for conn in ready:
                shard = by_conn.pop(conn)
                try:
                    msg = conn.recv()
                except EOFError:
                    # The pipe closed without a reply: the worker died
                    # (OOM kill, segfault in an extension, os._exit).
                    err = self._dead_worker_error()
                    self._abort()
                    raise err from None
                if msg[0] == "error":
                    failure = msg[1]
                    self._abort()
                    raise SimulationError(f"shard worker failed:\n{failure}")
                if msg[0] != expected:
                    self._abort()
                    raise SimulationError(
                        f"protocol error: expected {expected!r}, got "
                        f"{msg[0]!r} from shard {shard}"
                    )
                results[shard] = msg
        if shards is None:
            return [results[s] for s in range(len(conns))]
        return results

    def _stderr_tail(self, shard: Optional[int], limit: int = 2048) -> str:
        """Last ``limit`` bytes the given worker wrote to stderr."""
        paths = self._stderr_paths
        if shard is None or not paths or shard >= len(paths):
            return ""
        try:
            with open(paths[shard], "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(max(0, size - limit))
                return fh.read().decode("utf-8", "replace").strip()
        except OSError:
            return ""

    def _dead_worker_error(self) -> ShardWorkerFailed:
        """Build the :class:`ShardWorkerFailed` naming the dead shard."""
        dead = []
        for shard, proc in enumerate(self._procs or []):
            proc.join(timeout=0.5)
            if proc.exitcode is not None:
                dead.append((shard, proc.exitcode))
        window = self._last_window
        if window is not None:
            where = (
                f"after completing window "
                f"[{window[0]:.0f}, {window[1]:.0f})"
            )
        else:
            where = "before completing any window"
        if dead:
            shard, exitcode = dead[0]
            return ShardWorkerFailed(
                f"shard {shard} worker died (exit code {exitcode}) "
                f"{where}; remaining workers were shut down",
                shard=shard,
                exitcode=exitcode,
                window=window,
                stderr_tail=self._stderr_tail(shard),
            )
        return ShardWorkerFailed(
            f"a shard worker closed its pipe without replying {where}; "
            f"remaining workers were shut down",
            window=window,
        )

    def _collect_diagnostics(self) -> Dict[str, Any]:
        """Best-effort per-shard stall dumps for a watchdog report.

        Workers that fail to answer (already wedged or dead) are
        reported as unavailable rather than blocking the raise.
        """
        dumps: Dict[str, Any] = {}
        for shard, conn in enumerate(self._conns or []):
            try:
                conn.send(("diag",))
                if conn.poll(10):
                    msg = conn.recv()
                    dumps[f"shard_{shard}"] = (
                        msg[1] if msg[0] == "diag" else f"unexpected {msg[0]!r}"
                    )
                else:
                    dumps[f"shard_{shard}"] = (
                        "unavailable (worker not responding)"
                    )
            except Exception:
                dumps[f"shard_{shard}"] = "unavailable (worker not responding)"
        return dumps

    def _fork(self) -> None:
        sim = self.sim
        if sim.dispatcher is None:
            raise SimulationError("no dispatcher installed")
        if sim._setup_token is not None:
            self._fork_token = sim._setup_token()
        ctx = multiprocessing.get_context("fork")
        self._hub = _RingHub(
            self.shards, sim.config.parallel_ring_kib * 1024, ctx
        )
        self._conns = []
        self._procs = []
        self._stderr_paths = []
        stderr_fds = []
        for shard in range(self.shards):
            fd, path = tempfile.mkstemp(
                prefix=f"des-shard-{shard}-stderr-", suffix=".log"
            )
            stderr_fds.append(fd)
            self._stderr_paths.append(path)
        try:
            for shard in range(self.shards):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=self._worker_main,
                    args=(shard, child_conn, stderr_fds[shard]),
                    daemon=True,
                    name=f"des-shard-{shard}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        finally:
            for fd in stderr_fds:
                try:
                    os.close(fd)
                except OSError:
                    pass

    def _merge(self, finals: List[Dict[str, Any]]) -> None:
        """Fold per-drain worker state deltas into the parent's objects."""
        sim = self.sim
        stats = sim.stats
        for final in finals:
            stats.absorb_delta(final["stats"])
            stats.busy_cycles_by_lane.update(final["busy"])
            labels = final["labels"]
            if labels:
                by_label = stats.events_by_label
                for label, count in labels.items():
                    by_label[label] += count
            sim.network.apply_channels(final["channels"])
            sim.memory.apply_channels(final["mem"])
            self._host_entries.extend(final["host"])
            self.hub_metrics["barrier_wait_s"] += final["hub"][
                "barrier_wait_s"
            ]
        gmem = sim.funcmem
        if gmem is not None:
            # Replay every worker's functional-memory writes into the
            # parent copy (hosts read result regions directly after
            # run()), ordered by (sub-step, shard) — the same
            # deterministic order the workers applied each other's
            # writes in.
            merged = []
            for shard, final in enumerate(finals):
                for idx, (step, va, values) in enumerate(final["wlog"]):
                    merged.append((step, shard, idx, va, values))
            merged.sort(key=lambda w: (w[0], w[1], w[2]))
            write = gmem.write_words
            for _step, _shard, _idx, va, values in merged:
                write(va, values)
        hostlog = sim.hostlog
        if hostlog is not None:
            fresh = [e for final in finals for e in final["udlog"]]
            if fresh:
                hostlog.entries.extend(fresh)
                hostlog.entries.sort(
                    key=lambda e: (e.tick, e.network_id, e.thread_id)
                )
        if sim.trace_enabled:
            fresh = [t for final in finals for t in final["trace"]]
            if fresh:
                sim.trace.extend(fresh)
                sim.trace.sort(
                    key=lambda t: (
                        t[0], t[1], -1 if t[2] is None else t[2], t[3], t[4]
                    )
                )
        recorder = sim.recorder
        if recorder is not None:
            # Workers ship per-drain recorder deltas (they hand off to a
            # fresh sibling after each drain), so merging into the live
            # parent recorder is both O(delta) and safe for anything the
            # parent itself recorded between drains.
            for final in finals:
                part = final["recorder"]
                if part is not None:
                    recorder.merge_from(part)
            recorder.sort_timelines()
        # quiescence verdict: every shard heap is empty at drain end by
        # construction, so live threads are the whole story
        pending = sum(final["pending"] for final in finals)
        stats.pending_threads = pending
        stats.quiesced = pending == 0
        self._flush_host()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _teardown(self, graceful: bool) -> None:
        """Release workers, pipes, rings, and stderr capture files.

        Idempotent and exception-free by construction: every step is
        individually guarded, state is nulled before any blocking call,
        and a second invocation (``close()`` after a failure ``_abort``,
        ``__del__`` after ``close()``, atexit after either) finds
        nothing left to do.
        """
        procs, self._procs = self._procs, None
        conns, self._conns = self._conns, None
        if procs:
            # held simulation state died with the workers — the executor
            # must not be reused
            self._broken = True
            if graceful:
                for conn in conns:
                    try:
                        conn.send(("exit",))
                    except Exception:
                        pass
            else:
                for proc in procs:
                    try:
                        if proc.is_alive():
                            proc.terminate()
                    except Exception:
                        pass
            for proc in procs:
                try:
                    proc.join(timeout=5)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=5)
                except Exception:
                    pass
        if conns:
            for conn in conns:
                try:
                    conn.close()
                except Exception:
                    pass
        hub, self._hub = self._hub, None
        if hub is not None:
            hub.release()
        paths, self._stderr_paths = self._stderr_paths, None
        if paths:
            for path in paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent, including after a
        failure abort and from ``__del__``/atexit).

        After the pool held simulation state, the executor cannot be
        reused — lane/thread state lived in the dead workers.
        """
        self._teardown(graceful=True)

    def _abort(self) -> None:
        self._teardown(graceful=False)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self._teardown(graceful=False)
        except BaseException:
            pass

    # ------------------------------------------------------------------
    # Worker side (runs in the forked child)
    # ------------------------------------------------------------------

    def _worker_main(self, shard: int, conn, stderr_fd: int) -> None:
        status = 0
        try:
            try:
                # Capture everything the worker (or code it hosts) writes
                # to stderr: if the process dies without a reply, the
                # parent includes the tail in ShardWorkerFailed.  Rebind
                # sys.stderr too — the inherited object may be a harness
                # capture buffer not backed by fd 2 at all.
                sys.stderr.flush()
                os.dup2(stderr_fd, 2)
                os.close(stderr_fd)
                sys.stderr = open(2, "w", buffering=1, closefd=False)
            except Exception:
                pass
            self._worker_loop(shard, conn)
        except BaseException:
            tb = traceback.format_exc()
            try:
                sys.stderr.write(tb)
            except Exception:
                pass
            try:
                conn.send(("error", tb))
            except Exception:
                pass
            status = 1
        finally:
            try:
                sys.stderr.flush()
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
            # skip atexit/teardown inherited from the parent process
            os._exit(status)

    def _worker_loop(self, shard: int, conn) -> None:
        sim = self.sim
        shards = self.shards
        sim._scheduler = None  # this process is a plain windowed drainer
        # a raise inside one worker would wedge the window protocol; the
        # parent aggregates progress marks and raises QuiescenceStall
        sim._wd_report_only = True
        sim._heap = heap = []
        heappush = heapq.heappush
        port = _WorkerPort(self._hub, shard)
        lookahead = self.lookahead
        outbox: List[list] = [[] for _ in range(shards)]
        host_out: List[tuple] = []
        shard_of_entry = self.shard_of_entry

        def route(entry) -> None:
            dest = entry[1]
            if dest < 0:
                host_out.append(entry)
                return
            target = shard_of_entry(entry)
            if target == shard:
                heappush(heap, entry)
            else:
                outbox[target].append(entry)

        sim._route = route

        def entry_sink(entry) -> None:
            heappush(heap, entry)

        def drain_rings() -> None:
            port.drain(entry_sink)

        # log functional-memory writes for cross-process replication:
        # each sub-step's writes broadcast to every peer through the
        # rings, and the cumulative log ships to the parent at drain end
        parent_wlog: List[tuple] = []
        substep_wlog: List[tuple] = []
        gmem = sim.funcmem
        orig_write = None
        if gmem is not None:
            orig_write = gmem.write_words

            def write_words(va, values):
                vals = list(values)
                parent_wlog.append((port.step, va, vals))
                substep_wlog.append((va, vals))
                orig_write(va, values)

            gmem.write_words = write_words

        def apply_wlogs(limit: Optional[int]) -> None:
            """Apply queued foreign writes from sub-steps ``<= limit``.

            Sorted by (sub-step, producer) — stable sort preserves each
            producer's FIFO order — so the application order is the same
            every run, whatever the physical arrival interleaving was.
            ``None`` applies everything (drain end: no reads remain).
            """
            pend = port.pending_wlogs
            if not pend:
                return
            if limit is None:
                ready, keep = pend, []
            else:
                ready = [w for w in pend if w[1] <= limit]
                if not ready:
                    return
                keep = [w for w in pend if w[1] > limit]
            ready.sort(key=lambda w: (w[1], w[0]))
            for _producer, _step, va, values in ready:
                orig_write(va, values)
            port.pending_wlogs = keep

        def flush_substep(final: bool):
            """Encode and ship this sub-step's boundary output.

            Returns ``(emitted_entries, spill)`` where ``spill`` is
            ``None`` or ``{target: [frame payloads]}``.  Once any frame
            to a target spills, every later frame to that target this
            flush spills too — label-interning announcements and wlog
            ordering both require the per-stream frame order to survive
            the ring/Pipe split (the consumer decodes ring frames first,
            then the relayed spill).
            """
            spill: Optional[Dict[int, list]] = None
            spilled = [False] * shards
            emitted = 0
            for target in range(shards):
                batch = outbox[target]
                if not batch:
                    continue
                emitted += len(batch)
                encode = port.enc[target].encode_entry
                for entry in batch:
                    payload = bytearray()
                    encode(payload, entry)
                    payload = bytes(payload)
                    if spilled[target] or not port.try_write(
                        target, payload, drain_rings, final
                    ):
                        spilled[target] = True
                        if spill is None:
                            spill = {}
                        spill.setdefault(target, []).append(payload)
                batch.clear()
            if substep_wlog:
                step_tag = port.step
                for target in range(shards):
                    if target == shard:
                        continue
                    encode = port.enc[target].encode_wlog
                    for va, vals in substep_wlog:
                        payload = bytearray()
                        encode(payload, va, vals, step_tag)
                        payload = bytes(payload)
                        if spilled[target] or not port.try_write(
                            target, payload, drain_rings, final
                        ):
                            spilled[target] = True
                            if spill is None:
                                spill = {}
                            spill.setdefault(target, []).append(payload)
                substep_wlog.clear()
            return emitted, spill

        # fresh per-worker recorder: workers ship per-drain deltas and
        # hand off to a fresh sibling after each drain, so they must not
        # re-report telemetry they inherited at fork time
        had_recorder = sim.recorder is not None
        if had_recorder:
            _rebind_recorder(sim, sim.recorder.sibling())
        hostlog = sim.hostlog
        stats = sim.stats
        stats_base = stats.scalar_snapshot()
        labels_base = dict(stats.events_by_label)
        udlog_base = len(hostlog.entries) if hostlog is not None else 0
        trace_base = len(sim.trace)
        my_nodes = self.shard_nodes[shard]
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "run":
                _op, t0, nsteps, budget = msg
                before = stats.events_executed
                base = port.step
                try:
                    emitted_win = 0
                    bytes_before = port.bytes_out
                    spill_all: Optional[Dict[int, list]] = None
                    for g in range(nsteps):
                        if g:
                            port.wait_for(base + g, drain_rings)
                        drain_rings()
                        apply_wlogs(base + g - 1)
                        # sub-step start: same seal point as the
                        # in-process scheduler (no-op unless coalescing,
                        # which pins nsteps to 1 — so seals only ever
                        # anchor at global next-event times)
                        sim._seal_packets()
                        rb = budget
                        if rb is not None:
                            rb -= stats.events_executed - before
                        sim._drain(rb, t0 + (g + 1) * lookahead)
                        emitted, spill = flush_substep(
                            final=(g == nsteps - 1)
                        )
                        emitted_win += emitted
                        if spill:
                            if spill_all is None:
                                spill_all = spill
                            else:
                                for target, payloads in spill.items():
                                    spill_all.setdefault(
                                        target, []
                                    ).extend(payloads)
                        port.publish(base + g + 1)
                    # window-end barrier: wait for every peer's final
                    # sub-step and drain, so the reported next event
                    # time accounts for everything in flight
                    port.wait_for(base + nsteps, drain_rings)
                    drain_rings()
                except Exception:
                    conn.send(("error", traceback.format_exc()))
                    continue
                conn.send((
                    "out",
                    stats.events_executed - before,
                    sim._wd_last_progress,
                    heap[0][0] if heap else None,
                    emitted_win,
                    port.bytes_out - bytes_before,
                    sorted(spill_all.items()) if spill_all else None,
                ))
            elif op == "spill":
                # ring-overflow records relayed by the parent: entries
                # join the heap, wlogs join the same deferred queue the
                # ring frames use (the step tag keeps producer order)
                _op, groups = msg
                pending = port.pending_wlogs
                for producer, payloads in groups:
                    decode = port.dec[producer].decode_frame
                    for payload in payloads:
                        frame = decode(payload)
                        if frame[0] == "entry":
                            heappush(heap, frame[1])
                        else:
                            pending.append(
                                (producer, frame[3], frame[1], frame[2])
                            )
                conn.send(("next", heap[0][0] if heap else None))
            elif op == "seed":
                blob = msg[1]
                if blob is not None:
                    for entry in pickle.loads(blob):
                        heappush(heap, entry)
                conn.send(("next", heap[0][0] if heap else None))
            elif op == "drain_end":
                apply_wlogs(None)
                payload = {
                    "stats": stats.delta_since(stats_base),
                    "busy": {
                        nwid: lane.busy_cycles
                        for nwid, lane in sim._lanes.items()
                        if lane.busy_cycles
                    },
                    "labels": (
                        {
                            label: count - labels_base.get(label, 0)
                            for label, count in stats.events_by_label.items()
                            if count != labels_base.get(label, 0)
                        }
                        if sim.detailed_stats
                        else None
                    ),
                    "channels": sim.network.export_channels(my_nodes),
                    "mem": sim.memory.export_channels(my_nodes),
                    "udlog": (
                        hostlog.entries[udlog_base:]
                        if hostlog is not None
                        else []
                    ),
                    "trace": (
                        sim.trace[trace_base:] if sim.trace_enabled else []
                    ),
                    "recorder": sim.recorder if had_recorder else None,
                    "pending": sim._live_threads(),
                    "host": host_out,
                    "wlog": parent_wlog,
                    "hub": {"barrier_wait_s": port.barrier_wait_s},
                }
                conn.send(("final", payload))
                host_out = []
                parent_wlog.clear()
                port.barrier_wait_s = 0.0
                stats_base = stats.scalar_snapshot()
                labels_base = dict(stats.events_by_label)
                udlog_base = (
                    len(hostlog.entries) if hostlog is not None else 0
                )
                trace_base = len(sim.trace)
                if had_recorder:
                    _rebind_recorder(sim, sim.recorder.drain_handoff())
            elif op == "diag":
                conn.send(("diag", sim.stall_dump()))
            elif op == "exit":
                return
            else:
                raise SimulationError(f"unknown coordinator op {op!r}")


def _rebind_recorder(sim, fresh) -> None:
    """Swap a simulator's recorder hooks to ``fresh`` (same tier)."""
    old = sim.recorder
    sim.recorder = fresh
    if old.record_messages:
        sim._rec_msg = fresh.message
        if sim._rec_packet is not None:
            sim._rec_packet = fresh.packet
    if old.record_faults:
        sim._rec_fault = fresh.fault
    if old.record_channels:
        sim.network.recorder = fresh
        sim.memory.recorder = fresh
    for rebind in sim._recorder_rebinders:
        rebind(fresh)
