"""Simulation statistics.

Counters mirror what the authors' Fastsim reports (ticks, per-lane
execution cycles, message counts) and what the artifact appendix extracts
from the ``BASIM_PRINT`` / ``perflog.tsv`` logs: the benchmarks compute
simulated seconds as ``ticks / 2 GHz``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Aggregate counters for one simulation run."""

    messages_sent: int = 0
    messages_local: int = 0
    messages_remote: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    dram_remote_accesses: int = 0
    events_executed: int = 0
    threads_created: int = 0
    threads_terminated: int = 0
    busy_cycles_by_lane: Dict[int, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    events_by_label: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: final simulated time in cycles (the makespan).
    final_tick: float = 0.0

    @property
    def total_busy_cycles(self) -> float:
        return sum(self.busy_cycles_by_lane.values())

    def utilization(self, total_lanes: int) -> float:
        """Mean lane utilization over the run's makespan in [0, 1]."""
        if self.final_tick <= 0 or total_lanes <= 0:
            return 0.0
        return self.total_busy_cycles / (self.final_tick * total_lanes)

    def active_lanes(self) -> int:
        """Number of lanes that executed at least one event."""
        return sum(1 for c in self.busy_cycles_by_lane.values() if c > 0)

    def load_imbalance(self) -> float:
        """Max/mean busy-cycle ratio over active lanes (1.0 = perfect)."""
        busy = [c for c in self.busy_cycles_by_lane.values() if c > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def summary(self) -> str:
        return (
            f"ticks={self.final_tick:.0f} events={self.events_executed} "
            f"msgs={self.messages_sent} (remote {self.messages_remote}) "
            f"dram r/w={self.dram_reads}/{self.dram_writes} "
            f"threads +{self.threads_created}/-{self.threads_terminated}"
        )
