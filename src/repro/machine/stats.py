"""Simulation statistics.

Counters mirror what the authors' Fastsim reports (ticks, per-lane
execution cycles, message counts) and what the artifact appendix extracts
from the ``BASIM_PRINT`` / ``perflog.tsv`` logs: the benchmarks compute
simulated seconds as ``ticks / 2 GHz``.

Statistics are **tiered** (see DESIGN.md, "Simulator hot path & stats
tiers"):

* *Scalar* counters (message/DRAM/event/thread totals, ``final_tick``)
  are always maintained — they are single integer adds on the hot path.
* ``busy_cycles_by_lane`` is always *available* but costs nothing per
  event: each :class:`~repro.machine.lane.Lane` already accumulates its
  own busy cycles, and the simulator copies them into this dict when the
  run drains (identical floats — same per-lane accumulation order).
* ``events_by_label`` is the one genuinely per-event histogram; it is
  populated only when the simulator was built with ``detailed_stats=True``
  (``harness.inspect.event_report`` needs it; nothing else does).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Aggregate counters for one simulation run."""

    messages_sent: int = 0
    messages_local: int = 0
    messages_remote: int = 0
    #: host-injected messages (``src_node=None``: program starts, test
    #: harness sends).  These bypass the modeled fabric and are neither
    #: local nor remote traffic.
    messages_host_injected: int = 0
    #: host-bound messages (results/completions addressed to HOST_NWID).
    #: They leave the modeled machine, so like host-injected traffic they
    #: are outside the local/remote split; together the four message
    #: counters partition ``messages_sent`` exactly.
    messages_host_bound: int = 0
    #: heap entries created by the coalescing fabric (``coalescing=True``):
    #: one per packet.  Host-side bookkeeping only — records, not packets,
    #: are what the message taxonomy above counts, so the ``sent ==
    #: local + remote + host_injected + host_bound`` partition is
    #: unaffected.  ``packets_sent + records_coalesced`` equals the
    #: number of coalesced remote record deliveries.
    packets_sent: int = 0
    #: remote records that joined an existing packet instead of costing
    #: their own heap push (the savings the coalescing fabric delivers).
    records_coalesced: int = 0
    #: batch-dispatch executions (``batch_dispatch=True``): one per
    #: same-plan run of parked records a flush executed array-at-a-time.
    #: Host-side bookkeeping only — every batched record still counts in
    #: ``events_executed`` individually.
    batches_executed: int = 0
    #: handler events executed through the batch path.  Together with
    #: ``events_interpreted`` these partition handler events exactly:
    #: ``records_batched + events_interpreted == events_executed``.
    records_batched: int = 0
    #: handler events executed one at a time by the interpreter (every
    #: event, when batch dispatch is off or unavailable).
    events_interpreted: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    dram_remote_accesses: int = 0
    events_executed: int = 0
    threads_created: int = 0
    threads_terminated: int = 0
    # -- injected faults (repro.faults.FaultPlan; all zero without one) --
    faults_messages_dropped: int = 0
    faults_messages_duplicated: int = 0
    faults_messages_delayed: int = 0
    faults_lane_stalls: int = 0
    faults_stall_cycles: float = 0.0
    #: events discarded because their destination node had fail-stopped.
    faults_node_dropped: int = 0
    # -- reliable delivery (repro.faults.ReliableTransport; opt-in) -----
    transport_tracked: int = 0
    transport_retransmits: int = 0
    transport_acks: int = 0
    transport_dup_suppressed: int = 0
    #: sends abandoned after ``max_retries`` retransmits (the watchdog,
    #: not an unbounded retry storm, reports the resulting stall).
    transport_give_ups: int = 0
    busy_cycles_by_lane: Dict[int, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    #: per-label event counts; populated only under ``detailed_stats``.
    events_by_label: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: whether per-label histograms were collected for this run.
    detailed: bool = False
    #: final simulated time in cycles (the makespan).
    final_tick: float = 0.0
    #: whether the last drain ended *quiesced* — event heap empty **and**
    #: no live threads left waiting for events.  ``False`` distinguishes
    #: the silent-hang shape (empty heap, threads still pending: a lost
    #: message or credit) and bounded ``run(until=)`` stops.  Set by the
    #: drain drivers, not merged from shard deltas.
    quiesced: bool = False
    #: live threads remaining after the last drain (0 when quiesced).
    pending_threads: int = 0

    @property
    def total_busy_cycles(self) -> float:
        return sum(self.busy_cycles_by_lane.values())

    def utilization(self, total_lanes: int) -> float:
        """Mean lane utilization over the run's makespan in [0, 1]."""
        if self.final_tick <= 0 or total_lanes <= 0:
            return 0.0
        return self.total_busy_cycles / (self.final_tick * total_lanes)

    def active_lanes(self) -> int:
        """Number of lanes that executed at least one event."""
        return sum(1 for c in self.busy_cycles_by_lane.values() if c > 0)

    def load_imbalance(self) -> float:
        """Max/mean busy-cycle ratio over active lanes (1.0 = perfect)."""
        busy = [c for c in self.busy_cycles_by_lane.values() if c > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def scalar_snapshot(self) -> Dict[str, float]:
        """The always-on scalar counters as a plain dict.

        The determinism-parity tests compare these across runs; histogram
        dicts are excluded because ``events_by_label`` is intentionally
        empty without ``detailed_stats``.
        """
        return {
            "messages_sent": self.messages_sent,
            "messages_local": self.messages_local,
            "messages_remote": self.messages_remote,
            "messages_host_injected": self.messages_host_injected,
            "messages_host_bound": self.messages_host_bound,
            "packets_sent": self.packets_sent,
            "records_coalesced": self.records_coalesced,
            "batches_executed": self.batches_executed,
            "records_batched": self.records_batched,
            "events_interpreted": self.events_interpreted,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "dram_bytes_read": self.dram_bytes_read,
            "dram_bytes_written": self.dram_bytes_written,
            "dram_remote_accesses": self.dram_remote_accesses,
            "events_executed": self.events_executed,
            "threads_created": self.threads_created,
            "threads_terminated": self.threads_terminated,
            "faults_messages_dropped": self.faults_messages_dropped,
            "faults_messages_duplicated": self.faults_messages_duplicated,
            "faults_messages_delayed": self.faults_messages_delayed,
            "faults_lane_stalls": self.faults_lane_stalls,
            "faults_stall_cycles": self.faults_stall_cycles,
            "faults_node_dropped": self.faults_node_dropped,
            "transport_tracked": self.transport_tracked,
            "transport_retransmits": self.transport_retransmits,
            "transport_acks": self.transport_acks,
            "transport_dup_suppressed": self.transport_dup_suppressed,
            "transport_give_ups": self.transport_give_ups,
            "final_tick": self.final_tick,
        }

    # ------------------------------------------------------------------
    # Shard merging (repro.machine.parallel)
    # ------------------------------------------------------------------

    def delta_since(self, base: Dict[str, float]) -> Dict[str, float]:
        """Scalar counters accumulated since ``base`` (a prior snapshot).

        ``final_tick`` stays absolute — it is a maximum, not a sum, so a
        delta is meaningless for it; :meth:`absorb_delta` max-merges it.
        Shard workers report one of these per drain so the coordinator
        can add worker contributions without double counting state the
        workers inherited at fork time.
        """
        snap = self.scalar_snapshot()
        delta = {k: v - base.get(k, 0) for k, v in snap.items()}
        delta["final_tick"] = snap["final_tick"]
        return delta

    def absorb_delta(self, delta: Dict[str, float]) -> None:
        """Fold one shard's :meth:`delta_since` into this object.

        Additive counters sum (so the PR 2 invariant ``sent == local +
        remote + host_injected + host_bound`` survives: each shard's
        delta satisfies it, and sums of partitions partition the sum);
        ``final_tick`` is the max over shards.
        """
        for key, value in delta.items():
            if key == "final_tick":
                if value > self.final_tick:
                    self.final_tick = value
            else:
                setattr(self, key, getattr(self, key) + value)

    def summary(self) -> str:
        return (
            f"ticks={self.final_tick:.0f} events={self.events_executed} "
            f"msgs={self.messages_sent} (remote {self.messages_remote}) "
            f"dram r/w={self.dram_reads}/{self.dram_writes} "
            f"threads +{self.threads_created}/-{self.threads_terminated}"
        )
