"""Machine configuration for the simulated UpDown system.

The full UpDown machine (paper §3) has 16,384 nodes, 32 accelerators per
node, and 64 lanes per accelerator — 33 M lanes.  A functional Python
simulator cannot instantiate that many lanes, so :class:`MachineConfig`
makes every dimension a parameter.  Benchmarks use reduced lanes-per-node
counts and record the scaling substitution in DESIGN.md; the *ratios*
between compute, message, and memory costs — which produce the paper's
scaling shapes — are preserved.

NetworkID layout
----------------
A lane is addressed by a flat integer ``networkID``::

    networkID = node * lanes_per_node + accel * lanes_per_accel + lane

matching the paper's "computation location naming" (§2.3): applications
compute networkIDs directly to control computation binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .costs import CLOCK_HZ, DEFAULT_COSTS, CostTable


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class MachineConfig:
    """Dimensions and timing parameters of a simulated UpDown machine.

    Parameters mirror the paper's §3 description:

    * ``nodes`` — number of UpDown nodes (paper machine: 16,384).
    * ``accels_per_node`` — accelerators per node (paper: 32).
    * ``lanes_per_accel`` — lanes per accelerator (paper: 64).
    * ``clock_hz`` — lane clock (paper: 2 GHz).
    * ``local_msg_latency_cycles`` — intra-node message latency.
    * ``remote_msg_latency_cycles`` — cross-node message latency
      (paper: 0.5 µs = 1000 cycles at 2 GHz).
    * ``dram_latency_cycles`` — local DRAM access latency; remote accesses
      take ``remote_dram_latency_ratio`` times longer (paper §3.2: 7:1).
    * ``node_dram_bytes_per_cycle`` — per-node HBM bandwidth (paper:
      9.4 TB/s per node ≈ 4700 B/cycle at 2 GHz; scaled machines scale this
      down with the lane count so per-lane bandwidth is realistic).
    * ``remote_dram_bandwidth_ratio`` — fraction of local bandwidth
      available to remote requesters (paper §3.2: 3:1 ⇒ 1/3).
    * ``node_injection_bytes_per_cycle`` — network injection bandwidth per
      node (paper: 4 TB/s ≈ 2000 B/cycle).
    * ``message_bytes`` — wire size of one event message (paper: 64 B).
    """

    nodes: int = 1
    accels_per_node: int = 32
    lanes_per_accel: int = 64
    clock_hz: int = CLOCK_HZ
    local_msg_latency_cycles: int = 100
    remote_msg_latency_cycles: int = 1000
    dram_latency_cycles: int = 200
    remote_dram_latency_ratio: int = 7
    node_dram_bytes_per_cycle: float = 4700.0
    remote_dram_bandwidth_ratio: float = 1.0 / 3.0
    node_injection_bytes_per_cycle: float = 2000.0
    message_bytes: int = 64
    #: minimum DRAMmalloc block size the translation hardware accepts
    #: (paper §2.4: 4 KB; scaled bench machines lower it — DESIGN.md)
    min_dram_block_bytes: int = 4096
    #: coalesce remote messages from one source node to one destination
    #: node into single packet heap events (a host-side simulator
    #: optimization — simulated results are bit-identical; DESIGN.md
    #: "Packet coalescing & fused dispatch").
    coalescing: bool = False
    #: coalescing window in cycles over injection-channel *departure*
    #: times; ``None`` means ``remote_msg_latency_cycles``.  Must not
    #: exceed ``remote_msg_latency_cycles`` — that bound is what
    #: guarantees every member joins a packet strictly before the
    #: packet's first delivery pops.
    coalescing_window_cycles: Optional[float] = None
    #: execute batch-safe same-label KVMSR reduce records array-at-a-time
    #: instead of one interpreter pass each (a host-side simulator
    #: optimization — simulated results are bit-identical; DESIGN.md
    #: "Event IR & batched dispatch").  Handlers the IR lowering cannot
    #: prove batch-safe, and drain modes other than the plain sequential
    #: one, fall back to per-event interpretation automatically.
    batch_dispatch: bool = False
    #: capacity of each shared-memory boundary ring in KiB for
    #: ``parallel=True`` forked workers (one ring per ordered shard
    #: pair).  Purely a performance knob: when a window's boundary
    #: traffic overflows a ring, the excess spills to the pickled-Pipe
    #: channel (counted in the hub metrics), never losing records.
    parallel_ring_kib: int = 256
    #: cap on adaptive lookahead widening for ``parallel=True``: after a
    #: quiet window (zero cross-shard boundary records) the next window
    #: doubles its width, up to this multiple of
    #: ``conservative_lookahead_cycles``; any boundary record collapses
    #: it back to 1.  Set to 1 to disable widening.  Widened windows run
    #: internally as base-lookahead sub-steps synchronized through
    #: shared memory, so conservatism (and bit-exactness) is preserved
    #: at any setting.
    parallel_adaptive_max: int = 8
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("machine must have at least one node")
        if self.accels_per_node < 1 or self.lanes_per_accel < 1:
            raise ValueError("accelerators and lanes must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.remote_dram_latency_ratio < 1:
            raise ValueError("remote DRAM latency ratio must be >= 1")
        if not (0.0 < self.remote_dram_bandwidth_ratio <= 1.0):
            raise ValueError("remote DRAM bandwidth ratio must be in (0, 1]")
        if self.coalescing_window_cycles is not None:
            w = self.coalescing_window_cycles
            if not (0.0 < w <= self.remote_msg_latency_cycles):
                raise ValueError(
                    f"coalescing_window_cycles must be in "
                    f"(0, {self.remote_msg_latency_cycles}] — a window "
                    f"wider than the remote base latency could admit a "
                    f"member after the packet's first delivery popped"
                )
        if self.coalescing and self.conservative_lookahead_cycles <= 0.0:
            raise ValueError(
                "coalescing needs a positive conservative lookahead "
                "(remote_msg_latency_cycles and remote_dram_transit_cycles "
                "must both be > 0): the coalescer seals its open-packet "
                "table on the same epoch windows sharded execution uses, "
                "so that packet composition is shard-count-invariant"
            )
        if self.parallel_ring_kib < 4:
            raise ValueError(
                "parallel_ring_kib must be >= 4 (one ring must hold at "
                "least a handful of boundary frames)"
            )
        if self.parallel_adaptive_max < 1:
            raise ValueError("parallel_adaptive_max must be >= 1")
        self.costs.validate()

    # ------------------------------------------------------------------
    # Topology arithmetic
    # ------------------------------------------------------------------

    @property
    def lanes_per_node(self) -> int:
        """Lanes on one node (paper machine: 2048)."""
        return self.accels_per_node * self.lanes_per_accel

    @property
    def total_lanes(self) -> int:
        """Total lanes in the machine (paper machine: ~33 M)."""
        return self.nodes * self.lanes_per_node

    @property
    def total_accels(self) -> int:
        return self.nodes * self.accels_per_node

    def node_of(self, network_id: int) -> int:
        """The node hosting ``network_id``."""
        self._check_nwid(network_id)
        return network_id // self.lanes_per_node

    def accel_of(self, network_id: int) -> int:
        """The machine-global accelerator index hosting ``network_id``."""
        self._check_nwid(network_id)
        return network_id // self.lanes_per_accel

    def lane_in_node(self, network_id: int) -> int:
        """Lane index within its node."""
        self._check_nwid(network_id)
        return network_id % self.lanes_per_node

    def network_id(self, node: int, accel: int, lane: int) -> int:
        """Compose a flat networkID from (node, accel-in-node, lane-in-accel)."""
        if not (0 <= node < self.nodes):
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        if not (0 <= accel < self.accels_per_node):
            raise ValueError(f"accel {accel} out of range")
        if not (0 <= lane < self.lanes_per_accel):
            raise ValueError(f"lane {lane} out of range")
        return node * self.lanes_per_node + accel * self.lanes_per_accel + lane

    def first_lane_of_node(self, node: int) -> int:
        if not (0 <= node < self.nodes):
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        return node * self.lanes_per_node

    def first_lane_of_accel(self, accel: int) -> int:
        """First lane of machine-global accelerator ``accel``."""
        if not (0 <= accel < self.total_accels):
            raise ValueError(f"accel {accel} out of range")
        return accel * self.lanes_per_accel

    def all_lanes(self) -> range:
        return range(self.total_lanes)

    def _check_nwid(self, network_id: int) -> None:
        if not (0 <= network_id < self.total_lanes):
            raise ValueError(
                f"networkID {network_id} out of range [0, {self.total_lanes})"
            )

    # ------------------------------------------------------------------
    # Time conversion
    # ------------------------------------------------------------------

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert simulated lane cycles to simulated seconds
        (``time[s] = ticks / 2e9`` per the artifact appendix)."""
        return cycles / self.clock_hz

    @property
    def remote_dram_transit_cycles(self) -> float:
        """Per-direction fabric transit for a remote split-phase DRAM hop.

        Derived from ``remote_dram_latency_ratio`` so the knob is what
        actually sets the remote:local latency ratio (paper §3.2's 7:1):
        an unloaded remote access costs ``dram_latency_cycles`` at the
        device plus one transit each way, so a round trip of
        ``(ratio - 1) * dram_latency_cycles`` lands the total at
        ``ratio * dram_latency_cycles``.  Queueing (injection and DRAM
        channel occupancy) adds on top under load — that is congestion,
        not base latency.
        """
        return (
            (self.remote_dram_latency_ratio - 1)
            * self.dram_latency_cycles
            / 2.0
        )

    @property
    def coalescing_window(self) -> float:
        """Effective coalescing window in cycles (resolves the ``None``
        default of :attr:`coalescing_window_cycles` to the remote base
        latency — the widest window the join-before-delivery proof
        admits)."""
        if self.coalescing_window_cycles is not None:
            return float(self.coalescing_window_cycles)
        return float(self.remote_msg_latency_cycles)

    @property
    def default_ack_timeout_cycles(self) -> float:
        """Default retransmit timeout for reliable delivery.

        Four times the remote round trip (data out + ack back, each
        paying ``remote_msg_latency_cycles`` of base latency): the slack
        over the unloaded round trip absorbs injection-queue congestion,
        which on the scaled bench machines routinely adds several
        thousand cycles — with a tight (2x) timeout most retransmits are
        spurious duplicates of messages already in flight.  Recovery of
        a genuinely dropped message costs one timeout; lower it through
        ``repro.faults.ReliabilityConfig`` when modeling latency-
        sensitive recovery.
        """
        return 8.0 * float(self.remote_msg_latency_cycles)

    @property
    def conservative_lookahead_cycles(self) -> float:
        """Safe epoch window for conservative parallel execution.

        No interaction between two *different* nodes can take effect
        sooner than this many cycles after it is issued: cross-node
        messages pay ``remote_msg_latency_cycles`` of base latency
        (injection queueing only adds to that), and each direction of a
        remote split-phase DRAM access pays
        ``remote_dram_transit_cycles`` of fabric transit.  Intra-node
        traffic never crosses a shard boundary (shards partition whole
        nodes), so the minimum of the two cross-node constants bounds how
        far apart shards can drift while still seeing every inbound
        boundary event in time — the classic conservative-lookahead
        argument.  Zero (``remote_dram_latency_ratio == 1``) means the
        machine cannot be sharded.
        """
        return min(
            float(self.remote_msg_latency_cycles),
            self.remote_dram_transit_cycles,
        )

    def scaled(self, nodes: int) -> "MachineConfig":
        """A copy of this configuration with a different node count.

        Used by strong-scaling sweeps: everything but the node count is
        held fixed, exactly like the paper's Figure 9 experiments.
        """
        return replace(self, nodes=nodes)


def paper_machine(nodes: int = 16384) -> MachineConfig:
    """The full-scale machine described in paper §3 (for documentation and
    topology arithmetic tests; far too large to simulate event-by-event)."""
    return MachineConfig(nodes=nodes, accels_per_node=32, lanes_per_accel=64)


def bench_machine(
    nodes: int = 1,
    accels_per_node: int = 1,
    lanes_per_accel: int = 2,
    bandwidth_boost: float = 4.0,
    **overrides,
) -> MachineConfig:
    """A scaled-down machine used by the benchmark sweeps.

    Each simulated node carries a small slice of a real node's 2048 lanes
    (default 2), keeping a 256-node sweep at a few hundred simulated lanes
    — what a functional Python DES can execute in seconds.  Per-node memory
    and injection bandwidth scale by the same lane-reduction factor so the
    compute:bandwidth balance of the paper machine is preserved.

    ``bandwidth_boost`` compensates for the functional model's coarser
    event granularity (one modeled event covers several real-machine
    instruction bursts, so per-event message/DRAM traffic is denser than
    per-instruction traffic on the real machine).  The default of 4 was
    calibrated so PageRank sits compute-bound at one node and
    bandwidth-sensitive under the Figure 12 placement sweep, matching the
    paper's regime; see DESIGN.md.
    """
    scale = (accels_per_node * lanes_per_accel) / (32 * 64) * bandwidth_boost
    defaults = dict(
        node_dram_bytes_per_cycle=4700.0 * scale,
        node_injection_bytes_per_cycle=2000.0 * scale,
        # scaled graphs have scaled hub sizes; scale the placement block
        # floor so hot data still spans many blocks (DESIGN.md)
        min_dram_block_bytes=512,
    )
    defaults.update(overrides)
    return MachineConfig(
        nodes=nodes,
        accels_per_node=accels_per_node,
        lanes_per_accel=lanes_per_accel,
        **defaults,
    )
