"""spMalloc: the lane-scratchpad allocator (paper Table 5 lists it at 83 LoC).

Each lane owns a small scratchpad (primarily lane-private, poolable across
the 64 lanes of an accelerator, paper §2.1.1).  This allocator hands out
word-granular offsets from a per-lane arena with a simple bump pointer and
whole-arena reset — the allocation pattern UpDown kernels actually use
(allocate per phase, reset between phases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Default scratchpad capacity per lane, in 8-byte words (64 KB).
DEFAULT_CAPACITY_WORDS = 8192


class ScratchpadError(RuntimeError):
    """Raised on scratchpad exhaustion or invalid requests."""


@dataclass
class LaneArena:
    capacity_words: int
    used_words: int = 0
    allocations: int = 0


class SpAllocator:
    """Bump allocator over per-lane scratchpad arenas."""

    def __init__(self, capacity_words: int = DEFAULT_CAPACITY_WORDS) -> None:
        if capacity_words <= 0:
            raise ScratchpadError("scratchpad capacity must be positive")
        self.capacity_words = capacity_words
        self._arenas: Dict[int, LaneArena] = {}

    def _arena(self, network_id: int) -> LaneArena:
        arena = self._arenas.get(network_id)
        if arena is None:
            arena = self._arenas[network_id] = LaneArena(self.capacity_words)
        return arena

    def sp_malloc(self, network_id: int, nwords: int) -> int:
        """Allocate ``nwords`` on lane ``network_id``; returns the offset."""
        if nwords <= 0:
            raise ScratchpadError("allocation size must be positive")
        arena = self._arena(network_id)
        if arena.used_words + nwords > arena.capacity_words:
            raise ScratchpadError(
                f"lane {network_id} scratchpad exhausted "
                f"({arena.used_words}+{nwords} > {arena.capacity_words} words)"
            )
        offset = arena.used_words
        arena.used_words += nwords
        arena.allocations += 1
        return offset

    def reset(self, network_id: int) -> None:
        """Free the whole arena of one lane (phase boundary)."""
        arena = self._arenas.get(network_id)
        if arena is not None:
            arena.used_words = 0

    def used(self, network_id: int) -> int:
        arena = self._arenas.get(network_id)
        return arena.used_words if arena is not None else 0

    def high_watermark(self) -> int:
        """Largest per-lane usage seen (for capacity planning in tests)."""
        if not self._arenas:
            return 0
        return max(a.used_words for a in self._arenas.values())
