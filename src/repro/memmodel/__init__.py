"""Global address space: translation descriptors, DRAMmalloc, spMalloc."""

from .drammalloc import GlobalMemory, MemoryError_, Region, WORD_BYTES
from .spmalloc import DEFAULT_CAPACITY_WORDS, ScratchpadError, SpAllocator
from .translation import MIN_BLOCK_SIZE, SwizzleDescriptor, TranslationError

__all__ = [
    "GlobalMemory",
    "Region",
    "MemoryError_",
    "WORD_BYTES",
    "SwizzleDescriptor",
    "TranslationError",
    "MIN_BLOCK_SIZE",
    "SpAllocator",
    "ScratchpadError",
    "DEFAULT_CAPACITY_WORDS",
]
