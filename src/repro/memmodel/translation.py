"""Address translation: block-cyclic swizzle descriptors (paper §2.4).

Each ``DRAMmalloc`` call is described by a single translation descriptor —
the "swizzle mask" the UpDown hardware evaluates with no software overhead.
Given a byte offset within the region, the descriptor computes:

* the **physical node number** (PNN): blocks of ``block_size`` bytes are
  dealt cyclically across ``nr_nodes`` nodes starting at ``first_node``;
* the **offset** within that node: each node's share is itself contiguous
  (the paper's "4KB interleaved, contiguous physical address space" per
  node).

The paper prints the arithmetic in shorthand (``PNN = size / BS / NRNodes``,
``Offset = size % BS % NRNodes``); written out, for a byte offset ``o``::

    block   = o // BS
    PNN     = first_node + (block % NRNodes)
    Offset  = (block // NRNodes) * BS + (o % BS)

which is the standard block-cyclic distribution (HPF / ScaLAPACK) the
paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Paper: block size is a power of 2 and at least 4 KB.
MIN_BLOCK_SIZE = 4096


class TranslationError(ValueError):
    """Raised for invalid descriptor parameters or out-of-range addresses."""


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class SwizzleDescriptor:
    """One hardware translation descriptor.

    ``base_va`` and ``size`` delimit the virtual region; ``first_node``,
    ``nr_nodes`` (power of 2) and ``block_size`` (power of 2, ≥ 4 KB on
    the real machine) are the ``DRAMmalloc`` layout parameters.
    ``machine_nodes`` bounds the node space so ``first_node + k`` wraps
    around the machine, supporting Table 1's "middle 8K nodes" style
    allocations.

    ``min_block_size`` is the hardware's 4 KB floor by default; *scaled*
    bench machines lower it proportionally so that a scaled hub neighbor
    list still spans many blocks, as it does at full scale (see
    DESIGN.md's calibration notes).
    """

    base_va: int
    size: int
    first_node: int
    nr_nodes: int
    block_size: int
    machine_nodes: int
    min_block_size: int = MIN_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise TranslationError("region size must be positive")
        if not _is_power_of_two(self.nr_nodes):
            raise TranslationError(
                f"NRNodes must be a power of 2, got {self.nr_nodes}"
            )
        if not _is_power_of_two(self.block_size):
            raise TranslationError(
                f"block size must be a power of 2, got {self.block_size}"
            )
        if self.block_size < self.min_block_size:
            raise TranslationError(
                f"block size must be >= {self.min_block_size}, "
                f"got {self.block_size}"
            )
        if self.machine_nodes < 1:
            raise TranslationError("machine must have nodes")
        if self.nr_nodes > self.machine_nodes:
            raise TranslationError(
                f"NRNodes {self.nr_nodes} exceeds machine nodes "
                f"{self.machine_nodes}"
            )
        if not (0 <= self.first_node < self.machine_nodes):
            raise TranslationError(f"first node {self.first_node} out of range")
        if self.base_va < 0:
            raise TranslationError("base VA must be non-negative")

    @property
    def end_va(self) -> int:
        return self.base_va + self.size

    def contains(self, va: int) -> bool:
        return self.base_va <= va < self.end_va

    def translate(self, va: int) -> Tuple[int, int]:
        """Virtual address -> ``(physical node, node-local offset)``."""
        base_va = self.base_va
        if not base_va <= va < base_va + self.size:
            raise TranslationError(
                f"VA {va:#x} outside region [{base_va:#x}, {self.end_va:#x})"
            )
        offset = va - base_va
        block = offset // self.block_size
        pnn = (self.first_node + (block % self.nr_nodes)) % self.machine_nodes
        local = (block // self.nr_nodes) * self.block_size + (
            offset % self.block_size
        )
        return pnn, local

    def node_of(self, va: int) -> int:
        return self.translate(va)[0]

    def bytes_on_node(self, node: int) -> int:
        """Total bytes of this region resident on ``node``."""
        total = 0
        nblocks = -(-self.size // self.block_size)  # ceil
        for block in range(nblocks):
            pnn = (self.first_node + (block % self.nr_nodes)) % self.machine_nodes
            if pnn == node:
                start = block * self.block_size
                total += min(self.block_size, self.size - start)
        return total

    def nodes_used(self) -> int:
        """Number of distinct nodes holding at least one block."""
        nblocks = -(-self.size // self.block_size)
        return min(nblocks, self.nr_nodes)
