"""DRAMmalloc: the shared global memory manager (paper §2.4).

``DRAMmalloc(size, first_node, nr_nodes, block_size)`` returns a region of
contiguous virtual address space laid out block-cyclically across the
distributed node memories, encoded as a single hardware translation
descriptor.  Changing *one number* in the call changes the physical layout
(the Figure 12 experiment does exactly this).

In this functional simulation each region is backed by a NumPy array of
64-bit *words* (all of the paper's data structures are 8-byte fields).
The data lives host-side; the descriptor only decides **which node's memory
channel pays** for each access — that is what produces placement-dependent
performance.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machine.config import MachineConfig

from .translation import SwizzleDescriptor

WORD_BYTES = 8


class MemoryError_(RuntimeError):
    """Allocation / access failure in the global memory manager."""


class Region:
    """One ``DRAMmalloc`` allocation: a descriptor plus backing words."""

    def __init__(
        self,
        descriptor: SwizzleDescriptor,
        dtype: np.dtype,
        name: str,
    ) -> None:
        self.descriptor = descriptor
        self.name = name
        self.dtype = np.dtype(dtype)
        self.freed = False
        nwords = descriptor.size // WORD_BYTES
        self.data = np.zeros(nwords, dtype=self.dtype)

    # -- address arithmetic -------------------------------------------------

    @property
    def base(self) -> int:
        return self.descriptor.base_va

    @property
    def size(self) -> int:
        return self.descriptor.size

    @property
    def nwords(self) -> int:
        return len(self.data)

    def addr(self, word_index: int) -> int:
        """Byte VA of word ``word_index`` (what you pass to DRAM intrinsics)."""
        if not (0 <= word_index < self.nwords):
            raise MemoryError_(
                f"word index {word_index} out of range for region {self.name!r}"
            )
        return self.base + word_index * WORD_BYTES

    def index_of(self, va: int) -> int:
        """Word index of byte VA ``va`` within this region."""
        off = va - self.base
        if off < 0 or off >= self.size or off % WORD_BYTES:
            raise MemoryError_(
                f"VA {va:#x} is not a word address in region {self.name!r}"
            )
        return off // WORD_BYTES

    # -- host-side (zero-cost) access for setup & verification --------------

    def __getitem__(self, idx):
        self._check_live()
        return self.data[idx]

    def __setitem__(self, idx, value) -> None:
        self._check_live()
        self.data[idx] = value

    def _check_live(self) -> None:
        if self.freed:
            raise MemoryError_(f"use after free of region {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.descriptor
        return (
            f"<Region {self.name!r} base={self.base:#x} size={self.size} "
            f"nodes={d.first_node}+{d.nr_nodes} bs={d.block_size}>"
        )


class GlobalMemory:
    """The machine's global address space: allocator + translation + data."""

    #: Allocations start above zero so a zero VA is always invalid (null).
    _BASE_VA = 1 << 20

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._next_va = self._BASE_VA
        self._bases: List[int] = []
        self._regions: List[Region] = []
        self._by_name: Dict[str, Region] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def dram_malloc(
        self,
        size: int,
        first_node: int = 0,
        nr_nodes: Optional[int] = None,
        block_size: int = 4096,
        dtype=np.int64,
        name: Optional[str] = None,
    ) -> Region:
        """``DRAMmalloc(size, 1stNode, NRNodes, BS)`` (paper §2.4).

        ``nr_nodes`` defaults to the largest power of two not exceeding the
        machine's node count.  ``size`` is rounded up to a whole number of
        words.
        """
        if size <= 0:
            raise MemoryError_("allocation size must be positive")
        if nr_nodes is None:
            nr_nodes = 1 << (self.config.nodes.bit_length() - 1)
        size = -(-size // WORD_BYTES) * WORD_BYTES
        base = _align_up(self._next_va, block_size)
        descriptor = SwizzleDescriptor(
            base_va=base,
            size=size,
            first_node=first_node,
            nr_nodes=nr_nodes,
            block_size=block_size,
            machine_nodes=self.config.nodes,
            min_block_size=self.config.min_dram_block_bytes,
        )
        if name is None:
            name = f"region{len(self._regions)}"
        if name in self._by_name:
            raise MemoryError_(f"region name {name!r} already in use")
        region = Region(descriptor, dtype, name)
        self._next_va = base + size
        idx = bisect.bisect_right(self._bases, base)
        self._bases.insert(idx, base)
        self._regions.insert(idx, region)
        self._by_name[name] = region
        return region

    def free(self, region: Region) -> None:
        """Release a region.  The VA range is retired, never reused, so
        dangling pointers fault deterministically."""
        region.freed = True
        region.data = np.zeros(0, dtype=region.dtype)

    # ------------------------------------------------------------------
    # Lookup & translation
    # ------------------------------------------------------------------

    def region_of(self, va: int) -> Region:
        # Descriptor.contains and Region._check_live are open-coded:
        # every DRAM transaction funnels through here, and the two
        # guard calls cost more than the comparisons they wrap.
        idx = bisect.bisect_right(self._bases, va) - 1
        if idx >= 0:
            region = self._regions[idx]
            d = region.descriptor
            if d.base_va <= va < d.base_va + d.size:
                if region.freed:
                    raise MemoryError_(
                        f"use after free of region {region.name!r}"
                    )
                return region
        raise MemoryError_(f"VA {va:#x} is unmapped")

    def region_named(self, name: str) -> Region:
        try:
            return self._by_name[name]
        except KeyError:
            raise MemoryError_(f"no region named {name!r}") from None

    def translate(self, va: int) -> Tuple[int, int]:
        """VA -> (physical node, node-local offset) via the descriptor."""
        return self.region_of(va).descriptor.translate(va)

    def node_of(self, va: int) -> int:
        return self.translate(va)[0]

    @property
    def num_descriptors(self) -> int:
        """Live translation descriptors (paper: 2-4 for typical programs)."""
        return sum(1 for r in self._regions if not r.freed)

    # ------------------------------------------------------------------
    # Word access (functional payload; timing handled by the simulator)
    # ------------------------------------------------------------------

    def read_words(self, va: int, nwords: int) -> tuple:
        """Read ``nwords`` consecutive words starting at byte VA ``va``.

        The whole access must fall inside one region (hardware requests do
        not straddle descriptors).
        """
        region = self.region_of(va)
        start = region.index_of(va)
        if start + nwords > region.nwords:
            raise MemoryError_(
                f"read of {nwords} words at {va:#x} overruns region "
                f"{region.name!r}"
            )
        return tuple(region.data[start : start + nwords].tolist())

    def read_words_translated(
        self, va: int, nwords: int
    ) -> Tuple[int, int, tuple]:
        """Fused ``translate`` + ``read_words``: one region lookup.

        Returns ``(memory_node, node_local_offset, values)``.  Every
        split-phase DRAM read needs both the physical placement and the
        payload, and the region lookup (bisect + bounds guard) costs as
        much as either — the simulator hot path calls this instead of
        the two-step sequence.
        """
        region = self.region_of(va)
        start = region.index_of(va)
        if start + nwords > region.nwords:
            raise MemoryError_(
                f"read of {nwords} words at {va:#x} overruns region "
                f"{region.name!r}"
            )
        node, offset = region.descriptor.translate(va)
        return node, offset, tuple(region.data[start : start + nwords].tolist())

    def write_words_translated(self, va: int, values) -> Tuple[int, int]:
        """Fused ``translate`` + ``write_words`` (see read_words_translated).

        Honors an instance-level ``write_words`` override: forked shard
        workers patch that method to log functional-memory writes for
        cross-process replication, and fused writes must not slip past
        the log.
        """
        patched = self.__dict__.get("write_words")
        if patched is not None:
            patched(va, values)
            return self.region_of(va).descriptor.translate(va)
        region = self.region_of(va)
        start = region.index_of(va)
        n = len(values)
        if start + n > region.nwords:
            raise MemoryError_(
                f"write of {n} words at {va:#x} overruns region {region.name!r}"
            )
        region.data[start : start + n] = values
        return region.descriptor.translate(va)

    def write_words(self, va: int, values) -> None:
        region = self.region_of(va)
        start = region.index_of(va)
        n = len(values)
        if start + n > region.nwords:
            raise MemoryError_(
                f"write of {n} words at {va:#x} overruns region {region.name!r}"
            )
        region.data[start : start + n] = values


def _align_up(value: int, alignment: int) -> int:
    return -(-value // alignment) * alignment
