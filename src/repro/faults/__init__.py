"""Deterministic fault injection + resilient delivery (the chaos harness).

Three pieces, wired through the machine / runtime / KVMSR layers:

* :class:`FaultPlan` — a seeded, content-keyed schedule of message
  drops/duplicates/delays, lane stalls, degraded DRAM bandwidth, and
  node fail-stop.  Faulty runs are bit-reproducible and invariant to the
  shard count (see ``plan.py``).
* :class:`ReliableTransport` / :class:`ReliabilityConfig` — opt-in
  ack/retry delivery so programs complete exactly-once under message
  loss (``transport.py``); enable via ``UpDownRuntime(reliable=True)``.
* Liveness watchdogs — ``QuiescenceStall`` (simulated-time progress
  monitor in the simulator) and ``ShardWorkerFailed`` (parent-side
  health check for forked shard workers), re-exported here so chaos
  tests import one package.

See DESIGN.md, "Fault model & resilient delivery".
"""

from repro.machine.parallel import ShardWorkerFailed
from repro.machine.simulator import QuiescenceStall

from .plan import FaultPlan, FaultPlanError
from .transport import ReliabilityConfig, ReliableTransport

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "ReliabilityConfig",
    "ReliableTransport",
    "QuiescenceStall",
    "ShardWorkerFailed",
]
