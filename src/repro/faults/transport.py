"""Opt-in reliable delivery for remote lane-to-lane messages.

The UpDown fabric in the paper is lossless, so UDWeave programs (and
KVMSR's credit-counted termination) assume every send arrives exactly
once.  Under a :class:`~repro.faults.FaultPlan` that drops or duplicates
messages, that assumption breaks — a single lost reduce tuple hangs the
quiescence poll forever.  :class:`ReliableTransport` restores
exactly-once delivery with the classic acknowledge/retransmit protocol,
implemented the way a real UDWeave library would build it: all protocol
state lives in lane scratchpads, and all protocol traffic rides the
modeled fabric and pays the Table 2 / injection-channel costs.

Protocol (per ``(source lane, destination lane)`` flow):

* **track** — ``Simulator.send`` hands every eligible outbound remote
  message here before it enters the fabric.  The sender assigns the next
  per-destination sequence number, tags the record (``rdt = ("d", src,
  seq)``), stores it in a pending-ack table in its scratchpad, and
  schedules a local retransmit timer.
* **data** — on delivery, the receiver checks a per-source seen-set in
  its scratchpad.  New sequence numbers are dispatched to the
  application handler; duplicates are suppressed.  Either way an ack
  (``rdt = ("a", receiver, seq)``) is sent back — acks are themselves
  remote messages, subject to the same fault plan, but never tracked
  (loss of an ack just means one more retransmit).
* **ack** — the sender drops the pending entry; the retransmit timer
  finds nothing and expires silently.
* **timer** — if the entry is still pending, the sender re-sends the
  original record (paying injection + latency again — retransmit costs
  are visible in ``SimStats``) and re-arms the timer with exponential
  backoff, up to ``max_retries``; after that the entry is abandoned and
  counted (``transport_give_ups``) so the liveness watchdog, not an
  unbounded retry storm, reports the stall.

Determinism: sequence numbers, timers, and retransmissions are all
scheduled through the simulator's actor-stamped push path from state
owned by a single lane, so reliable runs are exactly as reproducible and
shard-invariant as plain ones.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.events import MessageRecord

#: scratchpad-key tags for the protocol state (lane scratchpads are
#: key/value stores; tuple keys keep the namespace collision-free).
_SEQ = "__rdt_seq__"
_PEND = "__rdt_pend__"
_SEEN = "__rdt_seen__"

#: labels of the protocol's control events (never resolved against the
#: program image — the dispatcher intercepts tagged records first).
TIMER_LABEL = "__rdt_timer__"
ACK_LABEL = "__rdt_ack__"

#: control labels the liveness watchdog should not count as progress:
#: retry traffic *attempts* progress, but only application deliveries
#: prove it.
IDLE_CONTROL_LABELS = frozenset({TIMER_LABEL, ACK_LABEL})


class ReliabilityConfig:
    """Tuning knobs for :class:`ReliableTransport`."""

    def __init__(
        self,
        ack_timeout_cycles: Optional[float] = None,
        backoff: float = 2.0,
        max_retries: int = 8,
    ) -> None:
        if ack_timeout_cycles is not None and ack_timeout_cycles <= 0:
            raise ValueError("ack_timeout_cycles must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be at least 1.0")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        #: ``None`` resolves to the machine's
        #: ``MachineConfig.default_ack_timeout_cycles`` at attach time.
        self.ack_timeout_cycles = ack_timeout_cycles
        self.backoff = float(backoff)
        self.max_retries = int(max_retries)


class ReliableTransport:
    """Ack/retry delivery layer bound to one simulator."""

    def __init__(self, sim, config: Optional[ReliabilityConfig] = None) -> None:
        self.sim = sim
        self.config = config or ReliabilityConfig()
        timeout = self.config.ack_timeout_cycles
        if timeout is None:
            timeout = sim.config.default_ack_timeout_cycles
        self.timeout_cycles = float(timeout)
        self.backoff = self.config.backoff
        self.max_retries = self.config.max_retries
        costs = sim.config.costs
        self._sp_cost = float(costs.scratchpad_access)
        self._send_cost = float(costs.send_message)
        #: abandoned deliveries as ``(t, src_lane, dst_lane, seq)`` —
        #: kept regardless of whether a flight recorder is attached, so
        #: SLO verdicts (``repro.service``) can name what was lost
        #: instead of only counting ``stats.transport_give_ups``.
        self.give_up_log: list = []

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def track(self, record: MessageRecord, t_issue: float) -> None:
        """Tag an outbound remote message and arm its retransmit timer.

        Called by ``Simulator.send`` for untagged lane-to-lane remote
        sends; the send itself proceeds normally afterwards (the tagged
        record enters the fabric and may still be dropped/duplicated).
        """
        sim = self.sim
        src = record.src_network_id
        dst = record.network_id
        sp = sim.lane(src).scratchpad
        seq_key = (_SEQ, dst)
        seq = sp.get(seq_key, 0)
        sp[seq_key] = seq + 1
        record.rdt = ("d", src, seq)
        sp[(_PEND, dst, seq)] = record
        timer = MessageRecord(
            src, 0, TIMER_LABEL, (), None, src, "ctl",
        )
        timer.rdt = ("t", dst, seq, 1)
        # Local alarm, not fabric traffic: push straight onto the
        # sender's own schedule with the sender's actor counter.
        sim._push(t_issue + self.timeout_cycles, timer, 1 + src)
        sim.stats.transport_tracked += 1

    def on_ack(self, lane, record: MessageRecord) -> float:
        """An ack reached the original sender: retire the pending entry."""
        _tag, _rcv, seq = record.rdt
        lane.scratchpad.pop((_PEND, record.src_network_id, seq), None)
        return 2.0 * self._sp_cost

    def on_timer(self, lane, record: MessageRecord, start: float) -> float:
        """Retransmit timer fired on the sending lane."""
        _tag, dst, seq, attempt = record.rdt
        sp = lane.scratchpad
        pend = sp.get((_PEND, dst, seq))
        if pend is None:
            # acked (or abandoned) in the meantime — the timer is stale
            return self._sp_cost
        sim = self.sim
        if attempt > self.max_retries:
            del sp[(_PEND, dst, seq)]
            sim.stats.transport_give_ups += 1
            self.give_up_log.append((start, lane.network_id, dst, seq))
            rec_fault = sim._rec_fault
            if rec_fault is not None:
                rec_fault("rdt_give_up", start, (lane.network_id, dst, seq))
            return 2.0 * self._sp_cost
        cycles = self._sp_cost + self._send_cost
        sim.stats.transport_retransmits += 1
        sim.send(pend, start + cycles, lane.node)
        retimer = MessageRecord(
            lane.network_id, 0, TIMER_LABEL, (), None,
            lane.network_id, "ctl",
        )
        retimer.rdt = ("t", dst, seq, attempt + 1)
        delay = self.timeout_cycles * (self.backoff ** min(attempt, 30))
        sim._push(start + cycles + delay, retimer, 1 + lane.network_id)
        return cycles

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def on_data(self, lane, record: MessageRecord, start: float):
        """A tagged data message arrived; returns ``(duplicate, cycles)``.

        ``duplicate=True`` means the payload was already delivered once —
        the dispatcher must suppress the application handler.  An ack is
        sent either way (the first ack may have been lost).
        """
        _tag, src, seq = record.rdt
        sp = lane.scratchpad
        seen_key = (_SEEN, src)
        seen = sp.get(seen_key)
        if seen is None:
            seen = sp[seen_key] = set()
        duplicate = seq in seen
        if not duplicate:
            seen.add(seq)
        sim = self.sim
        stats = sim.stats
        stats.transport_acks += 1
        if duplicate:
            stats.transport_dup_suppressed += 1
        cycles = 2.0 * self._sp_cost + self._send_cost
        ack = MessageRecord(
            src, 0, ACK_LABEL, (), None, lane.network_id, "ctl",
        )
        ack.rdt = ("a", lane.network_id, seq)
        sim.send(ack, start + cycles, lane.node)
        return duplicate, cycles
