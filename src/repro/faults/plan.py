"""Deterministic fault plans for the simulated UpDown machine.

A :class:`FaultPlan` describes *which* faults to inject into a run:
message drop / duplication / extra delay on the remote fabric, transient
lane stalls, degraded per-node DRAM bandwidth, and whole-node fail-stop
at a chosen tick.  The machine layer consults the plan at its normal
decision points (``Simulator.send``, the drain loop, ``MemorySystem``)
and charges every injected fault through the existing cost model — see
``repro.machine.network.Network.fault_delivery``.

Determinism is the design center.  Fault decisions are **content-keyed**:
each draw hashes ``(seed, fault kind, issuing actor, that actor's private
event count)`` through a splitmix64-style integer mixer — never Python's
randomized ``hash()``, never wall-clock, never a shared stateful RNG.
The actor/count pair is exactly the identity the simulator already stamps
into heap keys (``repro.machine.events``): it is assigned entirely at the
point of issue and each actor lives on exactly one shard, so

* the same plan over the same program yields bit-identical fault
  decisions on every run, and
* a faulty run is **shard-count-invariant**: ``shards=1/2/4`` (and
  ``parallel=True``) perturb the same messages at the same times, so
  stats, traces, and application results stay bit-identical across
  partitionings.

A shared ``random.Random`` could give neither property — consumption
order differs between sequential and windowed drains (which is why
latency jitter is banned under sharding, and fault plans are not).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.machine.network import (
    FAULT_DELAY,
    FAULT_DROP,
    FAULT_DUPLICATE,
    FAULT_NONE,
)


class FaultPlanError(ValueError):
    """Raised for malformed fault-plan configuration."""


_MASK64 = (1 << 64) - 1
_INV_2_64 = 1.0 / float(1 << 64)

#: draw domains: distinct fault kinds must decorrelate even when keyed by
#: the same (actor, count) pair — a dropped message and a stalled lane
#: must not share fate just because their counters coincide.
_KIND_MESSAGE = 0x6D73_6721  # "msg!"
_KIND_STALL = 0x7374_616C  # "stal"


def _mix(seed: int, kind: int, a: int, b: int) -> int:
    """splitmix64-style avalanche of a four-part content key → 64 bits."""
    x = (seed ^ (kind * 0x9E3779B97F4A7C15) ^ (a * 0xBF58476D1CE4E5B9)
         ^ (b * 0x94D049BB133111EB)) & _MASK64
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def _check_rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be in [0, 1], got {value}")
    return value


class FaultPlan:
    """One deterministic chaos schedule for a simulated run.

    Parameters
    ----------
    seed:
        Base of every content-keyed draw.  Two plans with different seeds
        perturb (statistically) different messages; the same seed always
        perturbs the same ones.
    drop_rate / duplicate_rate / delay_rate:
        Per-remote-message fault probabilities.  At most one message
        fault applies per send (a single draw is partitioned by the
        cumulative rates), so the rates must sum to at most 1.  Only
        lane-to-lane *remote* messages are eligible: local sends never
        enter the fabric, host-injected starts and host-bound results
        cross the host boundary outside the modeled network, and DRAM
        traffic is functional at issue time (its payload is applied when
        the request issues, so "dropping" it would desynchronize the
        functional and timing models — degrade DRAM bandwidth instead).
    delay_cycles:
        Extra delivery delay charged to a delay-faulted message.
    lane_stall_rate / lane_stall_cycles:
        Per-event probability that a lane stalls (pipeline hiccup, IRQ on
        the real machine) for ``lane_stall_cycles`` before dispatching,
        keyed off ``(lane, events_executed)``.  Stall time delays the
        event and everything queued behind it but is not busy time.
    dram_bandwidth_factors:
        ``{node: factor}`` with factor in (0, 1]: the node's DRAM channel
        runs at that fraction of configured bandwidth (degraded stack).
    fail_stop:
        ``{node: tick}``: the node halts at ``tick`` — every message,
        DRAM request, or queued event destined for it at or after that
        time is discarded at delivery.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_cycles: float = 2_000.0,
        lane_stall_rate: float = 0.0,
        lane_stall_cycles: float = 500.0,
        dram_bandwidth_factors: Optional[Mapping[int, float]] = None,
        fail_stop: Optional[Mapping[int, float]] = None,
    ) -> None:
        self.seed = int(seed)
        self.drop_rate = _check_rate("drop_rate", drop_rate)
        self.duplicate_rate = _check_rate("duplicate_rate", duplicate_rate)
        self.delay_rate = _check_rate("delay_rate", delay_rate)
        total = self.drop_rate + self.duplicate_rate + self.delay_rate
        if total > 1.0:
            raise FaultPlanError(
                f"drop_rate + duplicate_rate + delay_rate must not exceed "
                f"1.0 (got {total}); one message suffers at most one fault"
            )
        self.delay_cycles = float(delay_cycles)
        if self.delay_cycles < 0.0:
            raise FaultPlanError("delay_cycles must be non-negative")
        self.lane_stall_rate = _check_rate("lane_stall_rate", lane_stall_rate)
        self.lane_stall_cycles = float(lane_stall_cycles)
        if self.lane_stall_cycles < 0.0:
            raise FaultPlanError("lane_stall_cycles must be non-negative")
        self.dram_bandwidth_factors: Dict[int, float] = dict(
            dram_bandwidth_factors or {}
        )
        for node, factor in self.dram_bandwidth_factors.items():
            if not 0.0 < factor <= 1.0:
                raise FaultPlanError(
                    f"DRAM bandwidth factor for node {node} must be in "
                    f"(0, 1], got {factor}"
                )
        self.fail_stop: Dict[int, float] = {
            int(node): float(tick) for node, tick in (fail_stop or {}).items()
        }
        for node, tick in self.fail_stop.items():
            if tick < 0.0:
                raise FaultPlanError(
                    f"fail-stop tick for node {node} must be non-negative"
                )
        # cumulative single-draw thresholds (drop < dup < delay)
        self._t_drop = self.drop_rate
        self._t_dup = self._t_drop + self.duplicate_rate
        self._t_delay = self._t_dup + self.delay_rate
        #: mixed-in seed base, decorrelating nearby integer seeds.
        self._seed_mix = _mix(0, 0x73656564, self.seed, 0)

    # ------------------------------------------------------------------
    # Draws (called by the machine layer)
    # ------------------------------------------------------------------

    @property
    def has_message_faults(self) -> bool:
        return self._t_delay > 0.0

    @property
    def has_lane_stalls(self) -> bool:
        return self.lane_stall_rate > 0.0

    def message_fault(self, actor: int, count: int) -> int:
        """Fault code for the remote message ``actor`` is about to issue.

        ``count`` is the actor's private push counter *before* the send's
        own pushes — the same value the heap key will carry, so the
        decision is a pure function of event content.
        """
        u = _mix(self._seed_mix, _KIND_MESSAGE, actor, count) * _INV_2_64
        if u >= self._t_delay:
            return FAULT_NONE
        if u < self._t_drop:
            return FAULT_DROP
        if u < self._t_dup:
            return FAULT_DUPLICATE
        return FAULT_DELAY

    def lane_stall(self, network_id: int, event_index: int) -> float:
        """Stall cycles (possibly 0) before a lane's ``event_index``-th
        dispatch.  Keyed off per-lane state, so shard-invariant."""
        u = _mix(self._seed_mix, _KIND_STALL, network_id, event_index)
        if u * _INV_2_64 < self.lane_stall_rate:
            return self.lane_stall_cycles
        return 0.0

    # ------------------------------------------------------------------
    # Precomputed per-node tables (built once at simulator construction)
    # ------------------------------------------------------------------

    def dead_ticks(self, nodes: int) -> List[float]:
        """Per-node fail-stop tick (``inf`` = never dies)."""
        ticks = [math.inf] * nodes
        for node, tick in self.fail_stop.items():
            if not 0 <= node < nodes:
                raise FaultPlanError(
                    f"fail-stop node {node} out of range [0, {nodes})"
                )
            ticks[node] = tick
        return ticks

    def dram_factors(self, nodes: int) -> List[float]:
        """Per-node DRAM bandwidth factor (1.0 = healthy)."""
        factors = [1.0] * nodes
        for node, factor in self.dram_bandwidth_factors.items():
            if not 0 <= node < nodes:
                raise FaultPlanError(
                    f"degraded-DRAM node {node} out of range [0, {nodes})"
                )
            factors[node] = factor
        return factors

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Plain-data summary (chaos harness logs, trace sidecars)."""
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "delay_cycles": self.delay_cycles,
            "lane_stall_rate": self.lane_stall_rate,
            "lane_stall_cycles": self.lane_stall_cycles,
            "dram_bandwidth_factors": dict(self.dram_bandwidth_factors),
            "fail_stop": dict(self.fail_stop),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        knobs = ", ".join(
            f"{k}={v!r}" for k, v in self.describe().items()
            if v not in (0.0, {}, ())
        )
        return f"FaultPlan({knobs})"
