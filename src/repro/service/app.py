"""Device-side service program: a live mutating graph plus query tasks.

One :class:`ServiceApp` owns the state every request class touches:

* a :class:`~repro.datastruct.pgraph.ParallelGraph` with the adjacency
  index enabled (updates mutate it, multihop queries traverse it);
* the partial-match state table (a scalable hash table keyed by
  ``(pattern, stage, frontier vertex)``);
* the registered pattern set.

Updates reuse :class:`~repro.apps.partial_match.PMRecordTask` verbatim —
the §5.2.4 ingest-and-incrementally-evaluate pipeline *is* the service's
write path — by registering this app in the same named-app registry the
task resolves against (duck-typed: it only reads ``pga`` / ``patterns``
/ ``pattern_by_id`` / ``state``).  Queries are lightweight per-request
threads: one lookup, one state probe, or a thread-local frontier walk —
not a KVMSR job per request, which would be three phase barriers for a
three-operand answer.

Every task completes by sending the host its request id, so the harness
can close the latency measurement the arrival tick opened.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.partial_match import PMRecordTask, Pattern
from repro.datastruct.pgraph import ParallelGraph
from repro.datastruct.sht import ScalableHashTable
from repro.udweave import UDThread, UpDownRuntime, event

from .workload import DEFAULT_PATTERNS

#: host-mailbox label query tasks complete under (updates complete under
#: PMRecordTask's ``pm_rec_done``; the harness listens for both).
DONE_LABEL = "svc_done"


class SvcExactTask(UDThread):
    """Exact-match query: one edge point lookup, answered to the host."""

    def __init__(self) -> None:
        self.req_id = -1

    @event
    def start(self, ctx, app_name, req_id, src, dst):
        app = ServiceApp.named(ctx.runtime, app_name)
        self.req_id = req_id
        ctx.work(1)
        app.pga.lookup_edge_from(ctx, src, dst, ctx.self_evw("reply"))
        ctx.yield_()

    @event
    def reply(self, ctx, found, *values):
        ctx.send_event(
            ctx.runtime.host_evw(DONE_LABEL), self.req_id, found
        )
        ctx.yield_terminate()


class SvcPartialTask(UDThread):
    """Partial-match probe: is ``(pattern, stage, vertex)`` state open?"""

    def __init__(self) -> None:
        self.req_id = -1

    @event
    def start(self, ctx, app_name, req_id, pattern_id, stage, vid):
        app = ServiceApp.named(ctx.runtime, app_name)
        self.req_id = req_id
        ctx.work(1)
        app.state.lookup_from(
            ctx, (pattern_id, stage, vid), ctx.self_evw("reply")
        )
        ctx.yield_()

    @event
    def reply(self, ctx, found, *values):
        ctx.send_event(
            ctx.runtime.host_evw(DONE_LABEL), self.req_id, found
        )
        ctx.yield_terminate()


class SvcMultihopTask(UDThread):
    """Bounded k-hop reachability over the live adjacency index.

    The frontier lives in thread state; each hop fans one
    ``neighbors_from`` query out per frontier vertex and waits for all
    replies before advancing — a per-request micro-BFS, deliberately
    *not* a KVMSR job per hop (a three-phase barrier per hop would put
    the whole machine in one request's critical path).
    """

    def __init__(self) -> None:
        self.req_id = -1
        self.app_name = ""
        self.hops_left = 0
        self.seen: set = set()
        self.frontier: list = []
        self.pending = 0

    @event
    def start(self, ctx, app_name, req_id, vid, hops):
        self.app_name, self.req_id = app_name, req_id
        self.hops_left = hops
        self.seen = {vid}
        self.frontier = [vid]
        self._advance(ctx)

    def _advance(self, ctx) -> None:
        """Issue the next hop's queries, or answer the host when done."""
        if self.hops_left > 0 and self.frontier:
            self.hops_left -= 1
            app = ServiceApp.named(ctx.runtime, self.app_name)
            frontier, self.frontier = self.frontier, []
            adj_evw = ctx.self_evw("adj")
            for vid in frontier:
                ctx.work(1)
                app.pga.neighbors_from(ctx, vid, adj_evw)
                self.pending += 1
            ctx.yield_()
            return
        ctx.send_event(
            ctx.runtime.host_evw(DONE_LABEL), self.req_id, len(self.seen)
        )
        ctx.yield_terminate()

    @event
    def adj(self, ctx, *neighbors):
        seen = self.seen
        frontier = self.frontier
        ctx.work(1 + len(neighbors))
        for v in neighbors:
            if v not in seen:
                seen.add(v)
                frontier.append(v)
        self.pending -= 1
        if self.pending == 0:
            self._advance(ctx)
        else:
            ctx.yield_()


class ServiceApp:
    """Host-side setup for the always-on service (state + task classes)."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        patterns: Sequence[Pattern] = DEFAULT_PATTERNS,
        name: str = "svc",
        ingest_lanes: Optional[int] = None,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.patterns = list(patterns)
        self.pattern_by_id = {p.pattern_id: p for p in self.patterns}
        if len(self.pattern_by_id) != len(self.patterns):
            raise ValueError("pattern ids must be unique")
        self.pga = ParallelGraph(
            runtime, name=f"{name}_pga", adjacency=True
        )
        self.state = ScalableHashTable(
            runtime, f"{name}_state", value_words=2
        )
        self.ingest_lanes = ingest_lanes or runtime.config.total_lanes
        runtime.register(PMRecordTask)
        runtime.register(SvcExactTask)
        runtime.register(SvcPartialTask)
        runtime.register(SvcMultihopTask)
        # the shared named-app registry PMRecordTask resolves through
        apps = getattr(runtime, "_pm_apps", None)
        if apps is None:
            apps = {}
            runtime._pm_apps = apps  # type: ignore[attr-defined]
        apps[name] = self

    @staticmethod
    def named(runtime: UpDownRuntime, name: str) -> "ServiceApp":
        """Resolve a registered service app by name (device-side)."""
        return runtime._pm_apps[name]  # type: ignore[attr-defined]

    def start_label(self, cls: str) -> str:
        """The thread-start label serving one request class."""
        return {
            "update": "PMRecordTask::start",
            "exact": "SvcExactTask::start",
            "multihop": "SvcMultihopTask::start",
            "partial": "SvcPartialTask::start",
        }[cls]
