"""Always-on service mode: open-loop traffic, admission control, SLOs.

The batch pipeline answers "how fast does one job finish"; this package
answers the operator's question — "does the machine keep meeting its
latency SLOs while queries, updates, and faults all arrive at once".
It drives a live mutating graph with deterministic seeded arrival
processes (:mod:`.arrivals`), a mixed query/update workload
(:mod:`.workload`), per-request device threads (:mod:`.app`), bounded
queue-wait admission control and an interleaved-stepping harness
(:mod:`.harness`), and machine-checkable soak verdicts (:mod:`.slo`).
Every layer is a pure function of its seeds, so chaos-soak verdicts are
byte-identical across reruns and shard counts.
"""

from .app import DONE_LABEL, ServiceApp, SvcExactTask, SvcMultihopTask, SvcPartialTask
from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    SteadyArrivals,
)
from .harness import AdmissionControl, ServiceHarness, ServiceResult
from .slo import DEFAULT_P99_CYCLES, SLOSpec, SLOVerdict, histogram_fingerprint
from .workload import (
    DEFAULT_DEADLINES,
    DEFAULT_PATTERNS,
    REQUEST_CLASSES,
    Request,
    ServiceMix,
    ServiceWorkload,
)

__all__ = [
    "AdmissionControl",
    "ArrivalProcess",
    "BurstyArrivals",
    "DEFAULT_DEADLINES",
    "DEFAULT_P99_CYCLES",
    "DEFAULT_PATTERNS",
    "DiurnalArrivals",
    "DONE_LABEL",
    "histogram_fingerprint",
    "PoissonArrivals",
    "REQUEST_CLASSES",
    "Request",
    "SLOSpec",
    "SLOVerdict",
    "ServiceApp",
    "ServiceHarness",
    "ServiceMix",
    "ServiceResult",
    "ServiceWorkload",
    "SteadyArrivals",
    "SvcExactTask",
    "SvcMultihopTask",
    "SvcPartialTask",
]
