"""Deterministic, seeded open-loop arrival processes.

An always-on service is driven *open loop*: requests arrive on a clock
the clients own, whether or not the machine has kept up — that is what
makes queueing, admission control, and tail latency measurable at all
(a closed loop self-throttles and hides saturation).  Every process here
is a pure function of its constructor arguments: the k-th arrival time
is reproducible bit-for-bit across runs, shard counts, and platforms,
which is what lets chaos-soak SLO verdicts be compared byte-wise.

Randomness (the Poisson process) comes from the same splitmix64 mixing
the fault plans use — counter-keyed draws, no shared RNG stream whose
consumption order could differ between configurations.
"""

from __future__ import annotations

import math
from typing import List

_MASK64 = (1 << 64) - 1
#: 2^-53 — maps the top 53 bits of a mix to a uniform in (0, 1].
_INV_2_53 = 1.0 / (1 << 53)


def _mix(seed: int, a: int, b: int) -> int:
    """splitmix64-style avalanche of (seed, a, b) — same recipe as
    ``repro.faults.plan``."""
    x = (seed ^ (a * 0x9E3779B97F4A7C15) ^ (b * 0xBF58476D1CE4E5B9)) & _MASK64
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


class ArrivalProcess:
    """Base class: ``times(n)`` returns the first ``n`` arrival ticks."""

    def times(self, n: int) -> List[float]:
        """The first ``n`` arrival times in cycles, non-decreasing."""
        raise NotImplementedError


class SteadyArrivals(ArrivalProcess):
    """Constant-rate traffic: one request every ``gap_cycles``.

    The "steady QPS" scenario — offered load is
    ``clock_hz / gap_cycles`` requests per second.
    """

    def __init__(self, gap_cycles: float, start_cycles: float = 0.0) -> None:
        if gap_cycles <= 0:
            raise ValueError("gap_cycles must be positive")
        self.gap_cycles = float(gap_cycles)
        self.start_cycles = float(start_cycles)

    def times(self, n: int) -> List[float]:
        gap = self.gap_cycles
        start = self.start_cycles
        return [start + k * gap for k in range(n)]


class PoissonArrivals(ArrivalProcess):
    """Memoryless traffic: exponential gaps with mean ``mean_gap_cycles``.

    Gap ``k`` is ``-mean * ln(u_k)`` with ``u_k`` drawn by counter-keyed
    splitmix64 — the k-th gap never depends on how many gaps anyone else
    drew, so the process is trivially reproducible.
    """

    def __init__(
        self, mean_gap_cycles: float, seed: int = 0, start_cycles: float = 0.0
    ) -> None:
        if mean_gap_cycles <= 0:
            raise ValueError("mean_gap_cycles must be positive")
        self.mean_gap_cycles = float(mean_gap_cycles)
        self.seed = int(seed)
        self.start_cycles = float(start_cycles)

    def times(self, n: int) -> List[float]:
        mean = self.mean_gap_cycles
        seed = self.seed
        t = self.start_cycles
        out: List[float] = []
        for k in range(n):
            u = ((_mix(seed, 0x706F6973, k) >> 11) + 1) * _INV_2_53
            t += -mean * math.log(u)
            out.append(t)
        return out


class BurstyArrivals(ArrivalProcess):
    """On/off traffic: bursts of back-to-back requests, then silence.

    ``burst_size`` requests spaced ``gap_cycles`` apart, then an
    ``idle_gap_cycles`` pause before the next burst — the pattern that
    used to false-trip the absolute-time quiescence watchdog (the
    machine is *intentionally* idle between bursts; see
    ``Simulator.inject``'s rearm-on-injection semantics).
    """

    def __init__(
        self,
        burst_size: int,
        gap_cycles: float,
        idle_gap_cycles: float,
        start_cycles: float = 0.0,
    ) -> None:
        if burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if gap_cycles <= 0 or idle_gap_cycles < 0:
            raise ValueError("gaps must be positive")
        self.burst_size = int(burst_size)
        self.gap_cycles = float(gap_cycles)
        self.idle_gap_cycles = float(idle_gap_cycles)
        self.start_cycles = float(start_cycles)

    def times(self, n: int) -> List[float]:
        out: List[float] = []
        t = self.start_cycles
        k = 0
        while len(out) < n:
            out.append(t)
            k += 1
            if k % self.burst_size == 0:
                t += self.idle_gap_cycles
            else:
                t += self.gap_cycles
        return out


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated rate — the day/night traffic curve.

    Instantaneous rate is ``(1 + amplitude * sin(2*pi*t / day_cycles))``
    times the base rate ``1 / base_gap_cycles``; the next gap is the
    reciprocal of the rate at the current tick.  ``amplitude`` is capped
    below 1 so the rate never reaches zero.
    """

    def __init__(
        self,
        base_gap_cycles: float,
        amplitude: float,
        day_cycles: float,
        start_cycles: float = 0.0,
    ) -> None:
        if base_gap_cycles <= 0 or day_cycles <= 0:
            raise ValueError("base_gap_cycles and day_cycles must be positive")
        if not 0.0 <= amplitude <= 0.95:
            raise ValueError("amplitude must be in [0, 0.95]")
        self.base_gap_cycles = float(base_gap_cycles)
        self.amplitude = float(amplitude)
        self.day_cycles = float(day_cycles)
        self.start_cycles = float(start_cycles)

    def times(self, n: int) -> List[float]:
        base_rate = 1.0 / self.base_gap_cycles
        amp = self.amplitude
        omega = 2.0 * math.pi / self.day_cycles
        t = self.start_cycles
        out: List[float] = []
        for _ in range(n):
            out.append(t)
            rate = base_rate * (1.0 + amp * math.sin(omega * t))
            t += 1.0 / rate
        return out
