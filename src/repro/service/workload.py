"""Seeded request-stream generation: the service's query/update mix.

Each request carries an id, a class, an arrival tick, and a deadline;
payloads are drawn by counter-keyed splitmix64 (no shared RNG stream),
so the full request stream is a pure function of ``(seed, arrivals)`` —
the reproducibility contract the SLO verdicts rest on.

The four request classes mirror the paper's dynamic-graph workloads:

* ``update`` — one streamed edge record, ingested into the live
  Parallel Graph *and* evaluated incrementally against the registered
  partial-match patterns (the §5.2.4 pipeline, reused verbatim);
* ``exact`` — an exact-match point lookup of one edge record;
* ``multihop`` — a bounded k-hop traversal over the live adjacency
  index;
* ``partial`` — a probe of the partial-match state table ("is this
  pattern open at stage s on vertex v?").

Queries are biased toward vertices earlier updates touched, so a live
mutating graph serves most of them from real state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.apps.partial_match import Pattern

from .arrivals import _mix

#: request classes, in the order verdicts and reports enumerate them.
REQUEST_CLASSES = ("update", "exact", "multihop", "partial")

_KIND_CLASS = 0x636C6173  # "clas"
_KIND_FIELD = 0x666C6400  # "fld"

#: default per-class deadlines in cycles (~tens of microseconds at the
#: 2 GHz model clock) — generous enough that a healthy machine makes
#: them, tight enough that sustained queueing or a retransmit storm
#: shows up as misses.
DEFAULT_DEADLINES: Mapping[str, float] = {
    "update": 150_000.0,
    "exact": 100_000.0,
    "multihop": 250_000.0,
    "partial": 100_000.0,
}

#: default pattern set for the partial-match side of the mix.
DEFAULT_PATTERNS: Tuple[Pattern, ...] = (
    Pattern(0, (0, 1)),
    Pattern(1, (1, 2, 0)),
)


@dataclass(frozen=True)
class Request:
    """One tagged service request (id, class, arrival, deadline, payload)."""

    req_id: int
    cls: str
    t_arrival: float
    deadline_cycles: float
    payload: Tuple[Any, ...]


@dataclass(frozen=True)
class ServiceMix:
    """Relative class weights plus per-class knobs for the generator."""

    update_weight: int = 4
    exact_weight: int = 2
    multihop_weight: int = 1
    partial_weight: int = 1
    multihop_hops: int = 2
    deadline_cycles: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DEADLINES)
    )

    def weights(self) -> Tuple[Tuple[str, int], ...]:
        """(class, weight) pairs in canonical order, zero-weight dropped."""
        pairs = (
            ("update", self.update_weight),
            ("exact", self.exact_weight),
            ("multihop", self.multihop_weight if self.multihop_hops > 0 else 0),
            ("partial", self.partial_weight),
        )
        out = tuple((cls, w) for cls, w in pairs if w > 0)
        if not out:
            raise ValueError("at least one request class needs weight > 0")
        return out


class ServiceWorkload:
    """Deterministic request-stream generator for one service run."""

    def __init__(
        self,
        seed: int = 0,
        n_vertices: int = 64,
        n_etypes: int = 3,
        patterns: Sequence[Pattern] = DEFAULT_PATTERNS,
        mix: ServiceMix = None,
    ) -> None:
        if n_vertices < 1 or n_etypes < 1:
            raise ValueError("n_vertices and n_etypes must be positive")
        self.seed = int(seed)
        self.n_vertices = int(n_vertices)
        self.n_etypes = int(n_etypes)
        self.patterns = tuple(patterns)
        self.mix = mix if mix is not None else ServiceMix()

    def _draw(self, i: int, which: int) -> int:
        return _mix(self.seed, _KIND_FIELD + which, i)

    def requests(self, arrivals: Sequence[float]) -> List[Request]:
        """Materialize one :class:`Request` per arrival tick."""
        mix = self.mix
        weights = mix.weights()
        total_w = sum(w for _cls, w in weights)
        deadlines = mix.deadline_cycles
        n_v = self.n_vertices
        n_e = self.n_etypes
        patterns = self.patterns
        seed = self.seed
        #: state earlier updates touched — queries aim here first so
        #: they exercise live state rather than cold misses.
        touched: List[int] = []
        touched_edges: List[Tuple[int, int]] = []
        out: List[Request] = []
        for i, t in enumerate(arrivals):
            r = _mix(seed, _KIND_CLASS, i) % total_w
            cls = weights[-1][0]
            for name, w in weights:
                if r < w:
                    cls = name
                    break
                r -= w
            if cls == "update":
                src = self._draw(i, 0) % n_v
                dst = self._draw(i, 1) % n_v
                etype = self._draw(i, 2) % n_e
                payload = (src, dst, etype, i)
                touched.append(dst)
                touched_edges.append((src, dst))
            elif cls == "exact":
                if touched_edges:
                    k = self._draw(i, 0) % len(touched_edges)
                    payload = touched_edges[k]
                else:
                    payload = (
                        self._draw(i, 0) % n_v,
                        self._draw(i, 1) % n_v,
                    )
            else:
                if touched:
                    vid = touched[self._draw(i, 0) % len(touched)]
                else:
                    vid = self._draw(i, 0) % n_v
                if cls == "multihop":
                    payload = (vid, mix.multihop_hops)
                else:  # partial
                    p = patterns[self._draw(i, 1) % len(patterns)]
                    # open state exists for stages 0..len(types)-2; the
                    # final stage alerts instead of storing
                    n_stages = max(1, len(p.types) - 1)
                    stage = self._draw(i, 2) % n_stages
                    payload = (p.pattern_id, stage, vid)
            out.append(
                Request(
                    req_id=i,
                    cls=cls,
                    t_arrival=float(t),
                    deadline_cycles=float(deadlines[cls]),
                    payload=payload,
                )
            )
        return out

    def class_counts(self, requests: Sequence[Request]) -> Dict[str, int]:
        """Requests per class — for reports and sanity checks."""
        counts = {cls: 0 for cls in REQUEST_CLASSES}
        for req in requests:
            counts[req.cls] += 1
        return counts
