"""Open-loop service driver: interleaved stepping, admission, deadlines.

The harness turns the batch simulator into an always-on service: it
steps the machine through fixed windows (``Simulator.run(until=)`` —
forwarded to the shard scheduler's clamped epoch windows when sharded),
and between windows plays the host-side control plane:

* **admission** — each arriving request is checked against the ingress
  node's injection-channel backlog (:meth:`Network.injection_backlog`);
  over-threshold arrivals are shed (counted, never injected) or
  deferred (injected later, the wait charged to their latency);
* **dispatch** — admitted requests are injected as per-request threads
  (``ServiceApp.start_label``) at their admission tick;
* **completion** — host-mailbox messages close the latency measurement
  the arrival tick opened; completions past the deadline are
  ``deadline_miss``, requests still unanswered when the post-traffic
  drain grace expires are ``lost``.

Everything the control plane reads between windows (channel ``free_at``,
the host inbox) is bit-identical across shard counts at window
boundaries — all events before the boundary have executed, all events
after it have not — so a sharded service run reproduces the sequential
one byte for byte, chaos plans included.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.machine.simulator import SimulationError
from repro.machine.stats import SimStats
from repro.observe.histogram import LogHistogram

from .app import DONE_LABEL, ServiceApp
from .slo import SLOSpec, SLOVerdict, histogram_fingerprint
from .workload import REQUEST_CLASSES, Request

#: update completions arrive under PMRecordTask's label.
_UPDATE_DONE_LABEL = "pm_rec_done"
_ALERT_LABEL = "pm_alert"


class AdmissionControl:
    """Bounded queue-wait admission at the ingress injection channel.

    ``max_queue_wait_cycles`` is the backlog a request may queue behind;
    beyond it the ``policy`` decides: ``"shed"`` rejects the request
    outright (the ``requests_shed`` counter), ``"defer"`` delays its
    injection until the backlog has drained back to the threshold
    (bounded by ``max_defer_cycles``; past that bound it is shed after
    all).  The default threshold is infinite — admit everything — so
    plain latency measurement needs no configuration.
    """

    def __init__(
        self,
        max_queue_wait_cycles: float = math.inf,
        policy: str = "shed",
        max_defer_cycles: Optional[float] = None,
    ) -> None:
        if policy not in ("shed", "defer"):
            raise ValueError("policy must be 'shed' or 'defer'")
        if max_queue_wait_cycles < 0:
            raise ValueError("max_queue_wait_cycles must be non-negative")
        self.max_queue_wait_cycles = float(max_queue_wait_cycles)
        self.policy = policy
        self.max_defer_cycles = max_defer_cycles
        self.requests_admitted = 0
        self.requests_shed = 0
        self.requests_deferred = 0
        self.defer_cycles_total = 0.0

    def decide(self, sim, node: int, t_arrival: float) -> Tuple[str, float]:
        """Admission decision for an arrival at ``t_arrival`` bound for
        ``node``; returns ``(verdict, t_admit)`` with verdict one of
        ``"admit"`` / ``"defer"`` / ``"shed"``."""
        backlog = sim.network.injection_backlog(node, t_arrival)
        if backlog <= self.max_queue_wait_cycles:
            self.requests_admitted += 1
            return "admit", t_arrival
        if self.policy == "defer":
            delay = backlog - self.max_queue_wait_cycles
            if self.max_defer_cycles is None or delay <= self.max_defer_cycles:
                self.requests_admitted += 1
                self.requests_deferred += 1
                self.defer_cycles_total += delay
                return "defer", t_arrival + delay
        self.requests_shed += 1
        return "shed", t_arrival

    def counters(self) -> Dict[str, Any]:
        """Plain-data counter snapshot (verdicts, JSON artifacts)."""
        return {
            "requests_admitted": self.requests_admitted,
            "requests_shed": self.requests_shed,
            "requests_deferred": self.requests_deferred,
            "defer_cycles_total": self.defer_cycles_total,
        }


@dataclass
class ServiceResult:
    """Everything one service run measured, verdict included."""

    latency_hist: Dict[str, LogHistogram]
    status_counts: Dict[str, int]
    per_request: Dict[int, str]
    alerts: int
    requests_total: int
    admission: AdmissionControl
    transport_give_ups: int
    give_up_log: List[tuple]
    fault_counts: Dict[str, int]
    stats: SimStats
    elapsed_seconds: float
    verdict: Optional[SLOVerdict] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Digest of the run's observable outcome.

        Covers the per-class latency histograms (exact bucket contents,
        counts, totals), every per-request verdict, the admission
        counters, and the transport give-up set — equal fingerprints
        mean the runs were observationally identical.  The give-up log
        is sorted first: in-process shards retire windows shard by
        shard, so its append order (only) is shard-dependent.
        """
        canon = (
            histogram_fingerprint(self.latency_hist),
            tuple(sorted(self.status_counts.items())),
            tuple(sorted(self.per_request.items())),
            self.alerts,
            self.requests_total,
            tuple(sorted(self.admission.counters().items())),
            self.transport_give_ups,
            tuple(sorted(self.give_up_log)),
        )
        return hashlib.sha256(repr(canon).encode()).hexdigest()

    def p99_cycles(self, cls: str) -> float:
        """Convenience: the class's p99 latency bound in cycles."""
        hist = self.latency_hist.get(cls)
        return hist.quantile_bound(0.99) if hist is not None else 0.0


class ServiceHarness:
    """Drives one :class:`ServiceApp` with an open-loop request stream."""

    def __init__(
        self,
        app: ServiceApp,
        admission: Optional[AdmissionControl] = None,
        step_cycles: float = 4_000.0,
        drain_grace_cycles: float = 400_000.0,
    ) -> None:
        if step_cycles <= 0:
            raise ValueError("step_cycles must be positive")
        if drain_grace_cycles < 0:
            raise ValueError("drain_grace_cycles must be non-negative")
        self.app = app
        self.runtime = app.runtime
        self.admission = admission or AdmissionControl()
        self.step_cycles = float(step_cycles)
        self.drain_grace_cycles = float(drain_grace_cycles)

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------

    def _ingress(self, req: Request) -> Tuple[int, int]:
        """(lane, node) a request enters the machine through."""
        lane = req.req_id % self.app.ingest_lanes
        return lane, lane // self.runtime.config.lanes_per_node

    def _inject(self, req: Request, lane: int, t_admit: float) -> None:
        rt = self.runtime
        rt.start(
            lane,
            self.app.start_label(req.cls),
            self.app.name,
            req.req_id,
            *req.payload,
            t=t_admit,
        )

    def _admit_one(
        self,
        sim,
        req: Request,
        per_request: Dict[int, str],
        inflight: Dict[int, Request],
    ) -> None:
        """Admission-check one arrival and inject it (or shed it)."""
        lane, node = self._ingress(req)
        verdict, t_admit = self.admission.decide(sim, node, req.t_arrival)
        if verdict == "shed":
            per_request[req.req_id] = "shed"
            return
        self._inject(req, lane, t_admit)
        inflight[req.req_id] = req

    # ------------------------------------------------------------------
    # The open loop
    # ------------------------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        slo: Optional[SLOSpec] = None,
        max_events: Optional[int] = None,
    ) -> ServiceResult:
        """Serve the request stream to completion; returns the result.

        Never hangs: traffic ends at the last arrival, then the machine
        gets ``drain_grace_cycles`` of simulated time to answer what is
        in flight; whatever is still unanswered is recorded as ``lost``
        (with the transport's give-up log naming the abandoned
        deliveries) rather than waited for.
        """
        rt = self.runtime
        sim = rt.sim
        admission = self.admission
        step = self.step_cycles
        reqs = sorted(requests, key=lambda r: (r.t_arrival, r.req_id))
        latency_hist = {cls: LogHistogram() for cls in REQUEST_CLASSES}
        per_request: Dict[int, str] = {}
        inflight: Dict[int, Request] = {}
        inbox_pos = 0
        alerts = 0
        events_base = sim.stats.events_executed
        horizon = reqs[-1].t_arrival if reqs else 0.0
        end = horizon + self.drain_grace_cycles
        now = 0.0
        idx = 0
        ahead = False  # reqs[idx] already decided by the look-ahead below
        while now < end:
            win_end = now + step if now + step < end else end
            while idx < len(reqs) and reqs[idx].t_arrival < win_end:
                if ahead:
                    ahead = False
                    idx += 1
                    continue
                self._admit_one(sim, reqs[idx], per_request, inflight)
                idx += 1
            # look one arrival ahead: injecting it now rearms the
            # quiescence watchdog through the idle gap before it (a
            # lazily-cancelled retransmit timer firing mid-gap must not
            # read the *previous* burst as the last progress), while
            # masking the watchdog by at most one inter-arrival gap
            if idx < len(reqs) and not ahead:
                self._admit_one(sim, reqs[idx], per_request, inflight)
                ahead = True
            budget = None
            if max_events is not None:
                budget = max_events - (sim.stats.events_executed - events_base)
                if budget <= 0:
                    raise SimulationError(
                        f"service run exceeded max_events={max_events}"
                    )
            sim.run(max_events=budget, until=win_end)
            now = win_end
            inbox_pos, alerts = self._collect(
                sim, inbox_pos, inflight, per_request, latency_hist, alerts
            )
            if idx >= len(reqs) and not inflight:
                break
        # whatever never answered inside the grace window is lost — the
        # graceful-degradation verdict, not a hang
        for req_id in sorted(inflight):
            per_request[req_id] = "lost"
        inflight.clear()
        status_counts = {
            s: 0 for s in ("ok", "deadline_miss", "shed", "lost")
        }
        for status in per_request.values():
            status_counts[status] += 1
        transport = getattr(sim, "_transport", None)
        give_up_log = (
            sorted(transport.give_up_log) if transport is not None else []
        )
        recorder = sim.recorder
        fault_counts = (
            dict(recorder.fault_counts) if recorder is not None else {}
        )
        result = ServiceResult(
            latency_hist=latency_hist,
            status_counts=status_counts,
            per_request=per_request,
            alerts=alerts,
            requests_total=len(reqs),
            admission=admission,
            transport_give_ups=sim.stats.transport_give_ups,
            give_up_log=give_up_log,
            fault_counts=fault_counts,
            stats=sim.stats,
            elapsed_seconds=rt.elapsed_seconds,
        )
        if slo is not None:
            result.verdict = slo.evaluate(
                latency_hist,
                status_counts,
                admission.requests_shed,
                len(reqs),
                sim.stats.transport_give_ups,
            )
        return result

    def _collect(
        self,
        sim,
        inbox_pos: int,
        inflight: Dict[int, Request],
        per_request: Dict[int, str],
        latency_hist: Dict[str, LogHistogram],
        alerts: int,
    ) -> Tuple[int, int]:
        """Match new host-inbox messages against in-flight requests."""
        inbox = sim.host_inbox
        for i in range(inbox_pos, len(inbox)):
            t, msg = inbox[i]
            label = msg.label
            if label == DONE_LABEL or label == _UPDATE_DONE_LABEL:
                req = inflight.pop(msg.operands[0], None)
                if req is None:
                    continue
                latency = t - req.t_arrival
                latency_hist[req.cls].add(latency)
                per_request[req.req_id] = (
                    "ok" if latency <= req.deadline_cycles
                    else "deadline_miss"
                )
            elif label == _ALERT_LABEL:
                alerts += 1
        return len(inbox), alerts
