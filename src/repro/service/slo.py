"""Latency SLOs and machine-checkable soak verdicts.

A soak run ends in a verdict, not a plot: fixed bounds (per-class p99,
deadline-miss fraction, lost requests, shed fraction) are checked
against the run's measured distributions and the result is a plain
``passed`` flag plus a deterministic, ordered violation list.  Verdicts
are built only from bit-reproducible inputs — LogHistogram bucket
bounds (powers of two), integer counters, and exact cycle counts — so
two runs of the same seed produce byte-identical verdicts, including
across shard counts.  That is what makes a chaos soak CI-checkable:
"the machine under 1% drops still meets the SLO" is an equality test.

Timeout semantics: a request that completes after its deadline is a
``deadline_miss`` (it still has a latency sample); a request that never
completes by the end of the drain grace window — give-up'd transport,
fail-stopped node, shed-free overload — is ``lost`` and has none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.observe.histogram import LogHistogram

from .workload import REQUEST_CLASSES

#: default per-class p99 bounds in cycles — sized for the scaled bench
#: machine under moderate load; tighten per scenario.
DEFAULT_P99_CYCLES: Mapping[str, float] = {
    "update": 65_536.0,
    "exact": 65_536.0,
    "multihop": 131_072.0,
    "partial": 65_536.0,
}


@dataclass(frozen=True)
class SLOSpec:
    """Bounds a service run must meet to pass.

    ``p99_cycles`` maps request classes to latency-bound cycles (a class
    absent from the map is unbounded).  The fractions are over admitted
    requests; ``max_transport_give_ups`` of ``None`` leaves give-ups
    reported but unchecked (lost requests catch their damage anyway).
    """

    p99_cycles: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_P99_CYCLES)
    )
    max_deadline_miss_frac: float = 0.01
    max_lost: int = 0
    max_shed_frac: float = 0.05
    max_transport_give_ups: Optional[int] = None

    def evaluate(
        self,
        latency_hist: Mapping[str, LogHistogram],
        status_counts: Mapping[str, int],
        requests_shed: int,
        requests_total: int,
        transport_give_ups: int,
    ) -> "SLOVerdict":
        """Check the bounds; returns the machine-checkable verdict."""
        violations: List[str] = []
        per_class: Dict[str, Dict[str, Any]] = {}
        for cls in REQUEST_CLASSES:
            hist = latency_hist.get(cls)
            if hist is None or hist.count == 0:
                continue
            p50 = hist.quantile_bound(0.5)
            p99 = hist.quantile_bound(0.99)
            per_class[cls] = {
                "count": hist.count,
                "p50_cycles": p50,
                "p99_cycles": p99,
                "max_cycles": hist.max,
            }
            bound = self.p99_cycles.get(cls)
            if bound is not None and p99 > bound:
                violations.append(
                    f"{cls}: p99 {p99:.0f} cycles exceeds bound {bound:.0f}"
                )
        completed = status_counts.get("ok", 0) + status_counts.get(
            "deadline_miss", 0
        )
        admitted = completed + status_counts.get("lost", 0)
        misses = status_counts.get("deadline_miss", 0)
        miss_frac = misses / admitted if admitted else 0.0
        if miss_frac > self.max_deadline_miss_frac:
            violations.append(
                f"deadline misses {misses}/{admitted} "
                f"({miss_frac:.4f}) exceed max_deadline_miss_frac "
                f"{self.max_deadline_miss_frac}"
            )
        lost = status_counts.get("lost", 0)
        if lost > self.max_lost:
            violations.append(
                f"{lost} request(s) never completed (lost) "
                f"exceeds max_lost {self.max_lost}"
            )
        shed_frac = requests_shed / requests_total if requests_total else 0.0
        if shed_frac > self.max_shed_frac:
            violations.append(
                f"shed {requests_shed}/{requests_total} "
                f"({shed_frac:.4f}) exceeds max_shed_frac "
                f"{self.max_shed_frac}"
            )
        if (
            self.max_transport_give_ups is not None
            and transport_give_ups > self.max_transport_give_ups
        ):
            violations.append(
                f"transport gave up on {transport_give_ups} delivery(ies), "
                f"max allowed {self.max_transport_give_ups}"
            )
        return SLOVerdict(
            passed=not violations,
            violations=violations,
            per_class=per_class,
            counters={
                "requests_total": requests_total,
                "requests_admitted": admitted,
                "requests_shed": requests_shed,
                "deadline_misses": misses,
                "lost": lost,
                "transport_give_ups": transport_give_ups,
            },
        )


@dataclass
class SLOVerdict:
    """The outcome of one soak: pass/fail plus the evidence.

    ``violations`` is ordered deterministically (per-class bounds in
    canonical class order, then the global bounds); :meth:`to_dict`
    is the JSON soak-verdict format benchmarks persist.
    """

    passed: bool
    violations: List[str]
    per_class: Dict[str, Dict[str, Any]]
    counters: Dict[str, int]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for JSON artifacts (``BENCH_service.json``)."""
        return {
            "passed": self.passed,
            "violations": list(self.violations),
            "per_class": {
                cls: dict(m) for cls, m in self.per_class.items()
            },
            "counters": dict(self.counters),
        }


def histogram_fingerprint(
    latency_hist: Mapping[str, LogHistogram]
) -> Tuple[Tuple[str, Tuple[Tuple[int, int], ...], int, float, float], ...]:
    """Canonical, hashable form of the per-class latency histograms.

    Bucket maps are sorted and paired with the exact count/total/max, so
    two runs agree on this value iff their latency distributions are
    bit-identical — the equality the reproducibility tests assert.
    """
    out = []
    for cls in REQUEST_CLASSES:
        hist = latency_hist.get(cls)
        if hist is None:
            continue
        out.append(
            (
                cls,
                tuple(sorted(hist.buckets.items())),
                hist.count,
                hist.total,
                hist.max,
            )
        )
    return tuple(out)
