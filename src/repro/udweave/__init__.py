"""UDWeave: fine-grained, small-scale parallelism (paper §2.1).

An embedded-Python rendering of the UDWeave language: thread classes with
``@event`` handlers, event words, continuations, split-phase DRAM access,
and software-directed thread management, all cost-modeled per Table 2.
"""

from .context import IGNRCONT, MAX_DRAM_READ_WORDS, LaneContext, UDWeaveError
from .eventword import EventWordError, decode, encode, with_label
from .program import Program, ProgramError
from .runtime import UpDownRuntime
from .thread import UDThread, event
from .udlog import LogEntry, UDLog

__all__ = [
    "UDThread",
    "event",
    "Program",
    "ProgramError",
    "UpDownRuntime",
    "LaneContext",
    "UDWeaveError",
    "IGNRCONT",
    "MAX_DRAM_READ_WORDS",
    "UDLog",
    "LogEntry",
    "encode",
    "decode",
    "with_label",
    "EventWordError",
]
