"""BASIM_PRINT-style simulation logs (artifact appendix, Listing 17-20).

The artifact extracts every timing by diffing timestamps of log lines::

    [BASIM_PRINT] 527500: [NWID 0][TID 12][label] message

``ctx.ud_print`` emits the same structure; :func:`format_log` renders it,
and :func:`ticks_between` reproduces the appendix's extraction recipe
(first line matching one marker to last line matching another, converted
to seconds at 2 GHz).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class LogEntry:
    tick: float
    network_id: int
    thread_id: int
    label: str
    message: str

    def render(self) -> str:
        return (
            f"[BASIM_PRINT] {self.tick:.0f}: [NWID {self.network_id}]"
            f"[TID {self.thread_id}][{self.label}] {self.message}"
        )


class UDLog:
    """Collects log entries for one simulation run."""

    def __init__(self) -> None:
        self.entries: List[LogEntry] = []

    def emit(
        self, tick: float, network_id: int, thread_id: int, label: str,
        message: str,
    ) -> None:
        self.entries.append(
            LogEntry(tick, network_id, thread_id, label, message)
        )

    def __len__(self) -> int:
        return len(self.entries)

    def format_log(self) -> str:
        return "\n".join(e.render() for e in self.entries)

    def matching(self, pattern: str) -> List[LogEntry]:
        rx = re.compile(pattern)
        return [
            e
            for e in self.entries
            if rx.search(e.message) or rx.search(e.label)
        ]

    def first_tick(self, pattern: str) -> Optional[float]:
        hits = self.matching(pattern)
        return hits[0].tick if hits else None

    def last_tick(self, pattern: str) -> Optional[float]:
        hits = self.matching(pattern)
        return hits[-1].tick if hits else None

    def ticks_between(self, start_pattern: str, end_pattern: str) -> float:
        """The appendix's recipe: last(end) - first(start), in ticks."""
        t0 = self.first_tick(start_pattern)
        t1 = self.last_tick(end_pattern)
        if t0 is None or t1 is None:
            raise ValueError(
                f"log markers not found: {start_pattern!r} -> {end_pattern!r}"
            )
        return t1 - t0

    def seconds_between(
        self, start_pattern: str, end_pattern: str, clock_hz: int = 2_000_000_000
    ) -> float:
        """``time[s] = ticks / 2e9`` (the appendix's conversion)."""
        return self.ticks_between(start_pattern, end_pattern) / clock_hz

    def to_perflog_tsv(
        self, host_seconds: float = 0.0, clock_hz: int = 2_000_000_000
    ) -> str:
        """Render the artifact's ``perflog.tsv`` format (Listing 21)::

            HOST_SEC FINAL_TICK SIM_TICKS SIM_SEC CPU_ID NETWORK_ID
            THREAD_ID EVENT_LABEL LANE_EXEC_TICKS MSG_ID MSG_STR
        """
        header = (
            "HOST_SEC\tFINAL_TICK\tSIM_TICKS\tSIM_SEC\tCPU_ID\tNETWORK_ID"
            "\tTHREAD_ID\tEVENT_LABEL\tLANE_EXEC_TICKS\tMSG_ID\tMSG_STR"
        )
        rows = [header]
        for msg_id, e in enumerate(self.entries, start=1):
            tick = int(e.tick)
            rows.append(
                f"{host_seconds:.2f}\t{tick}\t{tick}\t"
                f"{tick / clock_hz:.6f}\t0\t{e.network_id}\t{e.thread_id}\t"
                f"{e.label}\t{tick}\t{msg_id}\t{e.message}"
            )
        return "\n".join(rows)
