"""Intrinsic event-IR: handler lowering and batched execution.

The simulator's per-event cost is dominated by the Python machinery
*around* a handler, not the handler body: every KVMSR reduce tuple pays a
``MessageRecord`` allocation, a heap push, a heap pop, a drain-loop
iteration, a dispatcher call, a thread allocate/deallocate, and a pooled
``LaneContext`` rearm — for a body that is often two scratchpad updates.
Following the intrinsic-function idiom (handlers decompose into a small
fixed op vocabulary) this module lowers a registered handler body into a
linear sequence of intrinsic ops and, for bodies the lowering can prove
*batch-safe*, compiles a specialized executor that applies N same-label
records to a lane in one pass.

Op vocabulary (golden dumps in ``tests/udweave/test_event_ir.py``)::

    CHARGE n            fixed lane cycles (Table 2 sums; exact integers)
    CC_ADD cache        combining-cache fetch&add (miss/hit arms inside)
    KVR_RETURN job      reduce-tuple retirement (credit bump + terminate)
    SCRATCH_RW op key   raw scratchpad access (result escapes the trace)
    SEND label          message send
    KV_EMIT             intermediate-tuple emit (send via reduce binding)
    DRAM_READ/DRAM_WRITE n   split-phase memory traffic
    SPAWN label         thread spawn
    YIELD / TERMINATE   thread state transition

Lowering is *trace-based*: the handler runs once against a
:class:`TraceContext` whose operands are opaque :class:`Symbol` values.
Any operation the trace cannot represent exactly — symbolic arithmetic,
data-dependent control flow through a symbol, raw lane access — raises
:class:`LoweringUnsupported` and the handler keeps the interpreter
forever (per-event fallback; coverage grows incrementally).

Batch safety
------------
A lowered body is **batch-safe** only when every op is in
:data:`PARK_SAFE_OPS` — pure cycle charges plus the two proven KVMSR
composites (``CC_ADD``, ``KVR_RETURN``), with exactly one terminating
``KVR_RETURN``.  Those bodies touch nothing but their own lane's
scratchpad and clock: no sends, no DRAM, no spawns, no raw reads whose
value could steer control flow.  That is what makes *deferred* execution
legal: parked records cannot schedule anything, so replaying them in
exact ``(time, seq)`` key order just before the next observation of the
lane reproduces the interpreted schedule bit-for-bit (see
``machine/simulator.py`` and DESIGN.md "Event IR & batched dispatch").

Every batch-safe plan is additionally **validated once per program**
against the interpreted semantics before its first record parks: the
real handler and the generated single-record executor run side by side
on scratch lanes (miss arm, then hit arm) and must agree on the charged
cycles and every scratchpad mutation.  A divergence disables the plan —
the handler stays on the interpreter — rather than risking a wrong
simulation.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.events import NEW_THREAD, MessageRecord, RecordBatch
from repro.machine.lane import Lane

from .context import LaneContext

__all__ = [
    "LoweringUnsupported",
    "Symbol",
    "TraceContext",
    "HandlerPlan",
    "PARK_SAFE_OPS",
    "lower_label",
    "lower_reduce_entry",
    "render_plan",
]

#: ops a batch-safe body may consist of (see module docstring).
PARK_SAFE_OPS = frozenset({"CHARGE", "CC_ADD", "KVR_RETURN", "TERMINATE"})


class LoweringUnsupported(Exception):
    """The handler body cannot be represented as a linear op sequence."""


class Symbol:
    """An opaque operand placeholder flowing through a handler trace.

    Any attempt to *compute* with the symbol — arithmetic, comparison,
    truth testing, iteration, attribute access — aborts the trace: the
    lowering only accepts handlers that move operands through known
    intrinsics unexamined.  (``is``/``is not`` tests cannot be
    intercepted at all, which is one reason raw ``SCRATCH_RW`` results
    force interpreter fallback: a traced path that silently followed one
    arm of an ``is None`` check would be wrong for the other.)
    """

    __slots__ = ("index", "name")

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name

    def __repr__(self) -> str:
        return f"${self.name}"

    def _refuse(self, *_a, **_k):
        raise LoweringUnsupported(
            f"symbolic operand {self.name!r} used in unsupported computation"
        )

    __add__ = __radd__ = __sub__ = __rsub__ = __mul__ = __rmul__ = _refuse
    __truediv__ = __rtruediv__ = __floordiv__ = __mod__ = _refuse
    __lt__ = __le__ = __gt__ = __ge__ = _refuse
    __bool__ = __len__ = __iter__ = __getitem__ = __index__ = _refuse
    __and__ = __or__ = __xor__ = __lshift__ = __rshift__ = __neg__ = _refuse
    __hash__ = object.__hash__

    def __eq__(self, other):  # noqa: D105 - trace abort, not equality
        self._refuse()

    def __ne__(self, other):
        self._refuse()


def _src(value: Any) -> Tuple[str, Any]:
    """Where an intrinsic argument comes from: an operand slot or a const."""
    if isinstance(value, Symbol):
        return ("operand", value.index)
    return ("const", value)


class TraceContext:
    """A ``LaneContext`` stand-in that records intrinsic ops.

    Charging intrinsics append ops; state-bearing intrinsics return
    fresh :class:`Symbol` results (which abort the trace if examined);
    anything touching real machine state raises
    :class:`LoweringUnsupported`.  Composite intrinsics — the combining
    cache's ``add`` and ``ReduceTask.kv_reduce_return`` — recognize the
    trace context and call :meth:`op_cc_add` / :meth:`op_kvr_return`
    instead of executing (see ``kvmsr/combining.py`` / ``engine.py``).
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.costs = runtime.config.costs
        self.start = 0.0
        self.cycles = float(self.costs.event_dispatch)
        self.yielded = False
        self.terminated = False
        self.ops: List[Tuple[Any, ...]] = []
        self._fresh = 0

    # -- things a traced handler may consult ---------------------------

    @property
    def config(self):
        return self.runtime.config

    # -- things a traced handler must not touch ------------------------

    def _unsupported(self, what: str):
        raise LoweringUnsupported(what)

    @property
    def lane(self):
        self._unsupported("raw lane access")

    @property
    def sim(self):
        self._unsupported("raw simulator access")

    @property
    def record(self):
        self._unsupported("raw record access")

    def __getattr__(self, name: str):
        raise LoweringUnsupported(f"untraceable context intrinsic {name!r}")

    # -- composite-intrinsic hooks -------------------------------------

    def op_cc_add(self, cache, key, delta) -> None:
        self.ops.append(("CC_ADD", cache.name, _src(key), _src(delta)))

    def op_kvr_return(self, job_id: int) -> None:
        if self.terminated or self.yielded:
            self._unsupported("kv_reduce_return after thread already ended")
        self.ops.append(("KVR_RETURN", job_id))
        self.ops.append(("TERMINATE",))
        self.terminated = True

    def op_kv_emit(self, job, key, values) -> None:
        self.ops.append(("KV_EMIT", job.name, _src(key)))
        raise LoweringUnsupported("kv_emit inside handler body")

    # -- charging intrinsics -------------------------------------------

    def _charge(self, cycles: float) -> None:
        self.cycles += cycles
        ops = self.ops
        if ops and ops[-1][0] == "CHARGE":
            ops[-1] = ("CHARGE", ops[-1][1] + cycles)
        else:
            ops.append(("CHARGE", cycles))

    def work(self, instructions: int = 1) -> None:
        self._charge(instructions * self.costs.instruction)

    def charge(self, cycles: float) -> None:
        self._charge(cycles)

    def _symbol(self, stem: str) -> Symbol:
        self._fresh += 1
        return Symbol(-self._fresh, f"{stem}{self._fresh}")

    # -- state-bearing intrinsics (results escape the trace) -----------

    def sp_read(self, key, default: Any = None):
        self._charge(self.costs.scratchpad_access)
        self.ops.append(("SCRATCH_RW", "read", repr(key)))
        return self._symbol("sp")

    def sp_write(self, key, value) -> None:
        self._charge(self.costs.scratchpad_access)
        self.ops.append(("SCRATCH_RW", "write", repr(key)))

    def sp_read_pooled(self, lane_in_accel, key, default: Any = None):
        self.ops.append(("SCRATCH_RW", "read_pooled", repr(key)))
        raise LoweringUnsupported("pooled scratchpad access")

    def sp_write_pooled(self, lane_in_accel, key, value) -> None:
        self.ops.append(("SCRATCH_RW", "write_pooled", repr(key)))
        raise LoweringUnsupported("pooled scratchpad access")

    def send_event(self, evw, *operands) -> None:
        self.ops.append(("SEND", "<event-word>"))
        raise LoweringUnsupported("send to encoded event word")

    def spawn(self, network_id, label, *operands, **kw) -> None:
        self.ops.append(("SPAWN", label))
        raise LoweringUnsupported("thread spawn")

    def spawn_resolved(self, *a, **kw) -> None:
        self.ops.append(("SPAWN", "<resolved>"))
        raise LoweringUnsupported("thread spawn")

    def send_dram_read(self, addr, nwords, reply, **kw) -> None:
        self.ops.append(("DRAM_READ", nwords))
        raise LoweringUnsupported("split-phase DRAM read")

    def send_dram_write(self, addr, words, **kw) -> None:
        self.ops.append(("DRAM_WRITE", len(words) if hasattr(words, "__len__") else "?"))
        raise LoweringUnsupported("split-phase DRAM write")

    def dram_read_blocking(self, addr, nwords) -> None:
        self.ops.append(("DRAM_READ", nwords))
        raise LoweringUnsupported("blocking DRAM read")

    def yield_(self) -> None:
        if self.terminated or self.yielded:
            self._unsupported("yield after thread already ended")
        self._charge(self.costs.thread_yield)
        self.ops.append(("YIELD",))
        self.yielded = True

    def yield_terminate(self) -> None:
        if self.terminated or self.yielded:
            self._unsupported("terminate after thread already ended")
        self._charge(self.costs.thread_deallocate)
        self.ops.append(("TERMINATE",))
        self.terminated = True


class HandlerPlan:
    """One handler's lowered form plus (when batch-safe) its executor.

    ``parkable`` plans expose ``batch_fn(lane, entries, lo, hi)``: apply
    ``entries[lo:hi]`` — parked ``(time, seq, plan, operands)`` rows in
    key order — to ``lane``, charging exactly what the interpreter would
    have, and return the lane's new ``busy_until`` (the max completion
    tick of the batch).  Non-parkable plans exist for inspection (golden
    dumps) and carry ``reason``.
    """

    __slots__ = (
        "label",
        "label_id",
        "ops",
        "parkable",
        "reason",
        "batch_fn",
        "meta",
    )

    def __init__(
        self,
        label: str,
        label_id: int,
        ops: List[Tuple[Any, ...]],
        parkable: bool,
        reason: str = "",
        batch_fn=None,
        meta: str = "",
    ) -> None:
        self.label = label
        self.label_id = label_id
        self.ops = ops
        self.parkable = parkable
        self.reason = reason
        self.batch_fn = batch_fn
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "parkable" if self.parkable else f"fallback: {self.reason}"
        return f"HandlerPlan({self.label!r}, {kind}, {len(self.ops)} ops)"


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _classify(ops: List[Tuple[Any, ...]]) -> Tuple[bool, str]:
    names = [op[0] for op in ops]
    if any(name not in PARK_SAFE_OPS for name in names):
        bad = next(n for n in names if n not in PARK_SAFE_OPS)
        return False, f"op {bad} is not batch-safe"
    if names.count("KVR_RETURN") != 1:
        return False, "batch-safe bodies retire exactly one reduce tuple"
    return True, ""


def lower_label(
    runtime,
    label: str,
    operands: Sequence[Any],
    meta: str = "",
) -> HandlerPlan:
    """Lower one registered handler; never raises.

    Returns a parkable plan (with a compiled ``batch_fn``) when the body
    is batch-safe, and a fallback plan carrying the ops traced so far
    plus the refusal ``reason`` otherwise.  ``operands`` fixes the trace
    arity — and supplies any structurally significant concrete value:
    KVMSR's leading ``job_id`` stays concrete so ``job_of`` resolves at
    trace time, while every other slot is replaced by a :class:`Symbol`
    carrying its operand index.
    """
    label_id = runtime.label_id(label)
    cls, func = runtime._handler_table[label_id]
    obj = cls()
    tctx = TraceContext(runtime)
    syms = tuple(
        operands[i]
        if i == 0 and isinstance(operands[i], int)
        else Symbol(i, f"op{i}")
        for i in range(len(operands))
    )
    try:
        func(obj, tctx, *syms)
        if not (tctx.terminated or tctx.yielded):
            raise LoweringUnsupported(
                "handler returned without ending its event"
            )
    except LoweringUnsupported as exc:
        return HandlerPlan(
            label, label_id, list(tctx.ops), False, str(exc), meta=meta
        )
    except Exception as exc:  # symbolic operands break arbitrary Python
        return HandlerPlan(
            label, label_id, list(tctx.ops), False,
            f"trace aborted: {type(exc).__name__}: {exc}", meta=meta,
        )
    parkable, reason = _classify(tctx.ops)
    plan = HandlerPlan(label, label_id, tctx.ops, parkable, reason, meta=meta)
    if parkable:
        plan.batch_fn = _compile_batch_fn(plan, runtime.config.costs)
    return plan


def lower_reduce_entry(runtime, job, operands: Sequence[Any]) -> HandlerPlan:
    """Lower a KVMSR job's ``__reduce_entry__`` label and validate it.

    Called lazily by ``MapTask.kv_emit`` on the first emitted tuple of a
    job (the first record supplies the operand arity).  The returned
    plan is parkable only if lowering succeeded AND the generated
    executor agreed with the interpreter on a two-record (miss arm, hit
    arm) validation run.
    """
    try:
        plan = lower_label(
            runtime,
            job.reduce_entry_label,
            operands,
            meta=f"binding={job.reduce_binding!r}",
        )
    except Exception as exc:  # pragma: no cover - lower_label never raises
        return HandlerPlan(
            job.reduce_entry_label, job.reduce_entry_label_id, [], False,
            f"lowering error: {exc!r}",
        )
    if plan.parkable and not _validate(runtime, plan, tuple(operands)):
        plan.parkable = False
        plan.batch_fn = None
        plan.reason = "validation against interpreted semantics failed"
    return plan


# ---------------------------------------------------------------------------
# Batch executor codegen
# ---------------------------------------------------------------------------


def _compile_batch_fn(plan: HandlerPlan, costs):
    """Compile a specialized ``batch_fn`` for a batch-safe op sequence.

    The generated loop replays records in parked order with every
    per-record Table-2 charge and float addition applied in exactly the
    interpreted sequence.  Per-record cycle constants are exact integers
    in float64 (Table 2 costs are integers), so folding the batch's
    total into ``busy_cycles`` with one addition is bit-identical to the
    interpreter's per-event accumulation.  The reduce-credit counter is
    an int, so its fold (``+= n``) is exact too; the combining-cache
    *values* are floats and stay strictly per-record, in order.

    The record columns (``RecordBatch``) stay available for tooling, but
    the executor iterates the parked tuples directly: the per-key float
    accumulation order is part of the bit-exactness contract, which
    rules out vectorized reductions (``np.add.at`` ordering across
    repeated indices is not a guarantee we can rest fingerprints on),
    and the mean batch is small enough that column staging would cost
    more than it saves.
    """
    sp_cost = float(costs.scratchpad_access)
    instr = float(costs.instruction)
    base = float(costs.event_dispatch) + float(costs.thread_deallocate)
    cc_ops = []
    kvr_job = None
    for op in plan.ops:
        kind = op[0]
        if kind == "CHARGE":
            base += op[1]
        elif kind == "CC_ADD":
            cc_ops.append(op)
        elif kind == "KVR_RETURN":
            base += 2 * sp_cost
            kvr_job = op[1]
    ns = {
        "KVR_KEY": ("kvr", kvr_job),
        "BASE_C": base,
        "MISS_EXTRA": 4 * sp_cost + 2 * instr,
        "HIT_EXTRA": 2 * sp_cost + 1 * instr,
    }
    body = [
        "def batch_fn(ln, entries, lo, hi):",
        "    sp = ln.scratchpad",
        "    sp_get = sp.get",
        "    busy = ln.busy_until",
        "    total = 0.0",
        "    n = hi - lo",
        "    for i in range(lo, hi):",
        "        e = entries[i]",
        "        t = e[0]",
        "        ops_ = e[3]",
        "        c = BASE_C",
    ]
    for k, (_kind, name, key_src, delta_src) in enumerate(cc_ops):
        key_expr = (
            f"ops_[{key_src[1]}]" if key_src[0] == "operand" else repr(key_src[1])
        )
        delta_expr = (
            f"ops_[{delta_src[1]}]"
            if delta_src[0] == "operand"
            else repr(delta_src[1])
        )
        ns[f"CKK{k}"] = ("cck", name)
        body += [
            f"        vk = ('cc', {name!r}, {key_expr})",
            "        cur = sp_get(vk)",
            "        if cur is None:",
            f"            keys = sp_get(CKK{k})",
            "            if keys is None:",
            "                keys = []",
            f"            keys.append({key_expr})",
            f"            sp[CKK{k}] = keys",
            f"            sp[vk] = {delta_expr}",
            "            c += MISS_EXTRA",
            "        else:",
            f"            sp[vk] = cur + {delta_expr}",
            "            c += HIT_EXTRA",
        ]
    body += [
        "        if t > busy:",
        "            busy = t + c",
        "        else:",
        "            busy += c",
        "        total += c",
        "    sp[KVR_KEY] = sp_get(KVR_KEY, 0) + n",
        "    ln.busy_until = busy",
        "    ln.busy_cycles += total",
        "    ln.events_executed += n",
        # NEW_THREAD lifecycle, folded: each record pops one context id
        # and retires it, so the free list is unchanged — except that an
        # empty list makes the first record mint ``_next_tid`` (which
        # then recycles through the rest and lands back on the list).
        "    if not ln._free_tids:",
        "        ln._free_tids.append(ln._next_tid)",
        "        ln._next_tid += 1",
        "    return busy",
    ]
    exec(compile("\n".join(body), f"<batch:{plan.label}>", "exec"), ns)
    return ns["batch_fn"]


# ---------------------------------------------------------------------------
# Validation against interpreted semantics
# ---------------------------------------------------------------------------


def _validate(runtime, plan: HandlerPlan, operands: Tuple[Any, ...]) -> bool:
    """Run interpreter and executor side by side on scratch lanes.

    Two records with identical operands exercise both combining-cache
    arms (first = miss, second = hit).  The interpreted side goes
    through the real handler with a real :class:`LaneContext`; the
    batched side goes through the generated executor; both start from
    empty scratch lanes that never touch the simulated machine.  Agree
    on charged cycles and every scratchpad key, or the plan is rejected.
    """
    cls, func = runtime._handler_table[plan.label_id]
    ref = Lane(-1, 0, 0)
    record = MessageRecord(
        0, NEW_THREAD, plan.label, tuple(operands), None, 0, "msg",
        plan.label_id,
    )
    interpreted_cycles = []
    try:
        for _ in range(2):
            obj = cls()
            ctx = LaneContext(runtime, ref, obj, 0, record, 0.0)
            func(obj, ctx, *operands)
            if not ctx.terminated:
                return False
            interpreted_cycles.append(ctx.cycles)
    except Exception:
        return False
    cand = Lane(-1, 0, 0)
    try:
        batch = [(0.0, i, plan, tuple(operands)) for i in range(2)]
        plan.batch_fn(cand, batch, 0, 1)
        mid_busy = cand.busy_until
        plan.batch_fn(cand, batch, 1, 2)
    except Exception:
        return False
    if mid_busy != interpreted_cycles[0]:
        return False
    if cand.busy_until - mid_busy != interpreted_cycles[1]:
        return False
    if cand.scratchpad != ref.scratchpad:
        return False
    return True


# ---------------------------------------------------------------------------
# Rendering (golden dumps)
# ---------------------------------------------------------------------------


def _fmt_src(src: Tuple[str, Any]) -> str:
    kind, v = src
    return f"op[{v}]" if kind == "operand" else repr(v)


def render_plan(plan: HandlerPlan) -> str:
    """Stable text form of a plan, for golden tests and debugging."""
    head = [f"handler {plan.label}"]
    if plan.meta:
        head.append(f"  {plan.meta}")
    head.append(
        "  batchable" if plan.parkable else f"  fallback ({plan.reason})"
    )
    lines = []
    for op in plan.ops:
        kind = op[0]
        if kind == "CHARGE":
            lines.append(f"  CHARGE {op[1]:g}")
        elif kind == "CC_ADD":
            lines.append(
                f"  CC_ADD cache={op[1]} key={_fmt_src(op[2])} "
                f"delta={_fmt_src(op[3])}"
            )
        elif kind == "KVR_RETURN":
            lines.append(f"  KVR_RETURN job={op[1]}")
        elif kind == "SCRATCH_RW":
            lines.append(f"  SCRATCH_RW {op[1]} {op[2]}")
        else:
            lines.append("  " + " ".join(str(p) for p in op))
    return "\n".join(head + lines)


def batch_columns(entries: Sequence[Tuple[Any, ...]], lo: int, hi: int) -> RecordBatch:
    """Columnar (NumPy-backed) view of a parked slice — tooling/tests."""
    return RecordBatch.from_entries(entries, lo, hi)
