"""UpDownRuntime: glue between the machine simulator and UDWeave programs.

The runtime owns the simulator, the program image (label registry), the
global memory manager, and the scratchpad allocator, and installs itself as
the simulator's dispatcher: every delivered message is resolved to a thread
object and an event handler, executed atomically, and charged per Table 2.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.machine.config import MachineConfig
from repro.machine.events import HOST_NWID, NEW_THREAD, MessageRecord
from repro.machine.lane import Lane
from repro.machine.simulator import Simulator
from repro.machine.stats import SimStats
from repro.memmodel.drammalloc import GlobalMemory
from repro.memmodel.spmalloc import SpAllocator

from . import eventword
from .eventword import (
    FLAG_HOST,
    FLAG_NEW_THREAD,
    EventWordError,
    _FLAG_SHIFT,
    _LABEL_MASK,
    _LABEL_SHIFT,
    _NWID_MASK,
    _THREAD_MASK,
    _THREAD_SHIFT,
)
from .context import IGNRCONT, LaneContext, UDWeaveError
from .program import Program, ProgramError
from .thread import UDThread
from .udlog import UDLog

LabelLike = Union[str, int]


class UpDownRuntime:
    """One simulated UpDown machine ready to execute UDWeave programs."""

    def __init__(
        self,
        config: MachineConfig,
        program: Optional[Program] = None,
        sp_capacity_words: int = 8192,
        latency_jitter_cycles: float = 0.0,
        seed: int = 0,
        memory_banks_per_node: int = 1,
        detailed_stats: bool = False,
        recorder=None,
        shards: int = 1,
        parallel: bool = False,
        faults=None,
        reliable=False,
        watchdog_cycles: Optional[float] = None,
    ) -> None:
        self.config = config
        self.program = program if program is not None else Program()
        #: optional flight recorder (``repro.observe.FlightRecorder``);
        #: shared with the simulator and read by KVMSR's phase hooks.
        self.recorder = recorder
        self.sim = Simulator(
            config,
            dispatcher=self._dispatch,
            latency_jitter_cycles=latency_jitter_cycles,
            seed=seed,
            memory_banks_per_node=memory_banks_per_node,
            detailed_stats=detailed_stats,
            recorder=recorder,
            shards=shards,
            parallel=parallel,
            faults=faults,
            watchdog_cycles=watchdog_cycles,
        )
        self.gmem = GlobalMemory(config)
        self.spalloc = SpAllocator(sp_capacity_words)
        self.udlog = UDLog()
        # Hand the simulator the process-shared pieces the parallel
        # executor must replicate/merge across shard workers, plus a hook
        # to swap the recorder KVMSR's phase instrumentation reads.
        self.sim.bind_shared(
            funcmem=self.gmem,
            hostlog=self.udlog,
            recorder_rebind=self._rebind_recorder,
            setup_token=self._host_setup_token,
        )
        #: host mailbox labels live in their own namespace (they are not
        #: program events; they terminate at the simulation host).
        self._host_labels: Dict[str, int] = {}
        self._host_label_names: List[str] = []
        #: (thread class, label reference) -> label id.  Label resolution
        #: is pure (registered ids never change, and a registered subclass
        #: always owns a qualified alias for every inherited event), so
        #: hot senders like ``ctx.self_evw("task_done")`` hit this dict
        #: instead of re-walking the MRO with try/except per send.
        self._resolve_cache: Dict[Tuple[type, str], int] = {}
        #: direct reference to the program's dispatch table; ``register``
        #: appends in place so the list identity is stable for the
        #: runtime's lifetime and the dispatcher skips one attribute hop.
        self._handler_table = self.program.handler_table
        #: opt-in reliable delivery (``repro.faults.transport``).
        #: ``reliable`` accepts ``True`` (defaults) or a
        #: :class:`~repro.faults.ReliabilityConfig`; the transport is
        #: shared with the simulator, which hands it every outbound
        #: remote lane-to-lane send for tracking.
        self.transport = None
        if reliable:
            from repro.faults.transport import (
                ReliabilityConfig,
                ReliableTransport,
            )

            rcfg = reliable if isinstance(reliable, ReliabilityConfig) else None
            self.transport = ReliableTransport(self.sim, rcfg)
            self.sim.attach_transport(self.transport)

    # ------------------------------------------------------------------
    # Program construction
    # ------------------------------------------------------------------

    def register(self, thread_cls: type) -> type:
        """Register a thread class (usable as a decorator)."""
        return self.program.register(thread_cls)

    def dram_malloc(self, *args, **kwargs):
        """Convenience passthrough to :meth:`GlobalMemory.dram_malloc`."""
        return self.gmem.dram_malloc(*args, **kwargs)

    # ------------------------------------------------------------------
    # Label resolution
    # ------------------------------------------------------------------

    def label_id(self, label: str) -> int:
        return self.program.label_id(label)

    def label_name(self, label_id: int) -> str:
        return self.program.label_name(label_id)

    def lower_label(self, label: str, operands, meta: str = ""):
        """Lower a registered handler to its intrinsic-op IR.

        Returns a :class:`repro.udweave.ir.HandlerPlan` — parkable (with
        a compiled batch executor) when the body proved batch-safe, a
        fallback plan carrying the traced ops and refusal reason
        otherwise.  ``operands`` fixes the trace arity; see
        ``repro.udweave.ir`` for the safety rules.  Inspection API: the
        simulator's batch path lowers lazily on its own.
        """
        from .ir import lower_label

        return lower_label(self, label, operands, meta)

    def resolve_label_id(
        self, label: LabelLike, context_thread: Optional[UDThread] = None
    ) -> int:
        """Resolve a label reference to its integer ID.

        Accepts an integer ID, a fully-qualified ``"Class::event"`` string,
        or a bare event name resolved against ``context_thread``'s class
        (walking the MRO, so shared base-class events resolve too).
        """
        if isinstance(label, int):
            self.program.label_name(label)  # validates
            return label
        if context_thread is not None:
            key = (type(context_thread), label)
            cached = self._resolve_cache.get(key)
            if cached is not None:
                return cached
        if "::" in label:
            label_id = self.program.label_id(label)
        elif context_thread is None:
            raise ProgramError(
                f"bare event name {label!r} needs a thread context to resolve"
            )
        else:
            label_id = -1
            for klass in type(context_thread).__mro__:
                try:
                    label_id = self.program.label_id(f"{klass.__name__}::{label}")
                    break
                except ProgramError:
                    continue
            if label_id < 0:
                raise ProgramError(
                    f"event {label!r} not registered for "
                    f"{type(context_thread).__name__} or its bases"
                )
        if context_thread is not None:
            self._resolve_cache[key] = label_id
        return label_id

    def evw(
        self, network_id: int, label: str, thread: Optional[int] = None
    ) -> int:
        """Host-side event-word construction (program start, tests)."""
        return eventword.encode(network_id, self.program.label_id(label), thread)

    def host_evw(self, tag: str = "done") -> int:
        """An event word that delivers to the host mailbox under ``tag``.

        Programs use it as a completion continuation; the host reads
        results via :meth:`host_messages`.
        """
        label_id = self._host_labels.get(tag)
        if label_id is None:
            label_id = len(self._host_label_names)
            self._host_labels[tag] = label_id
            self._host_label_names.append(tag)
        return eventword.encode(0, label_id, thread=0, host=True)

    # ------------------------------------------------------------------
    # Message fabrication
    # ------------------------------------------------------------------

    def record_for(
        self,
        evw: int,
        operands: Tuple[Any, ...],
        cont: Optional[int],
        src_network_id: Optional[int],
    ) -> MessageRecord:
        """Build the wire record for a send to event word ``evw``."""
        # eventword.decode, inlined — this runs once per message send.
        if evw < 0 or evw >= 1 << 64:
            raise EventWordError(f"event word {evw:#x} is not a 64-bit value")
        flags = evw >> _FLAG_SHIFT
        label_id = (evw >> _LABEL_SHIFT) & _LABEL_MASK
        if flags & FLAG_HOST:
            return MessageRecord(
                HOST_NWID,
                0,
                self._host_label_names[label_id],
                operands,
                cont,
                src_network_id,
                "msg",
                label_id,
            )
        return MessageRecord(
            evw & _NWID_MASK,
            NEW_THREAD
            if flags & FLAG_NEW_THREAD
            else (evw >> _THREAD_SHIFT) & _THREAD_MASK,
            self.program.label_name(label_id),
            operands,
            cont,
            src_network_id,
            "msg",
            label_id,
        )

    # ------------------------------------------------------------------
    # Program start & execution
    # ------------------------------------------------------------------

    def start(
        self,
        network_id: int,
        label: str,
        *operands: Any,
        cont: Optional[int] = IGNRCONT,
        t: float = 0.0,
    ) -> None:
        """Host-injected program start: create a thread and run ``label``."""
        record = self.record_for(
            self.evw(network_id, label), operands, cont, src_network_id=None
        )
        self.sim.inject(record, t)

    def run(self, max_events: Optional[int] = None) -> SimStats:
        """Run to quiescence; returns machine statistics."""
        return self.sim.run(max_events=max_events)

    def shutdown(self) -> None:
        """Release simulator resources (parallel worker pool, if any)."""
        self.sim.shutdown()

    def _rebind_recorder(self, recorder) -> None:
        self.recorder = recorder

    def _host_setup_token(self) -> tuple:
        """Fingerprint of host-side program setup.

        Forked shard workers inherit registrations by copy-on-write at
        fork time only; the parallel executor compares this token across
        drains to reject setup performed after the fork (which the
        workers could never observe).
        """
        return (
            len(self._handler_table),
            len(self._host_label_names),
            len(getattr(self, "_kvmsr_jobs", ())),
        )

    def host_messages(self, tag: Optional[str] = None) -> List[MessageRecord]:
        return self.sim.host_messages(tag)

    @property
    def elapsed_seconds(self) -> float:
        return self.sim.elapsed_seconds

    # ------------------------------------------------------------------
    # Dispatch (installed on the simulator)
    # ------------------------------------------------------------------

    def _dispatch(
        self, sim: Simulator, lane: Lane, record: MessageRecord, start: float
    ) -> float:
        # Reliable-delivery interception (repro.faults.transport): tagged
        # records never reach label resolution as-is — acks and timers
        # are pure protocol, data records pay dedup + ack before (or
        # instead of, for suppressed duplicates) handler execution.
        rdt = record.rdt
        if rdt is not None:
            transport = self.transport
            tag = rdt[0]
            if tag == "d":
                duplicate, pre = transport.on_data(lane, record, start)
                if duplicate:
                    return pre
            elif tag == "a":
                return transport.on_ack(lane, record)
            else:
                return transport.on_timer(lane, record, start)
        else:
            pre = 0.0
        # Interned fast path: records built by this runtime carry the
        # label id resolved at send time; hand-built records (tests) fall
        # back to string resolution.
        label_id = record.label_id
        if label_id < 0:
            label_id = self.program.label_id(record.label)
        cls, func = self._handler_table[label_id]
        tid = record.thread
        if tid == NEW_THREAD:
            thread_obj = cls()
            # Lane.allocate_thread open-coded: one context is allocated
            # per delivered spawn, so the call dispatch was measurable.
            free_tids = lane._free_tids
            if free_tids:
                tid = free_tids.pop()
            else:
                tid = lane._next_tid
                lane._next_tid = tid + 1
            lane.threads[tid] = thread_obj
            sim.stats.threads_created += 1
        else:
            thread_obj = lane.threads.get(tid)
            if thread_obj is None:
                raise UDWeaveError(
                    f"event {record.label!r} addressed dead thread {tid} "
                    f"on lane {lane.network_id}"
                )
            if thread_obj.__class__ is not cls:
                if not isinstance(thread_obj, cls):
                    raise UDWeaveError(
                        f"event {record.label!r} delivered to thread of type "
                        f"{type(thread_obj).__name__} on lane {lane.network_id}"
                    )
                # Subclass instance addressed via a base-class label:
                # honor the instance's own override, like getattr did.
                func = getattr(type(thread_obj), self.program.handler(label_id)[1])
        ctx = lane.ctx_cache
        if ctx is None:
            ctx = lane.ctx_cache = LaneContext(
                self, lane, thread_obj, tid, record, start
            )
        else:
            ctx._reset(thread_obj, tid, record, start)
        if pre:
            # receiver-side transport work (dedup probe + ack send)
            # charged to the same lane occupancy as the delivery
            ctx.cycles += pre
        func(thread_obj, ctx, *record.operands)
        if ctx.terminated:
            # Lane.deallocate_thread open-coded: one termination per
            # spawned task, so the call dispatch was measurable.
            if lane.threads.pop(tid, None) is not None:
                lane._free_tids.append(tid)
            sim.stats.threads_terminated += 1
        elif not ctx.yielded:
            raise UDWeaveError(
                f"event {record.label!r} returned without yield or "
                f"yield_terminate"
            )
        return ctx.cycles
