"""UDWeave threads: objects with events, instantiated by messages.

Paper §2.1.1: *"UDWeave programs define threads that each contain one or
more events.  When instantiated, threads are similar to objects, with
events triggered by messages.  Events are similar to member functions and
execute atomically."*

An event handler has the signature ``def name(self, ctx, *operands)`` where
``ctx`` is the :class:`repro.udweave.context.LaneContext` for this
activation.  Thread-scope variables are ordinary instance attributes — they
persist across events, exactly like the paper's thread variables.  Handlers
must end each activation with ``ctx.yield_()`` (keep the thread) or
``ctx.yield_terminate()`` (free it); forgetting to do so is a programming
error the dispatcher reports.
"""

from __future__ import annotations

from typing import Callable


def event(func: Callable) -> Callable:
    """Mark a method as a UDWeave event handler."""
    func._udweave_event = True  # type: ignore[attr-defined]
    return func


class UDThread:
    """Base class for UDWeave thread definitions.

    Subclasses declare thread variables in ``__init__`` (no arguments —
    threads are created by message delivery, so all inputs arrive as event
    operands) and events as ``@event`` methods.
    """

    def __init__(self) -> None:  # noqa: B027 — intentional hook
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} thread>"
